// Figure 4: variation of G(k) on scaling the RMS by the number of
// status estimators (Case 3, Table 4); network size 1000 nodes, RP
// unaltered.  Estimators are the RMS nodes which receive the status
// updates from RP resources and distribute them to the scheduling
// decision makers.
//
// Paper claims to check against the output:
//   - AUCTION and Sy-I (the PUSH+PULL models) are no longer scalable
//     for k > 3; the other models degrade much more slowly.

#include "common.hpp"
#include "options.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  const auto opts = bench::Options::parse(argc, argv, "fig4_scale_estimators");
  obs::Telemetry telemetry(opts.telemetry);
  bench::run_overhead_figure(
      "fig4_scale_estimators", bench::case3_base(),
      bench::procedure_for(core::ScalingCase::case3_estimators()),
      opts.telemetry.any_enabled() ? &telemetry : nullptr);
  return 0;
}
