#pragma once
// The one flag parser shared by every bench binary.  A new flag lands
// here — in one file — instead of in nineteen main()s.
//
//   const auto opts = bench::Options::parse(argc, argv, "fig2_...");
//   obs::Telemetry telemetry(opts.telemetry);
//
// Flags (all optional):
//   --trace PATH        Chrome trace JSON of the instrumented run
//   --probe PATH        time-series CSV of the instrumented run
//   --probe-interval T  probe cadence in sim time units (default 25)
//   --manifest PATH     append one JSONL run record
//   --anneal PATH       per-iteration tuner telemetry CSV
//   --metrics           distribution metrics + phase profiler: streaming
//                       histograms (job wait/response/slowdown, queue
//                       depth, staleness), scoped phase timers, and a
//                       per-RMS metrics table; lands in the manifest's
//                       "metrics" block
//   --label NAME        manifest / anneal label (default: figure name)
//   --jobs N            parallel lanes ("hw" = all cores); overrides
//                       SCAL_JOBS; results are bit-identical at any N
//   --faults SPEC       fault-injection spec (docs/FAULTS.md grammar);
//                       overrides SCAL_BENCH_FAULTS
//   --mtbf T            resource-churn mean time between failures;
//                       shorthand merged into the spec's churn clause
//   --mttr T            mean time to repair (default 40 when --mtbf
//                       is given without it)
//   --workload SPEC     workload-source spec (docs/WORKLOADS.md), e.g.
//                       "swf:trace.swf@0.01"; overrides
//                       SCAL_BENCH_WORKLOAD
//   --swf PATH[@SCALE]  shorthand for --workload swf:PATH[@SCALE]
//   --modulate SPEC     load-modulator chain appended to the source,
//                       e.g. "diurnal:amplitude=0.6,period=500";
//                       overrides SCAL_BENCH_MODULATE
//   --eval-cache PATH   persistent tuner evaluation cache: preload the
//                       file before the search, rewrite it after (see
//                       core/eval_store.hpp for the invalidation rule);
//                       overrides SCAL_BENCH_EVAL_CACHE.  Honored by
//                       the tuner benches (ablation_tuner,
//                       ext_path_search); others ignore it.
// Unknown flags print usage to stderr and exit(2).

#include <cstddef>
#include <string>

#include "fault/plan.hpp"
#include "obs/telemetry.hpp"
#include "workload/source.hpp"

namespace scal::bench {

struct Options {
  obs::TelemetryConfig telemetry;  ///< --trace/--probe/--manifest/--anneal
  std::size_t jobs = 1;            ///< --jobs, else SCAL_JOBS, else 1
  fault::FaultPlan faults;         ///< --faults/--mtbf/--mttr, else env
  workload::SourceSpec workload;   ///< --workload/--swf/--modulate, else env
  std::string eval_cache_path;     ///< --eval-cache, else env, else ""

  /// Parse argv and record the result process-wide, so job_count(),
  /// fault_plan(), and the case bases (common_base folds the plan in)
  /// observe the same values afterwards.
  static Options parse(int argc, char** argv,
                       const std::string& default_label);
};

}  // namespace scal::bench
