// Extension experiment: the measured isoefficiency *function* W(k) —
// the workload needed to hold E = E0 as the pool grows — for CENTRAL,
// LOWEST, and the HIER extension.  The paper's reference [1] defines
// scalability by how fast W(k) must grow; a log-log slope of 1 is the
// ideal (linear isoefficiency), larger means the manager consumes the
// growth.

#include <iostream>
#include <sstream>

#include "common.hpp"
#include "core/isoefficiency_function.hpp"
#include "rms/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  using util::Table;

  grid::GridConfig base;
  base.topology.nodes = bench::fast_mode() ? 100 : 150;
  base.horizon = 800.0;
  base.workload.mean_interarrival = 0.55;
  base.seed = 42;

  core::IsoefficiencyFunctionConfig fc;
  fc.scale_factors = bench::fast_mode() ? std::vector<double>{1, 2}
                                        : std::vector<double>{1, 2, 3, 4};
  fc.tolerance = 0.01;
  fc.max_bisection_steps = 10;

  // Step 1 analog: pick e0 as the base system's efficiency at nominal
  // load, so multiplier 1 is the natural anchor.
  base.rms = grid::RmsKind::kLowest;
  fc.e0 = Scenario(base).run().efficiency() - 0.03;  // bisectable from above

  std::cout << "ext_isoefficiency_function: workload W(k) holding E = "
            << fc.e0 << "\n(multiplier is relative to proportional-in-k "
            << "scaling; log-log slope 1 = ideal)\n\n";

  Table table({"RMS", "m(k=1)", "m(k=2)", "m(kmax)", "loglog slope",
               "converged"});
  for (const grid::RmsKind kind :
       {grid::RmsKind::kCentral, grid::RmsKind::kLowest,
        grid::RmsKind::kHierarchical}) {
    base.rms = kind;
    const auto f = core::measure_isoefficiency_function(base, fc);
    std::size_t converged = 0;
    for (const auto& p : f.points) converged += p.converged ? 1 : 0;
    std::ostringstream conv;
    conv << converged << '/' << f.points.size();
    table.add_row({
        grid::to_string(kind),
        Table::fixed(f.points.front().workload_multiplier, 2),
        Table::fixed(f.points.size() > 1
                         ? f.points[1].workload_multiplier
                         : 0.0,
                     2),
        Table::fixed(f.points.back().workload_multiplier, 2),
        Table::fixed(f.loglog_slope, 3),
        conv.str(),
    });
  }
  table.print(std::cout);
  std::cout << "\nA manager that eats the growth needs a shrinking "
               "multiplier (slope < 1);\na scalable one holds the "
               "multiplier flat (slope ~ 1).\n";
  return 0;
}
