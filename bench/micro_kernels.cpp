// Microbenchmarks (google-benchmark) of the substrate kernels: event
// queue throughput, Dijkstra routing, topology generation, the SA step,
// full small simulations per RMS, and the workload generator.

#include <benchmark/benchmark.h>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "opt/annealing.hpp"
#include "rms/scenario.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace scal;

void BM_EventQueueChurn(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    // Self-replenishing event chain: `fanout` parallel timer chains.
    std::function<void()> tick = [&]() {
      ++fired;
      if (fired < 100000) sim.schedule_in(1.0, tick);
    };
    for (std::size_t i = 0; i < fanout; ++i) sim.schedule_in(1.0, tick);
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100000);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1)->Arg(64);

void BM_TopologyGeneration(benchmark::State& state) {
  net::TopologyConfig config;
  config.nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::RandomStream rng(42, "bench-topo");
    const net::Graph g = net::generate_topology(config, rng);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(250)->Arg(1000)->Arg(4000);

void BM_DijkstraSourceTree(benchmark::State& state) {
  net::TopologyConfig config;
  config.nodes = static_cast<std::size_t>(state.range(0));
  util::RandomStream rng(42, "bench-routing");
  const net::Graph g = net::generate_topology(config, rng);
  net::NodeId src = 0;
  for (auto _ : state) {
    net::Router router(g);  // fresh cache each iteration
    benchmark::DoNotOptimize(
        router.route(src, static_cast<net::NodeId>(g.node_count() - 1)));
    src = (src + 1) % static_cast<net::NodeId>(g.node_count());
  }
}
BENCHMARK(BM_DijkstraSourceTree)->Arg(1000)->Arg(4000);

void BM_WorkloadGeneration(benchmark::State& state) {
  workload::WorkloadConfig config;
  config.mean_interarrival = 0.1;
  for (auto _ : state) {
    workload::WorkloadGenerator gen(config,
                                    util::RandomStream(42, "bench-wl"));
    const auto jobs = gen.generate_until(1000.0);
    benchmark::DoNotOptimize(jobs.size());
  }
}
BENCHMARK(BM_WorkloadGeneration);

void BM_AnnealingStep(benchmark::State& state) {
  const opt::Space space({
      {"a", opt::VarKind::kContinuous, -5.0, 5.0, false},
      {"b", opt::VarKind::kContinuous, -5.0, 5.0, false},
      {"c", opt::VarKind::kInteger, 1.0, 8.0, false},
  });
  const opt::Objective sphere = [](const opt::Point& p) {
    double s = 0.0;
    for (const double x : p) s += x * x;
    return s;
  };
  opt::AnnealingConfig config;
  config.iterations = 256;
  for (auto _ : state) {
    util::RandomStream rng(42, "bench-sa");
    benchmark::DoNotOptimize(opt::anneal(space, sphere, config, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_AnnealingStep);

void BM_FullSimulation(benchmark::State& state) {
  const auto kind = static_cast<grid::RmsKind>(state.range(0));
  for (auto _ : state) {
    grid::GridConfig config;
    config.rms = kind;
    config.topology.nodes = 200;
    config.horizon = 500.0;
    config.workload.mean_interarrival = 0.5;
    const auto result = Scenario(config).run();
    benchmark::DoNotOptimize(result.G());
  }
}
BENCHMARK(BM_FullSimulation)
    ->DenseRange(0, 6, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
