#include "options.hpp"

#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "exec/jobs.hpp"
#include "util/env.hpp"

namespace scal::bench {

namespace {
/// Set by Options::parse (--jobs beats SCAL_JOBS beats 1).
std::size_t g_jobs = 0;
/// Fault knobs from the CLI (beat the SCAL_BENCH_* fallbacks).
std::string g_fault_spec;
bool g_fault_spec_set = false;
double g_mtbf = 0.0;
double g_mttr = 0.0;
/// Workload knobs from the CLI (beat the SCAL_BENCH_* fallbacks).
std::string g_workload_spec;
bool g_workload_spec_set = false;
std::string g_modulate_spec;
bool g_modulate_spec_set = false;
/// Persistent eval-cache path (--eval-cache beats SCAL_BENCH_EVAL_CACHE).
std::string g_eval_cache_path;
bool g_eval_cache_path_set = false;

double env_real(const std::string& name) {
  const std::string text = util::env_or(name, "");
  if (text.empty()) return 0.0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  return (end != text.c_str() && *end == '\0') ? v : 0.0;
}
}  // namespace

fault::FaultPlan fault_plan() {
  const std::string spec = g_fault_spec_set
                               ? g_fault_spec
                               : util::env_or("SCAL_BENCH_FAULTS", "");
  fault::FaultPlan plan = fault::FaultPlan::parse(spec);
  const double mtbf = g_mtbf > 0.0 ? g_mtbf : env_real("SCAL_BENCH_MTBF");
  const double mttr = g_mttr > 0.0 ? g_mttr : env_real("SCAL_BENCH_MTTR");
  if (mtbf > 0.0) {
    plan.churn.mtbf = mtbf;
    plan.churn.mttr = mttr > 0.0 ? mttr : 40.0;
  } else if (mttr > 0.0 && plan.churn.enabled()) {
    plan.churn.mttr = mttr;
  }
  plan.validate();
  return plan;
}

std::size_t job_count() {
  if (g_jobs == 0) g_jobs = exec::env_jobs(1);
  return g_jobs;
}

workload::SourceSpec workload_source() {
  const std::string source =
      g_workload_spec_set ? g_workload_spec
                          : util::env_or("SCAL_BENCH_WORKLOAD", "");
  workload::SourceSpec spec = workload::SourceSpec::parse(source);
  const std::string chain =
      g_modulate_spec_set ? g_modulate_spec
                          : util::env_or("SCAL_BENCH_MODULATE", "");
  if (!chain.empty()) {
    for (workload::ModulatorSpec& stage : workload::parse_modulators(chain)) {
      spec.modulators.push_back(std::move(stage));
    }
  }
  spec.validate();
  return spec;
}

Options Options::parse(int argc, char** argv,
                       const std::string& default_label) {
  Options opts;
  obs::TelemetryConfig& tc = opts.telemetry;
  tc.probe_interval = 25.0;
  tc.label = default_label;

  auto usage = [&](const std::string& complaint) {
    std::cerr << argv[0] << ": " << complaint << "\n"
              << "usage: " << argv[0]
              << " [--trace PATH] [--probe PATH] [--probe-interval T]\n"
              << "       [--manifest PATH] [--anneal PATH] [--metrics]\n"
              << "       [--label NAME] [--jobs N|hw] [--faults SPEC]\n"
              << "       [--mtbf T] [--mttr T] [--workload SPEC]\n"
              << "       [--swf PATH[@SCALE]] [--modulate SPEC]\n"
              << "       [--eval-cache PATH]\n";
    std::exit(2);
  };
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage("missing value for " + std::string(argv[i]));
    }
    return argv[++i];
  };
  auto real_value = [&](int& i) -> double {
    const std::string flag = argv[i];
    const std::string text = value(i);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v <= 0.0) {
      usage(flag + " expects a positive number, got '" + text + "'");
    }
    return v;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trace") {
      tc.trace_path = value(i);
    } else if (flag == "--probe") {
      tc.probe_path = value(i);
    } else if (flag == "--probe-interval") {
      const std::string text = value(i);
      char* end = nullptr;
      tc.probe_interval = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        usage("--probe-interval expects a number, got '" + text + "'");
      }
    } else if (flag == "--manifest") {
      tc.manifest_path = value(i);
    } else if (flag == "--anneal") {
      tc.anneal_path = value(i);
    } else if (flag == "--metrics") {
      tc.metrics = true;
    } else if (flag == "--label") {
      tc.label = value(i);
    } else if (flag == "--jobs") {
      const std::string text = value(i);
      const std::size_t jobs = exec::parse_jobs(text, 0);
      if (jobs == 0) {
        usage("--jobs expects a positive integer or 'hw', got '" + text +
              "'");
      }
      g_jobs = jobs;
    } else if (flag == "--faults") {
      g_fault_spec = value(i);
      g_fault_spec_set = true;
      try {
        fault::FaultPlan::parse(g_fault_spec);
      } catch (const std::exception& e) {
        usage("--faults: " + std::string(e.what()));
      }
    } else if (flag == "--mtbf") {
      g_mtbf = real_value(i);
    } else if (flag == "--mttr") {
      g_mttr = real_value(i);
    } else if (flag == "--workload") {
      g_workload_spec = value(i);
      g_workload_spec_set = true;
      try {
        workload::SourceSpec::parse(g_workload_spec);
      } catch (const std::exception& e) {
        usage("--workload: " + std::string(e.what()));
      }
    } else if (flag == "--swf") {
      g_workload_spec = "swf:" + value(i);
      g_workload_spec_set = true;
      try {
        workload::SourceSpec::parse(g_workload_spec);
      } catch (const std::exception& e) {
        usage("--swf: " + std::string(e.what()));
      }
    } else if (flag == "--eval-cache") {
      g_eval_cache_path = value(i);
      g_eval_cache_path_set = true;
    } else if (flag == "--modulate") {
      g_modulate_spec = value(i);
      g_modulate_spec_set = true;
      try {
        workload::parse_modulators(g_modulate_spec);
      } catch (const std::exception& e) {
        usage("--modulate: " + std::string(e.what()));
      }
    } else {
      usage("unexpected argument '" + flag + "'");
    }
  }
  opts.jobs = job_count();
  opts.faults = fault_plan();
  opts.workload = workload_source();
  opts.eval_cache_path = g_eval_cache_path_set
                             ? g_eval_cache_path
                             : util::env_or("SCAL_BENCH_EVAL_CACHE", "");
  return opts;
}

obs::TelemetryConfig parse_telemetry_cli(int argc, char** argv,
                                         const std::string& default_label) {
  return Options::parse(argc, argv, default_label).telemetry;
}

}  // namespace scal::bench
