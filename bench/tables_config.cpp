// Tables 1-5: the paper's configuration tables, printed from the very
// structs the figure benches execute, so the printed values are the
// reproduction's ground truth (not a transcription).

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

void print_case_table(const char* label, const scal::core::ScalingCase& c,
                      const scal::grid::GridConfig& base) {
  using scal::util::Table;
  std::cout << label << ": " << c.name << '\n';
  Table table({"role", "value"});
  table.set_align(1, scal::util::Align::kLeft);
  for (const auto& row : c.scaling_variable_rows()) {
    table.add_row({"Scaling variable", row});
  }
  for (const auto& row : c.enabler_rows()) {
    table.add_row({"Scaling enabler", row});
  }
  table.add_row({"Base network size",
                 std::to_string(base.topology.nodes) + " nodes"});
  table.add_row({"Base clusters", std::to_string(base.cluster_count())});
  table.add_row({"Base mean interarrival",
                 Table::fixed(base.workload.mean_interarrival, 3) +
                     " time units"});
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace scal;
  using util::Table;

  const grid::GridConfig base = bench::case2_base();

  std::cout << "Table 1: Common variables used for all experiments\n";
  Table t1({"variable", "value", "comments"});
  t1.set_align(1, util::Align::kLeft);
  t1.set_align(2, util::Align::kLeft);
  t1.add_row({"T_CPU", Table::fixed(base.protocol.t_cpu, 0) + " time units",
              "jobs with execution time <= T_CPU are LOCAL, else REMOTE"});
  t1.add_row({"T_l", Table::fixed(base.protocol.t_l, 1),
              "threshold load at a scheduler"});
  t1.add_row({"U_b(jobid)", "u x job run time, u ~ U[" +
                                Table::fixed(base.workload.benefit_lo, 0) +
                                ", " +
                                Table::fixed(base.workload.benefit_hi, 0) +
                                "]",
              "user benefit function (success deadline)"});
  t1.add_row({"partition size", "1", "paper Section 3.1"});
  t1.add_row({"job cancellation", "0", "paper Section 3.1"});
  t1.print(std::cout);
  std::cout << '\n';

  print_case_table("Table 2", core::ScalingCase::case1_network_size(),
                   bench::case1_base());
  print_case_table("Table 3", core::ScalingCase::case2_service_rate(),
                   bench::case2_base());
  print_case_table("Table 4", core::ScalingCase::case3_estimators(),
                   bench::case3_base());
  print_case_table("Table 5", core::ScalingCase::case4_neighborhood(),
                   bench::case4_base());
  return 0;
}
