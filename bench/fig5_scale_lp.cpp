// Figure 5: variation in G(k) on scaling the RMS by L_p, the number of
// neighbor schedulers probed or polled (Case 4, Table 5); network size
// 1000 nodes.  The enablers are the update interval, the resource
// volunteering interval, and the link delay.
//
// Paper claims to check against the output:
//   - the probe-on-arrival models (LOWEST, S-I) improve slightly at
//     k = 2 but are no longer scalable for k > 2;
//   - RESERVE is clearly unscalable for k > 3;
//   - the PUSH+PULL models (AUCTION, Sy-I) are scalable after k > 2.

#include "common.hpp"
#include "options.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  const auto opts = bench::Options::parse(argc, argv, "fig5_scale_lp");
  obs::Telemetry telemetry(opts.telemetry);
  bench::run_overhead_figure(
      "fig5_scale_lp", bench::case4_base(),
      bench::procedure_for(core::ScalingCase::case4_neighborhood()),
      opts.telemetry.any_enabled() ? &telemetry : nullptr);
  return 0;
}
