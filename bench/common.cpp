#include "common.hpp"

#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "exec/thread_pool.hpp"
#include "rms/scenario.hpp"
#include "util/env.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace scal::bench {

bool fast_mode() { return util::env_flag("SCAL_BENCH_FAST"); }

std::string csv_dir() { return util::env_or("SCAL_BENCH_CSV", "."); }

namespace {

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(util::env_int("SCAL_BENCH_SEED", 42));
}

grid::GridConfig common_base() {
  grid::GridConfig config;
  config.seed = bench_seed();
  config.horizon = 1500.0;
  config.cluster_size = 20;
  config.estimators_per_cluster = 1;
  config.service_rate = 8.0;
  config.tuning.update_interval = 20.0;
  config.tuning.neighborhood_size = 3;
  config.tuning.volunteer_interval = 60.0;
  config.faults = fault_plan();  // inert unless --faults/env knobs set
  // Default synthetic unless --workload/--swf/--modulate/env knobs set.
  config.workload_source = workload_source();
  // Memory tier (docs/PERFORMANCE.md): full unless the env knob flips
  // the whole bench onto the streaming result path.
  config.result_mode = grid::result_mode_from_string(
      util::env_or("SCAL_BENCH_RESULT_MODE", "full"));
  return config;
}

/// Interarrival time that loads the pool to utilization rho.
double interarrival_for(const grid::GridConfig& config, double rho) {
  const double resources = static_cast<double>(
      config.cluster_count() *
      (config.cluster_size - 1 - config.estimators_per_cluster));
  const double capacity = resources * config.service_rate;
  const double mean_demand = workload::expected_exec_time(config.workload);
  return mean_demand / (rho * capacity);
}

}  // namespace

grid::GridConfig case1_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 120 : 250;
  config.workload.mean_interarrival = interarrival_for(config, 0.85);
  return config;
}

grid::GridConfig case2_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 200 : 1000;
  config.horizon = 1000.0;  // k scales the job count 6x; keep runs bounded
  // Moderate base load: at rho 0.5 the central scheduler's decision +
  // update stream crosses saturation around k ~ 3-4, reproducing the
  // paper's "CENTRAL scalable in [1,3], least scalable by 6" shape.
  config.workload.mean_interarrival = interarrival_for(config, 0.5);
  return config;
}

grid::GridConfig case3_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 200 : 1000;
  // The RP is fixed while the workload scales 6x, so the base must be
  // lightly loaded for the sweep to stay feasible (rho: 0.14 -> 0.85).
  config.workload.mean_interarrival = interarrival_for(config, 0.142);
  return config;
}

grid::GridConfig case4_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 200 : 1000;
  config.tuning.neighborhood_size = 2;  // L_p base; scaled to 12 at k = 6
  config.workload.mean_interarrival = interarrival_for(config, 0.142);
  return config;
}

std::vector<grid::RmsKind> all_rms() {
  return {grid::kAllRmsKinds,
          grid::kAllRmsKinds + std::size(grid::kAllRmsKinds)};
}

core::ProcedureConfig procedure_for(core::ScalingCase scase) {
  core::ProcedureConfig procedure;
  procedure.scase = std::move(scase);
  if (fast_mode()) {
    procedure.scale_factors = {1, 2, 3};
    procedure.tuner.evaluations =
        static_cast<std::size_t>(util::env_int("SCAL_BENCH_EVALS", 4));
    procedure.warm_evaluations = 3;
  } else {
    procedure.scale_factors = {1, 2, 3, 4, 5, 6};
    procedure.tuner.evaluations =
        static_cast<std::size_t>(util::env_int("SCAL_BENCH_EVALS", 24));
    procedure.warm_evaluations = 12;
  }
  // Band widths are per case: the cases whose workload scales against a
  // fixed resource pool (3 and 4) see an intrinsic efficiency drift that
  // the enablers can only partly cancel, so their bands are wider (the
  // calibration note in EXPERIMENTS.md discusses this).
  switch (procedure.scase.variable) {
    case core::ScalingVariableKind::kNetworkSize:
      procedure.tuner.band = 0.03;
      break;
    case core::ScalingVariableKind::kServiceRate:
      procedure.tuner.band = 0.05;
      break;
    case core::ScalingVariableKind::kEstimators:
    case core::ScalingVariableKind::kNeighborhood:
      procedure.tuner.band = 0.06;
      break;
  }
  return procedure;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void print_rms_metrics_table(const grid::GridConfig& base) {
  // Metrics-only telemetry: no artifact paths, so nothing is written —
  // the histograms are read straight off the handle after each run.
  obs::TelemetryConfig tc;
  tc.metrics = true;

  std::ostringstream out;
  out << "Distribution metrics at k = 1 (sim time units; slowdown is a "
         "ratio)\n";
  out << std::left << std::setw(10) << "RMS" << std::right  //
      << std::setw(9) << "wait p50" << std::setw(9) << "p95"
      << std::setw(10) << "resp p50" << std::setw(9) << "p95"
      << std::setw(10) << "slow p95" << std::setw(10) << "queue p95"
      << std::setw(10) << "stale p95" << "\n";
  out << std::fixed << std::setprecision(2);
  for (const grid::RmsKind kind : all_rms()) {
    obs::Telemetry telemetry(tc);
    Scenario(base).rms(kind).telemetry(&telemetry).run();
    obs::HistogramRegistry& h = telemetry.histograms();
    auto p = [&h](const char* name, double q) {
      // histogram() is find-or-create; all five were registered by the
      // run's setup, so lookups here never create.
      return h.histogram(name).percentile(q);
    };
    out << std::left << std::setw(10) << grid::to_string(kind) << std::right
        << std::setw(9) << p("job_wait", 50.0)      //
        << std::setw(9) << p("job_wait", 95.0)      //
        << std::setw(10) << p("job_response", 50.0)  //
        << std::setw(9) << p("job_response", 95.0)  //
        << std::setw(10) << p("job_slowdown", 95.0)  //
        << std::setw(10) << p("sched_queue_depth", 95.0)
        << std::setw(10) << p("status_staleness", 95.0) << "\n";
  }
  std::cout << out.str() << "\n";
}

double calibrate_e0(const grid::GridConfig& base,
                    const core::ScalingCase& scase, double k_mid,
                    obs::Telemetry* telemetry) {
  return Scenario(core::apply_scale(base, scase, k_mid))
      .rms(grid::RmsKind::kLowest)
      .telemetry(telemetry)
      .run()
      .efficiency();
}

std::vector<core::CaseResult> run_overhead_figure(
    const std::string& figure_name, const grid::GridConfig& base,
    core::ProcedureConfig procedure, obs::Telemetry* telemetry) {
  const auto t0 = std::chrono::steady_clock::now();

  // The sweep's worker pool: jobs - 1 workers plus this thread.  The
  // results are bit-identical at any job count (docs/PARALLELISM.md).
  const std::size_t jobs = job_count();
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<exec::ThreadPool>(jobs - 1);
    procedure.pool = pool.get();
  }
  if (telemetry != nullptr) {
    telemetry->manifest().jobs = jobs;
  }

  // Step 1 (paper Figure 1): choose a feasible efficiency to hold.
  // This reference run doubles as the figure's instrumented run.
  const double k_mid =
      procedure.scale_factors[procedure.scale_factors.size() / 2];
  const double e0 = calibrate_e0(base, procedure.scase, k_mid, telemetry);
  procedure.tuner.e0 = e0;
  if (telemetry != nullptr && telemetry->config().anneal_enabled()) {
    procedure.tuner.anneal_log = &telemetry->anneal();
    procedure.tuner.anneal_label = figure_name;
  }
  if (telemetry != nullptr && telemetry->config().metrics_enabled()) {
    // Tuner searches time their evaluations into the run's profiler
    // (logical counts, cache hits included — deterministic at any N).
    procedure.tuner.profiler = &telemetry->profiler();
  }
  std::cout << figure_name << "\n" << procedure.scase.name
            << "\nholding E(k) = " << e0 << " +/- "
            << procedure.tuner.band << " (paper band: [0.38, 0.42]; see "
            << "EXPERIMENTS.md for the calibration note)\n"
            << (jobs > 1 ? "jobs: " + std::to_string(jobs) + "\n" : "")
            << "\n";

  core::ProgressFn progress = [](grid::RmsKind rms, double k,
                                 const core::TuneOutcome& outcome) {
    std::cout << "  " << grid::to_string(rms) << " k=" << k
              << "  G=" << outcome.result.G()
              << "  E=" << outcome.result.efficiency()
              << (outcome.feasible ? "" : "  [band missed]") << "\n";
  };

  // Empty runner = reusable-session backend: each kind's sweep shares an
  // evaluation cache and warm simulation state across its tunes.
  const auto results =
      core::measure_all(base, all_rms(), procedure, {}, progress);

  if (telemetry != nullptr) {
    obs::RunManifest& manifest = telemetry->manifest();
    for (const auto& r : results) {
      for (const auto& p : r.points) {
        manifest.tuner_evaluations += p.tuner_evaluations;
        manifest.tuner_cache_hits += p.tuner_cache_hits;
      }
    }
  }

  std::cout << "\n" << core::render_overhead_chart(results, figure_name)
            << "\n";
  for (const auto& r : results) {
    std::cout << core::render_case_table(r) << "\n";
  }
  std::cout << "Summary\n"
            << core::render_summary_table(results) << "\n";

  if (telemetry != nullptr && telemetry->config().metrics_enabled()) {
    print_rms_metrics_table(base);
  }

  const std::string csv = csv_dir() + "/" + figure_name + ".csv";
  core::write_case_csv(results, csv);
  const auto seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::cout << "series written to " << csv << "  (" << seconds << " s)\n";

  if (telemetry != nullptr) {
    telemetry->manifest().peak_rss_bytes = peak_rss_bytes();
    const obs::TelemetryConfig& tc = telemetry->config();
    if (!telemetry->export_all()) {
      std::cout << "telemetry export incomplete (see warnings above)\n";
    } else {
      if (tc.trace_enabled()) {
        std::cout << "trace written to " << tc.trace_path
                  << "  (load in Perfetto / chrome://tracing)\n";
      }
      if (tc.probe_enabled()) {
        std::cout << "probe series written to " << tc.probe_path << "\n";
      }
      if (tc.manifest_enabled()) {
        std::cout << "run manifest appended to " << tc.manifest_path << "\n";
      }
      if (tc.anneal_enabled()) {
        std::cout << "anneal telemetry written to " << tc.anneal_path << "\n";
      }
    }
  }
  return results;
}

}  // namespace scal::bench
