#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "exec/jobs.hpp"
#include "exec/thread_pool.hpp"
#include "rms/factory.hpp"
#include "util/env.hpp"

namespace scal::bench {

namespace {
/// Set by parse_telemetry_cli (--jobs beats SCAL_JOBS beats 1).
std::size_t g_jobs = 0;
/// Fault knobs from the CLI (beat the SCAL_BENCH_* fallbacks).
std::string g_fault_spec;
bool g_fault_spec_set = false;
double g_mtbf = 0.0;
double g_mttr = 0.0;

double env_real(const std::string& name) {
  const std::string text = util::env_or(name, "");
  if (text.empty()) return 0.0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  return (end != text.c_str() && *end == '\0') ? v : 0.0;
}
}  // namespace

fault::FaultPlan fault_plan() {
  const std::string spec = g_fault_spec_set
                               ? g_fault_spec
                               : util::env_or("SCAL_BENCH_FAULTS", "");
  fault::FaultPlan plan = fault::FaultPlan::parse(spec);
  const double mtbf = g_mtbf > 0.0 ? g_mtbf : env_real("SCAL_BENCH_MTBF");
  const double mttr = g_mttr > 0.0 ? g_mttr : env_real("SCAL_BENCH_MTTR");
  if (mtbf > 0.0) {
    plan.churn.mtbf = mtbf;
    plan.churn.mttr = mttr > 0.0 ? mttr : 40.0;
  } else if (mttr > 0.0 && plan.churn.enabled()) {
    plan.churn.mttr = mttr;
  }
  plan.validate();
  return plan;
}

std::size_t job_count() {
  if (g_jobs == 0) g_jobs = exec::env_jobs(1);
  return g_jobs;
}

obs::TelemetryConfig parse_telemetry_cli(int argc, char** argv,
                                         const std::string& default_label) {
  obs::TelemetryConfig tc;
  tc.probe_interval = 25.0;
  tc.label = default_label;

  auto usage = [&](const std::string& complaint) {
    std::cerr << argv[0] << ": " << complaint << "\n"
              << "usage: " << argv[0]
              << " [--trace PATH] [--probe PATH] [--probe-interval T]\n"
              << "       [--manifest PATH] [--anneal PATH] [--label NAME]\n"
              << "       [--jobs N|hw] [--faults SPEC] [--mtbf T] [--mttr T]\n";
    std::exit(2);
  };
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      usage("missing value for " + std::string(argv[i]));
    }
    return argv[++i];
  };
  auto real_value = [&](int& i) -> double {
    const std::string flag = argv[i];
    const std::string text = value(i);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v <= 0.0) {
      usage(flag + " expects a positive number, got '" + text + "'");
    }
    return v;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trace") {
      tc.trace_path = value(i);
    } else if (flag == "--probe") {
      tc.probe_path = value(i);
    } else if (flag == "--probe-interval") {
      const std::string text = value(i);
      char* end = nullptr;
      tc.probe_interval = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        usage("--probe-interval expects a number, got '" + text + "'");
      }
    } else if (flag == "--manifest") {
      tc.manifest_path = value(i);
    } else if (flag == "--anneal") {
      tc.anneal_path = value(i);
    } else if (flag == "--label") {
      tc.label = value(i);
    } else if (flag == "--jobs") {
      const std::string text = value(i);
      const std::size_t jobs = exec::parse_jobs(text, 0);
      if (jobs == 0) {
        usage("--jobs expects a positive integer or 'hw', got '" + text +
              "'");
      }
      g_jobs = jobs;
    } else if (flag == "--faults") {
      g_fault_spec = value(i);
      g_fault_spec_set = true;
      try {
        fault::FaultPlan::parse(g_fault_spec);
      } catch (const std::exception& e) {
        usage("--faults: " + std::string(e.what()));
      }
    } else if (flag == "--mtbf") {
      g_mtbf = real_value(i);
    } else if (flag == "--mttr") {
      g_mttr = real_value(i);
    } else {
      usage("unexpected argument '" + flag + "'");
    }
  }
  return tc;
}

bool fast_mode() { return util::env_flag("SCAL_BENCH_FAST"); }

std::string csv_dir() { return util::env_or("SCAL_BENCH_CSV", "."); }

namespace {

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(util::env_int("SCAL_BENCH_SEED", 42));
}

grid::GridConfig common_base() {
  grid::GridConfig config;
  config.seed = bench_seed();
  config.horizon = 1500.0;
  config.cluster_size = 20;
  config.estimators_per_cluster = 1;
  config.service_rate = 8.0;
  config.tuning.update_interval = 20.0;
  config.tuning.neighborhood_size = 3;
  config.tuning.volunteer_interval = 60.0;
  config.faults = fault_plan();  // inert unless --faults/env knobs set
  return config;
}

/// Interarrival time that loads the pool to utilization rho.
double interarrival_for(const grid::GridConfig& config, double rho) {
  const double resources = static_cast<double>(
      config.cluster_count() *
      (config.cluster_size - 1 - config.estimators_per_cluster));
  const double capacity = resources * config.service_rate;
  const double mean_demand = workload::expected_exec_time(config.workload);
  return mean_demand / (rho * capacity);
}

}  // namespace

grid::GridConfig case1_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 120 : 250;
  config.workload.mean_interarrival = interarrival_for(config, 0.85);
  return config;
}

grid::GridConfig case2_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 200 : 1000;
  config.horizon = 1000.0;  // k scales the job count 6x; keep runs bounded
  // Moderate base load: at rho 0.5 the central scheduler's decision +
  // update stream crosses saturation around k ~ 3-4, reproducing the
  // paper's "CENTRAL scalable in [1,3], least scalable by 6" shape.
  config.workload.mean_interarrival = interarrival_for(config, 0.5);
  return config;
}

grid::GridConfig case3_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 200 : 1000;
  // The RP is fixed while the workload scales 6x, so the base must be
  // lightly loaded for the sweep to stay feasible (rho: 0.14 -> 0.85).
  config.workload.mean_interarrival = interarrival_for(config, 0.142);
  return config;
}

grid::GridConfig case4_base() {
  grid::GridConfig config = common_base();
  config.topology.nodes = fast_mode() ? 200 : 1000;
  config.tuning.neighborhood_size = 2;  // L_p base; scaled to 12 at k = 6
  config.workload.mean_interarrival = interarrival_for(config, 0.142);
  return config;
}

std::vector<grid::RmsKind> all_rms() {
  return {grid::kAllRmsKinds,
          grid::kAllRmsKinds + std::size(grid::kAllRmsKinds)};
}

core::ProcedureConfig procedure_for(core::ScalingCase scase) {
  core::ProcedureConfig procedure;
  procedure.scase = std::move(scase);
  if (fast_mode()) {
    procedure.scale_factors = {1, 2, 3};
    procedure.tuner.evaluations =
        static_cast<std::size_t>(util::env_int("SCAL_BENCH_EVALS", 4));
    procedure.warm_evaluations = 3;
  } else {
    procedure.scale_factors = {1, 2, 3, 4, 5, 6};
    procedure.tuner.evaluations =
        static_cast<std::size_t>(util::env_int("SCAL_BENCH_EVALS", 24));
    procedure.warm_evaluations = 12;
  }
  // Band widths are per case: the cases whose workload scales against a
  // fixed resource pool (3 and 4) see an intrinsic efficiency drift that
  // the enablers can only partly cancel, so their bands are wider (the
  // calibration note in EXPERIMENTS.md discusses this).
  switch (procedure.scase.variable) {
    case core::ScalingVariableKind::kNetworkSize:
      procedure.tuner.band = 0.03;
      break;
    case core::ScalingVariableKind::kServiceRate:
      procedure.tuner.band = 0.05;
      break;
    case core::ScalingVariableKind::kEstimators:
    case core::ScalingVariableKind::kNeighborhood:
      procedure.tuner.band = 0.06;
      break;
  }
  return procedure;
}

double calibrate_e0(const grid::GridConfig& base,
                    const core::ScalingCase& scase, double k_mid,
                    obs::Telemetry* telemetry) {
  grid::GridConfig reference = core::apply_scale(base, scase, k_mid);
  reference.rms = grid::RmsKind::kLowest;
  reference.telemetry = telemetry;
  const grid::SimulationResult result = rms::simulate(reference);
  return result.efficiency();
}

std::vector<core::CaseResult> run_overhead_figure(
    const std::string& figure_name, const grid::GridConfig& base,
    core::ProcedureConfig procedure, obs::Telemetry* telemetry) {
  const auto t0 = std::chrono::steady_clock::now();

  // The sweep's worker pool: jobs - 1 workers plus this thread.  The
  // results are bit-identical at any job count (docs/PARALLELISM.md).
  const std::size_t jobs = job_count();
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<exec::ThreadPool>(jobs - 1);
    procedure.pool = pool.get();
  }
  if (telemetry != nullptr) {
    telemetry->manifest().jobs = jobs;
  }

  // Step 1 (paper Figure 1): choose a feasible efficiency to hold.
  // This reference run doubles as the figure's instrumented run.
  const double k_mid =
      procedure.scale_factors[procedure.scale_factors.size() / 2];
  const double e0 = calibrate_e0(base, procedure.scase, k_mid, telemetry);
  procedure.tuner.e0 = e0;
  if (telemetry != nullptr && telemetry->config().anneal_enabled()) {
    procedure.tuner.anneal_log = &telemetry->anneal();
    procedure.tuner.anneal_label = figure_name;
  }
  std::cout << figure_name << "\n" << procedure.scase.name
            << "\nholding E(k) = " << e0 << " +/- "
            << procedure.tuner.band << " (paper band: [0.38, 0.42]; see "
            << "EXPERIMENTS.md for the calibration note)\n"
            << (jobs > 1 ? "jobs: " + std::to_string(jobs) + "\n" : "")
            << "\n";

  core::ProgressFn progress = [](grid::RmsKind rms, double k,
                                 const core::TuneOutcome& outcome) {
    std::cout << "  " << grid::to_string(rms) << " k=" << k
              << "  G=" << outcome.result.G()
              << "  E=" << outcome.result.efficiency()
              << (outcome.feasible ? "" : "  [band missed]") << "\n";
  };

  const auto results =
      core::measure_all(base, all_rms(), procedure,
                        core::default_runner(), progress);

  std::cout << "\n" << core::render_overhead_chart(results, figure_name)
            << "\n";
  for (const auto& r : results) {
    std::cout << core::render_case_table(r) << "\n";
  }
  std::cout << "Summary\n"
            << core::render_summary_table(results) << "\n";

  const std::string csv = csv_dir() + "/" + figure_name + ".csv";
  core::write_case_csv(results, csv);
  const auto seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::cout << "series written to " << csv << "  (" << seconds << " s)\n";

  if (telemetry != nullptr) {
    const obs::TelemetryConfig& tc = telemetry->config();
    if (!telemetry->export_all()) {
      std::cout << "telemetry export incomplete (see warnings above)\n";
    } else {
      if (tc.trace_enabled()) {
        std::cout << "trace written to " << tc.trace_path
                  << "  (load in Perfetto / chrome://tracing)\n";
      }
      if (tc.probe_enabled()) {
        std::cout << "probe series written to " << tc.probe_path << "\n";
      }
      if (tc.manifest_enabled()) {
        std::cout << "run manifest appended to " << tc.manifest_path << "\n";
      }
      if (tc.anneal_enabled()) {
        std::cout << "anneal telemetry written to " << tc.anneal_path << "\n";
      }
    }
  }
  return results;
}

}  // namespace scal::bench
