// Ablation: sensitivity of the scalability conclusions to the Mercator
// substitute.  The paper extracted topologies from Mercator Internet
// maps; we generate them.  If the CENTRAL-vs-LOWEST contrast held only
// on one generator family, the reproduction would be fragile — so this
// bench repeats a compressed Case 1 sweep on three different topology
// models and compares the fitted g(k) slopes.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  using util::Table;

  core::ProcedureConfig procedure =
      bench::procedure_for(core::ScalingCase::case1_network_size());
  procedure.scale_factors = {1, 2, 3, 4};
  procedure.tuner.evaluations = bench::fast_mode() ? 4 : 10;
  procedure.warm_evaluations = bench::fast_mode() ? 3 : 6;

  const net::TopologyKind kinds[] = {
      net::TopologyKind::kPreferentialAttachment,
      net::TopologyKind::kTransitStub,
      net::TopologyKind::kWaxman,
  };

  std::cout << "Ablation: topology generator sensitivity (Case 1, "
               "CENTRAL vs LOWEST, k = 1..4)\n\n";
  Table table({"topology", "RMS", "overall dg/dk", "scalable through k",
               "G(1)", "G(4)"});
  for (const net::TopologyKind kind : kinds) {
    grid::GridConfig base = bench::case1_base();
    base.topology.kind = kind;
    procedure.tuner.e0 = bench::calibrate_e0(base, procedure.scase, 2.0);
    const auto results = core::measure_all(
        base, {grid::RmsKind::kCentral, grid::RmsKind::kLowest}, procedure);
    for (const auto& r : results) {
      const auto report = core::analyze(r);
      table.add_row({
          net::to_string(kind),
          grid::to_string(r.rms),
          Table::fixed(report.overall_slope, 3),
          Table::fixed(report.scalable_through, 0),
          Table::fixed(report.G.front(), 1),
          Table::fixed(report.G.back(), 1),
      });
    }
  }
  table.print(std::cout);
  std::cout << "\nThe CENTRAL-vs-LOWEST slope gap should survive every "
               "generator family; absolute\nG values shift with path "
               "lengths, the ordering must not.\n";
  return 0;
}
