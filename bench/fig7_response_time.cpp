// Figure 7: average job response times obtained by scaling the RMS by
// the number of estimators (the Case 3 sweep of Figure 4, reported on
// the response-time axis).
//
// Paper claim to check against the output: response times for AUCTION
// and Sy-I degrade at high k, mirroring their throughput stall in
// Figure 6, while the other models stay flat.  With --metrics the
// per-RMS distribution table adds the wait/response quantiles behind
// those means.

#include <iostream>
#include <memory>

#include "common.hpp"
#include "exec/thread_pool.hpp"
#include "options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  const auto opts = bench::Options::parse(argc, argv, "fig7_response_time");
  obs::Telemetry telemetry(opts.telemetry);
  obs::Telemetry* handle =
      opts.telemetry.any_enabled() ? &telemetry : nullptr;

  auto procedure =
      bench::procedure_for(core::ScalingCase::case3_estimators());
  const grid::GridConfig base = bench::case3_base();

  const std::size_t jobs = bench::job_count();
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<exec::ThreadPool>(jobs - 1);
    procedure.pool = pool.get();
  }
  if (handle != nullptr) handle->manifest().jobs = jobs;

  // The calibration run doubles as the figure's instrumented run.
  procedure.tuner.e0 = bench::calibrate_e0(
      base, procedure.scase,
      procedure.scale_factors[procedure.scale_factors.size() / 2], handle);
  if (handle != nullptr && opts.telemetry.metrics_enabled()) {
    procedure.tuner.profiler = &handle->profiler();
  }
  std::cout << "fig7_response_time\n" << procedure.scase.name
            << " (mean response axis)\n\n";

  const auto results = core::measure_all(base, bench::all_rms(), procedure);

  std::cout << core::render_measure_chart(
                   results, "fig7_response_time", "mean response [time units]",
                   [](const grid::SimulationResult& r) {
                     return r.mean_response;
                   })
            << "\n";
  util::Table table({"RMS", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"});
  for (const auto& r : results) {
    std::vector<std::string> row{grid::to_string(r.rms)};
    for (const auto& p : r.points) {
      row.push_back(util::Table::fixed(p.sim.mean_response, 1));
    }
    while (row.size() < table.cols()) row.push_back("-");
    table.add_row(row);
  }
  table.print(std::cout);

  if (handle != nullptr && opts.telemetry.metrics_enabled()) {
    std::cout << "\n";
    bench::print_rms_metrics_table(base);
  }

  core::write_case_csv(results,
                       bench::csv_dir() + "/fig7_response_time.csv");

  if (handle != nullptr) {
    handle->manifest().peak_rss_bytes = bench::peak_rss_bytes();
    if (!handle->export_all()) {
      std::cout << "telemetry export incomplete (see warnings above)\n";
    }
  }
  return 0;
}
