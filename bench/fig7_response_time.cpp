// Figure 7: average job response times obtained by scaling the RMS by
// the number of estimators (the Case 3 sweep of Figure 4, reported on
// the response-time axis).
//
// Paper claim to check against the output: response times for AUCTION
// and Sy-I degrade at high k, mirroring their throughput stall in
// Figure 6, while the other models stay flat.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  auto procedure =
      bench::procedure_for(core::ScalingCase::case3_estimators());
  const grid::GridConfig base = bench::case3_base();
  procedure.tuner.e0 = bench::calibrate_e0(
      base, procedure.scase,
      procedure.scale_factors[procedure.scale_factors.size() / 2]);
  std::cout << "fig7_response_time\n" << procedure.scase.name
            << " (mean response axis)\n\n";

  const auto results = core::measure_all(base, bench::all_rms(), procedure);

  std::cout << core::render_measure_chart(
                   results, "fig7_response_time", "mean response [time units]",
                   [](const grid::SimulationResult& r) {
                     return r.mean_response;
                   })
            << "\n";
  util::Table table({"RMS", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"});
  for (const auto& r : results) {
    std::vector<std::string> row{grid::to_string(r.rms)};
    for (const auto& p : r.points) {
      row.push_back(util::Table::fixed(p.sim.mean_response, 1));
    }
    while (row.size() < table.cols()) row.push_back("-");
    table.add_row(row);
  }
  table.print(std::cout);
  core::write_case_csv(results,
                       bench::csv_dir() + "/fig7_response_time.csv");
  return 0;
}
