// Extension experiment: the full Step 2 of the measurement procedure —
// search the best RP scaling path (mix of network-size and service-rate
// growth) per RMS instead of pinning one direction.  Prediction from
// the framework: CENTRAL, whose decision cost grows with the pool size,
// should steer its best path toward service-rate growth, while a
// distributed RMS can afford node growth.
//
// --eval-cache PATH persists the tuner's memoized evaluations across
// processes (core/eval_store.hpp); a re-run over the same configuration
// space answers its evaluations from disk, byte-identically.

#include <iostream>

#include "common.hpp"
#include "core/eval_store.hpp"
#include "core/path_search.hpp"
#include "options.hpp"
#include "rms/session.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const auto opts = bench::Options::parse(argc, argv, "ext_path_search");

  grid::GridConfig base = bench::case1_base();
  base.topology.nodes = bench::fast_mode() ? 120 : 200;

  core::PathSearchConfig search;
  search.scale_factors = bench::fast_mode()
                             ? std::vector<double>{1, 2}
                             : std::vector<double>{1, 2, 3, 4};
  search.splits = {0.0, 0.5, 1.0};
  search.tuner.evaluations = bench::fast_mode() ? 4 : 8;
  search.tuner.band = 0.05;
  search.tuner.e0 = bench::calibrate_e0(
      base, core::ScalingCase::case1_network_size(), 2.0);

  // One evaluation cache and session pool across all three RMS kinds:
  // the per-kind config digests keep their entries disjoint, but a
  // single table is what the persistent store saves and reloads.
  core::EvalCache cache;
  rms::SessionPool sessions;
  search.tuner.cache = &cache;
  search.tuner.sessions = &sessions;

  if (!opts.eval_cache_path.empty()) {
    const core::EvalStoreStats warm =
        core::load_eval_cache(cache, opts.eval_cache_path);
    if (warm.version_mismatch) {
      std::cout << "eval-cache: " << opts.eval_cache_path
                << " is stale (version/format mismatch), starting cold\n";
    } else if (warm.found) {
      std::cout << "eval-cache: preloaded " << warm.loaded
                << " entries from " << opts.eval_cache_path << "\n";
    } else {
      std::cout << "eval-cache: " << opts.eval_cache_path
                << " not found, starting cold\n";
    }
  }

  std::cout << "ext_path_search: Step 2 in full — best RP scaling path "
               "per RMS\nsplit r: pool grows k^r in nodes, k^(1-r) in "
               "service rate (capacity always x k)\n\n";

  Table table({"RMS", "split @k2", "split @kmax", "G(kmax)",
               "RP scalable", "through k"});
  for (const grid::RmsKind kind :
       {grid::RmsKind::kCentral, grid::RmsKind::kLowest,
        grid::RmsKind::kSymmetric}) {
    const core::PathResult result =
        core::search_scaling_path(base, kind, search);
    const auto& mid = result.points[1];
    const auto& last = result.points.back();
    table.add_row({
        grid::to_string(kind),
        Table::fixed(mid.split, 1),
        Table::fixed(last.split, 1),
        Table::fixed(last.outcome.result.G(), 1),
        result.rp_scalable ? "yes" : "NO",
        Table::fixed(result.scalable_through, 0),
    });
    std::cout << core::render_case_table(result.as_case_result(kind))
              << "\n";
  }
  std::cout << "Best-path summary\n" << table.to_string();
  std::cout << "\neval-cache disk: " << cache.disk_hits()
            << " evaluations answered from " << cache.preloaded()
            << " preloaded entries\n";
  if (!opts.eval_cache_path.empty()) {
    const std::size_t written =
        core::save_eval_cache(cache, opts.eval_cache_path);
    std::cout << "eval-cache: saved " << written << " entries to "
              << opts.eval_cache_path << "\n";
  }
  std::cout << "\nr -> 0 means the search steered growth away from node "
               "count — the framework\nidentifying which scaling "
               "dimension the manager tolerates (paper Section 5 (c)).\n";
  return 0;
}
