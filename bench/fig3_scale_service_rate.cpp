// Figure 3: variation in G(k) on scaling the RP by resource service
// rate (Case 2, Table 3); network size fixed at 1000 nodes.
//
// Paper claims to check against the output:
//   - CENTRAL is more scalable than the majority of the distributed
//     models for k in [1, 3];
//   - CENTRAL's overhead keeps increasing and it is the least scalable
//     RMS by k = 6;
//   - LOWEST is the most scalable of all models.

#include "common.hpp"
#include "options.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  const auto opts = bench::Options::parse(argc, argv, "fig3_scale_service_rate");
  obs::Telemetry telemetry(opts.telemetry);
  bench::run_overhead_figure(
      "fig3_scale_service_rate", bench::case2_base(),
      bench::procedure_for(core::ScalingCase::case2_service_rate()),
      opts.telemetry.any_enabled() ? &telemetry : nullptr);
  return 0;
}
