// Perf smoke suite: the standing fixed-seed benchmark that gives every
// PR a perf trajectory (docs/PERFORMANCE.md).  Three micro kernels
// (event churn, cancel churn, routing) plus one Case-1 macro point per
// RMS kind, all serial, all deterministic in their pinned seeds.  Emits
// machine-readable BENCH_<label>.json with ns/item, items/s, wall time,
// and peak RSS; tools/check_perf_regression.py compares two such files.
//
//   ./perf_smoke [--label NAME]      # writes $SCAL_BENCH_CSV/BENCH_NAME.json
//
// A spin-loop calibration sample is included so the regression checker
// can normalize away machine-speed differences between the committed
// baseline's host and the current one.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/eval_store.hpp"
#include "core/tuner.hpp"
#include "ctrl/aggregator.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/tree_cache.hpp"
#include "options.hpp"
#include "rms/scenario.hpp"
#include "rms/session.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/arrival_cache.hpp"
#include "workload/source.hpp"

namespace {

using namespace scal;

struct Sample {
  std::string name;
  std::uint64_t items = 0;  ///< deterministic work count (events, queries)
  double wall_seconds = 0.0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time; the work count must be identical each rep.
template <typename Fn>
Sample timed(const std::string& name, int reps, Fn&& body) {
  Sample best;
  best.name = name;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    const std::uint64_t items = body();
    const double wall = now_seconds() - t0;
    if (r == 0 || wall < best.wall_seconds) best.wall_seconds = wall;
    best.items = items;
  }
  return best;
}

/// Fixed arithmetic spin: a machine-speed yardstick, not a kernel.
Sample calibration_spin() {
  return timed("calibration_spin", 5, [] {
    volatile std::uint64_t sink = 0;
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    constexpr std::uint64_t kIters = 50'000'000;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    sink = x;
    (void)sink;
    return kIters;
  });
}

/// Self-replenishing timer chains through the full Simulator dispatch
/// path — the hot loop of every simulation in the repo.
Sample event_churn() {
  constexpr std::uint64_t kEvents = 1'000'000;
  constexpr std::size_t kChains = 64;
  return timed("event_churn", 5, [] {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::function<void()> tick = [&] {
      ++fired;
      if (fired + kChains <= kEvents) sim.schedule_in(1.0, tick);
    };
    for (std::size_t i = 0; i < kChains; ++i) sim.schedule_in(1.0, tick);
    sim.run();
    return sim.dispatched_events();
  });
}

/// The watchdog pattern: every fired event schedules a far-future decoy
/// and cancels the previous one, exercising push + O(log n) heap erase.
Sample event_cancel_churn() {
  constexpr std::uint64_t kEvents = 500'000;
  return timed("event_cancel_churn", 5, [] {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    sim::EventId decoy = 0;
    bool armed = false;
    std::function<void()> tick = [&] {
      ++fired;
      if (armed) sim.cancel(decoy);
      decoy = sim.schedule_in(1e6, [] {});
      armed = true;
      if (fired < kEvents) sim.schedule_in(1.0, tick);
    };
    sim.schedule_in(1.0, tick);
    sim.run();
    return fired;
  });
}

/// Router delay queries on the Case-1 topology: a cold pass that grows
/// the lazy shortest-path trees, then the hot pass the schedulers hit
/// every update interval (same few (src, dst) pairs over and over).
Sample routing_queries() {
  net::TopologyConfig tc;
  tc.nodes = 250;
  util::RandomStream rng(42, "perf-smoke-topology");
  const net::Graph graph = net::generate_topology(tc, rng);
  // Reps are ~10ms each: take a deep best-of so the minimum converges
  // (this sample showed the widest run-to-run spread).
  return timed("routing_queries", 9, [&] {
    net::Router router(graph);
    std::uint64_t queries = 0;
    for (std::size_t src = 0; src < tc.nodes; src += 5) {
      for (std::size_t dst = 0; dst < tc.nodes; dst += 7) {
        if (src == dst) continue;
        (void)router.delay(static_cast<net::NodeId>(src),
                           static_cast<net::NodeId>(dst), 1.0);
        ++queries;
      }
    }
    constexpr std::uint64_t kHot = 1'000'000;
    for (std::uint64_t i = 0; i < kHot; ++i) {
      const auto src = static_cast<net::NodeId>((i * 37) % 64);
      const auto dst = static_cast<net::NodeId>(100 + (i * 11) % 64);
      (void)router.delay(src, dst, 1.0);
    }
    return queries + kHot;
  });
}

/// The routing_queries cold pass again, but across 8 routers sharing
/// one topology through the process-wide SharedTreeCache — the
/// SessionPool shape, where sibling slots route over identical graphs.
/// The first router settles and publishes each source tree; the other
/// seven adopt the snapshots instead of re-running Dijkstra, so the
/// gated ns/query tracks the sharing layer's whole win + overhead.
Sample shared_tree_sweep() {
  net::TopologyConfig tc;
  tc.nodes = 250;
  util::RandomStream rng(42, "perf-smoke-topology");
  const net::Graph graph = net::generate_topology(tc, rng);
  const auto key = net::graph_digest(graph);
  constexpr std::size_t kRouters = 8;
  Sample sample = timed("shared_tree_sweep", 9, [&] {
    // Each rep starts from an empty shared cache so the publish cost is
    // timed alongside the adoption savings.
    net::SharedTreeCache::instance().clear();
    std::uint64_t queries = 0;
    for (std::size_t r = 0; r < kRouters; ++r) {
      net::Router router(graph);
      router.enable_tree_sharing(key);
      for (std::size_t src = 0; src < tc.nodes; src += 5) {
        for (std::size_t dst = 0; dst < tc.nodes; dst += 7) {
          if (src == dst) continue;
          (void)router.delay(static_cast<net::NodeId>(src),
                             static_cast<net::NodeId>(dst), 1.0);
          ++queries;
        }
      }
    }
    return queries;
  });
  net::SharedTreeCache::instance().clear();  // keep the macros cold
  return sample;
}

/// A two-level aggregation chain under steady update churn: rotating
/// resource ids keep the coalescing scan, the batch flushes, and the
/// flush timers all hot.  ns/update through the ctrl tree's full
/// ingest -> absorb -> forward path.
Sample aggregation_churn() {
  constexpr std::uint64_t kUpdates = 400'000;
  return timed("aggregation_churn", 5, [] {
    sim::Simulator sim;
    std::uint64_t delivered = 0;
    ctrl::Aggregator root(
        sim, 1, /*node=*/0, /*process_cost=*/0.0005, /*forward_cost=*/0.002,
        [&](std::vector<grid::StatusUpdate> ups) { delivered += ups.size(); });
    ctrl::Aggregator leaf(
        sim, 2, /*node=*/1, 0.0005, 0.002,
        [&](std::vector<grid::StatusUpdate> ups) {
          root.ingest(std::move(ups));
        });
    root.configure(/*max_batch=*/32, /*flush_interval=*/2.0);
    leaf.configure(/*max_batch=*/16, /*flush_interval=*/1.0);
    std::uint64_t fed = 0;
    std::function<void()> tick = [&] {
      grid::StatusUpdate u;
      u.cluster = 0;
      u.resource = static_cast<grid::ResourceIndex>(fed % 8);
      u.load = static_cast<double>(fed % 7);
      u.stamp = sim.now();
      leaf.ingest({u});
      if (++fed < kUpdates) sim.schedule_in(0.01, tick);
    };
    sim.schedule_in(0.01, tick);
    sim.run();
    (void)delivered;
    return fed;
  });
}

/// The workload shape used by both workload-generation samples: a
/// Case-1-like stream with every knob pinned (case1_base's interarrival
/// depends on SCAL_BENCH_FAST, so it is fixed here instead).
workload::WorkloadConfig perf_workload() {
  workload::WorkloadConfig wl;
  wl.mean_interarrival = 0.4;  // ~3750 jobs per seed over the horizon
  wl.clusters = 12;            // representative Case-1 cluster count
  return wl;
}

/// Cold arrival-stream synthesis through the source layer: build the
/// full source stack and drain it to the horizon across distinct seeds
/// (no cache involved).  ns/job of workload generation — the cost the
/// ArrivalCache takes off every structural rebuild.
Sample workload_generation() {
  const workload::WorkloadConfig wl = perf_workload();
  constexpr double kHorizon = 1500.0;
  constexpr std::uint64_t kSeeds = 16;
  return timed("workload_generation", 5, [&] {
    std::uint64_t jobs = 0;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      jobs += workload::make_source(workload::SourceSpec{}, wl, 1000 + s,
                                    kHorizon)
                  ->generate_until(kHorizon)
                  .size();
    }
    return jobs;
  });
}

/// The same streams recalled from a primed ArrivalCache: ns/job of a
/// warm structural rebuild's arrival path.  The cold/warm ratio is the
/// memoization speedup reported below and gated in CI.
Sample workload_generation_warm() {
  const workload::WorkloadConfig wl = perf_workload();
  constexpr double kHorizon = 1500.0;
  constexpr std::uint64_t kSeeds = 16;
  const workload::SourceSpec spec;
  auto key = [](std::uint64_t s) {
    return workload::ArrivalCache::Key{0xC0FFEEull, s};
  };
  workload::ArrivalCache::instance().clear();
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    workload::cached_arrivals(key(s), spec, wl, 1000 + s, kHorizon);
  }
  // Many rounds per rep: one recall is sub-microsecond, so the timed
  // body is stretched until clock jitter is negligible for the gate.
  constexpr std::uint64_t kRounds = 4096;
  Sample sample = timed("workload_generation_warm", 5, [&] {
    std::uint64_t jobs = 0;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      for (std::uint64_t s = 0; s < kSeeds; ++s) {
        jobs +=
            workload::cached_arrivals(key(s), spec, wl, 1000 + s, kHorizon)
                .jobs->size();
      }
    }
    return jobs;
  });
  workload::ArrivalCache::instance().clear();  // keep the macros cold
  return sample;
}

/// Warm-start cost of the persistent EvalCache: serialize a synthetic
/// 512-entry cache once, then time repeated load-from-disk passes into
/// fresh caches (parse + preload, the whole warm-start path a tuner
/// bench pays before its first evaluation).  ns/entry loaded.
Sample eval_cache_warm_disk() {
  constexpr std::size_t kEntries = 512;
  constexpr std::uint64_t kRounds = 64;
  const std::string store = bench::csv_dir() + "/perf_smoke.evc";
  const std::string version = "perf-smoke";  // pinned: no git dependence
  core::EvalCache source;
  util::RandomStream rng(42, "perf-smoke-eval-cache");
  for (std::size_t i = 0; i < kEntries; ++i) {
    opt::EvalKey key;
    key.digest = {0xE7A1ull + i, 0xBEEFull * (i + 1)};
    key.point = {rng.uniform(), rng.uniform(), rng.uniform()};
    grid::SimulationResult value;
    value.F = rng.uniform() * 1000.0;
    value.G_scheduler = rng.uniform() * 100.0;
    value.jobs_arrived = i;
    source.preload(key, value);
  }
  core::save_eval_cache(source, store, version);
  Sample sample = timed("eval_cache_warm_disk", 5, [&] {
    std::uint64_t loaded = 0;
    for (std::uint64_t round = 0; round < kRounds; ++round) {
      core::EvalCache warm;
      loaded += core::load_eval_cache(warm, store, version).loaded;
    }
    return loaded;
  });
  std::error_code ec;
  std::filesystem::remove(store, ec);  // scratch file, not an artifact
  return sample;
}

/// One full Case-1 simulation per RMS kind (the fig2 k=1 point), the
/// end-to-end number the 1.5x acceptance gate is measured on.
std::vector<Sample> case1_macro() {
  grid::GridConfig base = bench::case1_base();
  base.topology.nodes = 250;  // pin against SCAL_BENCH_FAST
  base.seed = 42;             // pin against SCAL_BENCH_SEED
  std::vector<Sample> samples;
  for (const grid::RmsKind kind : bench::all_rms()) {
    samples.push_back(timed("case1_" + grid::to_string(kind), 3, [&] {
      return Scenario(base).rms(kind).run().events_dispatched;
    }));
  }
  return samples;
}

/// A small tune_enablers per RMS kind through the production path —
/// evaluation cache plus reusable-session backend — so the tuner layer
/// itself has a standing perf trajectory.  The fixed E0 keeps it free of
/// calibration simulations; items are the summed logical evaluations,
/// which are deterministic in the pinned seeds.
Sample tuned_sweep() {
  grid::GridConfig base = bench::case1_base();
  base.topology.nodes = 250;  // pin against SCAL_BENCH_FAST
  base.seed = 42;             // pin against SCAL_BENCH_SEED
  const core::ScalingCase scase = core::ScalingCase::case1_network_size();
  return timed("tuned_sweep_total", 2, [&] {
    std::uint64_t evaluations = 0;
    // Fresh cache + sessions per rep: this times the warm-up too.
    core::EvalCache cache;
    rms::SessionPool sessions;
    core::TunerConfig tuner;
    tuner.e0 = 0.40;
    tuner.band = 0.03;
    tuner.evaluations = 6;
    tuner.restarts = 2;
    tuner.cache = &cache;
    tuner.sessions = &sessions;
    for (const grid::RmsKind kind : bench::all_rms()) {
      grid::GridConfig config = base;
      config.rms = kind;
      const core::TuneOutcome outcome = core::tune_enablers(
          config, scase, tuner, {}, config.tuning);
      evaluations += outcome.evaluations;
    }
    return evaluations;
  });
}

/// The streaming tier's standing ns/job sample: a Case-1 LOWEST run in
/// result_mode=streaming with the horizon stretched to ~250k jobs —
/// large enough that the pull-based arrival path and the online result
/// fold dominate, small enough for the smoke budget.  Items are jobs
/// arrived (deterministic in the pinned seed); the committed baseline
/// gates ns/job drift on the million-job path.
Sample streaming_million() {
  grid::GridConfig base = bench::case1_base();
  base.topology.nodes = 250;  // pin against SCAL_BENCH_FAST
  base.seed = 42;             // pin against SCAL_BENCH_SEED
  base.result_mode = grid::ResultMode::kStreaming;
  constexpr std::uint64_t kTargetJobs = 250'000;
  base.horizon =
      static_cast<double>(kTargetJobs) * base.workload.mean_interarrival;
  return timed("streaming_million", 2, [&] {
    return Scenario(base).rms(grid::RmsKind::kLowest).run().jobs_arrived;
  });
}

/// The Case-1 LOWEST macro point again, with --metrics instrumentation
/// live (histogram probes + phase profiler, no file exports): the
/// overhead sample the perf gate holds under 5% of the plain macro.
Sample case1_profiled() {
  grid::GridConfig base = bench::case1_base();
  base.topology.nodes = 250;  // pin against SCAL_BENCH_FAST
  base.seed = 42;             // pin against SCAL_BENCH_SEED
  return timed("case1_LOWEST_profiled", 3, [&] {
    obs::TelemetryConfig tc;
    tc.metrics = true;
    obs::Telemetry telemetry(tc);
    return Scenario(base)
        .rms(grid::RmsKind::kLowest)
        .telemetry(&telemetry)
        .run()
        .events_dispatched;
  });
}

/// One fully instrumented LOWEST run (metrics + trace + manifest),
/// exported next to the BENCH json so CI can upload the artifacts.
/// Not timed — this is the artifact producer, not a sample.
void export_instrumented_run(const std::string& label) {
  grid::GridConfig base = bench::case1_base();
  base.topology.nodes = 250;
  base.seed = 42;
  obs::TelemetryConfig tc;
  tc.metrics = true;
  tc.label = label;
  tc.trace_path = bench::csv_dir() + "/" + label + ".trace.json";
  tc.manifest_path = bench::csv_dir() + "/" + label + ".manifest.jsonl";
  obs::Telemetry telemetry(tc);
  Scenario(base).rms(grid::RmsKind::kLowest).telemetry(&telemetry).run();
  telemetry.manifest().peak_rss_bytes = bench::peak_rss_bytes();
  if (!telemetry.export_all()) {
    std::cerr << "warning: instrumented-run export incomplete\n";
    return;
  }
  std::cout << "instrumented run artifacts: " << tc.trace_path << ", "
            << tc.manifest_path << "\n";
}

bool write_json(const std::string& path, const std::string& label,
                const std::vector<Sample>& samples) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // errors surface below
  }
  std::ofstream out(path);
  out.precision(9);
  out << "{\n  \"schema\": 1,\n  \"label\": \"" << label << "\",\n"
      << "  \"peak_rss_bytes\": " << bench::peak_rss_bytes() << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    const double per_item_ns =
        s.items > 0 ? 1e9 * s.wall_seconds / static_cast<double>(s.items)
                    : 0.0;
    const double per_second =
        s.wall_seconds > 0.0 ? static_cast<double>(s.items) / s.wall_seconds
                             : 0.0;
    out << "    {\"name\": \"" << s.name << "\", \"items\": " << s.items
        << ", \"wall_seconds\": " << s.wall_seconds
        << ", \"ns_per_item\": " << per_item_ns
        << ", \"items_per_second\": " << per_second << "}"
        << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::Options::parse(argc, argv, "perf_smoke");

  std::vector<Sample> samples;
  samples.push_back(calibration_spin());
  samples.push_back(event_churn());
  samples.push_back(event_cancel_churn());
  samples.push_back(routing_queries());
  samples.push_back(shared_tree_sweep());
  samples.push_back(aggregation_churn());
  samples.push_back(workload_generation());
  samples.push_back(workload_generation_warm());
  samples.push_back(eval_cache_warm_disk());
  double macro_total = 0.0;
  std::uint64_t macro_events = 0;
  for (Sample& s : case1_macro()) {
    macro_total += s.wall_seconds;
    macro_events += s.items;
    samples.push_back(std::move(s));
  }
  samples.push_back(Sample{"case1_sweep_total", macro_events, macro_total});
  samples.push_back(streaming_million());
  samples.push_back(tuned_sweep());
  samples.push_back(case1_profiled());

  util::Table table({"benchmark", "items", "wall (s)", "ns/item"});
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);
  for (const Sample& s : samples) {
    table.add_row({s.name, std::to_string(s.items),
                   util::Table::fixed(s.wall_seconds, 4),
                   util::Table::fixed(
                       s.items > 0 ? 1e9 * s.wall_seconds /
                                         static_cast<double>(s.items)
                                   : 0.0,
                       1)});
  }
  table.print(std::cout);

  // Instrumentation overhead readout: profiled vs plain LOWEST macro.
  double plain_ns = 0.0;
  double profiled_ns = 0.0;
  double gen_cold_ns = 0.0;
  double gen_warm_ns = 0.0;
  for (const Sample& s : samples) {
    if (s.items == 0) continue;
    const double ns = 1e9 * s.wall_seconds / static_cast<double>(s.items);
    if (s.name == "case1_LOWEST") plain_ns = ns;
    if (s.name == "case1_LOWEST_profiled") profiled_ns = ns;
    if (s.name == "workload_generation") gen_cold_ns = ns;
    if (s.name == "workload_generation_warm") gen_warm_ns = ns;
  }
  if (plain_ns > 0.0 && profiled_ns > 0.0) {
    std::cout << "\nmetrics overhead on case1_LOWEST: "
              << util::Table::fixed((profiled_ns / plain_ns - 1.0) * 100.0, 2)
              << "% per event (gate: tools/check_perf_regression.py)\n";
  }
  // Memoization readout: what the ArrivalCache takes off a structural
  // rebuild's arrival path (cold synthesis vs warm recall, ns/job).
  if (gen_cold_ns > 0.0 && gen_warm_ns > 0.0) {
    std::cout << "arrival-cache speedup on workload_generation: "
              << util::Table::fixed(gen_cold_ns / gen_warm_ns, 1)
              << "x (cold " << util::Table::fixed(gen_cold_ns, 1)
              << " ns/job -> warm " << util::Table::fixed(gen_warm_ns, 2)
              << " ns/job)\n";
  }

  export_instrumented_run(opts.telemetry.label);

  const std::string path =
      bench::csv_dir() + "/BENCH_" + opts.telemetry.label + ".json";
  if (!write_json(path, opts.telemetry.label, samples)) {
    std::cerr << "\nerror: could not write " << path << "\n";
    return 1;
  }
  std::cout << "\nresults written to " << path << "\n";
  return 0;
}
