// Ablation: the enabler-tuning search.  The paper uses simulated
// annealing to pick the scaling enablers that minimize G(k) subject to
// the efficiency band; this bench compares SA against random search and
// grid search at the same simulation budget, at the Case 2 base for the
// reference RMS (LOWEST).
//
// With --eval-cache PATH the tuner's memoized evaluations persist
// across processes: the file is preloaded before the searches and
// rewritten after, so a re-run is warm from disk.  The result CSV
// (ablation_tuner.csv) carries only deterministic columns, so warm and
// cold runs produce byte-identical files — the CI round-trip job
// asserts exactly that.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/eval_store.hpp"
#include "net/tree_cache.hpp"
#include "options.hpp"
#include "opt/search.hpp"
#include "rms/session.hpp"
#include "util/table.hpp"

namespace {

std::string full_precision(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const auto opts = bench::Options::parse(argc, argv, "ablation_tuner");
  obs::Telemetry telemetry(opts.telemetry);

  grid::GridConfig base = bench::case2_base();
  base.rms = grid::RmsKind::kLowest;
  const core::ScalingCase scase = core::ScalingCase::case2_service_rate();

  core::TunerConfig tuner;
  tuner.evaluations = bench::fast_mode() ? 8 : 27;
  tuner.e0 = bench::calibrate_e0(base, scase, 1.0);
  tuner.band = 0.03;
  if (telemetry.config().anneal_enabled()) {
    tuner.anneal_log = &telemetry.anneal();
  }
  // One evaluation cache and session pool span both SA arms (the second
  // arm re-probes points the first already simulated); the non-tuner
  // searches below get the same warm-session treatment so the comparison
  // stays budget-fair in wall-clock too.
  core::EvalCache cache;
  rms::SessionPool sessions;
  tuner.cache = &cache;
  tuner.sessions = &sessions;

  if (!opts.eval_cache_path.empty()) {
    const core::EvalStoreStats warm =
        core::load_eval_cache(cache, opts.eval_cache_path);
    if (warm.version_mismatch) {
      std::cout << "eval-cache: " << opts.eval_cache_path
                << " is stale (version/format mismatch), starting cold\n";
    } else if (warm.found) {
      std::cout << "eval-cache: preloaded " << warm.loaded
                << " entries from " << opts.eval_cache_path << "\n";
    } else {
      std::cout << "eval-cache: " << opts.eval_cache_path
                << " not found, starting cold\n";
    }
  }

  std::cout << "Ablation: enabler search strategies (LOWEST, Case 2 base, "
            << "budget " << tuner.evaluations << " evaluations, E0="
            << tuner.e0 << ")\n\n";

  const opt::Space space = core::enabler_space(scase);
  rms::SimulationSession search_session;
  auto objective = [&](const opt::Point& point) {
    grid::GridConfig candidate = base;
    candidate.tuning = core::tuning_from_point(scase, base.tuning, point);
    return core::penalized_objective(search_session.run(candidate), tuner);
  };

  std::size_t tuner_evaluations = 0;
  std::size_t tuner_hits = 0;
  Table table({"search", "best objective", "evaluations", "cache hits"});
  // Deterministic rows for the persisted CSV: search name, objective at
  // full precision, evaluation count.  Cache-hit counts stay out — they
  // differ warm vs. cold by design.
  std::vector<std::string> csv_rows;

  {  // Simulated annealing (the paper's choice), via the real tuner.
    tuner.anneal_label = "sa";
    const auto outcome = core::tune_enablers(base, scase, tuner, {});
    tuner_evaluations += outcome.evaluations;
    tuner_hits += outcome.cache_hits;
    table.add_row({"simulated annealing",
                   Table::fixed(outcome.objective, 2),
                   std::to_string(outcome.evaluations),
                   std::to_string(outcome.cache_hits)});
    csv_rows.push_back("sa," + full_precision(outcome.objective) + "," +
                       std::to_string(outcome.evaluations));
  }
  {  // SA as the sweeps actually run it: anchored on the default tuning
     // (the warm-start role the k-chain plays).
    tuner.anneal_label = "sa-anchored";
    const auto outcome =
        core::tune_enablers(base, scase, tuner, {}, base.tuning);
    tuner_evaluations += outcome.evaluations;
    tuner_hits += outcome.cache_hits;
    table.add_row({"simulated annealing (anchored)",
                   Table::fixed(outcome.objective, 2),
                   std::to_string(outcome.evaluations),
                   std::to_string(outcome.cache_hits)});
    csv_rows.push_back("sa_anchored," + full_precision(outcome.objective) +
                       "," + std::to_string(outcome.evaluations));
  }
  {
    util::RandomStream rng(base.seed, "ablation-random-search");
    const auto r = opt::random_search(space, objective, tuner.evaluations,
                                      rng);
    table.add_row({"random search", Table::fixed(r.best_value, 2),
                   std::to_string(r.evaluations), "-"});
    csv_rows.push_back("random," + full_precision(r.best_value) + "," +
                       std::to_string(r.evaluations));
  }
  {
    // 3 levels per dimension =~ the same budget for 3 enablers.
    const auto r = opt::grid_search(space, objective, 3);
    table.add_row({"grid search (3/dim)", Table::fixed(r.best_value, 2),
                   std::to_string(r.evaluations), "-"});
    csv_rows.push_back("grid," + full_precision(r.best_value) + "," +
                       std::to_string(r.evaluations));
  }
  table.print(std::cout);
  std::cout << "\nevaluation cache: " << tuner_hits << "/"
            << tuner_evaluations << " tuner evaluations answered ("
            << Table::fixed(tuner_evaluations > 0
                                ? 100.0 * static_cast<double>(tuner_hits) /
                                      static_cast<double>(tuner_evaluations)
                                : 0.0,
                            1)
            << "% hit rate, " << tuner_hits << " simulations avoided)\n";
  std::cout << "eval-cache disk: " << cache.disk_hits()
            << " evaluations answered from " << cache.preloaded()
            << " preloaded entries\n";

  const std::string csv_path = bench::csv_dir() + "/ablation_tuner.csv";
  {
    std::ofstream csv(csv_path, std::ios::trunc);
    csv << "search,best_objective,evaluations\n";
    for (const std::string& row : csv_rows) csv << row << "\n";
  }
  std::cout << "series written to " << csv_path << "\n";

  if (!opts.eval_cache_path.empty()) {
    const std::size_t written =
        core::save_eval_cache(cache, opts.eval_cache_path);
    std::cout << "eval-cache: saved " << written << " entries to "
              << opts.eval_cache_path << "\n";
  }

  std::cout << "\nLower objective = lower G(k) inside the efficiency band.\n"
               "At cold-start micro budgets, independent sampling is a "
               "strong baseline; the\nsweeps run SA anchored on the "
               "previous scale point's optimum, where its local\n"
               "refinement is what keeps the k-chain smooth.\n";
  if (telemetry.config().any_enabled()) {
    if (telemetry.config().manifest_enabled()) {
      obs::RunManifest& manifest = telemetry.manifest();
      const net::SharedTreeCache& trees = net::SharedTreeCache::instance();
      manifest.reuse_enabled = true;
      manifest.reuse_tree_shares = trees.shares();
      manifest.reuse_tree_publishes = trees.publishes();
      manifest.reuse_inflight_waits = cache.in_flight_waits();
      manifest.reuse_disk_hits = cache.disk_hits();
      manifest.reuse_disk_entries = cache.preloaded();
    }
    if (!telemetry.export_all()) {
      std::cout << "\ntelemetry export incomplete (see warnings above)\n";
    } else if (telemetry.config().anneal_enabled()) {
      std::cout << "\nanneal telemetry written to "
                << telemetry.config().anneal_path << "\n";
    }
  }
  return 0;
}
