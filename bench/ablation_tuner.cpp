// Ablation: the enabler-tuning search.  The paper uses simulated
// annealing to pick the scaling enablers that minimize G(k) subject to
// the efficiency band; this bench compares SA against random search and
// grid search at the same simulation budget, at the Case 2 base for the
// reference RMS (LOWEST).

#include <iostream>

#include "common.hpp"
#include "options.hpp"
#include "opt/search.hpp"
#include "rms/session.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const auto opts = bench::Options::parse(argc, argv, "ablation_tuner");
  obs::Telemetry telemetry(opts.telemetry);

  grid::GridConfig base = bench::case2_base();
  base.rms = grid::RmsKind::kLowest;
  const core::ScalingCase scase = core::ScalingCase::case2_service_rate();

  core::TunerConfig tuner;
  tuner.evaluations = bench::fast_mode() ? 8 : 27;
  tuner.e0 = bench::calibrate_e0(base, scase, 1.0);
  tuner.band = 0.03;
  if (telemetry.config().anneal_enabled()) {
    tuner.anneal_log = &telemetry.anneal();
  }
  // One evaluation cache and session pool span both SA arms (the second
  // arm re-probes points the first already simulated); the non-tuner
  // searches below get the same warm-session treatment so the comparison
  // stays budget-fair in wall-clock too.
  core::EvalCache cache;
  rms::SessionPool sessions;
  tuner.cache = &cache;
  tuner.sessions = &sessions;

  std::cout << "Ablation: enabler search strategies (LOWEST, Case 2 base, "
            << "budget " << tuner.evaluations << " evaluations, E0="
            << tuner.e0 << ")\n\n";

  const opt::Space space = core::enabler_space(scase);
  rms::SimulationSession search_session;
  auto objective = [&](const opt::Point& point) {
    grid::GridConfig candidate = base;
    candidate.tuning = core::tuning_from_point(scase, base.tuning, point);
    return core::penalized_objective(search_session.run(candidate), tuner);
  };

  std::size_t tuner_evaluations = 0;
  std::size_t tuner_hits = 0;
  Table table({"search", "best objective", "evaluations", "cache hits"});

  {  // Simulated annealing (the paper's choice), via the real tuner.
    tuner.anneal_label = "sa";
    const auto outcome = core::tune_enablers(base, scase, tuner, {});
    tuner_evaluations += outcome.evaluations;
    tuner_hits += outcome.cache_hits;
    table.add_row({"simulated annealing",
                   Table::fixed(outcome.objective, 2),
                   std::to_string(outcome.evaluations),
                   std::to_string(outcome.cache_hits)});
  }
  {  // SA as the sweeps actually run it: anchored on the default tuning
     // (the warm-start role the k-chain plays).
    tuner.anneal_label = "sa-anchored";
    const auto outcome =
        core::tune_enablers(base, scase, tuner, {}, base.tuning);
    tuner_evaluations += outcome.evaluations;
    tuner_hits += outcome.cache_hits;
    table.add_row({"simulated annealing (anchored)",
                   Table::fixed(outcome.objective, 2),
                   std::to_string(outcome.evaluations),
                   std::to_string(outcome.cache_hits)});
  }
  {
    util::RandomStream rng(base.seed, "ablation-random-search");
    const auto r = opt::random_search(space, objective, tuner.evaluations,
                                      rng);
    table.add_row({"random search", Table::fixed(r.best_value, 2),
                   std::to_string(r.evaluations), "-"});
  }
  {
    // 3 levels per dimension =~ the same budget for 3 enablers.
    const auto r = opt::grid_search(space, objective, 3);
    table.add_row({"grid search (3/dim)", Table::fixed(r.best_value, 2),
                   std::to_string(r.evaluations), "-"});
  }
  table.print(std::cout);
  std::cout << "\nevaluation cache: " << tuner_hits << "/"
            << tuner_evaluations << " tuner evaluations answered ("
            << Table::fixed(tuner_evaluations > 0
                                ? 100.0 * static_cast<double>(tuner_hits) /
                                      static_cast<double>(tuner_evaluations)
                                : 0.0,
                            1)
            << "% hit rate, " << tuner_hits << " simulations avoided)\n";
  std::cout << "\nLower objective = lower G(k) inside the efficiency band.\n"
               "At cold-start micro budgets, independent sampling is a "
               "strong baseline; the\nsweeps run SA anchored on the "
               "previous scale point's optimum, where its local\n"
               "refinement is what keeps the k-chain smooth.\n";
  if (telemetry.config().any_enabled()) {
    if (!telemetry.export_all()) {
      std::cout << "\ntelemetry export incomplete (see warnings above)\n";
    } else if (telemetry.config().anneal_enabled()) {
      std::cout << "\nanneal telemetry written to "
                << telemetry.config().anneal_path << "\n";
    }
  }
  return 0;
}
