// Extension experiment: scalability under replayed and modulated
// workloads.  The paper's figures run the Cirne-Berman synthetic
// stream; this bench repeats the Case 1 scaling path (network size)
// under two alternative arrival processes from the pluggable
// workload-source subsystem (docs/WORKLOADS.md):
//
//   swf      replay of the committed Standard Workload Format fixture
//            (tests/data/sample_small.swf), time-scaled into the
//            horizon — real-log arrival structure instead of Poisson
//   diurnal  the synthetic stream warped by a diurnal load wave
//            (amplitude 0.6, period 500): same long-run rate, strong
//            peak/trough contrast
//
// Per-RMS G(k) rows and one manifest per (mode, RMS) at the final
// scale point make the run a CI artifact; --workload/--swf/--modulate
// (or SCAL_BENCH_WORKLOAD/SCAL_BENCH_MODULATE) replace the SWF replay
// mode with any other source.  Results are bit-identical at any
// --jobs N, and the arrival cache serves every policy after the first
// from the same generated stream.

#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "options.hpp"
#include "core/scaling.hpp"
#include "exec/thread_pool.hpp"
#include "grid/telemetry.hpp"
#include "obs/manifest.hpp"
#include "rms/scenario.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/arrival_cache.hpp"

#ifndef SCAL_SOURCE_DIR
#define SCAL_SOURCE_DIR "."
#endif

namespace {

struct Mode {
  std::string name;
  scal::workload::SourceSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const bench::Options opts =
      bench::Options::parse(argc, argv, "ext_trace_replay");
  const std::string manifest_path =
      opts.telemetry.manifest_enabled()
          ? opts.telemetry.manifest_path
          : bench::csv_dir() + "/ext_trace_replay.jsonl";

  // Mode 1: SWF replay.  Any --workload/--swf/--modulate (or env)
  // source replaces the committed fixture.
  workload::SourceSpec swf_spec = opts.workload;
  if (swf_spec.is_default()) {
    swf_spec = workload::SourceSpec::parse(
        "swf:" SCAL_SOURCE_DIR "/tests/data/sample_small.swf@0.4");
  }
  // Mode 2: the calibrated synthetic stream under a diurnal wave.
  workload::SourceSpec diurnal_spec;
  diurnal_spec.modulators =
      workload::parse_modulators("diurnal:amplitude=0.6,period=500");
  const std::vector<Mode> modes = {{"swf", swf_spec},
                                   {"diurnal", diurnal_spec}};

  const std::vector<double> ks =
      bench::fast_mode() ? std::vector<double>{1.0, 2.0}
                         : std::vector<double>{1.0, 2.0, 3.0};
  const core::ScalingCase scase = core::ScalingCase::case1_network_size();
  const std::vector<grid::RmsKind> kinds = bench::all_rms();
  exec::ThreadPool pool(opts.jobs > 1 ? opts.jobs - 1 : 0);
  exec::ThreadPool* workers = opts.jobs > 1 ? &pool : nullptr;

  std::cout << "Extension: trace replay and modulated load "
               "(Case 1 scaling path)\n\n";

  util::CsvWriter csv(bench::csv_dir() + "/ext_trace_replay.csv",
                      {"mode", "rms", "k", "nodes", "jobs_arrived", "F",
                       "G", "H", "efficiency"});

  for (const Mode& mode : modes) {
    grid::GridConfig base = bench::case1_base();
    base.workload_source = mode.spec;
    std::cout << "workload [" << mode.name
              << "]: " << mode.spec.summary() << "\n";

    // results[ki][ri]: every policy replays the same generated stream
    // at each scale point (one arrival-cache miss per k).
    std::vector<std::vector<grid::SimulationResult>> results;
    std::vector<grid::GridConfig> scaled;
    for (const double k : ks) {
      scaled.push_back(core::apply_scale(base, scase, k));
      results.push_back(
          Scenario::run_kinds(Scenario(scaled.back()), kinds, workers));
    }

    std::vector<std::string> header{"RMS"};
    for (const double k : ks) {
      header.push_back("G(k=" + Table::fixed(k, 0) + ")");
    }
    header.push_back("E (final)");
    header.push_back("jobs");
    Table table(header);
    for (std::size_t ri = 0; ri < kinds.size(); ++ri) {
      std::vector<std::string> row{grid::to_string(kinds[ri])};
      for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        row.push_back(Table::fixed(results[ki][ri].G(), 1));
        const grid::SimulationResult& r = results[ki][ri];
        csv.add_row({mode.name, grid::to_string(kinds[ri]),
                     Table::fixed(ks[ki], 0),
                     std::to_string(scaled[ki].topology.nodes),
                     std::to_string(r.jobs_arrived), Table::fixed(r.F, 3),
                     Table::fixed(r.G(), 3), Table::fixed(r.H(), 3),
                     Table::fixed(r.efficiency(), 4)});
      }
      const grid::SimulationResult& last = results.back()[ri];
      row.push_back(Table::fixed(last.efficiency(), 3));
      row.push_back(std::to_string(last.jobs_arrived));
      table.add_row(row);

      grid::GridConfig config = scaled.back();
      config.rms = kinds[ri];
      obs::RunManifest manifest;
      manifest.label = "ext_trace_replay/" + mode.name + "/" +
                       grid::to_string(kinds[ri]);
      manifest.started_at = obs::utc_timestamp();
      manifest.git_version = obs::git_describe();
      manifest.jobs = opts.jobs;
      grid::fill_manifest(manifest, config, last);
      manifest.append_jsonl(manifest_path);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  const workload::ArrivalCache& cache = workload::ArrivalCache::instance();
  std::cout << "CSV written to " << bench::csv_dir()
            << "/ext_trace_replay.csv; manifests appended to "
            << manifest_path << "\n"
            << "arrival cache: " << cache.hits() << " hits / "
            << cache.misses()
            << " misses (policies after the first recall each scale "
               "point's stream;\nconcurrent first lanes may each count "
               "a miss and race to one canonical insert)\n"
            << "\nReplayed logs keep their empirical burstiness; the "
               "diurnal warp holds the\nlong-run rate while sweeping "
               "the instantaneous load through peak and\ntrough — both "
               "stress the estimators' staleness handling in ways the\n"
               "memoryless synthetic stream cannot.\n";
  return 0;
}
