// Figure 2: variation in G(k) on scaling the RP by number of nodes
// (Case 1, Table 2).  The RMS grows proportionately with the RP, the
// workload scales with the network size, and the enablers (update
// interval, neighborhood size, link delay) are tuned per scale point.
//
// Paper claims to check against the output:
//   - at k = 1 the distributed models incur substantially larger
//     overhead than CENTRAL;
//   - CENTRAL's overhead grows steeply with k (least scalable for
//     1 < k <= 6);
//   - LOWEST is the most scalable distributed RMS, Sy-I the least.

#include "common.hpp"
#include "options.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  const auto opts = bench::Options::parse(argc, argv, "fig2_scale_network");
  obs::Telemetry telemetry(opts.telemetry);
  bench::run_overhead_figure(
      "fig2_scale_network", bench::case1_base(),
      bench::procedure_for(core::ScalingCase::case1_network_size()),
      opts.telemetry.any_enabled() ? &telemetry : nullptr);
  return 0;
}
