// Extension experiment: the million-job streaming tier
// (docs/PERFORMANCE.md memory tiers).  The paper's figures run ~10^3-10^4
// jobs per point; this bench pushes a Case-1-style configuration to
// 10^6-10^8 jobs by stretching the horizon, running the streaming result
// path (result_mode = streaming): arrivals are pulled one at a time
// through the JobStream interface into recycled arena slots, and results
// fold online, so per-job memory is O(1).
//
// The bench runs an ascending ladder of job-count targets in ONE process
// and reports peak RSS after each rung.  Peak RSS is monotone over the
// process lifetime, so a flat reading across a 100x job-count spread is
// direct evidence the streaming tier's memory is independent of the job
// count — the acceptance criterion the million-job tier is gated on.
//
//   SCAL_BENCH_TARGET_JOBS=n   top rung of the ladder (default 1000000;
//                              100000 under SCAL_BENCH_FAST)
//
// ns/job and peak RSS land in the CSV and in one manifest per rung
// (--manifest PATH, default ext_million_jobs.jsonl) for CI artifacts;
// perf_smoke's streaming_million sample gates the ns/job trajectory.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "grid/telemetry.hpp"
#include "obs/manifest.hpp"
#include "options.hpp"
#include "rms/scenario.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const bench::Options opts =
      bench::Options::parse(argc, argv, "ext_million_jobs");
  const std::string manifest_path =
      opts.telemetry.manifest_enabled()
          ? opts.telemetry.manifest_path
          : bench::csv_dir() + "/ext_million_jobs.jsonl";

  const auto target = static_cast<std::uint64_t>(util::env_int(
      "SCAL_BENCH_TARGET_JOBS", bench::fast_mode() ? 100'000 : 1'000'000));

  // Ascending ladder: two decades below the target (rungs under 10k jobs
  // are dropped — too small to measure).  Running smallest-first inside
  // one process makes the peak-RSS column a flatness readout.
  std::vector<std::uint64_t> ladder;
  for (const std::uint64_t div : {100u, 10u, 1u}) {
    const std::uint64_t jobs = target / div;
    if (jobs >= 10'000) ladder.push_back(jobs);
  }
  if (ladder.empty()) ladder.push_back(std::max<std::uint64_t>(target, 1));

  grid::GridConfig base = bench::case1_base();
  base.result_mode = grid::ResultMode::kStreaming;

  std::cout << "Extension: million-job streaming tier (Case-1 "
               "configuration, LOWEST)\n"
            << "result_mode=streaming; target " << target
            << " jobs; interarrival "
            << Table::fixed(base.workload.mean_interarrival, 4) << "\n\n";

  util::CsvWriter csv(bench::csv_dir() + "/ext_million_jobs.csv",
                      {"target_jobs", "jobs_arrived", "horizon",
                       "wall_seconds", "ns_per_job", "events_dispatched",
                       "efficiency", "mean_response", "p95_response",
                       "arena_high_water", "peak_rss_bytes"});

  Table table({"target", "arrived", "wall (s)", "ns/job", "E",
               "arena hw", "peak RSS (MiB)"});
  for (int c = 1; c <= 6; ++c) table.set_align(c, util::Align::kRight);

  std::uint64_t first_rss = 0;
  std::uint64_t last_rss = 0;
  for (const std::uint64_t jobs : ladder) {
    grid::GridConfig config = base;
    config.horizon =
        static_cast<double>(jobs) * config.workload.mean_interarrival;

    const auto t0 = std::chrono::steady_clock::now();
    const grid::SimulationResult result =
        Scenario(config).rms(grid::RmsKind::kLowest).run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const std::uint64_t rss = bench::peak_rss_bytes();
    if (first_rss == 0) first_rss = rss;
    last_rss = rss;
    const double ns_per_job =
        result.jobs_arrived > 0
            ? 1e9 * wall / static_cast<double>(result.jobs_arrived)
            : 0.0;

    table.add_row({std::to_string(jobs), std::to_string(result.jobs_arrived),
                   Table::fixed(wall, 2), Table::fixed(ns_per_job, 0),
                   Table::fixed(result.efficiency(), 4),
                   std::to_string(result.arena_high_water),
                   Table::fixed(static_cast<double>(rss) / (1024.0 * 1024.0),
                                1)});
    csv.add_row({std::to_string(jobs), std::to_string(result.jobs_arrived),
                 Table::fixed(config.horizon, 1), Table::fixed(wall, 4),
                 Table::fixed(ns_per_job, 1),
                 std::to_string(result.events_dispatched),
                 Table::fixed(result.efficiency(), 4),
                 Table::fixed(result.mean_response, 4),
                 Table::fixed(result.p95_response, 4),
                 std::to_string(result.arena_high_water),
                 std::to_string(rss)});

    obs::RunManifest manifest;
    manifest.label = "ext_million_jobs/" + std::to_string(jobs);
    manifest.started_at = obs::utc_timestamp();
    manifest.git_version = obs::git_describe();
    manifest.wall_seconds = wall;
    manifest.jobs = opts.jobs;
    grid::fill_manifest(manifest, config, result);
    manifest.peak_rss_bytes = rss;
    manifest.append_jsonl(manifest_path);
  }
  table.print(std::cout);

  if (first_rss > 0 && ladder.size() > 1) {
    const double growth = static_cast<double>(last_rss) /
                          static_cast<double>(first_rss);
    std::cout << "\npeak RSS growth across a " << (ladder.back() / ladder[0])
              << "x job-count spread: " << Table::fixed(growth, 3)
              << "x (flat = per-job memory is O(1))\n";
  }
  std::cout << "\nCSV written to " << bench::csv_dir()
            << "/ext_million_jobs.csv; manifests appended to "
            << manifest_path << "\n";
  return 0;
}
