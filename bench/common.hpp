#pragma once
// Shared setup for the figure-reproduction benches.
//
// Every bench reproduces one table or figure of "Measuring Scalability
// of Resource Management Systems" (IPDPS 2005).  The base configurations
// here are the k = 1 points of the paper's four scaling cases; the
// workload intensities are calibrated so the efficiency band is feasible
// across the sweep on this substrate (see EXPERIMENTS.md for the
// mapping to the paper's [0.38, 0.42] band).
//
// Environment knobs:
//   SCAL_BENCH_FAST=1    3 scale factors, small budgets (smoke runs)
//   SCAL_BENCH_EVALS=n   SA budget at the base scale point
//   SCAL_BENCH_SEED=n    simulation seed
//   SCAL_BENCH_CSV=dir   where CSV series are written (default ".")
//   SCAL_JOBS=n          parallel lanes ("hw" = all cores; default 1)
//   SCAL_BENCH_FAULTS=s  fault spec (see docs/FAULTS.md), e.g.
//                        "churn:mtbf=400,mttr=40;net:drop=0.02"
//   SCAL_BENCH_MTBF=t    shorthand: resource churn mean time between
//   SCAL_BENCH_MTTR=t    failures / mean time to repair (sim time units)
//   SCAL_BENCH_WORKLOAD=s  workload-source spec (docs/WORKLOADS.md),
//                        e.g. "swf:trace.swf@0.01"
//   SCAL_BENCH_MODULATE=s  load-modulator chain appended to the source,
//                        e.g. "diurnal:amplitude=0.6,period=500"
//   SCAL_BENCH_RESULT_MODE=m  result path: "full" (default, exact) or
//                        "streaming" (O(1) per-job memory; see
//                        docs/PERFORMANCE.md memory tiers)

#include <string>
#include <vector>

#include "core/procedure.hpp"
#include "core/report.hpp"
#include "fault/plan.hpp"
#include "grid/config.hpp"
#include "obs/telemetry.hpp"

namespace scal::bench {

/// Parse the bench CLI (flag inventory in options.hpp).
/// Deprecated shim: use Options::parse(argc, argv, label).telemetry.
obs::TelemetryConfig parse_telemetry_cli(int argc, char** argv,
                                         const std::string& default_label);

/// The job count of this bench process: --jobs if Options::parse saw
/// one, else SCAL_JOBS, else 1.
std::size_t job_count();

/// The fault plan of this bench process: --faults/--mtbf/--mttr if
/// Options::parse saw them, else the SCAL_BENCH_FAULTS /
/// SCAL_BENCH_MTBF / SCAL_BENCH_MTTR environment knobs, else an inert
/// plan.  Folded into every case base (common_base), so any figure
/// bench can run under churn without code changes.
fault::FaultPlan fault_plan();

/// The workload source of this bench process: --workload/--swf/
/// --modulate if Options::parse saw them, else the SCAL_BENCH_WORKLOAD
/// / SCAL_BENCH_MODULATE environment knobs, else the default synthetic
/// source.  Folded into every case base (common_base), so any figure
/// bench can replay an SWF trace or run under a modulated load without
/// code changes.
workload::SourceSpec workload_source();

/// The paper's four experimental cases (Tables 2-5) with calibrated
/// base configurations.
grid::GridConfig case1_base();  ///< 250 nodes, scaled by network size
grid::GridConfig case2_base();  ///< 1000 nodes, scaled by service rate
grid::GridConfig case3_base();  ///< 1000 nodes, scaled by estimators
grid::GridConfig case4_base();  ///< 1000 nodes, scaled by L_p

/// Procedure settings for the given case, honoring the env knobs.
core::ProcedureConfig procedure_for(core::ScalingCase scase);

/// All seven RMS kinds (paper order).
std::vector<grid::RmsKind> all_rms();

/// Step 1 of the measurement procedure: pick a feasible E0 by running
/// the reference RMS (LOWEST) with default enablers at the sweep's
/// middle scale point, so the band covers the whole sweep as well as
/// the enablers allow.  When `telemetry` is non-null this calibration
/// run is the figure's instrumented run (trace / probe / manifest).
double calibrate_e0(const grid::GridConfig& base,
                    const core::ScalingCase& scase, double k_mid,
                    obs::Telemetry* telemetry = nullptr);

/// Run a full figure sweep: measure all RMS kinds, print the per-RMS
/// tables, the overhead chart, the summary, and write the CSV.  A
/// non-null `telemetry` instruments the calibration run, collects
/// annealing telemetry from every tuner search, and exports all
/// configured artifacts at the end.
std::vector<core::CaseResult> run_overhead_figure(
    const std::string& figure_name, const grid::GridConfig& base,
    core::ProcedureConfig procedure, obs::Telemetry* telemetry = nullptr);

/// Per-RMS distribution-metrics table (--metrics): run every kind at
/// the base scale with a metrics-only telemetry handle and print the
/// job wait/response/slowdown quantiles plus the scheduler queue-depth
/// and estimator-staleness probes side by side.
void print_rms_metrics_table(const grid::GridConfig& base);

/// Peak resident set size of this process in bytes (0 when the platform
/// offers no measurement).  Stamped into every bench's run manifest.
std::uint64_t peak_rss_bytes();

bool fast_mode();
std::string csv_dir();

}  // namespace scal::bench
