// Ablation: the seed-noise floor under the paper's single-run
// methodology.  Replicates every RMS's base configuration across seeds
// and reports the coefficient of variation of G — the margin below
// which cross-RMS G(k) differences in the figures are not meaningful.

#include <iostream>

#include "common.hpp"
#include "core/sensitivity.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  using util::Table;

  grid::GridConfig base = bench::case1_base();
  const std::size_t replications = bench::fast_mode() ? 3 : 7;

  std::cout << "Ablation: seed replication at the Case 1 base ("
            << base.topology.nodes << " nodes, " << replications
            << " seeds per RMS)\n\n";

  Table table({"RMS", "G mean", "G stddev", "G cv", "E mean", "E stddev",
               "resp mean"});
  for (const grid::RmsKind kind : bench::all_rms()) {
    base.rms = kind;
    const core::ReplicationStats stats =
        core::replicate(base, replications, /*base_seed=*/100);
    table.add_row({
        grid::to_string(kind),
        Table::fixed(stats.G.mean(), 1),
        Table::fixed(stats.G.stddev(), 1),
        Table::fixed(stats.g_cv(), 3),
        Table::fixed(stats.efficiency.mean(), 3),
        Table::fixed(stats.efficiency.stddev(), 4),
        Table::fixed(stats.mean_response.mean(), 1),
    });
  }
  table.print(std::cout);
  std::cout << "\nRule of thumb: treat figure-level G differences below "
               "~2x the cv as noise.\n";
  return 0;
}
