// Ablation: the seed-noise floor under the paper's single-run
// methodology.  Replicates every RMS's base configuration across seeds
// and reports the coefficient of variation of G — the margin below
// which cross-RMS G(k) differences in the figures are not meaningful.
// Closes with a parallel-replication check: the same campaign at
// --jobs 1 vs --jobs hw, verifying bit-identical statistics and
// reporting the wall-clock speedup.

#include <chrono>
#include <iostream>

#include "common.hpp"
#include "options.hpp"
#include "core/sensitivity.hpp"
#include "exec/jobs.hpp"
#include "exec/thread_pool.hpp"
#include "util/table.hpp"

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  bench::Options::parse(argc, argv, "ablation_replication");

  grid::GridConfig base = bench::case1_base();
  const std::size_t replications = bench::fast_mode() ? 3 : 7;

  std::cout << "Ablation: seed replication at the Case 1 base ("
            << base.topology.nodes << " nodes, " << replications
            << " seeds per RMS)\n\n";

  // The noise-floor table itself runs with the configured job count.
  const std::size_t jobs = bench::job_count();
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<exec::ThreadPool>(jobs - 1);

  Table table({"RMS", "G mean", "G stddev", "G cv", "E mean", "E stddev",
               "resp mean"});
  for (const grid::RmsKind kind : bench::all_rms()) {
    base.rms = kind;
    const core::ReplicationStats stats =
        core::replicate(base, replications, /*base_seed=*/100,
                        core::default_runner(), pool.get());
    table.add_row({
        grid::to_string(kind),
        Table::fixed(stats.G.mean(), 1),
        Table::fixed(stats.G.stddev(), 1),
        Table::fixed(stats.g_cv(), 3),
        Table::fixed(stats.efficiency.mean(), 3),
        Table::fixed(stats.efficiency.stddev(), 4),
        Table::fixed(stats.mean_response.mean(), 1),
    });
  }
  table.print(std::cout);
  std::cout << "\nRule of thumb: treat figure-level G differences below "
               "~2x the cv as noise.\n";

  // Parallel-execution trajectory: one RMS's replication campaign at
  // 1 lane vs every hardware lane.  The statistics must agree bit for
  // bit (the determinism contract); the wall-clock ratio is the win.
  const std::size_t hw = exec::hardware_jobs();
  base.rms = grid::RmsKind::kLowest;

  auto t0 = std::chrono::steady_clock::now();
  const core::ReplicationStats serial =
      core::replicate(base, replications, /*base_seed=*/100);
  const double serial_s = wall_seconds(t0);

  exec::ThreadPool hw_pool(hw - 1);
  t0 = std::chrono::steady_clock::now();
  const core::ReplicationStats parallel =
      core::replicate(base, replications, /*base_seed=*/100,
                      core::default_runner(), &hw_pool);
  const double parallel_s = wall_seconds(t0);

  const bool identical =
      serial.G.mean() == parallel.G.mean() &&
      serial.G.stddev() == parallel.G.stddev() &&
      serial.efficiency.mean() == parallel.efficiency.mean() &&
      serial.mean_response.mean() == parallel.mean_response.mean();

  std::cout << "\nParallel replication (LOWEST, " << replications
            << " seeds): jobs=1 " << serial_s << " s, jobs=" << hw << " "
            << parallel_s << " s, speedup "
            << (parallel_s > 0.0 ? serial_s / parallel_s : 0.0) << "x ("
            << hw << " hardware lanes); stats "
            << (identical ? "bit-identical" : "DIFFER (determinism bug!)")
            << "\n";
  return identical ? 0 : 1;
}
