// Ablation: the status-update suppression optimization ("if loading
// conditions at the resource did not change significantly from the
// previous update, an update might be suppressed" — used by all the
// periodic-update schemes).  Runs every RMS at the Case 2 base with
// suppression on and off, and reports the G and efficiency deltas.

#include <iostream>

#include "common.hpp"
#include "rms/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  using util::Table;

  grid::GridConfig base = bench::case2_base();
  std::cout << "Ablation: update suppression (Case 2 base, "
            << base.topology.nodes << " nodes)\n\n";

  Table table({"RMS", "G (suppressed)", "G (unsuppressed)", "G ratio",
               "updates (on)", "updates (off)", "E (on)", "E (off)"});
  for (const grid::RmsKind kind : bench::all_rms()) {
    base.rms = kind;

    grid::GridConfig on = base;
    on.update_suppression = true;
    const auto r_on = Scenario(on).run();

    grid::GridConfig off = base;
    off.update_suppression = false;
    const auto r_off = Scenario(off).run();

    table.add_row({
        grid::to_string(kind),
        Table::fixed(r_on.G(), 1),
        Table::fixed(r_off.G(), 1),
        Table::fixed(r_off.G() / r_on.G(), 2),
        std::to_string(r_on.updates_received),
        std::to_string(r_off.updates_received),
        Table::fixed(r_on.efficiency(), 3),
        Table::fixed(r_off.efficiency(), 3),
    });
  }
  table.print(std::cout);
  std::cout << "\nSuppression trims the periodic-update component of G "
               "without hurting efficiency;\nall periodic schemes in the "
               "paper rely on it.\n";
  return 0;
}
