// Extension experiment (paper future-work item (a)): apply the
// scalability framework to a complex (two-level) RMS architecture.
// Runs the Case 1 sweep for CENTRAL, LOWEST, and HIER — the hypothesis
// is that the hierarchy keeps CENTRAL's low base overhead while scaling
// like a distributed design, because root decisions aggregate over
// clusters instead of resources.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace scal;
  auto procedure =
      bench::procedure_for(core::ScalingCase::case1_network_size());
  const grid::GridConfig base = bench::case1_base();
  procedure.tuner.e0 = bench::calibrate_e0(
      base, procedure.scase,
      procedure.scale_factors[procedure.scale_factors.size() / 2]);

  std::cout << "ext_hierarchical\nCase 1 sweep: CENTRAL vs LOWEST vs the "
               "HIER two-level extension\n\n";

  const auto results = core::measure_all(
      base,
      {grid::RmsKind::kCentral, grid::RmsKind::kLowest,
       grid::RmsKind::kHierarchical},
      procedure);

  std::cout << core::render_overhead_chart(results, "ext_hierarchical")
            << "\n";
  for (const auto& r : results) {
    std::cout << core::render_case_table(r) << "\n";
  }
  std::cout << "Summary\n" << core::render_summary_table(results) << "\n";
  core::write_case_csv(results,
                       bench::csv_dir() + "/ext_hierarchical.csv");
  return 0;
}
