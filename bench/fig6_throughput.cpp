// Figure 6: throughput (jobs completed per unit time) obtained by
// scaling the RMS by the number of estimators (the Case 3 sweep of
// Figure 4, reported on the throughput axis).
//
// Paper claims to check against the output:
//   - AUCTION's throughput starts falling after k = 5;
//   - Sy-I's throughput shows no improvement for k > 4;
//   - the remaining models keep improving as the workload scales.

#include <iostream>
#include <memory>

#include "common.hpp"
#include "exec/thread_pool.hpp"
#include "options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace scal;
  const auto opts = bench::Options::parse(argc, argv, "fig6_throughput");
  obs::Telemetry telemetry(opts.telemetry);
  obs::Telemetry* handle =
      opts.telemetry.any_enabled() ? &telemetry : nullptr;

  auto procedure =
      bench::procedure_for(core::ScalingCase::case3_estimators());
  const grid::GridConfig base = bench::case3_base();

  const std::size_t jobs = bench::job_count();
  std::unique_ptr<exec::ThreadPool> pool;
  if (jobs > 1) {
    pool = std::make_unique<exec::ThreadPool>(jobs - 1);
    procedure.pool = pool.get();
  }
  if (handle != nullptr) handle->manifest().jobs = jobs;

  // The calibration run doubles as the figure's instrumented run.
  procedure.tuner.e0 = bench::calibrate_e0(
      base, procedure.scase,
      procedure.scale_factors[procedure.scale_factors.size() / 2], handle);
  if (handle != nullptr && opts.telemetry.metrics_enabled()) {
    procedure.tuner.profiler = &handle->profiler();
  }
  std::cout << "fig6_throughput\n" << procedure.scase.name
            << " (throughput axis)\n\n";

  const auto results = core::measure_all(base, bench::all_rms(), procedure);

  // The paper's framework counts useful work, so the headline series is
  // goodput: jobs completed *within their benefit window* per unit time.
  // Raw completions are tabled alongside for comparison.
  std::cout << core::render_measure_chart(
                   results, "fig6_throughput",
                   "successful jobs / time unit",
                   [](const grid::SimulationResult& r) {
                     return static_cast<double>(r.jobs_succeeded) /
                            r.horizon;
                   })
            << "\n";
  util::Table table({"RMS", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"});
  std::cout << "Goodput (successful jobs / time unit):\n";
  for (const auto& r : results) {
    std::vector<std::string> row{grid::to_string(r.rms)};
    for (const auto& p : r.points) {
      row.push_back(util::Table::fixed(
          static_cast<double>(p.sim.jobs_succeeded) / p.sim.horizon, 2));
    }
    while (row.size() < table.cols()) row.push_back("-");
    table.add_row(row);
  }
  table.print(std::cout);

  util::Table raw({"RMS", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"});
  std::cout << "\nRaw completions (jobs / time unit):\n";
  for (const auto& r : results) {
    std::vector<std::string> row{grid::to_string(r.rms)};
    for (const auto& p : r.points) {
      row.push_back(util::Table::fixed(p.sim.throughput, 2));
    }
    while (row.size() < raw.cols()) row.push_back("-");
    raw.add_row(row);
  }
  raw.print(std::cout);

  if (handle != nullptr && opts.telemetry.metrics_enabled()) {
    std::cout << "\n";
    bench::print_rms_metrics_table(base);
  }

  core::write_case_csv(results, bench::csv_dir() + "/fig6_throughput.csv");

  if (handle != nullptr) {
    handle->manifest().peak_rss_bytes = bench::peak_rss_bytes();
    if (!handle->export_all()) {
      std::cout << "telemetry export incomplete (see warnings above)\n";
    }
  }
  return 0;
}
