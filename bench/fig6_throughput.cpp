// Figure 6: throughput (jobs completed per unit time) obtained by
// scaling the RMS by the number of estimators (the Case 3 sweep of
// Figure 4, reported on the throughput axis).
//
// Paper claims to check against the output:
//   - AUCTION's throughput starts falling after k = 5;
//   - Sy-I's throughput shows no improvement for k > 4;
//   - the remaining models keep improving as the workload scales.

#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  auto procedure =
      bench::procedure_for(core::ScalingCase::case3_estimators());
  const grid::GridConfig base = bench::case3_base();
  procedure.tuner.e0 = bench::calibrate_e0(
      base, procedure.scase,
      procedure.scale_factors[procedure.scale_factors.size() / 2]);
  std::cout << "fig6_throughput\n" << procedure.scase.name
            << " (throughput axis)\n\n";

  const auto results = core::measure_all(base, bench::all_rms(), procedure);

  // The paper's framework counts useful work, so the headline series is
  // goodput: jobs completed *within their benefit window* per unit time.
  // Raw completions are tabled alongside for comparison.
  std::cout << core::render_measure_chart(
                   results, "fig6_throughput",
                   "successful jobs / time unit",
                   [](const grid::SimulationResult& r) {
                     return static_cast<double>(r.jobs_succeeded) /
                            r.horizon;
                   })
            << "\n";
  util::Table table({"RMS", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"});
  std::cout << "Goodput (successful jobs / time unit):\n";
  for (const auto& r : results) {
    std::vector<std::string> row{grid::to_string(r.rms)};
    for (const auto& p : r.points) {
      row.push_back(util::Table::fixed(
          static_cast<double>(p.sim.jobs_succeeded) / p.sim.horizon, 2));
    }
    while (row.size() < table.cols()) row.push_back("-");
    table.add_row(row);
  }
  table.print(std::cout);

  util::Table raw({"RMS", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"});
  std::cout << "\nRaw completions (jobs / time unit):\n";
  for (const auto& r : results) {
    std::vector<std::string> row{grid::to_string(r.rms)};
    for (const auto& p : r.points) {
      row.push_back(util::Table::fixed(p.sim.throughput, 2));
    }
    while (row.size() < raw.cols()) row.push_back("-");
    raw.add_row(row);
  }
  raw.print(std::cout);
  core::write_case_csv(results, bench::csv_dir() + "/fig6_throughput.csv");
  return 0;
}
