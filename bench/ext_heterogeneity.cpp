// Extension experiment: heterogeneous resource pools.  The paper
// assumes homogeneous resources; this bench measures how each policy's
// overhead and deadline success degrade as the per-resource service
// rate spread widens (same expected capacity), exposing which protocols
// depend on "load count == expected wait" and which do not.

#include <iostream>

#include "common.hpp"
#include "rms/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace scal;
  using util::Table;

  grid::GridConfig base = bench::case1_base();
  std::cout << "Extension: resource heterogeneity (Case 1 base, "
            << base.topology.nodes << " nodes)\n"
            << "rate_i = nominal x U[1-h, 1+h]; same expected capacity\n\n";

  Table table({"RMS", "h=0 ok", "h=0.4 ok", "h=0.8 ok", "h=0 G",
               "h=0.8 G", "success drop"});
  for (const grid::RmsKind kind : bench::all_rms()) {
    base.rms = kind;
    std::vector<grid::SimulationResult> runs;
    for (const double h : {0.0, 0.4, 0.8}) {
      base.heterogeneity = h;
      runs.push_back(Scenario(base).run());
    }
    const double drop =
        runs[0].jobs_succeeded > 0
            ? 1.0 - static_cast<double>(runs[2].jobs_succeeded) /
                        static_cast<double>(runs[0].jobs_succeeded)
            : 0.0;
    table.add_row({
        grid::to_string(kind),
        std::to_string(runs[0].jobs_succeeded),
        std::to_string(runs[1].jobs_succeeded),
        std::to_string(runs[2].jobs_succeeded),
        Table::fixed(runs[0].G(), 1),
        Table::fixed(runs[2].G(), 1),
        Table::fixed(100.0 * drop, 1) + "%",
    });
  }
  table.print(std::cout);
  std::cout << "\nCount-based least-loaded placement misjudges slow "
               "machines; policies whose\ndecisions embed run-time "
               "estimates (S-I family) should degrade less.\n";
  return 0;
}
