// Extension experiment: does an aggregation tree flatten the G(k)
// slope of the update-heavy policies?  The paper's S-I and Sy-I
// policies push one status update per resource per interval straight
// into every estimator, so their measured G(k) grows with network
// size.  This bench repeats the Case 1 scaling path at three control-
// plane levels:
//
//   off         control plane disabled (the paper's substrate)
//   degenerate  control plane on, fan-out 1 / batch 1 / flush 0 —
//               must reproduce `off` exactly (bypass contract)
//   tuned       fan-out, batch size, and flush interval handed to the
//               tuner as extra scaling enablers (with_aggregation)
//
// The closing table reports each policy's tuned G(k) slope per level;
// the hypothesis holds if S-I/Sy-I flatten under `tuned` while the
// RPC-bound policies (CENTRAL, LOWEST) stay put.  Final scale points
// are appended to the run manifest with the ctrl counter block.

#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "options.hpp"
#include "core/isoefficiency.hpp"
#include "grid/telemetry.hpp"
#include "obs/manifest.hpp"
#include "util/table.hpp"

namespace {

/// Append one manifest row per RMS for the sweep's last scale point.
void append_final_points(const std::string& manifest_path,
                         const std::string& level_label,
                         const scal::grid::GridConfig& base,
                         const std::vector<scal::core::CaseResult>& results) {
  using namespace scal;
  for (const core::CaseResult& r : results) {
    if (r.points.empty()) continue;
    const core::ScalePoint& last = r.points.back();
    grid::GridConfig config = core::apply_scale(base, r.scase, last.k);
    config.rms = r.rms;
    config.tuning = last.tuning;
    obs::RunManifest manifest;
    manifest.label = level_label + "/" + grid::to_string(r.rms);
    manifest.started_at = obs::utc_timestamp();
    manifest.git_version = obs::git_describe();
    manifest.jobs = bench::job_count();
    grid::fill_manifest(manifest, config, last.sim);
    manifest.append_jsonl(manifest_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const obs::TelemetryConfig tc =
      bench::Options::parse(argc, argv, "ext_aggregation").telemetry;
  const std::string manifest_path =
      tc.manifest_enabled() ? tc.manifest_path
                            : bench::csv_dir() + "/ext_aggregation.jsonl";

  std::cout << "Extension: status aggregation tree (Case 1 scaling path)\n"
            << "levels: off | degenerate (fan-out 1/batch 1/flush 0) | "
               "tuned (enabler-searched)\n\n";

  struct Level {
    std::string name;
    bool control_plane;
    core::ScalingCase scase;
  };
  const core::ScalingCase case1 = core::ScalingCase::case1_network_size();
  std::vector<Level> levels = {
      {"agg_off", false, case1},
      {"agg_degenerate", true, case1},
      {"agg_tuned", true, case1.with_aggregation()},
  };
  if (bench::fast_mode()) {
    // The degenerate level only re-proves the bypass contract the test
    // suite already pins; smoke runs keep the two informative levels.
    levels.erase(levels.begin() + 1);
  }

  std::vector<std::vector<core::CaseResult>> sweeps;
  std::vector<std::string> level_names;
  for (const Level& level : levels) {
    grid::GridConfig base = bench::case1_base();
    base.faults = bench::fault_plan();
    base.control_plane = level.control_plane;
    level_names.push_back(level.name);
    const std::string figure = "ext_aggregation_" + level.name;
    const auto results = bench::run_overhead_figure(
        figure, base, bench::procedure_for(level.scase));
    append_final_points(manifest_path, figure, base, results);
    sweeps.push_back(results);
    std::cout << "\n";
  }
  std::cout << "per-policy manifests appended to " << manifest_path << "\n\n";

  // Tuned G(k) slope per policy and level, the flattening delta, and
  // the traffic the tree actually absorbed at the worst scale point.
  std::vector<std::string> header{"RMS"};
  for (const std::string& level : level_names) {
    header.push_back(level + " slope");
  }
  header.push_back("slope delta");
  header.push_back("coalesced");
  header.push_back("fan-out*");
  Table table(header);
  for (std::size_t i = 0; i < sweeps.front().size(); ++i) {
    std::vector<std::string> row{grid::to_string(sweeps.front()[i].rms)};
    double slope_off = 0.0;
    double slope_tuned = 0.0;
    for (std::size_t level = 0; level < sweeps.size(); ++level) {
      const double slope = core::analyze(sweeps[level][i]).overall_slope;
      if (level == 0) slope_off = slope;
      slope_tuned = slope;
      row.push_back(Table::fixed(slope, 3));
    }
    row.push_back(Table::fixed(slope_tuned - slope_off, 3));
    const core::ScalePoint& worst = sweeps.back()[i].points.back();
    row.push_back(Table::fixed(worst.sim.ctrl_coalescing_ratio(), 3));
    row.push_back(std::to_string(worst.tuning.agg_fanout));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n* tuned fan-out at the final scale point.  A negative "
               "slope delta means the\naggregation tree flattened G(k): "
               "coalescing absorbs same-resource updates\nbefore the "
               "estimators pay per-update ingest cost, at the price of "
               "staleness\n(status_staleness histogram).  RPC-bound "
               "policies have little update traffic\nto absorb and "
               "should sit near zero delta.\n";
  return 0;
}
