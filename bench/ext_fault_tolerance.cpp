// Extension experiment: scalability under resource churn.  The paper
// measures G(k) on a reliable substrate; this bench repeats the Case 1
// scaling path (network size) under increasing crash/recover churn and
// reports how each policy's tuned G(k) slope degrades.  With churn off
// the sweep is byte-identical to fig2_scale_network's (same seed tree,
// same tuner trajectory), which pins the fault subsystem's zero-cost
// gating; with churn on, results stay bit-identical at any --jobs N.
//
// Every (churn, RMS) cell's final scale point is appended to the run
// manifest with the availability-adjusted efficiency E/A and the full
// fault counter block (docs/FAULTS.md).

#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "options.hpp"
#include "core/isoefficiency.hpp"
#include "grid/telemetry.hpp"
#include "obs/manifest.hpp"
#include "util/table.hpp"

namespace {

/// Append one manifest row per RMS for the sweep's last scale point.
void append_final_points(const std::string& manifest_path,
                         const std::string& level_label,
                         const scal::grid::GridConfig& base,
                         const std::vector<scal::core::CaseResult>& results) {
  using namespace scal;
  for (const core::CaseResult& r : results) {
    if (r.points.empty()) continue;
    const core::ScalePoint& last = r.points.back();
    grid::GridConfig config = core::apply_scale(base, r.scase, last.k);
    config.rms = r.rms;
    config.tuning = last.tuning;
    obs::RunManifest manifest;
    manifest.label = level_label + "/" + grid::to_string(r.rms);
    manifest.started_at = obs::utc_timestamp();
    manifest.git_version = obs::git_describe();
    manifest.jobs = bench::job_count();
    grid::fill_manifest(manifest, config, last.sim);
    manifest.append_jsonl(manifest_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scal;
  using util::Table;

  const obs::TelemetryConfig tc =
      bench::Options::parse(argc, argv, "ext_fault_tolerance").telemetry;
  const std::string manifest_path =
      tc.manifest_enabled() ? tc.manifest_path
                            : bench::csv_dir() + "/ext_fault_tolerance.jsonl";

  // Churn ladder: mean time between failures per resource (0 = off).
  // Repairs take 40 time units (2 update intervals) at every level.
  const std::vector<double> mtbf_levels =
      bench::fast_mode() ? std::vector<double>{0.0, 400.0}
                         : std::vector<double>{0.0, 800.0, 400.0, 200.0};
  const double mttr = 40.0;

  // Any --faults/env fault classes (network faults, blackouts) apply at
  // every churn level; the ladder only overrides the churn clause.
  const fault::FaultPlan extra = bench::fault_plan();

  std::cout << "Extension: scalability under resource churn (Case 1 "
               "scaling path)\n"
            << "churn = per-resource crash/recover, Exp(MTBF)/Exp(MTTR), "
               "MTTR = " << mttr << "\n\n";

  std::vector<std::vector<core::CaseResult>> sweeps;
  std::vector<std::string> level_names;
  for (const double mtbf : mtbf_levels) {
    grid::GridConfig base = bench::case1_base();
    base.faults = extra;
    base.faults.churn.mtbf = mtbf;
    base.faults.churn.mttr = mtbf > 0.0 ? mttr : 0.0;
    const std::string level =
        mtbf > 0.0 ? "churn" + std::to_string(static_cast<int>(mtbf))
                   : "churn_off";
    level_names.push_back(level);
    const std::string figure = "ext_fault_tolerance_" + level;
    const auto results = bench::run_overhead_figure(
        figure, base,
        bench::procedure_for(core::ScalingCase::case1_network_size()));
    append_final_points(manifest_path, figure, base, results);
    sweeps.push_back(results);
    std::cout << "\n";
  }
  std::cout << "per-policy manifests appended to " << manifest_path << "\n\n";

  // G(k) slope degradation: tuned overall slope per policy and churn
  // level, plus the final point's availability-adjusted efficiency.
  std::vector<std::string> header{"RMS"};
  for (const std::string& level : level_names) {
    header.push_back(level + " slope");
  }
  header.push_back("slope delta");
  header.push_back("A (worst)");
  header.push_back("E/A (worst)");
  Table table(header);
  for (std::size_t i = 0; i < sweeps.front().size(); ++i) {
    std::vector<std::string> row{grid::to_string(sweeps.front()[i].rms)};
    double slope0 = 0.0;
    double slope_last = 0.0;
    for (std::size_t level = 0; level < sweeps.size(); ++level) {
      const double slope = core::analyze(sweeps[level][i]).overall_slope;
      if (level == 0) slope0 = slope;
      slope_last = slope;
      row.push_back(Table::fixed(slope, 3));
    }
    row.push_back(Table::fixed(slope_last - slope0, 3));
    const auto& worst = sweeps.back()[i].points.back().sim;
    row.push_back(Table::fixed(worst.availability, 3));
    row.push_back(Table::fixed(worst.efficiency_avail(), 3));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nA tolerant policy keeps its G(k) slope under churn "
               "(small delta); the\nrobustness mixin's retries and "
               "evictions are charged to G, so intolerant\npolicies pay "
               "for churn twice — lost work in F and repair traffic in "
               "G.\n";
  return 0;
}
