#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "net/topology.hpp"

namespace scal::net {
namespace {

/// Brute-force Bellman-Ford distances for cross-checking Dijkstra.
std::vector<double> bellman_ford(const Graph& g, NodeId src) {
  std::vector<double> dist(g.node_count(),
                           std::numeric_limits<double>::infinity());
  dist[src] = 0.0;
  for (std::size_t pass = 0; pass + 1 < g.node_count(); ++pass) {
    bool relaxed = false;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (dist[u] == std::numeric_limits<double>::infinity()) continue;
      for (const Link& l : g.neighbors(u)) {
        if (dist[u] + l.latency < dist[l.to]) {
          dist[l.to] = dist[u] + l.latency;
          relaxed = true;
        }
      }
    }
    if (!relaxed) break;
  }
  return dist;
}

Graph line_graph() {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 10.0);
  g.add_edge(1, 2, 2.0, 20.0);
  g.add_edge(2, 3, 3.0, 30.0);
  return g;
}

TEST(Router, LineGraphAccumulatesLatencyAndBandwidth) {
  const Graph g = line_graph();
  Router router(g);
  const RouteInfo info = router.route(0, 3);
  EXPECT_TRUE(info.reachable);
  EXPECT_DOUBLE_EQ(info.latency, 6.0);
  EXPECT_DOUBLE_EQ(info.inv_bandwidth, 1.0 / 10 + 1.0 / 20 + 1.0 / 30);
  EXPECT_EQ(info.hops, 3u);
}

TEST(Router, DelayIncludesTransmission) {
  const Graph g = line_graph();
  Router router(g);
  const double d = router.delay(0, 3, 60.0);
  EXPECT_DOUBLE_EQ(d, 6.0 + 60.0 * (1.0 / 10 + 1.0 / 20 + 1.0 / 30));
}

TEST(Router, SelfDelayIsZero) {
  const Graph g = line_graph();
  Router router(g);
  EXPECT_DOUBLE_EQ(router.delay(2, 2, 100.0), 0.0);
}

TEST(Router, PicksShorterOfTwoPaths) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  g.add_edge(0, 2, 5.0, 1.0);  // direct but slower
  Router router(g);
  const RouteInfo info = router.route(0, 2);
  EXPECT_DOUBLE_EQ(info.latency, 2.0);
  EXPECT_EQ(info.hops, 2u);
}

TEST(Router, PathReconstruction) {
  const Graph g = line_graph();
  Router router(g);
  EXPECT_EQ(router.path(0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(router.path(3, 0), (std::vector<NodeId>{3, 2, 1, 0}));
  EXPECT_EQ(router.path(1, 1), (std::vector<NodeId>{1}));
}

TEST(Router, UnreachableDetected) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  Router router(g);
  EXPECT_FALSE(router.route(0, 2).reachable);
  EXPECT_TRUE(router.path(0, 2).empty());
  EXPECT_THROW(router.delay(0, 2, 1.0), std::runtime_error);
}

TEST(Router, MatchesBellmanFordOnRandomTopology) {
  TopologyConfig config;
  config.nodes = 120;
  util::RandomStream rng(42, "routing-test");
  const Graph g = generate_topology(config, rng);
  Router router(g);
  for (const NodeId src : {NodeId{0}, NodeId{17}, NodeId{119}}) {
    const auto expect = bellman_ford(g, src);
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      EXPECT_NEAR(router.route(src, dst).latency, expect[dst], 1e-9)
          << src << "->" << dst;
    }
  }
}

TEST(Router, CachesSourceTrees) {
  const Graph g = line_graph();
  Router router(g);
  EXPECT_EQ(router.cached_sources(), 0u);
  router.route(0, 3);
  router.route(0, 1);
  EXPECT_EQ(router.cached_sources(), 1u);
  router.route(2, 0);
  EXPECT_EQ(router.cached_sources(), 2u);
  router.clear_cache();
  EXPECT_EQ(router.cached_sources(), 0u);
}

TEST(Router, RejectsOutOfRange) {
  const Graph g = line_graph();
  Router router(g);
  EXPECT_THROW(router.route(0, 99), std::out_of_range);
  EXPECT_THROW(router.route(99, 0), std::out_of_range);
}

TEST(Router, ClearCacheMidRunIsDeterministic) {
  // The schedulers re-query the same pairs every update interval; a
  // cache flush in between (e.g. from a topology-aware tuner) must
  // reproduce byte-identical delays when the trees rebuild lazily.
  TopologyConfig config;
  config.nodes = 90;
  util::RandomStream rng(7, "routing-clear-test");
  const Graph g = generate_topology(config, rng);
  Router router(g);
  std::vector<double> before;
  for (NodeId src = 0; src < g.node_count(); src += 3) {
    for (NodeId dst = 1; dst < g.node_count(); dst += 11) {
      if (src != dst) before.push_back(router.delay(src, dst, 2.0));
    }
  }
  router.clear_cache();
  EXPECT_EQ(router.cached_sources(), 0u);
  std::size_t i = 0;
  for (NodeId src = 0; src < g.node_count(); src += 3) {
    for (NodeId dst = 1; dst < g.node_count(); dst += 11) {
      if (src != dst) {
        EXPECT_DOUBLE_EQ(router.delay(src, dst, 2.0), before[i++])
            << src << "->" << dst;
      }
    }
  }
}

TEST(Router, LazySettlingMatchesFullSearchInAnyQueryOrder) {
  // The per-source tree settles only as far as each query needs; the
  // settled prefix must equal the full Dijkstra run no matter the order
  // destinations are asked in (near-first, far-first, interleaved).
  TopologyConfig config;
  config.nodes = 120;
  util::RandomStream rng(42, "routing-test");  // same graph as above
  const Graph g = generate_topology(config, rng);

  Router eager(g);
  std::vector<double> full(g.node_count());
  for (NodeId dst = 0; dst < g.node_count(); ++dst) {
    full[dst] = eager.route(17, dst).latency;  // one pass settles all
  }

  Router lazy(g);
  // Far-first, then a descending sweep, then re-query everything.
  (void)lazy.route(17, 119);
  for (NodeId dst = g.node_count(); dst-- > 0;) {
    EXPECT_NEAR(lazy.route(17, dst).latency, full[dst], 1e-12)
        << "17->" << dst;
  }
  for (NodeId dst = 0; dst < g.node_count(); ++dst) {
    EXPECT_NEAR(lazy.route(17, dst).latency, full[dst], 1e-12);
  }
}

TEST(Router, UnreachableThrowAfterPartialSettleAndCacheStaysUsable) {
  // Two components: queries inside the source's component settle
  // lazily; an unreachable destination then exhausts the frontier and
  // throws, and the exhausted tree still answers reachable queries.
  Graph g(5);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  g.add_edge(3, 4, 1.0, 1.0);  // disconnected island
  Router router(g);
  EXPECT_DOUBLE_EQ(router.delay(0, 1, 0.0), 1.0);
  EXPECT_THROW(router.delay(0, 4, 1.0), std::runtime_error);
  EXPECT_THROW(router.delay(0, 3, 1.0), std::runtime_error);
  EXPECT_DOUBLE_EQ(router.delay(0, 2, 0.0), 2.0);
  EXPECT_EQ(router.path(0, 2), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(router.cached_sources(), 1u);
}

}  // namespace
}  // namespace scal::net
