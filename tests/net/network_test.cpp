#include "net/network.hpp"

#include <gtest/gtest.h>

namespace scal::net {
namespace {

Graph pair_graph() {
  Graph g(2);
  g.add_edge(0, 1, 3.0, 10.0);
  return g;
}

TEST(Network, DeliversAfterRoutedDelay) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  double delivered_at = -1.0;
  net.send(0, 1, 20.0, [&] { delivered_at = sim.now(); });
  sim.run();
  // latency 3 + size 20 / bandwidth 10 = 5.
  EXPECT_DOUBLE_EQ(delivered_at, 5.0);
}

TEST(Network, PredictMatchesDelivery) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  const double predicted = net.predict_delay(0, 1, 20.0);
  double delivered_at = -1.0;
  net.send(0, 1, 20.0, [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, predicted);
}

TEST(Network, SelfSendIsImmediateButAsync) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  bool delivered = false;
  net.send(1, 1, 5.0, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // still causal: goes through the event queue
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Network, DelayScaleMultiplies) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  net.set_delay_scale(0.5);
  EXPECT_DOUBLE_EQ(net.predict_delay(0, 1, 20.0), 2.5);
  EXPECT_THROW(net.set_delay_scale(0.0), std::invalid_argument);
}

TEST(Network, CountsTraffic) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  net.send(0, 1, 2.0, [] {});
  net.send(1, 0, 3.0, [] {});
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_DOUBLE_EQ(net.bytes_sent(), 5.0);
}

TEST(Network, OrderingPreservedForEqualDelays) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  std::vector<int> order;
  net.send(0, 1, 10.0, [&] { order.push_back(1); });
  net.send(0, 1, 10.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace scal::net
