#include "net/graph.hpp"

#include <gtest/gtest.h>

namespace scal::net {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 1.5, 100.0);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, a));
  EXPECT_EQ(g.degree(a), 1u);
}

TEST(Graph, NeighborsCarryLinkParameters) {
  Graph g(2);
  g.add_edge(0, 1, 2.5, 50.0);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].to, 1u);
  EXPECT_DOUBLE_EQ(nbrs[0].latency, 2.5);
  EXPECT_DOUBLE_EQ(nbrs[0].bandwidth, 50.0);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0, 1.0), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0, 1.0), std::out_of_range);
}

TEST(Graph, RejectsBadLinkParameters) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 1, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 1.0, 0.0), std::invalid_argument);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(2, 3, 1, 1);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2, 1, 1);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph().connected());
  EXPECT_TRUE(Graph(1).connected());
}

TEST(Graph, DegreeSequenceSortedDescending) {
  Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(0, 3, 1, 1);
  const auto deg = g.degree_sequence();
  EXPECT_EQ(deg, (std::vector<std::size_t>{3, 1, 1, 1}));
}

}  // namespace
}  // namespace scal::net
