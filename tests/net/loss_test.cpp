#include <gtest/gtest.h>

#include "net/network.hpp"

namespace scal::net {
namespace {

Graph pair_graph() {
  Graph g(2);
  g.add_edge(0, 1, 1.0, 100.0);
  return g;
}

TEST(NetworkLoss, DisabledByDefault) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    net.send_unreliable(0, 1, 1.0, [&] { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(NetworkLoss, DropRateMatchesProbability) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  net.set_loss(0.3, util::RandomStream(42, "loss"));
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    net.send_unreliable(0, 1, 1.0, [&] { ++delivered; });
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(net.messages_dropped()) / n, 0.3, 0.02);
  EXPECT_EQ(delivered + static_cast<int>(net.messages_dropped()), n);
  // Dropped messages never entered the sent counters.
  EXPECT_EQ(net.messages_sent(), static_cast<std::uint64_t>(delivered));
}

TEST(NetworkLoss, ReliableSendIgnoresLoss) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  net.set_loss(0.9, util::RandomStream(1, "loss"));
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, 1.0, [&] { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(NetworkLoss, DeterministicDropPattern) {
  auto run = [] {
    sim::Simulator sim;
    const Graph g = pair_graph();
    Network net(sim, 0, g);
    net.set_loss(0.5, util::RandomStream(7, "loss"));
    std::vector<int> delivered_ids;
    for (int i = 0; i < 200; ++i) {
      net.send_unreliable(0, 1, 1.0,
                          [&delivered_ids, i] { delivered_ids.push_back(i); });
    }
    sim.run();
    return delivered_ids;
  };
  EXPECT_EQ(run(), run());
}

TEST(NetworkLoss, RejectsBadProbability) {
  sim::Simulator sim;
  const Graph g = pair_graph();
  Network net(sim, 0, g);
  EXPECT_THROW(net.set_loss(1.0, util::RandomStream(1, "x")),
               std::invalid_argument);
  EXPECT_THROW(net.set_loss(-0.5, util::RandomStream(1, "x")),
               std::invalid_argument);
  EXPECT_NO_THROW(net.set_loss(0.0, util::RandomStream(1, "x")));
}

}  // namespace
}  // namespace scal::net
