#include "net/metrics.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace scal::net {
namespace {

Graph triangle_plus_tail() {
  // Triangle 0-1-2 with a tail 2-3.
  Graph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(2, 3, 1, 1);
  return g;
}

TEST(GraphMetrics, ExactSmallGraph) {
  const Graph g = triangle_plus_tail();
  util::RandomStream rng(1, "gm");
  const GraphMetrics m = analyze_graph(g, g.node_count(), rng);
  EXPECT_EQ(m.nodes, 4u);
  EXPECT_EQ(m.edges, 4u);
  EXPECT_DOUBLE_EQ(m.mean_degree, 2.0);
  EXPECT_EQ(m.max_degree, 3u);
  EXPECT_EQ(m.diameter, 2u);
  // Triples: deg 2,2,3,1 -> 1+1+3+0 = 5; ordered triangles = 3.
  EXPECT_NEAR(m.clustering, 3.0 / 5.0, 1e-12);
}

TEST(GraphMetrics, MeanPathOfPathGraph) {
  // 0-1-2: pairwise hops 1,1,2 twice (directed) / 6 ordered pairs.
  Graph g(3);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  util::RandomStream rng(1, "gm");
  const GraphMetrics m = analyze_graph(g, 3, rng);
  EXPECT_NEAR(m.mean_path_hops, (1 + 1 + 1 + 1 + 2 + 2) / 6.0, 1e-12);
  EXPECT_EQ(m.diameter, 2u);
  EXPECT_DOUBLE_EQ(m.clustering, 0.0);  // no triangles
}

TEST(GraphMetrics, StarHubOwnsHalfTheEndpoints) {
  TopologyConfig config;
  config.kind = TopologyKind::kStar;
  config.nodes = 100;
  util::RandomStream rng(2, "gm");
  const Graph g = generate_topology(config, rng);
  const GraphMetrics m = analyze_graph(g, 30, rng);
  // Hub endpoint share: top 10% (10 nodes) own 99 + 9 = 108 of 198.
  EXPECT_NEAR(m.hub_endpoint_share, 108.0 / 198.0, 1e-9);
  EXPECT_EQ(m.diameter, 2u);
}

TEST(GraphMetrics, PrefAttachLooksInternetLike) {
  TopologyConfig config;
  config.nodes = 500;
  config.pa_edges_per_node = 2;
  util::RandomStream rng(3, "gm");
  const Graph g = generate_topology(config, rng);
  const GraphMetrics m = analyze_graph(g, 40, rng);
  // Small-world: diameter far below n, hubs carry disproportionate load.
  EXPECT_LT(m.diameter, 12u);
  EXPECT_GT(m.hub_endpoint_share, 0.3);
  EXPECT_LT(m.mean_path_hops, 6.0);
}

TEST(GraphMetrics, TransitStubIsHierarchical) {
  TopologyConfig config;
  config.kind = TopologyKind::kTransitStub;
  config.nodes = 200;
  util::RandomStream rng(4, "gm");
  const Graph g = generate_topology(config, rng);
  ASSERT_TRUE(g.connected());
  const GraphMetrics m = analyze_graph(g, 40, rng);
  // Stub hubs and transit routers own an outsized share of endpoints
  // (a uniform-degree graph would give the top decile exactly 0.10).
  EXPECT_GT(m.hub_endpoint_share, 0.20);
  EXPECT_LT(m.diameter, 12u);
}

TEST(GraphMetrics, SamplingSubsetStillBoundsDiameter) {
  TopologyConfig config;
  config.kind = TopologyKind::kRingLattice;
  config.nodes = 60;
  config.lattice_neighbors = 1;  // plain ring: diameter 30
  util::RandomStream rng(5, "gm");
  const Graph g = generate_topology(config, rng);
  const GraphMetrics exact = analyze_graph(g, 60, rng);
  const GraphMetrics sampled = analyze_graph(g, 5, rng);
  EXPECT_EQ(exact.diameter, 30u);
  // Every BFS from a ring node reaches hop 30, so sampling is exact here.
  EXPECT_EQ(sampled.diameter, 30u);
}

TEST(GraphMetrics, EmptyGraph) {
  Graph g;
  util::RandomStream rng(6, "gm");
  const GraphMetrics m = analyze_graph(g, 10, rng);
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_DOUBLE_EQ(m.mean_degree, 0.0);
}

}  // namespace
}  // namespace scal::net
