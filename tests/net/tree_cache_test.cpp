#include "net/tree_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace scal::net {
namespace {

Graph test_graph(std::size_t nodes = 60, std::uint64_t seed = 7) {
  TopologyConfig tc;
  tc.nodes = nodes;
  util::RandomStream rng(seed, "tree-cache-test");
  return generate_topology(tc, rng);
}

/// The shared cache is process-wide; every test starts and ends clean
/// so ordering (and the session tests that also share it) never leaks.
class TreeCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { SharedTreeCache::instance().clear(); }
  void TearDown() override {
    SharedTreeCache::instance().clear();
    SharedTreeCache::instance().set_max_bytes(0);
  }
};

TEST_F(TreeCacheTest, GraphDigestIsStableAndStructureSensitive) {
  const Graph a = test_graph();
  const Graph b = test_graph();
  EXPECT_EQ(graph_digest(a), graph_digest(b));  // same build, same digest
  const Graph c = test_graph(60, 8);            // different topology seed
  EXPECT_NE(graph_digest(a), graph_digest(c));
  const Graph d = test_graph(61, 7);            // different size
  EXPECT_NE(graph_digest(a), graph_digest(d));
}

TEST_F(TreeCacheTest, PublishThenLookupReturnsSnapshot) {
  SharedTreeCache& cache = SharedTreeCache::instance();
  const SharedTreeCache::Key key{1, 2};
  EXPECT_EQ(cache.lookup(key, 0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  auto snap = std::make_shared<TreeSnapshot>();
  snap->settled_count = 3;
  const auto stored = cache.publish(key, 0, snap);
  EXPECT_EQ(stored, snap);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.publishes(), 1u);

  EXPECT_EQ(cache.lookup(key, 0), snap);
  EXPECT_EQ(cache.shares(), 1u);
  // Different source / different topology are distinct entries.
  EXPECT_EQ(cache.lookup(key, 1), nullptr);
  EXPECT_EQ(cache.lookup(SharedTreeCache::Key{9, 9}, 0), nullptr);
}

TEST_F(TreeCacheTest, FirstPublishWinsUnlessStrictlyDeeper) {
  SharedTreeCache& cache = SharedTreeCache::instance();
  const SharedTreeCache::Key key{1, 2};
  auto shallow = std::make_shared<TreeSnapshot>();
  shallow->settled_count = 5;
  cache.publish(key, 0, shallow);

  // Equal depth: the canonical first entry is kept.
  auto rival = std::make_shared<TreeSnapshot>();
  rival->settled_count = 5;
  EXPECT_EQ(cache.publish(key, 0, rival), shallow);
  EXPECT_EQ(cache.upgrades(), 0u);

  // Strictly deeper: replaces.
  auto deeper = std::make_shared<TreeSnapshot>();
  deeper->settled_count = 6;
  EXPECT_EQ(cache.publish(key, 0, deeper), deeper);
  EXPECT_EQ(cache.upgrades(), 1u);
  EXPECT_EQ(cache.lookup(key, 0), deeper);
}

TEST_F(TreeCacheTest, SharedRoutesAreBitIdenticalToUnshared) {
  const Graph graph = test_graph();
  const auto key = graph_digest(graph);
  const auto n = static_cast<NodeId>(graph.node_count());

  Router plain(graph);
  Router writer(graph);
  writer.enable_tree_sharing(key);
  // Writer settles (and publishes) everything; the reader then adopts.
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      const RouteInfo a = plain.route(src, dst);
      const RouteInfo b = writer.route(src, dst);
      EXPECT_EQ(a.reachable, b.reachable);
      EXPECT_EQ(a.hops, b.hops);
      EXPECT_EQ(a.latency, b.latency);          // bitwise: same settles
      EXPECT_EQ(a.inv_bandwidth, b.inv_bandwidth);
    }
  }
  ASSERT_GT(SharedTreeCache::instance().publishes(), 0u);

  Router reader(graph);
  reader.enable_tree_sharing(key);
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      const RouteInfo a = plain.route(src, dst);
      const RouteInfo b = reader.route(src, dst);
      EXPECT_EQ(a.reachable, b.reachable);
      EXPECT_EQ(a.hops, b.hops);
      EXPECT_EQ(a.latency, b.latency);
      EXPECT_EQ(a.inv_bandwidth, b.inv_bandwidth);
      if (a.reachable) {
        EXPECT_EQ(plain.path(src, dst), reader.path(src, dst));
        EXPECT_EQ(plain.delay(src, dst, 4.0), reader.delay(src, dst, 4.0));
      }
    }
  }
  // The reader answered everything from adopted snapshots.
  EXPECT_EQ(reader.owned_sources(), 0u);
  EXPECT_EQ(reader.shared_sources(), reader.cached_sources());
  EXPECT_GT(reader.shared_sources(), 0u);
}

TEST_F(TreeCacheTest, AdoptedShallowSnapshotIsClonedAndExtended) {
  const Graph graph = test_graph();
  const auto key = graph_digest(graph);

  // Publish a shallow tree: settled only far enough for dst=1.
  Router writer(graph);
  writer.enable_tree_sharing(key);
  (void)writer.route(0, 1);
  ASSERT_GT(SharedTreeCache::instance().publishes(), 0u);
  const auto snap = SharedTreeCache::instance().lookup(key, 0);
  ASSERT_NE(snap, nullptr);
  const std::size_t shallow_depth = snap->settled_count;

  // A reader needing a deeper destination clones and extends privately.
  Router reader(graph);
  reader.enable_tree_sharing(key);
  const auto far = static_cast<NodeId>(graph.node_count() - 1);
  Router plain(graph);
  const RouteInfo expect = plain.route(0, far);
  const RouteInfo got = reader.route(0, far);
  EXPECT_EQ(expect.reachable, got.reachable);
  EXPECT_EQ(expect.latency, got.latency);
  EXPECT_EQ(expect.hops, got.hops);
  if (!snap->settled[far] && !snap->exhausted) {
    // Clone-on-extend: the adopted slot became an owned tree.
    EXPECT_EQ(reader.owned_sources(), 1u);
    EXPECT_EQ(reader.shared_sources(), 0u);
  }
  // The adopted snapshot object itself never mutated; the reader's
  // deeper clone replaced it in the cache (strictly-deeper upgrade).
  EXPECT_EQ(snap->settled_count, shallow_depth);
  EXPECT_GE(SharedTreeCache::instance().lookup(key, 0)->settled_count,
            shallow_depth);
}

TEST_F(TreeCacheTest, ClearCacheDetachesWithoutTouchingSharedState) {
  const Graph graph = test_graph();
  const auto key = graph_digest(graph);
  Router writer(graph);
  writer.enable_tree_sharing(key);
  (void)writer.route(0, 5);

  Router reader(graph);
  reader.enable_tree_sharing(key);
  (void)reader.route(0, 5);
  ASSERT_GT(reader.shared_sources(), 0u);
  const std::size_t cache_size = SharedTreeCache::instance().size();

  reader.clear_cache();
  EXPECT_EQ(reader.cached_sources(), 0u);
  // Detach only: the shared cache still serves everyone else.
  EXPECT_EQ(SharedTreeCache::instance().size(), cache_size);
  const RouteInfo again = reader.route(0, 5);  // re-adopts after clear
  EXPECT_EQ(again.latency, writer.route(0, 5).latency);
  EXPECT_TRUE(reader.tree_sharing());
}

TEST_F(TreeCacheTest, ByteBudgetEvictsOldestFirst) {
  SharedTreeCache& cache = SharedTreeCache::instance();
  auto sized = [](std::size_t n) {
    auto snap = std::make_shared<TreeSnapshot>();
    snap->dist.resize(n);
    snap->settled_count = 1;
    return snap;
  };
  const std::size_t unit = sized(100)->bytes();
  cache.set_max_bytes(2 * unit);
  cache.publish(SharedTreeCache::Key{1, 1}, 0, sized(100));
  cache.publish(SharedTreeCache::Key{1, 1}, 1, sized(100));
  EXPECT_EQ(cache.size(), 2u);
  cache.publish(SharedTreeCache::Key{1, 1}, 2, sized(100));
  EXPECT_EQ(cache.size(), 2u);  // FIFO: src 0 evicted
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(SharedTreeCache::Key{1, 1}, 0), nullptr);
  EXPECT_NE(cache.lookup(SharedTreeCache::Key{1, 1}, 2), nullptr);
  EXPECT_LE(cache.bytes(), 2 * unit);

  // An entry larger than the whole budget is handed back unstored.
  const auto big = sized(100000);
  EXPECT_EQ(cache.publish(SharedTreeCache::Key{2, 2}, 0, big), big);
  EXPECT_EQ(cache.lookup(SharedTreeCache::Key{2, 2}, 0), nullptr);
}

TEST_F(TreeCacheTest, ConcurrentRoutersAgreeWithSerialReference) {
  const Graph graph = test_graph(80);
  const auto key = graph_digest(graph);
  const auto n = static_cast<NodeId>(graph.node_count());

  // Serial reference delays, computed without sharing.
  Router plain(graph);
  std::vector<double> expect;
  for (NodeId src = 0; src < n; src += 3) {
    for (NodeId dst = 0; dst < n; dst += 5) {
      expect.push_back(src == dst ? 0.0 : plain.delay(src, dst, 1.0));
    }
  }

  constexpr int kThreads = 8;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns its router (the SessionPool slot discipline);
      // only the SharedTreeCache is shared state.
      Router router(graph);
      router.enable_tree_sharing(key);
      for (NodeId src = 0; src < n; src += 3) {
        for (NodeId dst = 0; dst < n; dst += 5) {
          got[static_cast<std::size_t>(t)].push_back(
              src == dst ? 0.0 : router.delay(src, dst, 1.0));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[static_cast<std::size_t>(t)].size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      // Bitwise equality: adopted prefixes must replay the same settles.
      EXPECT_EQ(got[static_cast<std::size_t>(t)][i], expect[i])
          << "thread " << t << " query " << i;
    }
  }
}

}  // namespace
}  // namespace scal::net
