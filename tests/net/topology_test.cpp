#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace scal::net {
namespace {

class TopologyKindTest
    : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TopologyKindTest, GeneratesConnectedGraphOfRequestedSize) {
  TopologyConfig config;
  config.kind = GetParam();
  for (const std::size_t n : {5ul, 40ul, 200ul}) {
    config.nodes = n;
    util::RandomStream rng(42, "topo-test");
    const Graph g = generate_topology(config, rng);
    EXPECT_EQ(g.node_count(), n) << to_string(config.kind);
    EXPECT_TRUE(g.connected()) << to_string(config.kind) << " n=" << n;
  }
}

TEST_P(TopologyKindTest, DeterministicForSameSeed) {
  TopologyConfig config;
  config.kind = GetParam();
  config.nodes = 60;
  util::RandomStream rng1(7, "t");
  util::RandomStream rng2(7, "t");
  const Graph a = generate_topology(config, rng1);
  const Graph b = generate_topology(config, rng2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.degree_sequence(), b.degree_sequence());
}

TEST_P(TopologyKindTest, LatenciesWithinConfiguredRange) {
  TopologyConfig config;
  config.kind = GetParam();
  config.nodes = 50;
  config.latency_min = 0.5;
  config.latency_max = 2.0;
  config.ts_backbone_speedup = 1.0;  // transit links otherwise go below min
  util::RandomStream rng(11, "t");
  const Graph g = generate_topology(config, rng);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const Link& l : g.neighbors(v)) {
      EXPECT_GE(l.latency, 0.5);
      EXPECT_LE(l.latency, 2.0);
      EXPECT_DOUBLE_EQ(l.bandwidth, config.bandwidth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TopologyKindTest,
    ::testing::Values(TopologyKind::kPreferentialAttachment,
                      TopologyKind::kWaxman, TopologyKind::kRingLattice,
                      TopologyKind::kStar, TopologyKind::kTransitStub),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Topology, PrefAttachHasHeavyTail) {
  TopologyConfig config;
  config.nodes = 400;
  config.pa_edges_per_node = 2;
  util::RandomStream rng(42, "t");
  const Graph g = generate_topology(config, rng);
  const auto deg = g.degree_sequence();
  // Hubs exist: the max degree is much larger than the median.
  EXPECT_GE(deg.front(), 4 * deg[deg.size() / 2]);
}

TEST(Topology, StarHasSingleHub) {
  TopologyConfig config;
  config.kind = TopologyKind::kStar;
  config.nodes = 10;
  util::RandomStream rng(1, "t");
  const Graph g = generate_topology(config, rng);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_EQ(g.edge_count(), 9u);
}

TEST(Topology, RingLatticeIsRegular) {
  TopologyConfig config;
  config.kind = TopologyKind::kRingLattice;
  config.nodes = 20;
  config.lattice_neighbors = 2;
  util::RandomStream rng(1, "t");
  const Graph g = generate_topology(config, rng);
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Topology, SingleNodeGraph) {
  TopologyConfig config;
  config.nodes = 1;
  util::RandomStream rng(1, "t");
  const Graph g = generate_topology(config, rng);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, RejectsZeroNodes) {
  TopologyConfig config;
  config.nodes = 0;
  util::RandomStream rng(1, "t");
  EXPECT_THROW(generate_topology(config, rng), std::invalid_argument);
}

TEST(Topology, RejectsBadLinkParams) {
  TopologyConfig config;
  config.nodes = 10;
  config.latency_max = config.latency_min - 1.0;
  util::RandomStream rng(1, "t");
  EXPECT_THROW(generate_topology(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace scal::net
