// Tuner tests use an analytic fake runner so they are fast and the
// optimum is known in closed form.

#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::core {
namespace {

/// Fake grid with a known interior optimum: G = 100 + 2000/tau + 3*tau
/// is minimized at tau = sqrt(2000/3) ~= 25.8, which lies inside the
/// efficiency band (efficiency peaks at tau = 20 and decays away).
grid::SimulationResult fake_sim(const grid::GridConfig& config) {
  const double tau = config.tuning.update_interval;
  grid::SimulationResult r;
  r.G_scheduler = 100.0 + 2000.0 / tau + 3.0 * tau;
  const double e = 0.60 - 0.004 * std::abs(tau - 20.0);
  // Back out F/H so that efficiency() returns e.
  r.F = 1000.0;
  r.H_control = r.F / e - r.F - r.G_scheduler;
  return r;
}

TunerConfig tuner_config() {
  TunerConfig t;
  t.e0 = 0.58;
  t.band = 0.02;  // tau within [10, 30] keeps e in [0.56, 0.60]
  t.evaluations = 120;
  return t;
}

grid::GridConfig any_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  return config;
}

TEST(PenalizedObjective, NoPenaltyInsideBand) {
  TunerConfig t = tuner_config();
  grid::SimulationResult r;
  r.F = 58.0;
  r.G_scheduler = 10.0;
  r.H_control = 32.0;  // E = 0.58 exactly
  EXPECT_DOUBLE_EQ(penalized_objective(r, t), 10.0);
}

TEST(PenalizedObjective, QuadraticPenaltyOutsideBand) {
  TunerConfig t = tuner_config();
  t.penalty_weight = 10.0;
  grid::SimulationResult r;
  r.F = 100.0;
  r.G_scheduler = 50.0;
  r.H_control = 0.0;  // E = 2/3, far above the band
  const double excess =
      (std::abs(100.0 / 150.0 - t.e0) - t.band) / t.band;
  EXPECT_NEAR(penalized_objective(r, t),
              50.0 * (1.0 + 10.0 * excess * excess), 1e-9);
}

TEST(Tuner, FindsBandFeasibleMinimum) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  const auto outcome =
      tune_enablers(any_config(), scase, tuner_config(), fake_sim);
  EXPECT_TRUE(outcome.feasible);
  // The analytic optimum is tau = sqrt(2000/3) ~= 25.8, inside the band.
  EXPECT_NEAR(outcome.tuning.update_interval, 25.8, 5.0);
  EXPECT_EQ(outcome.evaluations, tuner_config().evaluations);
}

TEST(Tuner, WarmStartConvergesWithTinyBudget) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  TunerConfig t = tuner_config();
  t.evaluations = 5;
  grid::Tuning warm;
  warm.update_interval = 24.0;
  warm.neighborhood_size = 3;
  warm.link_delay_scale = 1.0;
  const auto outcome =
      tune_enablers(any_config(), scase, t, fake_sim, warm);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_NEAR(outcome.tuning.update_interval, 24.0, 6.0);
}

TEST(Tuner, InfeasibleBandReported) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  TunerConfig t = tuner_config();
  t.e0 = 0.99;  // unreachable for the fake system
  const auto outcome = tune_enablers(any_config(), scase, t, fake_sim);
  EXPECT_FALSE(outcome.feasible);
}

TEST(Tuner, OutcomeResultMatchesBestTuning) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  const auto outcome =
      tune_enablers(any_config(), scase, tuner_config(), fake_sim);
  grid::GridConfig best = any_config();
  best.tuning = outcome.tuning;
  const auto rerun = fake_sim(best);
  EXPECT_DOUBLE_EQ(outcome.result.G(), rerun.G());
  EXPECT_DOUBLE_EQ(outcome.result.efficiency(), rerun.efficiency());
}

TEST(Tuner, DeterministicForFixedSearchSeed) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  const auto a = tune_enablers(any_config(), scase, tuner_config(), fake_sim);
  const auto b = tune_enablers(any_config(), scase, tuner_config(), fake_sim);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_DOUBLE_EQ(a.tuning.update_interval, b.tuning.update_interval);
}

}  // namespace
}  // namespace scal::core
