// Determinism contract of the tuner's evaluation cache and session
// backend: the tune outcome and the anneal log — including the `cached`
// flags — must be byte-identical with the cache on or off, at any job
// count, and with the reusable-session backend vs the stateless runner.

#include <gtest/gtest.h>

#include <cmath>

#include "core/tuner.hpp"
#include "exec/thread_pool.hpp"
#include "obs/anneal_log.hpp"
#include "rms/session.hpp"

namespace scal::core {
namespace {

/// Analytic fake grid (same shape as tuner_test.cpp): G is minimized at
/// tau ~= 25.8 inside the efficiency band.
grid::SimulationResult fake_sim(const grid::GridConfig& config) {
  const double tau = config.tuning.update_interval;
  grid::SimulationResult r;
  r.G_scheduler = 100.0 + 2000.0 / tau + 3.0 * tau;
  const double e = 0.60 - 0.004 * std::abs(tau - 20.0);
  r.F = 1000.0;
  r.H_control = r.F / e - r.F - r.G_scheduler;
  return r;
}

TunerConfig base_tuner() {
  TunerConfig t;
  t.e0 = 0.58;
  t.band = 0.02;
  t.evaluations = 24;
  t.restarts = 3;
  return t;
}

grid::GridConfig analytic_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  return config;
}

grid::Tuning warm_tuning() {
  grid::Tuning warm;
  warm.update_interval = 24.0;
  warm.neighborhood_size = 3;
  warm.link_delay_scale = 1.0;
  return warm;
}

void expect_same_outcome(const TuneOutcome& a, const TuneOutcome& b) {
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.tuning.update_interval, b.tuning.update_interval);
  EXPECT_EQ(a.tuning.neighborhood_size, b.tuning.neighborhood_size);
  EXPECT_EQ(a.tuning.link_delay_scale, b.tuning.link_delay_scale);
  EXPECT_EQ(a.tuning.volunteer_interval, b.tuning.volunteer_interval);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_prior_hits, b.cache_prior_hits);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.result.G(), b.result.G());
  EXPECT_EQ(a.result.efficiency(), b.result.efficiency());
}

void expect_same_log(const obs::AnnealLog& a, const obs::AnnealLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const obs::AnnealRecord& ra = a.records()[i];
    const obs::AnnealRecord& rb = b.records()[i];
    EXPECT_EQ(ra.label, rb.label) << "row " << i;
    EXPECT_EQ(ra.chain, rb.chain) << "row " << i;
    EXPECT_EQ(ra.iteration, rb.iteration) << "row " << i;
    EXPECT_EQ(ra.temperature, rb.temperature) << "row " << i;
    EXPECT_EQ(ra.candidate_value, rb.candidate_value) << "row " << i;
    EXPECT_EQ(ra.current_value, rb.current_value) << "row " << i;
    EXPECT_EQ(ra.best_value, rb.best_value) << "row " << i;
    EXPECT_EQ(ra.accepted, rb.accepted) << "row " << i;
    EXPECT_EQ(ra.improved, rb.improved) << "row " << i;
    EXPECT_EQ(ra.cached, rb.cached) << "row " << i;
  }
}

TEST(TunerCache, CacheOnOffBitIdentical) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  obs::AnnealLog log_on;
  obs::AnnealLog log_off;

  TunerConfig on = base_tuner();
  on.anneal_log = &log_on;
  const TuneOutcome with_cache =
      tune_enablers(analytic_config(), scase, on, fake_sim, warm_tuning());

  TunerConfig off = base_tuner();
  off.cache_values = false;
  off.anneal_log = &log_off;
  const TuneOutcome without_cache =
      tune_enablers(analytic_config(), scase, off, fake_sim, warm_tuning());

  expect_same_outcome(with_cache, without_cache);
  expect_same_log(log_on, log_off);
  EXPECT_FALSE(log_on.empty());
}

TEST(TunerCache, SerialVsParallelBitIdentical) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  obs::AnnealLog log_serial;
  obs::AnnealLog log_parallel;

  TunerConfig serial = base_tuner();
  serial.anneal_log = &log_serial;
  const TuneOutcome serial_outcome =
      tune_enablers(analytic_config(), scase, serial, fake_sim,
                    warm_tuning());

  exec::ThreadPool pool(3);
  TunerConfig parallel = base_tuner();
  parallel.anneal_log = &log_parallel;
  parallel.pool = &pool;
  const TuneOutcome parallel_outcome =
      tune_enablers(analytic_config(), scase, parallel, fake_sim,
                    warm_tuning());

  expect_same_outcome(serial_outcome, parallel_outcome);
  expect_same_log(log_serial, log_parallel);
}

TEST(TunerCache, ChainZeroStartIsACachedAnchorRepeat) {
  // Chain 0 starts at the better warm anchor, so its iteration-0
  // evaluation repeats an anchor key and must be flagged cached.
  const ScalingCase scase = ScalingCase::case1_network_size();
  obs::AnnealLog log;
  TunerConfig tuner = base_tuner();
  tuner.anneal_log = &log;
  tune_enablers(analytic_config(), scase, tuner, fake_sim, warm_tuning());

  bool found = false;
  for (const obs::AnnealRecord& rec : log.records()) {
    if (rec.temperature > 0.0 && rec.chain == 0 && rec.iteration == 0) {
      EXPECT_TRUE(rec.cached);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // The very first record (the warm anchor) is never a hit.
  EXPECT_FALSE(log.records().front().cached);
}

TEST(TunerCache, SharedCacheSecondTuneIsAllPriorHits) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  EvalCache cache;
  TunerConfig tuner = base_tuner();
  tuner.cache = &cache;

  const TuneOutcome first =
      tune_enablers(analytic_config(), scase, tuner, fake_sim);
  EXPECT_EQ(first.cache_prior_hits, 0u);

  const TuneOutcome second =
      tune_enablers(analytic_config(), scase, tuner, fake_sim);
  // Identical tune against a warm cache: every evaluation is a hit, and
  // the unique keys among them are prior-epoch hits.
  EXPECT_EQ(second.cache_hits, second.evaluations);
  EXPECT_GT(second.cache_prior_hits, 0u);
  // The search result itself is untouched by the warm cache.
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.tuning.update_interval, second.tuning.update_interval);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.result.G(), second.result.G());
}

TEST(TunerCache, SessionBackendMatchesStatelessRunner) {
  // Real simulations, small: the reusable-session backend (empty
  // runner) must reproduce the stateless per-evaluation build exactly.
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 60;
  config.cluster_size = 20;
  config.horizon = 150.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;

  const ScalingCase scase = ScalingCase::case1_network_size();
  TunerConfig tuner;
  tuner.e0 = 0.40;
  tuner.band = 0.05;
  tuner.evaluations = 6;
  tuner.restarts = 2;

  obs::AnnealLog log_stateless;
  obs::AnnealLog log_session;
  TunerConfig stateless = tuner;
  stateless.anneal_log = &log_stateless;
  const TuneOutcome via_runner = tune_enablers(
      config, scase, stateless, default_runner(), config.tuning);

  rms::SessionPool sessions;
  EvalCache cache;
  TunerConfig session_backed = tuner;
  session_backed.anneal_log = &log_session;
  session_backed.sessions = &sessions;
  session_backed.cache = &cache;
  const TuneOutcome via_sessions =
      tune_enablers(config, scase, session_backed, {}, config.tuning);

  expect_same_outcome(via_runner, via_sessions);
  expect_same_log(log_stateless, log_session);

  // A second session-backed tune over the warm pool and cache changes
  // nothing but the hit statistics.
  const TuneOutcome again =
      tune_enablers(config, scase, session_backed, {}, config.tuning);
  EXPECT_EQ(again.objective, via_sessions.objective);
  EXPECT_EQ(again.cache_hits, again.evaluations);
}

}  // namespace
}  // namespace scal::core
