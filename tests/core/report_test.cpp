#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace scal::core {
namespace {

CaseResult sample_case(grid::RmsKind rms) {
  CaseResult r;
  r.scase = ScalingCase::case1_network_size();
  r.rms = rms;
  for (double k = 1; k <= 3; ++k) {
    ScalePoint p;
    p.k = k;
    p.sim.F = 100 * k;
    p.sim.G_scheduler = 40 * k;
    p.sim.H_control = 60 * k;
    p.sim.throughput = 2.0 * k;
    p.sim.mean_response = 50.0 / k;
    p.feasible = true;
    p.tuning.update_interval = 10.0 + k;
    r.points.push_back(p);
  }
  return r;
}

TEST(Report, OverheadChartListsEverySeries) {
  const std::vector<CaseResult> results{
      sample_case(grid::RmsKind::kCentral),
      sample_case(grid::RmsKind::kLowest)};
  const std::string chart = render_overhead_chart(results, "figX");
  EXPECT_NE(chart.find("figX"), std::string::npos);
  EXPECT_NE(chart.find("CENTRAL"), std::string::npos);
  EXPECT_NE(chart.find("LOWEST"), std::string::npos);
}

TEST(Report, MeasureChartUsesExtractor) {
  const std::vector<CaseResult> results{sample_case(grid::RmsKind::kLowest)};
  const std::string chart = render_measure_chart(
      results, "tp", "throughput",
      [](const grid::SimulationResult& r) { return r.throughput; });
  EXPECT_NE(chart.find("throughput"), std::string::npos);
}

TEST(Report, CaseTableHasVerdictColumnsAndConstants) {
  const std::string table = render_case_table(sample_case(
      grid::RmsKind::kSymmetric));
  EXPECT_NE(table.find("Sy-I"), std::string::npos);
  EXPECT_NE(table.find("alpha="), std::string::npos);
  EXPECT_NE(table.find("dg/dk"), std::string::npos);
  EXPECT_NE(table.find("scalable"), std::string::npos);
}

TEST(Report, SummaryTableOneRowPerRms) {
  const std::vector<CaseResult> results{
      sample_case(grid::RmsKind::kCentral),
      sample_case(grid::RmsKind::kAuction)};
  const std::string table = render_summary_table(results);
  EXPECT_NE(table.find("CENTRAL"), std::string::npos);
  EXPECT_NE(table.find("AUCTION"), std::string::npos);
  EXPECT_NE(table.find("3/3"), std::string::npos);  // band held everywhere
}

TEST(Report, CsvRoundTripRowCount) {
  const std::string path = ::testing::TempDir() + "/scal_report_test.csv";
  write_case_csv({sample_case(grid::RmsKind::kCentral),
                  sample_case(grid::RmsKind::kLowest)},
                 path);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + 2 * 3);  // header + 2 RMS x 3 points
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scal::core
