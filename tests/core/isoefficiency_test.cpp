#include "core/isoefficiency.hpp"

#include <gtest/gtest.h>

namespace scal::core {
namespace {

ScalePoint point(double k, double F, double G, double H,
                 bool feasible = true) {
  ScalePoint p;
  p.k = k;
  p.sim.F = F;
  p.sim.G_scheduler = G;
  p.sim.H_control = H;
  p.feasible = feasible;
  return p;
}

CaseResult linear_case() {
  CaseResult r;
  r.scase = ScalingCase::case1_network_size();
  r.rms = grid::RmsKind::kLowest;
  // Perfect isoefficiency: F, G, H all scale linearly.
  for (double k = 1; k <= 4; ++k) {
    r.points.push_back(point(k, 100 * k, 50 * k, 50 * k));
  }
  return r;
}

TEST(Analyze, LinearScalingIsScalableThroughout) {
  const IsoefficiencyReport report = analyze(linear_case());
  ASSERT_EQ(report.k.size(), 4u);
  EXPECT_DOUBLE_EQ(report.g[0], 1.0);
  EXPECT_DOUBLE_EQ(report.g[3], 4.0);
  for (const double slope : report.g_slopes) {
    EXPECT_DOUBLE_EQ(slope, 1.0);
  }
  for (const auto v : report.verdicts) {
    EXPECT_EQ(v, SegmentVerdict::kScalable);
  }
  EXPECT_DOUBLE_EQ(report.scalable_through, 4.0);
  EXPECT_NEAR(report.overall_slope, 1.0, 1e-12);
  // Constant efficiency at every k.
  for (const double e : report.E) EXPECT_DOUBLE_EQ(e, 0.5);
}

TEST(Analyze, SuperlinearOverheadFlagsUnscalable) {
  CaseResult r;
  r.scase = ScalingCase::case2_service_rate();
  r.rms = grid::RmsKind::kCentral;
  // G grows quadratically while F grows linearly.
  for (double k = 1; k <= 5; ++k) {
    r.points.push_back(point(k, 100 * k, 20 * k * k, 50 * k));
  }
  const IsoefficiencyReport report = analyze(r);
  // Slopes increase each segment: every segment after the first fails
  // the non-increasing-slope test.
  EXPECT_EQ(report.verdicts[1], SegmentVerdict::kUnscalable);
  EXPECT_EQ(report.verdicts.back(), SegmentVerdict::kUnscalable);
  EXPECT_LT(report.scalable_through, 5.0);
}

TEST(Analyze, GrowthConditionFailureFlagsUnscalable) {
  CaseResult r;
  r.scase = ScalingCase::case1_network_size();
  // F flat while G explodes: Equation (2) must fail at large k.
  r.points.push_back(point(1, 100, 50, 50));
  r.points.push_back(point(2, 110, 500, 50));
  const IsoefficiencyReport report = analyze(r);
  EXPECT_TRUE(report.growth_condition[0]);  // base trivially holds
  EXPECT_FALSE(report.growth_condition[1]);
  EXPECT_EQ(report.verdicts[0], SegmentVerdict::kUnscalable);
  EXPECT_DOUBLE_EQ(report.scalable_through, 1.0);
}

TEST(Analyze, DecreasingSlopeIsScalableEvenWhenGrowing) {
  CaseResult r;
  r.scase = ScalingCase::case1_network_size();
  // g: 1, 2.0, 2.8, 3.4 — growing but with shrinking slope.
  const double gs[] = {50, 100, 140, 170};
  for (int i = 0; i < 4; ++i) {
    const double k = i + 1.0;
    r.points.push_back(point(k, 200 * k, gs[i], 50 * k));
  }
  const IsoefficiencyReport report = analyze(r);
  for (const auto v : report.verdicts) {
    EXPECT_EQ(v, SegmentVerdict::kScalable);
  }
}

TEST(Analyze, ConstantsComeFromBasePoint) {
  const IsoefficiencyReport report = analyze(linear_case());
  // Base: F=100, G=50, H=50, E=0.5, alpha=2.
  EXPECT_DOUBLE_EQ(report.constants.alpha, 2.0);
  EXPECT_DOUBLE_EQ(report.constants.c, 0.5);
  EXPECT_DOUBLE_EQ(report.constants.c_prime, 0.5);
}

TEST(Analyze, FeasibilityCarriedThrough) {
  CaseResult r = linear_case();
  r.points[2].feasible = false;
  const IsoefficiencyReport report = analyze(r);
  EXPECT_TRUE(report.feasible[0]);
  EXPECT_FALSE(report.feasible[2]);
}

TEST(Analyze, RejectsTooFewPoints) {
  CaseResult r;
  r.points.push_back(point(1, 100, 50, 50));
  EXPECT_THROW(analyze(r), std::invalid_argument);
}

TEST(Analyze, VerdictToString) {
  EXPECT_EQ(to_string(SegmentVerdict::kScalable), "scalable");
  EXPECT_EQ(to_string(SegmentVerdict::kUnscalable), "unscalable");
}

TEST(Analyze, RpOverheadSlopesReported) {
  // Future-work item (b): the framework also measures scalability from
  // the RP overhead H(k).  H grows quadratically here while G is linear.
  CaseResult r;
  r.scase = ScalingCase::case1_network_size();
  for (double k = 1; k <= 4; ++k) {
    r.points.push_back(point(k, 100 * k, 50 * k, 10 * k * k));
  }
  const IsoefficiencyReport report = analyze(r);
  ASSERT_EQ(report.h_slopes.size(), 3u);
  // h(k) = k^2: segment slopes 3, 5, 7.
  EXPECT_DOUBLE_EQ(report.h_slopes[0], 3.0);
  EXPECT_DOUBLE_EQ(report.h_slopes[2], 7.0);
  EXPECT_NEAR(report.overall_h_slope, 5.0, 1e-9);
  // The g side stays linear.
  EXPECT_NEAR(report.overall_slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace scal::core
