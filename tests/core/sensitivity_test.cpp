#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

namespace scal::core {
namespace {

/// Fake runner: G depends deterministically on the seed.
grid::SimulationResult seeded_fake(const grid::GridConfig& config) {
  grid::SimulationResult r;
  const auto s = static_cast<double>(config.seed % 10);
  r.G_scheduler = 100.0 + s;
  r.F = 1000.0;
  r.H_control = 200.0;
  r.throughput = 5.0 + 0.1 * s;
  r.mean_response = 50.0;
  return r;
}

grid::GridConfig any_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  return config;
}

TEST(Replicate, AggregatesAcrossSeeds) {
  const auto stats = replicate(any_config(), {0, 1, 2, 3, 4}, seeded_fake);
  EXPECT_EQ(stats.G.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.G.mean(), 102.0);  // 100 + mean(0..4)
  EXPECT_DOUBLE_EQ(stats.G.min(), 100.0);
  EXPECT_DOUBLE_EQ(stats.G.max(), 104.0);
  EXPECT_DOUBLE_EQ(stats.F.mean(), 1000.0);
  EXPECT_EQ(stats.seeds.size(), 5u);
}

TEST(Replicate, ConvenienceSeedRange) {
  const auto stats = replicate(any_config(), 3, 7, seeded_fake);
  EXPECT_EQ(stats.seeds, (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_DOUBLE_EQ(stats.G.mean(), 108.0);
}

TEST(Replicate, CvIsZeroForConstantG) {
  const auto stats =
      replicate(any_config(), {10, 20, 30}, seeded_fake);  // all seed%10==0
  EXPECT_DOUBLE_EQ(stats.g_cv(), 0.0);
}

TEST(Replicate, CvPositiveForVaryingG) {
  const auto stats = replicate(any_config(), {0, 5}, seeded_fake);
  EXPECT_GT(stats.g_cv(), 0.0);
}

TEST(Replicate, RejectsEmptySeedList) {
  EXPECT_THROW(replicate(any_config(), std::vector<std::uint64_t>{},
                         seeded_fake),
               std::invalid_argument);
}

TEST(Replicate, RealSimulatorSmallSpread) {
  // Across seeds the same configuration should produce G values within
  // a sane coefficient of variation — the paper's single-run comparisons
  // rely on this.
  grid::GridConfig config;
  config.topology.nodes = 100;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.rms = grid::RmsKind::kLowest;
  const auto stats = replicate(config, 5);
  EXPECT_EQ(stats.G.count(), 5u);
  EXPECT_GT(stats.G.mean(), 0.0);
  EXPECT_LT(stats.g_cv(), 0.35);
}

}  // namespace
}  // namespace scal::core
