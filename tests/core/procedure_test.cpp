// Procedure tests run against the analytic fake runner (fast) plus one
// small real-simulation smoke case.

#include "core/procedure.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::core {
namespace {

/// Fake runner whose G depends on the configured scale (node count) and
/// the tuned update interval; deterministic and instantaneous.
grid::SimulationResult fake_runner(const grid::GridConfig& config) {
  const double nodes = static_cast<double>(config.topology.nodes);
  const double tau = config.tuning.update_interval;
  grid::SimulationResult r;
  r.F = 10.0 * nodes;
  r.G_scheduler = 0.05 * nodes + 400.0 / tau + 2.0 * tau;
  r.H_control = 8.0 * nodes;
  r.jobs_arrived = static_cast<std::uint64_t>(nodes);
  r.jobs_completed = r.jobs_arrived;
  r.jobs_succeeded = r.jobs_arrived;
  return r;
}

ProcedureConfig fast_procedure() {
  ProcedureConfig p;
  p.scase = ScalingCase::case1_network_size();
  p.scale_factors = {1, 2, 3};
  p.tuner.evaluations = 40;
  p.warm_evaluations = 15;
  const auto base_e = fake_runner([] {
    grid::GridConfig c;
    c.topology.nodes = 100;
    return c;
  }());
  p.tuner.e0 = base_e.efficiency();
  p.tuner.band = 0.05;
  return p;
}

grid::GridConfig base_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  return config;
}

TEST(Procedure, SweepsAllScaleFactors) {
  const CaseResult result = measure_scalability(
      base_config(), grid::RmsKind::kLowest, fast_procedure(), fake_runner);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_DOUBLE_EQ(result.points[0].k, 1.0);
  EXPECT_DOUBLE_EQ(result.points[2].k, 3.0);
  EXPECT_EQ(result.rms, grid::RmsKind::kLowest);
}

TEST(Procedure, TunesEachPointTowardOptimalTau) {
  // Analytic optimum of 400/tau + 2 tau is tau = sqrt(200) ~= 14.1,
  // independent of scale; every point should land near it.
  const CaseResult result = measure_scalability(
      base_config(), grid::RmsKind::kLowest, fast_procedure(), fake_runner);
  for (const auto& p : result.points) {
    EXPECT_NEAR(p.tuning.update_interval, std::sqrt(200.0), 5.0);
    EXPECT_TRUE(p.feasible);
  }
}

TEST(Procedure, ProgressCallbackFiresPerPoint) {
  int calls = 0;
  measure_scalability(base_config(), grid::RmsKind::kLowest,
                      fast_procedure(), fake_runner,
                      [&](grid::RmsKind, double, const TuneOutcome&) {
                        ++calls;
                      });
  EXPECT_EQ(calls, 3);
}

TEST(Procedure, MeasureAllCoversEveryKind) {
  const auto results = measure_all(
      base_config(),
      {grid::RmsKind::kCentral, grid::RmsKind::kLowest},
      fast_procedure(), fake_runner);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].rms, grid::RmsKind::kCentral);
  EXPECT_EQ(results[1].rms, grid::RmsKind::kLowest);
}

TEST(Procedure, RejectsEmptyScaleFactors) {
  ProcedureConfig p = fast_procedure();
  p.scale_factors.clear();
  EXPECT_THROW(measure_scalability(base_config(), grid::RmsKind::kLowest, p,
                                   fake_runner),
               std::invalid_argument);
}

TEST(Procedure, AnalysisOfSweepIsConsistent) {
  const CaseResult result = measure_scalability(
      base_config(), grid::RmsKind::kLowest, fast_procedure(), fake_runner);
  const IsoefficiencyReport report = analyze(result);
  EXPECT_EQ(report.k.size(), 3u);
  EXPECT_DOUBLE_EQ(report.g[0], 1.0);
  // F scales linearly while G grows sublinearly (fixed tau-dependent
  // part amortizes): the growth condition must hold everywhere.
  for (const bool ok : report.growth_condition) EXPECT_TRUE(ok);
}

TEST(Procedure, RealSimulationSmoke) {
  // One tiny end-to-end run through the real simulator.
  grid::GridConfig config;
  config.topology.nodes = 60;
  config.horizon = 250.0;
  config.workload.mean_interarrival = 2.0;

  ProcedureConfig p;
  p.scase = ScalingCase::case1_network_size();
  p.scale_factors = {1, 2};
  p.tuner.evaluations = 3;
  p.warm_evaluations = 2;
  p.tuner.e0 = 0.9;
  p.tuner.band = 0.5;  // wide: this smoke test is about plumbing

  const CaseResult result =
      measure_scalability(config, grid::RmsKind::kLowest, p);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_GT(result.points[0].sim.G(), 0.0);
  EXPECT_GT(result.points[1].sim.jobs_arrived,
            result.points[0].sim.jobs_arrived);
}

}  // namespace
}  // namespace scal::core
