#include "core/experiment_config.hpp"

#include <gtest/gtest.h>

namespace scal::core {
namespace {

TEST(ExperimentConfig, DefaultsSurviveEmptyIni) {
  const ExperimentConfig config =
      experiment_from_ini(util::IniFile::parse(""));
  const grid::GridConfig defaults;
  EXPECT_EQ(config.grid.topology.nodes, defaults.topology.nodes);
  EXPECT_EQ(config.grid.rms, defaults.rms);
  EXPECT_DOUBLE_EQ(config.grid.service_rate, defaults.service_rate);
  EXPECT_TRUE(config.kinds.empty());
}

TEST(ExperimentConfig, ParsesFullFile) {
  const auto config = experiment_from_ini(util::IniFile::parse(
      "[grid]\n"
      "nodes = 300\n"
      "rms = Sy-I\n"
      "topology = transit-stub\n"
      "service_rate = 16\n"
      "[workload]\n"
      "mean_interarrival = 0.5\n"
      "diurnal_amplitude = 0.4\n"
      "diurnal_period = 200\n"
      "[tuning]\n"
      "neighborhood_size = 5\n"
      "[procedure]\n"
      "case = case3\n"
      "scale_factors = 1, 2, 4\n"
      "[tuner]\n"
      "e0 = 0.7\n"
      "evaluations = 9\n"
      "[experiment]\n"
      "rms_kinds = CENTRAL, LOWEST\n"
      "csv_path = /tmp/out.csv\n"));
  EXPECT_EQ(config.grid.topology.nodes, 300u);
  EXPECT_EQ(config.grid.rms, grid::RmsKind::kSymmetric);
  EXPECT_EQ(config.grid.topology.kind, net::TopologyKind::kTransitStub);
  EXPECT_DOUBLE_EQ(config.grid.service_rate, 16.0);
  EXPECT_DOUBLE_EQ(config.grid.workload.diurnal_amplitude, 0.4);
  EXPECT_EQ(config.grid.tuning.neighborhood_size, 5u);
  EXPECT_EQ(config.procedure.scase.variable,
            ScalingVariableKind::kEstimators);
  EXPECT_EQ(config.procedure.scale_factors, (std::vector<double>{1, 2, 4}));
  EXPECT_DOUBLE_EQ(config.procedure.tuner.e0, 0.7);
  EXPECT_EQ(config.procedure.tuner.evaluations, 9u);
  ASSERT_EQ(config.kinds.size(), 2u);
  EXPECT_EQ(config.kinds[0], grid::RmsKind::kCentral);
  EXPECT_EQ(config.kinds[1], grid::RmsKind::kLowest);
  EXPECT_EQ(config.csv_path, "/tmp/out.csv");
}

TEST(ExperimentConfig, RejectsUnknownKeys) {
  EXPECT_THROW(experiment_from_ini(util::IniFile::parse(
                   "[grid]\nnodez = 100\n")),
               std::runtime_error);
}

TEST(ExperimentConfig, RejectsUnknownCaseAndTopologyAndRms) {
  EXPECT_THROW(experiment_from_ini(
                   util::IniFile::parse("[procedure]\ncase = case9\n")),
               std::runtime_error);
  EXPECT_THROW(experiment_from_ini(
                   util::IniFile::parse("[grid]\ntopology = donut\n")),
               std::runtime_error);
  EXPECT_THROW(experiment_from_ini(
                   util::IniFile::parse("[grid]\nrms = BOGUS\n")),
               std::invalid_argument);
}

TEST(ExperimentConfig, CaseAliases) {
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, ScalingVariableKind>>{
           {"network_size", ScalingVariableKind::kNetworkSize},
           {"service_rate", ScalingVariableKind::kServiceRate},
           {"estimators", ScalingVariableKind::kEstimators},
           {"neighborhood", ScalingVariableKind::kNeighborhood},
           {"lp", ScalingVariableKind::kNeighborhood}}) {
    const auto config = experiment_from_ini(
        util::IniFile::parse("[procedure]\ncase = " + name + "\n"));
    EXPECT_EQ(config.procedure.scase.variable, kind) << name;
  }
}

TEST(ExperimentConfig, RoundTripsThroughIni) {
  ExperimentConfig original;
  original.grid.topology.nodes = 777;
  original.grid.rms = grid::RmsKind::kAuction;
  original.grid.workload.mean_interarrival = 0.123;
  original.procedure.scase = ScalingCase::case4_neighborhood();
  original.procedure.scale_factors = {1, 3, 5};
  original.procedure.tuner.band = 0.07;
  original.kinds = {grid::RmsKind::kHierarchical, grid::RmsKind::kRandom};
  original.csv_path = "/tmp/x.csv";

  const auto reparsed = experiment_from_ini(experiment_to_ini(original));
  EXPECT_EQ(reparsed.grid.topology.nodes, 777u);
  EXPECT_EQ(reparsed.grid.rms, grid::RmsKind::kAuction);
  EXPECT_DOUBLE_EQ(reparsed.grid.workload.mean_interarrival, 0.123);
  EXPECT_EQ(reparsed.procedure.scase.variable,
            ScalingVariableKind::kNeighborhood);
  EXPECT_EQ(reparsed.procedure.scale_factors,
            (std::vector<double>{1, 3, 5}));
  EXPECT_DOUBLE_EQ(reparsed.procedure.tuner.band, 0.07);
  EXPECT_EQ(reparsed.kinds, original.kinds);
  EXPECT_EQ(reparsed.csv_path, "/tmp/x.csv");
}

TEST(ExperimentConfig, SampleConfigsInRepoParse) {
  // The shipped example configs must stay loadable.
  for (const char* path : {"examples/configs/small_case1.ini",
                           "examples/configs/hotspot_case4.ini"}) {
    const std::string full = std::string(SCAL_SOURCE_DIR) + "/" + path;
    EXPECT_NO_THROW({
      const auto config = load_experiment(full);
      config.grid.validate();
    }) << path;
  }
}

}  // namespace
}  // namespace scal::core
