#include "core/scaling.hpp"

#include <gtest/gtest.h>

namespace scal::core {
namespace {

grid::GridConfig base_config() {
  grid::GridConfig config;
  config.topology.nodes = 200;
  config.cluster_size = 20;
  config.estimators_per_cluster = 1;
  config.service_rate = 8.0;
  config.tuning.neighborhood_size = 2;
  config.workload.mean_interarrival = 1.0;
  return config;
}

TEST(ScalingCase, FourCasesMatchPaperTables) {
  const auto c1 = ScalingCase::case1_network_size();
  EXPECT_EQ(c1.variable, ScalingVariableKind::kNetworkSize);
  EXPECT_TRUE(c1.enablers.tune_update_interval);
  EXPECT_TRUE(c1.enablers.tune_neighborhood);
  EXPECT_TRUE(c1.enablers.tune_link_delay);
  EXPECT_FALSE(c1.enablers.tune_volunteer_interval);

  const auto c4 = ScalingCase::case4_neighborhood();
  EXPECT_EQ(c4.variable, ScalingVariableKind::kNeighborhood);
  EXPECT_FALSE(c4.enablers.tune_neighborhood);   // L_p is the variable
  EXPECT_TRUE(c4.enablers.tune_volunteer_interval);
}

TEST(ScalingCase, TableRowsIncludeWorkload) {
  for (const auto& scase :
       {ScalingCase::case1_network_size(), ScalingCase::case2_service_rate(),
        ScalingCase::case3_estimators(),
        ScalingCase::case4_neighborhood()}) {
    const auto rows = scase.scaling_variable_rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_NE(rows[1].find("Workload"), std::string::npos);
    EXPECT_EQ(scase.enabler_rows().size(), 3u);
  }
}

TEST(ApplyScale, WorkloadAlwaysScalesWithK) {
  for (const auto& scase :
       {ScalingCase::case1_network_size(), ScalingCase::case2_service_rate(),
        ScalingCase::case3_estimators(),
        ScalingCase::case4_neighborhood()}) {
    const auto scaled = apply_scale(base_config(), scase, 4.0);
    EXPECT_DOUBLE_EQ(scaled.workload.mean_interarrival, 0.25);
  }
}

TEST(ApplyScale, Case1ScalesNodes) {
  const auto scaled =
      apply_scale(base_config(), ScalingCase::case1_network_size(), 3.0);
  EXPECT_EQ(scaled.topology.nodes, 600u);
  EXPECT_DOUBLE_EQ(scaled.service_rate, 8.0);  // untouched
}

TEST(ApplyScale, Case2ScalesServiceRate) {
  const auto scaled =
      apply_scale(base_config(), ScalingCase::case2_service_rate(), 2.5);
  EXPECT_DOUBLE_EQ(scaled.service_rate, 20.0);
  EXPECT_EQ(scaled.topology.nodes, 200u);
}

TEST(ApplyScale, Case3AddsEstimatorNodesKeepsRpFixed) {
  const grid::GridConfig base = base_config();  // 10 clusters
  const auto scaled =
      apply_scale(base, ScalingCase::case3_estimators(), 4.0);
  EXPECT_EQ(scaled.estimators_per_cluster, 4u);
  // 3 extra estimators per cluster, 10 clusters: 30 new RMS nodes.
  EXPECT_EQ(scaled.topology.nodes, 230u);
  EXPECT_EQ(scaled.cluster_size, 23u);
  // Resources per cluster unchanged: cluster_size - 1 - estimators.
  EXPECT_EQ(scaled.cluster_size - 1 - scaled.estimators_per_cluster,
            base.cluster_size - 1 - base.estimators_per_cluster);
}

TEST(ApplyScale, Case4ScalesNeighborhood) {
  const auto scaled =
      apply_scale(base_config(), ScalingCase::case4_neighborhood(), 6.0);
  EXPECT_EQ(scaled.tuning.neighborhood_size, 12u);
}

TEST(ApplyScale, KOneIsIdentityForStructure) {
  const grid::GridConfig base = base_config();
  for (const auto& scase :
       {ScalingCase::case1_network_size(), ScalingCase::case2_service_rate(),
        ScalingCase::case3_estimators(),
        ScalingCase::case4_neighborhood()}) {
    const auto scaled = apply_scale(base, scase, 1.0);
    EXPECT_EQ(scaled.topology.nodes, base.topology.nodes);
    EXPECT_DOUBLE_EQ(scaled.service_rate, base.service_rate);
    EXPECT_EQ(scaled.estimators_per_cluster, base.estimators_per_cluster);
    EXPECT_EQ(scaled.tuning.neighborhood_size,
              base.tuning.neighborhood_size);
  }
}

TEST(ApplyScale, RejectsSubUnityK) {
  EXPECT_THROW(
      apply_scale(base_config(), ScalingCase::case1_network_size(), 0.5),
      std::invalid_argument);
}

TEST(EnablerSpace, VariableSetMatchesCase) {
  const opt::Space s13 = enabler_space(ScalingCase::case1_network_size());
  EXPECT_EQ(s13.size(), 3u);
  EXPECT_NO_THROW(s13.index_of("update_interval"));
  EXPECT_NO_THROW(s13.index_of("neighborhood_size"));
  EXPECT_NO_THROW(s13.index_of("link_delay_scale"));

  const opt::Space s4 = enabler_space(ScalingCase::case4_neighborhood());
  EXPECT_EQ(s4.size(), 3u);
  EXPECT_NO_THROW(s4.index_of("volunteer_interval"));
  EXPECT_THROW(s4.index_of("neighborhood_size"), std::out_of_range);
}

TEST(EnablerSpace, PointTuningRoundTrip) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  grid::Tuning tuning;
  tuning.update_interval = 33.0;
  tuning.neighborhood_size = 5;
  tuning.link_delay_scale = 0.8;
  tuning.volunteer_interval = 77.0;
  const opt::Point p = point_from_tuning(scase, tuning);
  const grid::Tuning back = tuning_from_point(scase, tuning, p);
  EXPECT_DOUBLE_EQ(back.update_interval, 33.0);
  EXPECT_EQ(back.neighborhood_size, 5u);
  EXPECT_DOUBLE_EQ(back.link_delay_scale, 0.8);
  EXPECT_DOUBLE_EQ(back.volunteer_interval, 77.0);  // untouched passthrough
}

TEST(EnablerSpace, TuningFromPointRejectsWrongDimension) {
  const ScalingCase scase = ScalingCase::case1_network_size();
  EXPECT_THROW(tuning_from_point(scase, grid::Tuning{}, {1.0}),
               std::invalid_argument);
}

TEST(EnablerSpace, WithAggregationAppendsKnobsLast) {
  const ScalingCase base = ScalingCase::case1_network_size();
  const ScalingCase agg = base.with_aggregation();
  const opt::Space sb = enabler_space(base);
  const opt::Space sa = enabler_space(agg);
  // Aggregation adds three dimensions after the paper's enablers, so
  // existing indices never shift.
  EXPECT_EQ(sa.size(), sb.size() + 3u);
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_EQ(sa.var(i).name, sb.var(i).name);
  }
  EXPECT_EQ(sa.index_of("agg_fanout"), sb.size());
  EXPECT_EQ(sa.index_of("agg_batch"), sb.size() + 1u);
  EXPECT_EQ(sa.index_of("agg_flush"), sb.size() + 2u);
  // The enabler table rows follow the same order.
  const auto rows = agg.enabler_rows();
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows[rows.size() - 3], "Aggregation tree fan-out");
  EXPECT_EQ(rows[rows.size() - 2], "Aggregation max batch size");
  EXPECT_EQ(rows[rows.size() - 1], "Aggregation flush interval");
}

TEST(EnablerSpace, AggregationPointTuningRoundTrip) {
  const ScalingCase scase = ScalingCase::case2_service_rate().with_aggregation();
  grid::Tuning tuning;
  tuning.update_interval = 21.0;
  tuning.agg_fanout = 5;
  tuning.agg_batch = 12;
  tuning.agg_flush = 7.5;
  const opt::Point p = point_from_tuning(scase, tuning);
  EXPECT_EQ(p.size(), enabler_space(scase).size());
  const grid::Tuning back = tuning_from_point(scase, grid::Tuning{}, p);
  EXPECT_DOUBLE_EQ(back.update_interval, 21.0);
  EXPECT_EQ(back.agg_fanout, 5u);
  EXPECT_EQ(back.agg_batch, 12u);
  EXPECT_DOUBLE_EQ(back.agg_flush, 7.5);
}

}  // namespace
}  // namespace scal::core
