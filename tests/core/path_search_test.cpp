#include "core/path_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::core {
namespace {

/// Fake runner that punishes node growth: G scales with nodes, and the
/// efficiency falls out of band when the node count exceeds a cliff.
/// The best path for this system is pure service-rate growth (r = 0).
grid::SimulationResult node_averse_fake(const grid::GridConfig& config) {
  const double nodes = static_cast<double>(config.topology.nodes);
  grid::SimulationResult r;
  r.G_scheduler = nodes;
  r.F = 1000.0;
  const double e = nodes <= 250.0 ? 0.6 : 0.3;  // cliff at 250 nodes
  r.H_control = r.F / e - r.F - r.G_scheduler;
  return r;
}

PathSearchConfig search_config() {
  PathSearchConfig config;
  config.scale_factors = {1, 2, 4};
  config.splits = {0.0, 0.5, 1.0};
  config.tuner.e0 = 0.6;
  config.tuner.band = 0.05;
  config.tuner.evaluations = 6;
  return config;
}

grid::GridConfig base_config() {
  grid::GridConfig config;
  config.topology.nodes = 200;
  return config;
}

TEST(PathSearch, MixedScalePreservesTotalCapacityGrowth) {
  const grid::GridConfig base = base_config();
  for (const double split : {0.0, 0.25, 0.5, 1.0}) {
    const auto scaled = apply_mixed_scale(base, 4.0, split);
    const double node_growth =
        static_cast<double>(scaled.topology.nodes) /
        static_cast<double>(base.topology.nodes);
    const double rate_growth = scaled.service_rate / base.service_rate;
    EXPECT_NEAR(node_growth * rate_growth, 4.0, 0.1) << split;
    EXPECT_DOUBLE_EQ(scaled.workload.mean_interarrival,
                     base.workload.mean_interarrival / 4.0);
  }
}

TEST(PathSearch, PureSplitsMatchCases) {
  const grid::GridConfig base = base_config();
  const auto nodes_only = apply_mixed_scale(base, 3.0, 1.0);
  EXPECT_EQ(nodes_only.topology.nodes, 600u);
  EXPECT_DOUBLE_EQ(nodes_only.service_rate, base.service_rate);
  const auto rate_only = apply_mixed_scale(base, 3.0, 0.0);
  EXPECT_EQ(rate_only.topology.nodes, 200u);
  EXPECT_DOUBLE_EQ(rate_only.service_rate, 3.0 * base.service_rate);
}

TEST(PathSearch, RejectsBadArguments) {
  EXPECT_THROW(apply_mixed_scale(base_config(), 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(apply_mixed_scale(base_config(), 2.0, 1.5),
               std::invalid_argument);
  PathSearchConfig empty = search_config();
  empty.splits.clear();
  EXPECT_THROW(search_scaling_path(base_config(), grid::RmsKind::kLowest,
                                   empty, node_averse_fake),
               std::invalid_argument);
}

TEST(PathSearch, FindsTheViableGrowthDirection) {
  const PathResult result = search_scaling_path(
      base_config(), grid::RmsKind::kLowest, search_config(),
      node_averse_fake);
  ASSERT_EQ(result.points.size(), 3u);
  // Beyond k = 1 the node cliff forbids node growth: the best path must
  // pick pure service-rate growth.
  EXPECT_DOUBLE_EQ(result.points[1].split, 0.0);
  EXPECT_DOUBLE_EQ(result.points[2].split, 0.0);
  EXPECT_TRUE(result.rp_scalable);
  EXPECT_DOUBLE_EQ(result.scalable_through, 4.0);
  for (const auto& p : result.points) EXPECT_TRUE(p.any_feasible);
}

TEST(PathSearch, DeclaresUnscalableWhenNoSplitIsFeasible) {
  // Every direction falls off the efficiency cliff: e is out of band
  // whenever total capacity grew (any k > 1 config differs from base).
  const SimRunner doomed = [](const grid::GridConfig& config) {
    grid::SimulationResult r;
    r.G_scheduler = 10.0;
    r.F = 1000.0;
    const bool grown = config.topology.nodes > 200 ||
                       config.service_rate > grid::GridConfig{}.service_rate;
    const double e = grown ? 0.2 : 0.6;
    r.H_control = r.F / e - r.F - r.G_scheduler;
    return r;
  };
  const PathResult result = search_scaling_path(
      base_config(), grid::RmsKind::kLowest, search_config(), doomed);
  EXPECT_FALSE(result.rp_scalable);
  EXPECT_DOUBLE_EQ(result.scalable_through, 1.0);
}

TEST(PathSearch, AsCaseResultFeedsTheAnalyzer) {
  const PathResult result = search_scaling_path(
      base_config(), grid::RmsKind::kCentral, search_config(),
      node_averse_fake);
  const CaseResult as_case = result.as_case_result(grid::RmsKind::kCentral);
  ASSERT_EQ(as_case.points.size(), 3u);
  EXPECT_EQ(as_case.rms, grid::RmsKind::kCentral);
  const IsoefficiencyReport report = analyze(as_case);
  EXPECT_EQ(report.k.size(), 3u);
  // Along the rate-only path G stays flat: maximal scalability.
  EXPECT_NEAR(report.overall_slope, 0.0, 0.05);
}

}  // namespace
}  // namespace scal::core
