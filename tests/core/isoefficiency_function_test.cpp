#include "core/isoefficiency_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::core {
namespace {

/// Fake system with a closed-form efficiency: E = 1 / (1 + load) where
/// load = multiplier (arrival rate relative to proportional scaling) —
/// independent of k, so the isoefficiency function is exactly linear
/// (multiplier constant, W(k) ~ k, log-log slope 1).
grid::SimulationResult linear_fake(const grid::GridConfig& config) {
  const double k = static_cast<double>(config.topology.nodes) / 100.0;
  const double rate = 1.0 / config.workload.mean_interarrival;
  const double multiplier = rate / k;  // base interarrival is 1.0
  grid::SimulationResult r;
  r.F = 100.0;
  r.H_control = 100.0 * multiplier;  // E = 1 / (1 + multiplier)
  return r;
}

/// Fake whose efficiency erodes with k: holding E needs the multiplier
/// to *shrink* like 1/k, so total W(k) stays flat (log-log slope ~ 0).
grid::SimulationResult eroding_fake(const grid::GridConfig& config) {
  const double k = static_cast<double>(config.topology.nodes) / 100.0;
  const double rate = 1.0 / config.workload.mean_interarrival;
  const double multiplier = rate / k;
  grid::SimulationResult r;
  r.F = 100.0;
  r.H_control = 100.0 * multiplier * k;  // E = 1 / (1 + m k)
  return r;
}

grid::GridConfig base_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  config.workload.mean_interarrival = 1.0;
  return config;
}

IsoefficiencyFunctionConfig function_config(double e0) {
  IsoefficiencyFunctionConfig config;
  config.scale_factors = {1, 2, 4};
  config.e0 = e0;
  config.tolerance = 0.005;
  return config;
}

TEST(IsoefficiencyFunction, LinearSystemHasUnitSlope) {
  // E = 0.5 at multiplier 1 for every k.
  const auto f = measure_isoefficiency_function(
      base_config(), function_config(0.5), linear_fake);
  ASSERT_EQ(f.points.size(), 3u);
  for (const auto& p : f.points) {
    EXPECT_TRUE(p.converged) << p.k;
    EXPECT_NEAR(p.workload_multiplier, 1.0, 0.05) << p.k;
    EXPECT_NEAR(p.achieved_efficiency, 0.5, 0.006);
  }
  EXPECT_NEAR(f.loglog_slope, 1.0, 0.05);
}

TEST(IsoefficiencyFunction, ErodingSystemHasFlatTotalWorkload) {
  const auto f = measure_isoefficiency_function(
      base_config(), function_config(0.5), eroding_fake);
  for (const auto& p : f.points) {
    EXPECT_TRUE(p.converged) << p.k;
    EXPECT_NEAR(p.workload_multiplier, 1.0 / p.k, 0.05) << p.k;
  }
  EXPECT_NEAR(f.loglog_slope, 0.0, 0.05);
}

TEST(IsoefficiencyFunction, UnbracketedTargetReportsUnconverged) {
  // e0 = 0.05 needs multiplier 19, far beyond the bracket [0.25, 4].
  const auto f = measure_isoefficiency_function(
      base_config(), function_config(0.05), linear_fake);
  for (const auto& p : f.points) {
    EXPECT_FALSE(p.converged);
    EXPECT_DOUBLE_EQ(p.workload_multiplier, 4.0);  // closest endpoint
  }
}

TEST(IsoefficiencyFunction, RejectsBadConfig) {
  IsoefficiencyFunctionConfig bad = function_config(0.5);
  bad.scale_factors.clear();
  EXPECT_THROW(
      measure_isoefficiency_function(base_config(), bad, linear_fake),
      std::invalid_argument);
  bad = function_config(1.5);
  EXPECT_THROW(
      measure_isoefficiency_function(base_config(), bad, linear_fake),
      std::invalid_argument);
}

TEST(IsoefficiencyFunction, RealSimulatorSmoke) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 80;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 1.2;

  IsoefficiencyFunctionConfig fc;
  fc.scale_factors = {1, 2};
  fc.e0 = 0.75;
  fc.tolerance = 0.03;
  fc.max_bisection_steps = 8;

  const auto f = measure_isoefficiency_function(config, fc);
  ASSERT_EQ(f.points.size(), 2u);
  for (const auto& p : f.points) {
    EXPECT_GT(p.workload_multiplier, 0.0);
    EXPECT_GT(p.sim.jobs_arrived, 0u);
  }
}

}  // namespace
}  // namespace scal::core
