// Determinism contract of the tuner's phase profiling: the profiled
// "tuner.evaluate" call counts are logical evaluations (cache hits
// included), so they are a pure function of the search trajectory —
// bit-identical serial vs parallel and with the cache on or off.

#include <gtest/gtest.h>

#include <cmath>

#include "core/tuner.hpp"
#include "exec/thread_pool.hpp"
#include "obs/phase_profiler.hpp"

namespace scal::core {
namespace {

/// Analytic fake grid (same shape as tuner_test.cpp): G is minimized at
/// tau ~= 25.8 inside the efficiency band.
grid::SimulationResult fake_sim(const grid::GridConfig& config) {
  const double tau = config.tuning.update_interval;
  grid::SimulationResult r;
  r.G_scheduler = 100.0 + 2000.0 / tau + 3.0 * tau;
  const double e = 0.60 - 0.004 * std::abs(tau - 20.0);
  r.F = 1000.0;
  r.H_control = r.F / e - r.F - r.G_scheduler;
  return r;
}

TunerConfig base_tuner() {
  TunerConfig t;
  t.e0 = 0.58;
  t.band = 0.02;
  t.evaluations = 24;
  t.restarts = 3;
  return t;
}

grid::GridConfig analytic_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  return config;
}

grid::Tuning warm_tuning() {
  grid::Tuning warm;
  warm.update_interval = 24.0;
  warm.neighborhood_size = 3;
  warm.link_delay_scale = 1.0;
  return warm;
}

std::uint64_t evaluate_calls(const obs::PhaseProfiler& profiler) {
  for (const auto& phase : profiler.phases()) {
    if (phase.name == "tuner.evaluate") return phase.calls;
  }
  return 0;
}

TEST(TunerProfile, CountsLogicalEvaluationsIncludingCacheHits) {
  obs::PhaseProfiler profiler(/*enabled=*/true);
  TunerConfig tuner = base_tuner();
  tuner.profiler = &profiler;
  const ScalingCase scase = ScalingCase::case1_network_size();
  // The warm anchor guarantees at least one repeated key, so the search
  // sees cache hits (tuner_cache_test.cpp, ChainZeroStart...).
  const TuneOutcome outcome =
      tune_enablers(analytic_config(), scase, tuner, fake_sim,
                    warm_tuning());

  // Every logical evaluation is timed, hit or miss, so the profiled
  // count equals the outcome's evaluation count.
  EXPECT_EQ(evaluate_calls(profiler), outcome.evaluations);
  EXPECT_GT(outcome.cache_hits, 0u);
}

TEST(TunerProfile, SerialVsParallelCountsBitIdentical) {
  const ScalingCase scase = ScalingCase::case1_network_size();

  obs::PhaseProfiler serial_profiler(/*enabled=*/true);
  TunerConfig serial = base_tuner();
  serial.profiler = &serial_profiler;
  const TuneOutcome serial_outcome =
      tune_enablers(analytic_config(), scase, serial, fake_sim);

  exec::ThreadPool pool(3);
  obs::PhaseProfiler parallel_profiler(/*enabled=*/true);
  TunerConfig parallel = base_tuner();
  parallel.profiler = &parallel_profiler;
  parallel.pool = &pool;
  const TuneOutcome parallel_outcome =
      tune_enablers(analytic_config(), scase, parallel, fake_sim);

  EXPECT_EQ(serial_outcome.evaluations, parallel_outcome.evaluations);
  EXPECT_EQ(serial_profiler.counts_json(), parallel_profiler.counts_json());
}

TEST(TunerProfile, CacheOnOffCountsBitIdentical) {
  const ScalingCase scase = ScalingCase::case1_network_size();

  obs::PhaseProfiler on_profiler(/*enabled=*/true);
  TunerConfig on = base_tuner();
  on.profiler = &on_profiler;
  tune_enablers(analytic_config(), scase, on, fake_sim);

  obs::PhaseProfiler off_profiler(/*enabled=*/true);
  TunerConfig off = base_tuner();
  off.profiler = &off_profiler;
  off.cache_values = false;
  tune_enablers(analytic_config(), scase, off, fake_sim);

  EXPECT_EQ(on_profiler.counts_json(), off_profiler.counts_json());
}

TEST(TunerProfile, SuccessiveTunesAccumulateIntoOneProfiler) {
  obs::PhaseProfiler profiler(/*enabled=*/true);
  TunerConfig tuner = base_tuner();
  tuner.profiler = &profiler;
  const ScalingCase scase = ScalingCase::case1_network_size();

  const TuneOutcome first =
      tune_enablers(analytic_config(), scase, tuner, fake_sim);
  const TuneOutcome second =
      tune_enablers(analytic_config(), scase, tuner, fake_sim);

  EXPECT_EQ(evaluate_calls(profiler),
            first.evaluations + second.evaluations);
}

TEST(TunerProfile, NullProfilerLeavesOutcomeUntouched) {
  const ScalingCase scase = ScalingCase::case1_network_size();

  TunerConfig plain = base_tuner();
  const TuneOutcome without =
      tune_enablers(analytic_config(), scase, plain, fake_sim);

  obs::PhaseProfiler profiler(/*enabled=*/true);
  TunerConfig profiled = base_tuner();
  profiled.profiler = &profiler;
  const TuneOutcome with =
      tune_enablers(analytic_config(), scase, profiled, fake_sim);

  EXPECT_EQ(without.objective, with.objective);
  EXPECT_EQ(without.evaluations, with.evaluations);
  EXPECT_EQ(without.tuning.update_interval, with.tuning.update_interval);
  EXPECT_EQ(without.result.G(), with.result.G());
}

}  // namespace
}  // namespace scal::core
