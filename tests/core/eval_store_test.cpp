#include "core/eval_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace scal::core {
namespace {

namespace fs = std::filesystem;

/// Fresh path under the system temp dir, removed on destruction.
struct TempFile {
  fs::path path;
  explicit TempFile(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string str() const { return path.string(); }
};

opt::EvalKey key(double a, double b, std::uint64_t d0 = 11,
                 std::uint64_t d1 = 22) {
  opt::EvalKey k;
  k.digest = {d0, d1};
  k.point = {a, b};
  return k;
}

/// A result with every serialized field set to a distinct value,
/// including doubles without exact binary representations — the store
/// must round-trip bit patterns, not decimal renderings.
grid::SimulationResult make_result(double base) {
  grid::SimulationResult r;
  r.F = base + 0.1;
  r.G_scheduler = base + 1.0 / 3.0;
  r.G_estimator = base + 0.2;
  r.G_middleware = base + 0.3;
  r.G_aggregator = base + 0.4;
  r.H_control = base + 0.5;
  r.H_wasted = base + 0.6;
  r.G_scheduler_max_share = 0.25 + base * 1e-6;
  r.G_scheduler_max = base + 0.7;
  r.throughput = base * 7.0 + 1.0 / 7.0;
  r.mean_response = base + 0.8;
  r.p95_response = base + 0.9;
  const auto u = static_cast<std::uint64_t>(base);
  r.jobs_arrived = u + 1;
  r.jobs_local = u + 2;
  r.jobs_remote = u + 3;
  r.jobs_completed = u + 4;
  r.jobs_succeeded = u + 5;
  r.jobs_missed_deadline = u + 6;
  r.jobs_unfinished = u + 7;
  r.polls = u + 8;
  r.transfers = u + 9;
  r.auctions = u + 10;
  r.adverts = u + 11;
  r.updates_received = u + 12;
  r.updates_suppressed = u + 13;
  r.network_messages = u + 14;
  r.messages_dropped = u + 15;
  r.events_dispatched = u + 16;
  r.horizon = base * 100.0 + 0.01;
  r.ctrl_updates_in = u + 17;
  r.ctrl_updates_coalesced = u + 18;
  r.ctrl_batches = u + 19;
  r.ctrl_tree_depth = u + 20;
  r.resource_crashes = u + 21;
  r.resource_recoveries = u + 22;
  r.jobs_killed = u + 23;
  r.jobs_requeued = u + 24;
  r.jobs_lost = u + 25;
  r.round_retries = u + 26;
  r.status_evictions = u + 27;
  r.blackout_drops = u + 28;
  r.aggregator_blackouts = u + 29;
  r.messages_delayed = u + 30;
  r.messages_duplicated = u + 31;
  r.resource_downtime = base + 0.11;
  r.availability = 1.0 - base * 1e-9;
  r.workload_stats.jobs = u + 32;
  r.workload_stats.local_jobs = u + 33;
  r.workload_stats.remote_jobs = u + 34;
  r.workload_stats.mean_interarrival = base + 0.12;
  r.workload_stats.mean_exec_time = base + 0.13;
  r.workload_stats.max_exec_time = base + 0.14;
  r.workload_stats.total_demand = base + 0.15;
  r.workload_stats.span = base + 0.16;
  r.workload_from_cache = (u % 2) == 1;
  r.result_mode =
      (u % 2) == 1 ? grid::ResultMode::kStreaming : grid::ResultMode::kFull;
  r.job_log_records = u + 35;
  r.job_log_dropped = u + 36;
  r.arena_high_water = u + 37;
  r.arena_reuses = u + 38;
  r.arrival_cache_evictions = u + 39;
  r.arrival_cache_store_skips = u + 40;
  return r;
}

std::uint64_t bits(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

#define EXPECT_BITEQ(a, b) EXPECT_EQ(bits(a), bits(b))

void expect_bitwise_equal(const grid::SimulationResult& a,
                          const grid::SimulationResult& b) {
  EXPECT_BITEQ(a.F, b.F);
  EXPECT_BITEQ(a.G_scheduler, b.G_scheduler);
  EXPECT_BITEQ(a.G_estimator, b.G_estimator);
  EXPECT_BITEQ(a.G_middleware, b.G_middleware);
  EXPECT_BITEQ(a.G_aggregator, b.G_aggregator);
  EXPECT_BITEQ(a.H_control, b.H_control);
  EXPECT_BITEQ(a.H_wasted, b.H_wasted);
  EXPECT_BITEQ(a.G_scheduler_max_share, b.G_scheduler_max_share);
  EXPECT_BITEQ(a.G_scheduler_max, b.G_scheduler_max);
  EXPECT_BITEQ(a.throughput, b.throughput);
  EXPECT_BITEQ(a.mean_response, b.mean_response);
  EXPECT_BITEQ(a.p95_response, b.p95_response);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_local, b.jobs_local);
  EXPECT_EQ(a.jobs_remote, b.jobs_remote);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_succeeded, b.jobs_succeeded);
  EXPECT_EQ(a.jobs_missed_deadline, b.jobs_missed_deadline);
  EXPECT_EQ(a.jobs_unfinished, b.jobs_unfinished);
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.auctions, b.auctions);
  EXPECT_EQ(a.adverts, b.adverts);
  EXPECT_EQ(a.updates_received, b.updates_received);
  EXPECT_EQ(a.updates_suppressed, b.updates_suppressed);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_BITEQ(a.horizon, b.horizon);
  EXPECT_EQ(a.ctrl_updates_in, b.ctrl_updates_in);
  EXPECT_EQ(a.ctrl_updates_coalesced, b.ctrl_updates_coalesced);
  EXPECT_EQ(a.ctrl_batches, b.ctrl_batches);
  EXPECT_EQ(a.ctrl_tree_depth, b.ctrl_tree_depth);
  EXPECT_EQ(a.resource_crashes, b.resource_crashes);
  EXPECT_EQ(a.resource_recoveries, b.resource_recoveries);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_EQ(a.round_retries, b.round_retries);
  EXPECT_EQ(a.status_evictions, b.status_evictions);
  EXPECT_EQ(a.blackout_drops, b.blackout_drops);
  EXPECT_EQ(a.aggregator_blackouts, b.aggregator_blackouts);
  EXPECT_EQ(a.messages_delayed, b.messages_delayed);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_BITEQ(a.resource_downtime, b.resource_downtime);
  EXPECT_BITEQ(a.availability, b.availability);
  EXPECT_EQ(a.workload_stats.jobs, b.workload_stats.jobs);
  EXPECT_EQ(a.workload_stats.local_jobs, b.workload_stats.local_jobs);
  EXPECT_EQ(a.workload_stats.remote_jobs, b.workload_stats.remote_jobs);
  EXPECT_BITEQ(a.workload_stats.mean_interarrival,
               b.workload_stats.mean_interarrival);
  EXPECT_BITEQ(a.workload_stats.mean_exec_time,
               b.workload_stats.mean_exec_time);
  EXPECT_BITEQ(a.workload_stats.max_exec_time,
               b.workload_stats.max_exec_time);
  EXPECT_BITEQ(a.workload_stats.total_demand, b.workload_stats.total_demand);
  EXPECT_BITEQ(a.workload_stats.span, b.workload_stats.span);
  EXPECT_EQ(a.workload_from_cache, b.workload_from_cache);
  EXPECT_EQ(a.result_mode, b.result_mode);
  EXPECT_EQ(a.job_log_records, b.job_log_records);
  EXPECT_EQ(a.job_log_dropped, b.job_log_dropped);
  EXPECT_EQ(a.arena_high_water, b.arena_high_water);
  EXPECT_EQ(a.arena_reuses, b.arena_reuses);
  EXPECT_EQ(a.arrival_cache_evictions, b.arrival_cache_evictions);
  EXPECT_EQ(a.arrival_cache_store_skips, b.arrival_cache_store_skips);
  // The telemetry pointer is deliberately NOT serialized.
  EXPECT_EQ(b.telemetry, nullptr);
}

TEST(EvalStore, RoundTripIsBitwiseExact) {
  TempFile file("eval_store_roundtrip.evc");
  EvalCache source;
  source.insert(key(1.5, 2.5), make_result(3.0));
  source.insert(key(-0.75, 1e9, 33, 44), make_result(7.0));
  source.insert(key(0.0, -0.0), make_result(11.0));
  ASSERT_EQ(save_eval_cache(source, file.str(), "test-v1"), 3u);

  EvalCache loaded;
  const auto stats = load_eval_cache(loaded, file.str(), "test-v1");
  EXPECT_TRUE(stats.found);
  EXPECT_FALSE(stats.version_mismatch);
  EXPECT_EQ(stats.entries_in_file, 3u);
  EXPECT_EQ(stats.loaded, 3u);
  EXPECT_EQ(loaded.preloaded(), 3u);

  for (const auto& [k, v] : source.snapshot()) {
    const auto got = loaded.lookup(k);
    ASSERT_TRUE(got.value.has_value()) << "key lost in round trip";
    expect_bitwise_equal(v, *got.value);
  }
}

TEST(EvalStore, SavedFilesAreByteDeterministic) {
  TempFile a("eval_store_det_a.evc");
  TempFile b("eval_store_det_b.evc");
  // Different insertion orders into different caches: the sorted writer
  // must still emit identical bytes.
  EvalCache first;
  first.insert(key(1.0, 2.0), make_result(1.0));
  first.insert(key(3.0, 4.0, 5, 6), make_result(2.0));
  first.insert(key(-1.0, 0.5), make_result(3.0));
  EvalCache second;
  second.insert(key(-1.0, 0.5), make_result(3.0));
  second.insert(key(1.0, 2.0), make_result(1.0));
  second.insert(key(3.0, 4.0, 5, 6), make_result(2.0));
  ASSERT_EQ(save_eval_cache(first, a.str(), "test-v1"), 3u);
  ASSERT_EQ(save_eval_cache(second, b.str(), "test-v1"), 3u);

  std::ifstream fa(a.path, std::ios::binary);
  std::ifstream fb(b.path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(EvalStore, CodeVersionMismatchDiscardsWholeFile) {
  TempFile file("eval_store_version.evc");
  EvalCache source;
  source.insert(key(1.0, 1.0), make_result(1.0));
  ASSERT_EQ(save_eval_cache(source, file.str(), "v1.0-abc"), 1u);

  EvalCache loaded;
  const auto stats = load_eval_cache(loaded, file.str(), "v1.1-def");
  EXPECT_TRUE(stats.found);
  EXPECT_TRUE(stats.version_mismatch);
  EXPECT_EQ(stats.loaded, 0u);
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(EvalStore, MissingFileIsACleanColdStart) {
  EvalCache cache;
  const auto stats =
      load_eval_cache(cache, "/nonexistent/dir/never.evc", "test-v1");
  EXPECT_FALSE(stats.found);
  EXPECT_FALSE(stats.version_mismatch);
  EXPECT_EQ(stats.loaded, 0u);
}

TEST(EvalStore, CorruptAndTruncatedFilesAreDiscarded) {
  TempFile file("eval_store_corrupt.evc");
  EvalCache source;
  source.insert(key(1.0, 1.0), make_result(1.0));
  source.insert(key(2.0, 2.0), make_result(2.0));
  ASSERT_EQ(save_eval_cache(source, file.str(), "test-v1"), 2u);

  // Truncate: keep the header plus part of an entry.  Whole-file
  // discard — a partially-written cache must not half-load.
  std::ifstream in(file.path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 16));
  }
  EvalCache truncated;
  auto stats = load_eval_cache(truncated, file.str(), "test-v1");
  EXPECT_TRUE(stats.found);
  EXPECT_TRUE(stats.version_mismatch);
  EXPECT_EQ(truncated.size(), 0u);

  // Garbage magic.
  {
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    out << "not an eval cache at all";
  }
  EvalCache garbage;
  stats = load_eval_cache(garbage, file.str(), "test-v1");
  EXPECT_TRUE(stats.found);
  EXPECT_TRUE(stats.version_mismatch);
  EXPECT_EQ(garbage.size(), 0u);

  // Empty file.
  { std::ofstream out(file.path, std::ios::binary | std::ios::trunc); }
  EvalCache empty;
  stats = load_eval_cache(empty, file.str(), "test-v1");
  EXPECT_TRUE(stats.found);
  EXPECT_TRUE(stats.version_mismatch);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(EvalStore, SaveSkipsInFlightClaims) {
  TempFile file("eval_store_claims.evc");
  EvalCache cache;
  cache.insert(key(1.0, 1.0), make_result(1.0));
  ASSERT_TRUE(cache.acquire(key(2.0, 2.0)).owner);  // never fulfilled
  EXPECT_EQ(save_eval_cache(cache, file.str(), "test-v1"), 1u);
  cache.abandon(key(2.0, 2.0));
}

/// Analytic stand-in with a known interior optimum (mirrors
/// tuner_test.cpp) so warm-vs-cold objective identity is checkable
/// without running the simulator.
grid::SimulationResult fake_sim(const grid::GridConfig& config) {
  const double tau = config.tuning.update_interval;
  grid::SimulationResult r;
  r.G_scheduler = 100.0 + 2000.0 / tau + 3.0 * tau;
  const double e = 0.60 - 0.004 * std::abs(tau - 20.0);
  r.F = 1000.0;
  r.H_control = r.F / e - r.F - r.G_scheduler;
  return r;
}

TEST(EvalStore, WarmTuneIsBitIdenticalAndRunsNothing) {
  TempFile file("eval_store_warm.evc");
  const ScalingCase scase = ScalingCase::case1_network_size();
  grid::GridConfig config;
  config.topology.nodes = 100;
  TunerConfig tuner;
  tuner.e0 = 0.58;
  tuner.band = 0.02;
  tuner.evaluations = 40;

  EvalCache cold_cache;
  tuner.cache = &cold_cache;
  std::atomic<int> cold_runs{0};
  const auto cold = tune_enablers(
      config, scase, tuner,
      [&](const grid::GridConfig& c) { ++cold_runs; return fake_sim(c); });
  ASSERT_GT(cold_runs.load(), 0);
  ASSERT_GT(save_eval_cache(cold_cache, file.str(), "test-v1"), 0u);

  EvalCache warm_cache;
  const auto stats = load_eval_cache(warm_cache, file.str(), "test-v1");
  ASSERT_GT(stats.loaded, 0u);
  tuner.cache = &warm_cache;
  std::atomic<int> warm_runs{0};
  const auto warm = tune_enablers(
      config, scase, tuner,
      [&](const grid::GridConfig& c) { ++warm_runs; return fake_sim(c); });

  // The search replays the same points: every evaluation answers from
  // disk, and the outcome is bit-identical to the cold run.
  EXPECT_EQ(warm_runs.load(), 0);
  EXPECT_GT(warm_cache.disk_hits(), 0u);
  EXPECT_BITEQ(warm.objective, cold.objective);
  EXPECT_BITEQ(warm.tuning.update_interval, cold.tuning.update_interval);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  // Hit STATS legitimately differ: warm, every evaluation is a
  // prior-epoch hit against the preloaded entries; cold, only the
  // search's own repeats count.  The outcome above is what must match.
  EXPECT_GE(warm.cache_hits, cold.cache_hits);
  EXPECT_GT(warm.cache_prior_hits, 0u);
  EXPECT_EQ(cold.cache_prior_hits, 0u);
}

}  // namespace
}  // namespace scal::core
