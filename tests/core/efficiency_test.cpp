#include "core/efficiency.hpp"

#include <gtest/gtest.h>

namespace scal::core {
namespace {

grid::SimulationResult result_with(double F, double G, double H) {
  grid::SimulationResult r;
  r.F = F;
  r.G_scheduler = G;
  r.H_control = H;
  return r;
}

TEST(WorkTerms, ExtractedFromSimulationResult) {
  const WorkTerms w = work_terms(result_with(40, 30, 30));
  EXPECT_DOUBLE_EQ(w.F, 40.0);
  EXPECT_DOUBLE_EQ(w.G, 30.0);
  EXPECT_DOUBLE_EQ(w.H, 30.0);
  EXPECT_DOUBLE_EQ(w.efficiency(), 0.4);
}

TEST(WorkTerms, SplitsGAndHComponents) {
  grid::SimulationResult r;
  r.F = 10;
  r.G_scheduler = 1;
  r.G_estimator = 2;
  r.G_middleware = 3;
  r.H_control = 4;
  r.H_wasted = 5;
  const WorkTerms w = work_terms(r);
  EXPECT_DOUBLE_EQ(w.G, 6.0);
  EXPECT_DOUBLE_EQ(w.H, 9.0);
}

TEST(Normalize, RelativeToBase) {
  const WorkTerms base{100, 10, 20};
  const WorkTerms scaled{300, 40, 20};
  const NormalizedTerms n = normalize(base, scaled);
  EXPECT_DOUBLE_EQ(n.f, 3.0);
  EXPECT_DOUBLE_EQ(n.g, 4.0);
  EXPECT_DOUBLE_EQ(n.h, 1.0);
}

TEST(Normalize, BaseNormalizesToOne) {
  const WorkTerms base{100, 10, 20};
  const NormalizedTerms n = normalize(base, base);
  EXPECT_DOUBLE_EQ(n.f, 1.0);
  EXPECT_DOUBLE_EQ(n.g, 1.0);
  EXPECT_DOUBLE_EQ(n.h, 1.0);
}

TEST(Normalize, RejectsDegenerateBase) {
  EXPECT_THROW(normalize({0, 1, 1}, {1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(normalize({1, 0, 1}, {1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(normalize({1, 1, 0}, {1, 1, 1}), std::invalid_argument);
}

TEST(IsoefficiencyConstants, MatchDerivation) {
  // E0 = 0.4 => alpha = 2.5; c = G/((alpha-1) F), c' = H/((alpha-1) F).
  const WorkTerms base{40, 30, 30};
  const IsoefficiencyConstants k = isoefficiency_constants(base);
  EXPECT_DOUBLE_EQ(k.alpha, 2.5);
  EXPECT_DOUBLE_EQ(k.c, 30.0 / (1.5 * 40.0));
  EXPECT_DOUBLE_EQ(k.c_prime, 30.0 / (1.5 * 40.0));
}

TEST(IsoefficiencyConstants, IdentityHoldsAtConstantEfficiency) {
  // If the scaled system keeps E = E0 exactly, Equation (1) must hold:
  // f = c*g + c'*h.
  const WorkTerms base{40, 30, 30};
  const IsoefficiencyConstants k = isoefficiency_constants(base);
  // Scale G and H by different amounts, then pick F to hold E = 0.4.
  const double g_scaled = 90.0, h_scaled = 45.0;
  const double f_scaled = (g_scaled + h_scaled) / (k.alpha - 1.0);
  const NormalizedTerms n =
      normalize(base, {f_scaled, g_scaled, h_scaled});
  EXPECT_NEAR(n.f, k.c * n.g + k.c_prime * n.h, 1e-12);
}

TEST(IsoefficiencyConstants, RejectsDegenerateEfficiency) {
  EXPECT_THROW(isoefficiency_constants({0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(isoefficiency_constants({1, 0, 0}), std::invalid_argument);
}

TEST(GrowthCondition, Equation2) {
  const WorkTerms base{40, 30, 30};
  const IsoefficiencyConstants k = isoefficiency_constants(base);
  // f grows faster than c*g: holds.
  EXPECT_TRUE(growth_condition_holds(k, {2.0, 1.0, 1.0}));
  // RMS overhead explodes relative to useful work: fails.
  EXPECT_FALSE(growth_condition_holds(k, {1.0, 100.0, 1.0}));
}

}  // namespace
}  // namespace scal::core
