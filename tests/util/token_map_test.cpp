#include "util/token_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace scal::util {
namespace {

TEST(TokenMap, EmptyInitially) {
  TokenMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.count(7), 0u);
}

TEST(TokenMap, EmplaceFindErase) {
  TokenMap<std::uint64_t, std::string> m;
  auto [it, inserted] = m.emplace(5, "five");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "five");
  EXPECT_EQ(m.count(5), 1u);

  auto [again, inserted_again] = m.emplace(5, "other");
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(again->second, "five");  // existing entry untouched

  EXPECT_EQ(m.erase(5), 1u);
  EXPECT_EQ(m.erase(5), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(TokenMap, IterationIsKeyOrdered) {
  TokenMap<std::uint64_t, int> m;
  // Out-of-order inserts (slow path) still land sorted.
  for (const std::uint64_t k : {9u, 2u, 7u, 1u, 8u, 3u}) {
    m.emplace(k, static_cast<int>(k) * 10);
  }
  std::vector<std::uint64_t> keys;
  for (const auto& [k, v] : m) {
    keys.push_back(k);
    EXPECT_EQ(v, static_cast<int>(k) * 10);
  }
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3, 7, 8, 9}));
}

TEST(TokenMap, MonotonicAppendFastPath) {
  TokenMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.emplace(k, 1);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_NE(m.find(0), m.end());
  EXPECT_NE(m.find(99), m.end());
  EXPECT_EQ(m.find(100), m.end());
}

TEST(TokenMap, SubscriptDefaultConstructsOnce) {
  TokenMap<std::uint64_t, int> m;
  m[3] += 5;
  m[3] += 2;
  EXPECT_EQ(m[3], 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(TokenMap, EraseByIteratorReturnsNext) {
  TokenMap<std::uint64_t, int> m;
  for (const std::uint64_t k : {1u, 2u, 3u}) m.emplace(k, 0);
  auto it = m.erase(m.find(2));
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->first, 3u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(TokenMap, ClearEmpties) {
  TokenMap<std::uint64_t, int> m;
  m.emplace(1, 1);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());
}

TEST(TokenMap, MovableOnlyValues) {
  TokenMap<std::uint64_t, std::unique_ptr<int>> m;
  m.emplace(4, std::make_unique<int>(42));
  ASSERT_NE(m.find(4), m.end());
  EXPECT_EQ(*m.find(4)->second, 42);
}

}  // namespace
}  // namespace scal::util
