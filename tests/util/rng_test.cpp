#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace scal::util {
namespace {

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Splitmix64, DifferentSeedsDiverge) {
  std::uint64_t a = 1, b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(Fnv1a, EmptyStringHashesToOffsetBasis) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
}

TEST(Fnv1a, DistinctNamesDistinctHashes) {
  EXPECT_NE(fnv1a("scheduler/1"), fnv1a("scheduler/2"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(from_a.count(b()));
}

TEST(RandomStream, NamedSubstreamsAreIndependent) {
  RandomStream a(42, "workload");
  RandomStream b(42, "topology");
  // Practically guaranteed distinct first draws.
  EXPECT_NE(a.bits(), b.bits());
}

TEST(RandomStream, SameNameSameSeedReproduces) {
  RandomStream a(42, "workload");
  RandomStream b(42, "workload");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RandomStream, UniformInUnitInterval) {
  RandomStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, UniformMeanIsHalf) {
  RandomStream rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomStream, UniformIntCoversRangeInclusive) {
  RandomStream rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen, (std::set<std::int64_t>{2, 3, 4, 5}));
}

TEST(RandomStream, UniformIntSingletonRange) {
  RandomStream rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(RandomStream, UniformIntNegativeRange) {
  RandomStream rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, -1);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, -1);
  }
}

TEST(RandomStream, ExponentialMeanMatches) {
  RandomStream rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(RandomStream, ExponentialIsNonNegative) {
  RandomStream rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RandomStream, NormalMomentsMatch) {
  RandomStream rng(8);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RandomStream, LognormalMedianIsExpMu) {
  RandomStream rng(9);
  std::vector<double> xs;
  const int n = 50001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(6.0, 0.9));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(6.0), std::exp(6.0) * 0.05);
}

TEST(RandomStream, BoundedParetoStaysInBounds) {
  RandomStream rng(10);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.bounded_pareto(1.3, 50.0, 20000.0);
    EXPECT_GE(x, 50.0 * 0.999);
    EXPECT_LE(x, 20000.0 * 1.001);
  }
}

TEST(RandomStream, BernoulliFrequencyMatches) {
  RandomStream rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStream, SampleWithoutReplacementDistinct) {
  RandomStream rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(10, 4);
    ASSERT_EQ(sample.size(), 4u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u);
    for (const auto v : sample) EXPECT_LT(v, 10u);
  }
}

TEST(RandomStream, SampleWithoutReplacementFull) {
  RandomStream rng(13);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RandomStream, SampleWithoutReplacementUniformish) {
  RandomStream rng(14);
  std::vector<int> counts(6, 0);
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    for (const auto v : rng.sample_without_replacement(6, 2)) {
      ++counts[v];
    }
  }
  // Each element appears with probability 2/6 per trial.
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 2.0 / 6.0, 0.02);
  }
}

TEST(RandomStream, ShuffleIsPermutation) {
  RandomStream rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace scal::util
