#include "util/ini.hpp"

#include <gtest/gtest.h>

namespace scal::util {
namespace {

TEST(IniFile, ParsesSectionsAndKeys) {
  const IniFile ini = IniFile::parse(
      "top = 1\n"
      "# comment\n"
      "[grid]\n"
      "nodes = 250\n"
      "rms = LOWEST\n"
      "\n"
      "[tuner]\n"
      "e0 = 0.4\n");
  EXPECT_EQ(ini.size(), 4u);
  EXPECT_EQ(ini.get_string("top", ""), "1");
  EXPECT_EQ(ini.get_int("grid.nodes", 0), 250);
  EXPECT_EQ(ini.get_string("grid.rms", ""), "LOWEST");
  EXPECT_DOUBLE_EQ(ini.get_double("tuner.e0", 0.0), 0.4);
}

TEST(IniFile, TrimsWhitespaceAndHandlesSemicolons) {
  const IniFile ini = IniFile::parse(
      "  [ s ]  \n"
      "  key   =   spaced value  \n"
      "; also a comment\n");
  EXPECT_EQ(ini.get_string("s.key", ""), "spaced value");
}

TEST(IniFile, MissingKeysFallBack) {
  const IniFile ini = IniFile::parse("");
  EXPECT_FALSE(ini.has("a.b"));
  EXPECT_EQ(ini.get_string("a.b", "dflt"), "dflt");
  EXPECT_EQ(ini.get_int("a.b", 9), 9);
  EXPECT_DOUBLE_EQ(ini.get_double("a.b", 1.5), 1.5);
  EXPECT_TRUE(ini.get_bool("a.b", true));
}

TEST(IniFile, BoolVocabulary) {
  const IniFile ini = IniFile::parse(
      "a = true\nb = 0\nc = yes\nd = off\n");
  EXPECT_TRUE(ini.get_bool("a", false));
  EXPECT_FALSE(ini.get_bool("b", true));
  EXPECT_TRUE(ini.get_bool("c", false));
  EXPECT_FALSE(ini.get_bool("d", true));
}

TEST(IniFile, TypeErrorsNameTheKey) {
  const IniFile ini = IniFile::parse("[s]\nx = abc\n");
  try {
    ini.get_int("s.x", 0);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("s.x"), std::string::npos);
  }
  EXPECT_THROW(ini.get_double("s.x", 0.0), std::runtime_error);
  EXPECT_THROW(ini.get_bool("s.x", false), std::runtime_error);
}

TEST(IniFile, RejectsTrailingJunkOnNumbers) {
  const IniFile ini = IniFile::parse("x = 12abc\n");
  EXPECT_THROW(ini.get_int("x", 0), std::runtime_error);
}

TEST(IniFile, ParseErrorsCarryLineNumbers) {
  try {
    IniFile::parse("good = 1\nbad line without equals\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(IniFile::parse("[unclosed\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[]\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse(" = value\n"), std::runtime_error);
}

TEST(IniFile, RoundTripsThroughToString) {
  IniFile ini;
  ini.set("alpha", "1");
  ini.set("grid.nodes", "250");
  ini.set_double("tuner.e0", 0.4);
  ini.set_bool("grid.flag", true);
  ini.set_int("grid.count", -3);
  const IniFile reparsed = IniFile::parse(ini.to_string());
  EXPECT_EQ(reparsed.values(), ini.values());
}

TEST(IniFile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/scal_ini_test.ini";
  IniFile ini;
  ini.set("s.k", "v");
  ini.save(path);
  const IniFile loaded = IniFile::load(path);
  EXPECT_EQ(loaded.get_string("s.k", ""), "v");
  std::remove(path.c_str());
  EXPECT_THROW(IniFile::load("/nonexistent/nope.ini"), std::runtime_error);
}

}  // namespace
}  // namespace scal::util
