#include "util/log.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace scal::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogLevel saved_ = log_level();
  void TearDown() override { set_log_level(saved_); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST_F(LogTest, ParseUnknownFallsBackToWarnNotOff) {
  // A typo in SCAL_LOG_LEVEL must not silently disable logging.
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
}

TEST_F(LogTest, SimTimeSourceAppearsInEmittedLines) {
  set_log_level(LogLevel::kInfo);
  set_log_time_source([]() { return 123.5; });
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());
  SCAL_INFO("stamped");
  std::clog.rdbuf(old);
  set_log_time_source(nullptr);
  EXPECT_NE(captured.str().find("INFO"), std::string::npos);
  EXPECT_NE(captured.str().find("t=123.5"), std::string::npos);
  EXPECT_NE(captured.str().find("stamped"), std::string::npos);
}

TEST_F(LogTest, FilteredMessageDoesNotEvaluateStream) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return "x";
  };
  SCAL_DEBUG("never built: " << side_effect());
  EXPECT_EQ(evaluations, 0);
  SCAL_ERROR("built: " << side_effect());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, ConcurrentWritersNeverInterleaveLines) {
  // Each thread emits lines of a single repeated letter; with the sink
  // locked per line, every captured line is homogeneous.  The capture
  // buffer is swapped in before the writers start and restored after
  // they join.
  set_log_level(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* old = std::clog.rdbuf(captured.rdbuf());

  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t]() {
      const std::string word(40, static_cast<char>('A' + t));
      for (int i = 0; i < kLines; ++i) {
        SCAL_INFO(word);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::clog.rdbuf(old);

  std::istringstream lines(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    const std::size_t start = line.find_last_of(' ');
    ASSERT_NE(start, std::string::npos) << "malformed line: " << line;
    const std::string word = line.substr(start + 1);
    ASSERT_EQ(word.size(), 40u) << "torn line: " << line;
    for (const char c : word) {
      ASSERT_EQ(c, word[0]) << "interleaved line: " << line;
    }
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return "x";
  };
  SCAL_ERROR("never built: " << side_effect());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace scal::util
