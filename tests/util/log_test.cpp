#include "util/log.hpp"

#include <gtest/gtest.h>

namespace scal::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogLevel saved_ = log_level();
  void TearDown() override { set_log_level(saved_); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kOff);
}

TEST_F(LogTest, FilteredMessageDoesNotEvaluateStream) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return "x";
  };
  SCAL_DEBUG("never built: " << side_effect());
  EXPECT_EQ(evaluations, 0);
  SCAL_ERROR("built: " << side_effect());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return "x";
  };
  SCAL_ERROR("never built: " << side_effect());
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace scal::util
