#include "util/inline_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace scal::util {
namespace {

using SmallFn = InlineFn<64>;

TEST(InlineFn, NullByDefault) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  SmallFn null_fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InlineFn, InvokesInlineCapture) {
  int hits = 0;
  SmallFn fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap) {
  std::array<double, 32> payload{};  // 256 bytes > 64-byte buffer
  payload[31] = 7.5;
  double seen = 0.0;
  double* out = &seen;
  SmallFn fn = [payload, out] { *out = payload[31]; };
  fn();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn a = [&hits] { ++hits; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, CopyInvokesIndependently) {
  int hits = 0;
  SmallFn a = [&hits] { ++hits; };
  SmallFn b = a;
  ASSERT_TRUE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  a();
  b();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, CopyDeepCopiesCaptureState) {
  // A capture that mutates its own copy: the two instances must not
  // share state.
  struct Counter {
    int calls = 0;
    void operator()() { ++calls; }
  };
  InlineFn<64> a = Counter{};
  a();
  InlineFn<64> b = a;
  a();
  a();
  b();
  // No shared state to observe directly; this test's value is under
  // ASan: a shallow copy would double-destroy or leak.
  SUCCEED();
}

TEST(InlineFn, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    SmallFn fn = [held = std::move(token)] { (void)held; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, ResetReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  SmallFn fn = [held = std::move(token)] { (void)held; };
  fn.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, MoveAssignReplacesExisting) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  SmallFn a = [held = std::move(token)] { (void)held; };
  int hits = 0;
  SmallFn b = [&hits] { ++hits; };
  a = std::move(b);
  EXPECT_TRUE(watch.expired());  // old capture destroyed on assignment
  a();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, HeapCaptureDestructorReleases) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    std::array<double, 32> pad{};
    SmallFn fn = [held = std::move(token), pad] { (void)held, (void)pad; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace scal::util
