#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeEqualsCombined) {
  Accumulator a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Samples, EmptyReturnsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(95), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Samples, AddAfterPercentileStillCorrect) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  double prev = 0.0;
  for (double x = 0.0; x <= 100.0; x += 10.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LineFit, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LineFit, FlatLine) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 4, 4};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
}

TEST(LineFit, RejectsTooFewPoints) {
  EXPECT_THROW(fit_line({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {2.0}), std::invalid_argument);
}

TEST(SegmentSlopes, Finite) {
  const auto s = segment_slopes({1, 2, 4}, {10, 14, 14});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(SegmentSlopes, RejectsMismatch) {
  EXPECT_THROW(segment_slopes({1.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace scal::util
