#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace scal::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("SCAL_TEST_VAR"); }
  void TearDown() override { unsetenv("SCAL_TEST_VAR"); }
};

TEST_F(EnvTest, FallbackWhenUnset) {
  EXPECT_EQ(env_or("SCAL_TEST_VAR", "dflt"), "dflt");
  EXPECT_EQ(env_int("SCAL_TEST_VAR", 7), 7);
  EXPECT_FALSE(env_flag("SCAL_TEST_VAR"));
}

TEST_F(EnvTest, ReadsValue) {
  setenv("SCAL_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_or("SCAL_TEST_VAR", "dflt"), "hello");
}

TEST_F(EnvTest, FlagSemantics) {
  for (const char* falsy : {"0", "false", "off", ""}) {
    setenv("SCAL_TEST_VAR", falsy, 1);
    EXPECT_FALSE(env_flag("SCAL_TEST_VAR")) << falsy;
  }
  for (const char* truthy : {"1", "yes", "on", "true"}) {
    setenv("SCAL_TEST_VAR", truthy, 1);
    EXPECT_TRUE(env_flag("SCAL_TEST_VAR")) << truthy;
  }
}

TEST_F(EnvTest, IntParsing) {
  setenv("SCAL_TEST_VAR", "42", 1);
  EXPECT_EQ(env_int("SCAL_TEST_VAR", 0), 42);
  setenv("SCAL_TEST_VAR", "-5", 1);
  EXPECT_EQ(env_int("SCAL_TEST_VAR", 0), -5);
  setenv("SCAL_TEST_VAR", "not-a-number", 1);
  EXPECT_EQ(env_int("SCAL_TEST_VAR", 9), 9);
}

}  // namespace
}  // namespace scal::util
