#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace scal::util {
namespace {

TEST(AsciiChart, RendersTitleAxesAndLegend) {
  AsciiChart chart("my chart", "k", "G");
  chart.add_series({"CENTRAL", {1, 2, 3}, {10, 20, 30}});
  const std::string s = chart.render();
  EXPECT_NE(s.find("my chart"), std::string::npos);
  EXPECT_NE(s.find("[k]"), std::string::npos);
  EXPECT_NE(s.find("o=CENTRAL"), std::string::npos);
  // Series glyph appears somewhere on the canvas.
  EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesDistinctGlyphs) {
  AsciiChart chart("t", "x", "y");
  chart.add_series({"a", {1, 2}, {1, 2}});
  chart.add_series({"b", {1, 2}, {2, 1}});
  const std::string s = chart.render();
  EXPECT_NE(s.find("o=a"), std::string::npos);
  EXPECT_NE(s.find("x=b"), std::string::npos);
}

TEST(AsciiChart, EmptyChartSaysNoData) {
  AsciiChart chart("t", "x", "y");
  EXPECT_NE(chart.render().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart chart("t", "x", "y");
  chart.add_series({"pt", {5}, {7}});
  EXPECT_NE(chart.render().find('o'), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart("t", "x", "y");
  chart.add_series({"flat", {1, 2, 3}, {4, 4, 4}});
  EXPECT_FALSE(chart.render().empty());
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart("t", "x", "y");
  EXPECT_THROW(chart.add_series({"bad", {1, 2}, {1}}),
               std::invalid_argument);
}

TEST(AsciiChart, RejectsTinyCanvas) {
  EXPECT_THROW(AsciiChart("t", "x", "y", 4, 2), std::invalid_argument);
}

}  // namespace
}  // namespace scal::util
