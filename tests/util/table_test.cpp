#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scal::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RightAlignmentPadsLeft) {
  Table t({"k", "G"});
  t.add_row({"1", "5"});
  t.add_row({"2", "500"});
  const std::string s = t.to_string();
  // "5" in a 3-wide right-aligned column gets two leading spaces.
  EXPECT_NE(s.find("  5\n"), std::string::npos);
}

TEST(Table, RejectsRowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumAndFixedFormatting) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fixed(2.0, 0), "2");
  EXPECT_EQ(Table::num(1234.5678, 6), "1234.57");
}

TEST(Table, PrintWritesToStream) {
  Table t({"x"});
  t.add_row({"42"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace scal::util
