#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace scal::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  // Unique per test case: ctest runs cases as parallel processes.
  std::string path_ =
      ::testing::TempDir() + "/scal_csv_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.add_row(std::vector<std::string>{"1", "2"});
    csv.add_row(std::vector<double>{3.5, 4.25});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\n3.5,4.25\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"text"});
    csv.add_row(std::vector<std::string>{"has,comma"});
    csv.add_row(std::vector<std::string>{"has\"quote"});
  }
  EXPECT_EQ(slurp(path_), "text\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"1"}),
               std::invalid_argument);
}

TEST(CsvEscape, PassthroughForPlainCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with space"), "with space");
}

TEST(CsvWriter, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(::testing::TempDir() + "/x.csv", {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scal::util
