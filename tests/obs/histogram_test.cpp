#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace scal::obs {
namespace {

TEST(Histogram, EmptyReadsAsZeros) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, EmptySerializationIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.to_json(),
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"mean\":0,"
            "\"p50\":0,\"p95\":0,\"p99\":0}");
}

TEST(Histogram, ExactMomentsSurviveBucketing) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 7.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0 / 3.0);
}

TEST(Histogram, SingleValueQuantilesCollapseToIt) {
  Histogram h;
  h.record(3.25);
  EXPECT_EQ(h.percentile(0.0), 3.25);
  EXPECT_EQ(h.percentile(50.0), 3.25);
  EXPECT_EQ(h.percentile(100.0), 3.25);
}

TEST(Histogram, QuantileErrorIsBoundedBySubBucketWidth) {
  // Log-linear buckets with 8 sub-buckets per octave: relative quantile
  // error is at most 1/8 = 12.5%.
  Histogram h;
  util::RandomStream rng(99, "hist");
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(10.0);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 95.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    const double est = h.percentile(p);
    EXPECT_NEAR(est, exact, 0.125 * exact) << "p" << p;
  }
}

TEST(Histogram, MaxPercentileIsExact) {
  Histogram h;
  for (double v = 0.1; v < 100.0; v *= 1.7) h.record(v);
  EXPECT_EQ(h.percentile(100.0), h.max());
}

TEST(Histogram, NonPositiveAndNonFiniteValuesLandInEdgeBuckets) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(std::numeric_limits<double>::infinity());
  h.record(1e300);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), std::numeric_limits<double>::infinity());
}

TEST(Histogram, MergeEqualsSerialRecording) {
  // Merging per-task histograms in task order is serial accumulation:
  // the integer state (bucket counts, count) and the exact extremes are
  // bit-identical, so every quantile readout matches; only the sum may
  // differ by association order of the floating-point additions.
  util::RandomStream rng(7, "merge");
  Histogram serial, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.exponential(3.0);
    serial.record(v);
    (i < 500 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_EQ(a.min(), serial.min());
  EXPECT_EQ(a.max(), serial.max());
  EXPECT_DOUBLE_EQ(a.sum(), serial.sum());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(a.percentile(p), serial.percentile(p)) << "p" << p;
  }
}

TEST(Histogram, MergeWithEmptySidesIsIdentity) {
  Histogram h, empty;
  h.record(2.5);
  const std::string before = h.to_json();
  h.merge(empty);
  EXPECT_EQ(h.to_json(), before);
  empty.merge(h);
  EXPECT_EQ(empty.to_json(), before);
}

TEST(Histogram, ClearRestoresEmptyState) {
  Histogram h;
  h.record(1.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.to_json(), Histogram{}.to_json());
}

TEST(HistogramRegistry, FindOrCreateKeepsStableReferences) {
  HistogramRegistry reg;
  Histogram& a = reg.histogram("a");
  a.record(1.0);
  // Growing the registry must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) reg.histogram("h" + std::to_string(i));
  Histogram& a2 = reg.histogram("a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.count(), 1u);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(HistogramRegistry, AllEmptyTracksRecordedValues) {
  HistogramRegistry reg;
  reg.histogram("quiet");
  EXPECT_TRUE(reg.all_empty());
  reg.histogram("loud").record(1.0);
  EXPECT_FALSE(reg.all_empty());
}

TEST(HistogramRegistry, JsonPreservesRegistrationOrder) {
  HistogramRegistry reg;
  reg.histogram("zeta").record(1.0);
  reg.histogram("alpha").record(2.0);
  const std::string json = reg.to_json();
  EXPECT_LT(json.find("zeta"), json.find("alpha"));
}

TEST(HistogramRegistry, MergeFoldsByName) {
  HistogramRegistry a, b;
  a.histogram("x").record(1.0);
  b.histogram("x").record(2.0);
  b.histogram("y").record(3.0);
  a.merge(b);
  EXPECT_EQ(a.histogram("x").count(), 2u);
  EXPECT_EQ(a.histogram("y").count(), 1u);
  EXPECT_EQ(a.size(), 2u);
}

}  // namespace
}  // namespace scal::obs
