#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include "json_checker.hpp"

namespace scal::obs {
namespace {

TEST(CounterRegistry, SetAndIncrement) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.set("polls", 3);
  reg.increment("polls", 2);
  reg.increment("fresh");  // creates at 1
  reg.set_real("G_scheduler", 12.5);

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("polls"));
  EXPECT_FALSE(reg.contains("absent"));
  EXPECT_DOUBLE_EQ(reg.value("polls"), 5.0);
  EXPECT_DOUBLE_EQ(reg.value("fresh"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("G_scheduler"), 12.5);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
}

TEST(CounterRegistry, SetOverwritesInPlaceKeepingOrder) {
  CounterRegistry reg;
  reg.set("a", 1);
  reg.set("b", 2);
  reg.set("a", 10);
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counters()[0].name, "a");
  EXPECT_DOUBLE_EQ(reg.counters()[0].value, 10.0);
  EXPECT_EQ(reg.counters()[1].name, "b");
}

TEST(CounterRegistry, MergeAccumulatesAndAppends) {
  CounterRegistry a;
  a.set("polls", 5);
  a.set_real("G", 1.5);

  CounterRegistry b;
  b.set("polls", 3);
  b.set("transfers", 2);

  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.value("polls"), 8.0);
  EXPECT_DOUBLE_EQ(a.value("G"), 1.5);
  EXPECT_DOUBLE_EQ(a.value("transfers"), 2.0);
  // New names append after the existing ones, in b's order.
  EXPECT_EQ(a.counters()[2].name, "transfers");
  EXPECT_TRUE(a.counters()[2].integral);
}

TEST(CounterRegistry, MergeMarksSumRealWhenEitherSideIsReal) {
  CounterRegistry a;
  a.set("x", 1);
  CounterRegistry b;
  b.set_real("x", 0.5);
  a.merge(b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a.value("x"), 1.5);
  EXPECT_FALSE(a.counters()[0].integral);
}

TEST(CounterRegistry, MergeInTaskOrderEqualsSerialAccumulation) {
  // The parallel-reduction contract: accumulating per-task registries
  // in task-index order must be indistinguishable from one registry
  // that saw every increment serially.
  CounterRegistry serial;
  std::vector<CounterRegistry> shards(4);
  for (std::size_t task = 0; task < shards.size(); ++task) {
    for (std::size_t i = 0; i <= task; ++i) {
      serial.increment("events");
      shards[task].increment("events");
    }
    const std::string own = "task_" + std::to_string(task);
    serial.set(own, task);
    shards[task].set(own, task);
  }
  CounterRegistry merged;
  for (const CounterRegistry& shard : shards) merged.merge(shard);

  ASSERT_EQ(merged.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(merged.counters()[i].name, serial.counters()[i].name);
    EXPECT_DOUBLE_EQ(merged.counters()[i].value, serial.counters()[i].value);
    EXPECT_EQ(merged.counters()[i].integral, serial.counters()[i].integral);
  }
  EXPECT_EQ(merged.to_json(), serial.to_json());
}

TEST(CounterRegistry, ToJsonIsParsableAndTyped) {
  CounterRegistry reg;
  reg.set("jobs", 42);
  reg.set_real("G", 3.25);
  const testjson::Value v = testjson::parse(reg.to_json());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("jobs").number, 42.0);
  EXPECT_EQ(v.at("G").number, 3.25);
  // Integral counters render without a decimal point.
  EXPECT_NE(reg.to_json().find("\"jobs\":42"), std::string::npos);
}

}  // namespace
}  // namespace scal::obs
