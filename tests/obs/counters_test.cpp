#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include "json_checker.hpp"

namespace scal::obs {
namespace {

TEST(CounterRegistry, SetAndIncrement) {
  CounterRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.set("polls", 3);
  reg.increment("polls", 2);
  reg.increment("fresh");  // creates at 1
  reg.set_real("G_scheduler", 12.5);

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("polls"));
  EXPECT_FALSE(reg.contains("absent"));
  EXPECT_DOUBLE_EQ(reg.value("polls"), 5.0);
  EXPECT_DOUBLE_EQ(reg.value("fresh"), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("G_scheduler"), 12.5);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
}

TEST(CounterRegistry, SetOverwritesInPlaceKeepingOrder) {
  CounterRegistry reg;
  reg.set("a", 1);
  reg.set("b", 2);
  reg.set("a", 10);
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.counters()[0].name, "a");
  EXPECT_DOUBLE_EQ(reg.counters()[0].value, 10.0);
  EXPECT_EQ(reg.counters()[1].name, "b");
}

TEST(CounterRegistry, ToJsonIsParsableAndTyped) {
  CounterRegistry reg;
  reg.set("jobs", 42);
  reg.set_real("G", 3.25);
  const testjson::Value v = testjson::parse(reg.to_json());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("jobs").number, 42.0);
  EXPECT_EQ(v.at("G").number, 3.25);
  // Integral counters render without a decimal point.
  EXPECT_NE(reg.to_json().find("\"jobs\":42"), std::string::npos);
}

}  // namespace
}  // namespace scal::obs
