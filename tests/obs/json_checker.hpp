#pragma once
// Minimal recursive-descent JSON parser for test assertions: validates
// full-input syntax and exposes a navigable value tree.  Deliberately
// tiny — just enough to check the obs exporters' output, not a general
// parser (no surrogate-pair decoding; \uXXXX escapes are validated and
// replaced with '?').

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace scal::testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& key) const { return object.count(key) > 0; }
  const Value& at(const std::string& key) const { return object.at(key); }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json at offset " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': {
        expect_word("true");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_word("false");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': {
        expect_word("null");
        return Value{};
      }
      default: return number();
    }
  }

  Value object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      get();
      return v;
    }
    while (true) {
      skip_ws();
      Value key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        get();
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      get();
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        get();
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    Value v;
    v.kind = Value::Kind::kString;
    expect('"');
    while (true) {
      const char c = get();
      if (c == '"') return v;
      if (c == '\\') {
        const char esc = get();
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = get();
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                fail("bad \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : std::tolower(static_cast<unsigned char>(h)) -
                                        'a' + 10);
            }
            // ASCII escapes decode exactly; anything wider becomes '?'
            // (this checker validates structure, not Unicode fidelity).
            v.string += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      } else {
        v.string += c;
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') get();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string slice = text_.substr(start, pos_ - start);
    char* end = nullptr;
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(slice.c_str(), &end);
    if (slice.empty() || end != slice.c_str() + slice.size()) {
      fail("bad number '" + slice + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace scal::testjson
