#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "json_checker.hpp"
#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::obs {
namespace {

TEST(TraceRecorder, DisabledRecorderRecordsNothing) {
  TraceRecorder trace;
  const TraceTid tid = trace.register_track("t");
  trace.begin(tid, "a", "cat", 1.0);
  trace.end(tid, 2.0);
  trace.instant(tid, "b", "cat", 3.0);
  trace.counter(tid, "c", 4.0, 5.0);
  trace.async_begin(tid, 7, "d", "cat", 5.0);
  trace.async_end(tid, 7, "cat", 6.0);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorder, ScalesSimTimeToTraceMicroseconds) {
  TraceRecorder trace(1000.0);
  trace.set_enabled(true);
  const TraceTid tid = trace.register_track("t");
  trace.begin(tid, "serve", "server", 2.5);
  trace.end(tid, 3.0);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.events()[0].ts, 2500.0);
  EXPECT_DOUBLE_EQ(trace.events()[1].ts, 3000.0);
}

TEST(TraceRecorder, WriteJsonIsValidAndCarriesTrackMetadata) {
  TraceRecorder trace;
  trace.set_enabled(true);
  const TraceTid a = trace.register_track("alpha");
  const TraceTid b = trace.register_track("beta \"quoted\"");
  trace.begin(a, "serve", "server", 1.0, {{"cost", 0.5}});
  trace.end(a, 2.0);
  trace.instant(b, "msg", "rms", 1.5);
  trace.counter(a, "depth", 1.0, 3.0);

  std::ostringstream os;
  trace.write_json(os);
  const testjson::Value root = testjson::parse(os.str());
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::size_t thread_names = 0, spans = 0;
  for (const auto& ev : events.array) {
    ASSERT_TRUE(ev.is_object());
    const std::string ph = ev.at("ph").string;
    if (ph == "M" && ev.at("name").string == "thread_name") ++thread_names;
    if (ph == "B" || ph == "E") ++spans;
  }
  EXPECT_EQ(thread_names, 2u);
  EXPECT_EQ(spans, 2u);
}

grid::GridConfig traced_config() {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

TEST(TraceExport, GridRunProducesBalancedSpansAndValidJson) {
  TelemetryConfig tc;
  tc.trace_path = ::testing::TempDir() + "trace_test.trace.json";
  Telemetry telemetry(tc);
  grid::GridConfig config = traced_config();
  config.telemetry = &telemetry;
  const grid::SimulationResult result = rms::simulate(config);
  ASSERT_GT(result.jobs_completed, 0u);
  ASSERT_GT(telemetry.trace().size(), 0u);

  // Duration spans: per track, every E follows a B and all pairs close.
  std::map<TraceTid, int> depth;
  // Async spans: per id, balanced b/e.
  std::map<std::uint64_t, int> async_depth;
  for (const TraceEvent& ev : telemetry.trace().events()) {
    switch (ev.phase) {
      case 'B': ++depth[ev.tid]; break;
      case 'E':
        --depth[ev.tid];
        ASSERT_GE(depth[ev.tid], 0) << "E without B on tid " << ev.tid;
        break;
      case 'b': ++async_depth[ev.async_id]; break;
      case 'e':
        --async_depth[ev.async_id];
        ASSERT_GE(async_depth[ev.async_id], 0)
            << "async e without b, id " << ev.async_id;
        break;
      default: break;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced span on tid " << tid;
  }
  for (const auto& [id, d] : async_depth) {
    EXPECT_EQ(d, 0) << "unbalanced async span for job " << id;
  }

  // The full export parses as JSON.
  std::ostringstream os;
  telemetry.trace().write_json(os);
  EXPECT_NO_THROW(testjson::parse(os.str()));
}

TEST(TraceExport, MessageInstantsCarryProtocolNames) {
  TelemetryConfig tc;
  tc.trace_path = ::testing::TempDir() + "trace_msgs.trace.json";
  Telemetry telemetry(tc);
  grid::GridConfig config = traced_config();
  // LOWEST polls remote schedulers, so poll events must appear.
  config.workload.mean_interarrival = 0.4;
  config.telemetry = &telemetry;
  (void)rms::simulate(config);

  std::size_t instants = 0;
  for (const TraceEvent& ev : telemetry.trace().events()) {
    if (ev.phase == 'i' && ev.cat == "rms") ++instants;
  }
  EXPECT_GT(instants, 0u);
}

}  // namespace
}  // namespace scal::obs
