#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "json_checker.hpp"

namespace scal::obs {
namespace {

TEST(JsonString, EscapesControlQuotesAndBackslash) {
  EXPECT_EQ(json_string("plain"), "\"plain\"");
  EXPECT_EQ(json_string("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_string("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
  // Raw control characters use \u00XX.
  EXPECT_EQ(json_string(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonString, RoundTripsThroughParser) {
  const std::string nasty = "q\"s\\t\n\r\t\f\b end";
  const testjson::Value v = testjson::parse(json_string(nasty));
  EXPECT_EQ(v.string, nasty);
}

TEST(JsonNumber, ShortestRoundTripDecimals) {
  for (const double x :
       {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-9, 12345.6789,
        0.4012345678901234, 1e300, -2.2250738585072014e-308}) {
    const std::string text = json_number(x);
    char* end = nullptr;
    const double back = std::strtod(text.c_str(), &end);
    EXPECT_EQ(back, x) << text;
    EXPECT_EQ(*end, '\0') << text;
  }
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, IntegersKeepFullPrecision) {
  // Values beyond 2^53 lose digits as doubles; the integer overloads
  // must not route through double.
  const std::uint64_t big = 9007199254740993ull;  // 2^53 + 1
  EXPECT_EQ(json_number(big), "9007199254740993");
  EXPECT_EQ(json_number(static_cast<std::int64_t>(-42)), "-42");
}

TEST(JsonObject, BuildsNestedValidJson) {
  JsonObject inner;
  inner.field("x", 1.5).field("ok", true);
  JsonObject outer;
  outer.field("name", "run \"1\"")
      .field("count", static_cast<std::uint64_t>(3))
      .raw("inner", inner.str());
  const testjson::Value v = testjson::parse(outer.str());
  EXPECT_EQ(v.at("name").string, "run \"1\"");
  EXPECT_EQ(v.at("count").number, 3.0);
  EXPECT_EQ(v.at("inner").at("x").number, 1.5);
  EXPECT_TRUE(v.at("inner").at("ok").boolean);
}

TEST(JsonObject, EmptyObjectIsValid) {
  JsonObject obj;
  EXPECT_EQ(obj.str(), "{}");
}

}  // namespace
}  // namespace scal::obs
