#include "obs/probe.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::obs {
namespace {

grid::GridConfig probed_config() {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

Telemetry probe_telemetry(double interval) {
  TelemetryConfig tc;
  tc.probe_path = ::testing::TempDir() + "probe_test.csv";
  tc.probe_interval = interval;
  return Telemetry(tc);
}

TEST(TimeSeriesProbe, WindowedEfficiencyFromCumulativeRows) {
  TimeSeriesProbe probe(10.0);
  ProbeSample a;
  a.at = 0.0;
  probe.add(a);
  ProbeSample b;
  b.at = 10.0;
  b.F = 6.0;
  b.G = 3.0;
  b.H = 1.0;
  probe.add(b);
  ProbeSample c;
  c.at = 20.0;
  c.F = 10.0;  // dF = 4
  c.G = 8.0;   // dG = 5
  c.H = 2.0;   // dH = 1
  probe.add(c);

  ASSERT_EQ(probe.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(probe.samples()[1].efficiency, 0.6);
  EXPECT_DOUBLE_EQ(probe.samples()[1].efficiency_windowed, 0.6);
  EXPECT_DOUBLE_EQ(probe.samples()[2].efficiency, 0.5);
  EXPECT_DOUBLE_EQ(probe.samples()[2].efficiency_windowed, 0.4);
}

TEST(ProbeExport, SamplingCadenceTracksSimulatorClock) {
  const double interval = 50.0;
  Telemetry telemetry = probe_telemetry(interval);
  grid::GridConfig config = probed_config();
  config.telemetry = &telemetry;
  const grid::SimulationResult result = rms::simulate(config);

  const auto& samples = telemetry.probe()->samples();
  // Ticks at 0, 50, ..., 250, plus the final row at the horizon.
  ASSERT_EQ(samples.size(), 7u);
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].at, static_cast<double>(i) * interval);
  }
  EXPECT_DOUBLE_EQ(samples.back().at, config.horizon);

  // Cumulative terms are monotone non-decreasing.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].F, samples[i - 1].F);
    EXPECT_GE(samples[i].G, samples[i - 1].G);
    EXPECT_GE(samples[i].jobs_completed, samples[i - 1].jobs_completed);
  }
  EXPECT_EQ(samples.back().jobs_completed, result.jobs_completed);
}

TEST(ProbeExport, FinalRowEqualsResultScalarsExactly) {
  Telemetry telemetry = probe_telemetry(75.0);
  grid::GridConfig config = probed_config();
  config.telemetry = &telemetry;
  const grid::SimulationResult result = rms::simulate(config);

  const ProbeSample& last = telemetry.probe()->samples().back();
  // Bit-exact equality, not near-equality: the final row is copied from
  // the assembled result, never recomputed.
  EXPECT_EQ(last.F, result.F);
  EXPECT_EQ(last.G, result.G());
  EXPECT_EQ(last.H, result.H());
  EXPECT_EQ(last.efficiency, result.efficiency());
  EXPECT_EQ(last.jobs_arrived, result.jobs_arrived);
  EXPECT_EQ(last.jobs_completed, result.jobs_completed);
}

TEST(ProbeExport, CsvRoundTripsFinalRowDigits) {
  Telemetry telemetry = probe_telemetry(75.0);
  grid::GridConfig config = probed_config();
  config.telemetry = &telemetry;
  const grid::SimulationResult result = rms::simulate(config);

  std::ostringstream os;
  telemetry.probe()->write_csv(os);
  const std::string csv = os.str();
  // Last non-empty line.
  std::vector<std::string> lines;
  std::istringstream is(csv);
  for (std::string line; std::getline(is, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 2u);
  const std::string& last = lines.back();
  std::vector<double> fields;
  std::istringstream row(last);
  for (std::string cell; std::getline(row, cell, ',');) {
    fields.push_back(std::strtod(cell.c_str(), nullptr));
  }
  // Columns: at,F,G,H,... (see TimeSeriesProbe::csv_header).
  ASSERT_GE(fields.size(), 4u);
  EXPECT_EQ(fields[0], config.horizon);
  EXPECT_EQ(fields[1], result.F);
  EXPECT_EQ(fields[2], result.G());
  EXPECT_EQ(fields[3], result.H());
}

}  // namespace
}  // namespace scal::obs
