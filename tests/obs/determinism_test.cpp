// Telemetry must be purely observational: attaching a fully loaded
// Telemetry handle (trace + probe + manifest) to a run may not change a
// single bit of the measured quantities.  The probe does schedule extra
// (read-only) kernel events, so events_dispatched is allowed to differ —
// everything the scalability analysis consumes is compared bit-exactly.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::obs {
namespace {

grid::GridConfig base_config(grid::RmsKind rms) {
  grid::GridConfig config;
  config.rms = rms;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 0.8;
  config.seed = 7;
  return config;
}

TelemetryConfig full_config(const std::string& stem) {
  TelemetryConfig tc;
  tc.trace_path = ::testing::TempDir() + stem + ".trace.json";
  tc.probe_path = ::testing::TempDir() + stem + ".csv";
  tc.probe_interval = 40.0;
  tc.manifest_path = ::testing::TempDir() + stem + ".jsonl";
  tc.label = stem;
  return tc;
}

void expect_identical(const grid::SimulationResult& a,
                      const grid::SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.G_estimator, b.G_estimator);
  EXPECT_EQ(a.G_middleware, b.G_middleware);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.H_wasted, b.H_wasted);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_succeeded, b.jobs_succeeded);
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.auctions, b.auctions);
  EXPECT_EQ(a.adverts, b.adverts);
  EXPECT_EQ(a.updates_received, b.updates_received);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.p95_response, b.p95_response);
}

class TelemetryDeterminism
    : public ::testing::TestWithParam<grid::RmsKind> {};

TEST_P(TelemetryDeterminism, OnVersusOffIsBitIdentical) {
  const grid::SimulationResult plain =
      rms::simulate(base_config(GetParam()));

  Telemetry telemetry(full_config("determinism_on"));
  grid::GridConfig instrumented = base_config(GetParam());
  instrumented.telemetry = &telemetry;
  const grid::SimulationResult traced = rms::simulate(instrumented);

  expect_identical(plain, traced);
  EXPECT_GT(telemetry.trace().size(), 0u);
  EXPECT_FALSE(telemetry.probe()->empty());
}

TEST_P(TelemetryDeterminism, TwoInstrumentedRunsAgree) {
  Telemetry t1(full_config("determinism_a"));
  grid::GridConfig c1 = base_config(GetParam());
  c1.telemetry = &t1;
  const grid::SimulationResult r1 = rms::simulate(c1);

  Telemetry t2(full_config("determinism_b"));
  grid::GridConfig c2 = base_config(GetParam());
  c2.telemetry = &t2;
  const grid::SimulationResult r2 = rms::simulate(c2);

  expect_identical(r1, r2);
  EXPECT_EQ(t1.trace().size(), t2.trace().size());
  EXPECT_EQ(t1.probe()->samples().size(), t2.probe()->samples().size());
}

INSTANTIATE_TEST_SUITE_P(Policies, TelemetryDeterminism,
                         ::testing::Values(grid::RmsKind::kLowest,
                                           grid::RmsKind::kCentral,
                                           grid::RmsKind::kSymmetric),
                         [](const auto& info) {
                           std::string name = grid::to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace scal::obs
