#include "obs/anneal_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/tuner.hpp"
#include "grid/metrics.hpp"
#include "obs/telemetry.hpp"

namespace scal::obs {
namespace {

AnnealRecord record(double candidate, double best, bool accepted,
                    bool improved) {
  AnnealRecord r;
  r.label = "t";
  r.candidate_value = candidate;
  r.best_value = best;
  r.accepted = accepted;
  r.improved = improved;
  return r;
}

TEST(AnnealLog, SummariesOverRecords) {
  AnnealLog log;
  EXPECT_EQ(log.best_value(), 0.0);
  log.add(record(5.0, 5.0, true, false));
  log.add(record(3.0, 3.0, true, true));
  log.add(record(9.0, 3.0, false, false));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.accepted_count(), 2u);
  EXPECT_EQ(log.improving_count(), 1u);
  EXPECT_DOUBLE_EQ(log.best_value(), 3.0);
}

TEST(AnnealLog, CsvHasHeaderAndOneRowPerRecord) {
  AnnealLog log;
  log.add(record(5.0, 5.0, true, false));
  log.add(record(3.0, 3.0, true, true));
  std::ostringstream os;
  log.write_csv(os);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("candidate"), std::string::npos);
  EXPECT_NE(lines[1].find("t,"), std::string::npos);
}

TEST(AnnealLog, TunerSearchFeedsTheLog) {
  // Analytic stand-in runner: G falls with the update interval while the
  // efficiency stays pinned inside the band, so the search is well posed
  // without running simulations.
  const core::SimRunner runner = [](const grid::GridConfig& config) {
    grid::SimulationResult r;
    r.F = 400.0;
    r.G_scheduler = 100.0 + config.tuning.update_interval;
    r.H_control = 100.0;
    EXPECT_EQ(config.telemetry, nullptr)
        << "search evaluations must strip the telemetry handle";
    return r;
  };

  grid::GridConfig base;
  base.topology.nodes = 80;
  Telemetry outer_handle{TelemetryConfig{}};
  base.telemetry = &outer_handle;  // must NOT leak into candidates

  AnnealLog log;
  core::TunerConfig tuner;
  tuner.evaluations = 10;
  tuner.restarts = 2;
  tuner.e0 = 0.40;
  tuner.band = 0.30;
  tuner.anneal_log = &log;
  tuner.anneal_label = "unit";

  const auto outcome = core::tune_enablers(
      base, core::ScalingCase::case1_network_size(), tuner, runner);
  EXPECT_GT(outcome.evaluations, 0u);
  EXPECT_EQ(log.size(), outcome.evaluations);
  for (const AnnealRecord& r : log.records()) {
    EXPECT_EQ(r.label, "unit");
  }
}

}  // namespace
}  // namespace scal::obs
