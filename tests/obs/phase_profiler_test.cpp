#include "obs/phase_profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace scal::obs {
namespace {

TEST(PhaseProfiler, DisabledByDefaultAndScopesAreInert) {
  PhaseProfiler profiler;
  EXPECT_FALSE(profiler.enabled());
  const PhaseId id = profiler.phase("work");
  {
    PhaseProfiler::Scope scope(&profiler, id);
  }
  EXPECT_EQ(profiler.stats(id).calls, 0u);
}

TEST(PhaseProfiler, NullProfilerScopeIsInert) {
  PhaseProfiler::Scope scope(nullptr, 0);  // must not crash
}

TEST(PhaseProfiler, PhaseIdsAreDenseInRegistrationOrder) {
  PhaseProfiler profiler(/*enabled=*/true);
  EXPECT_EQ(profiler.phase("a"), 0u);
  EXPECT_EQ(profiler.phase("b"), 1u);
  EXPECT_EQ(profiler.phase("a"), 0u);  // lookup, not re-registration
  EXPECT_EQ(profiler.phases().size(), 2u);
}

TEST(PhaseProfiler, CountsCallsPerPhase) {
  PhaseProfiler profiler(/*enabled=*/true);
  const PhaseId a = profiler.phase("a");
  const PhaseId b = profiler.phase("b");
  for (int i = 0; i < 3; ++i) {
    PhaseProfiler::Scope scope(&profiler, a);
  }
  {
    PhaseProfiler::Scope scope(&profiler, b);
  }
  EXPECT_EQ(profiler.stats(a).calls, 3u);
  EXPECT_EQ(profiler.stats(b).calls, 1u);
}

TEST(PhaseProfiler, NestedScopesAttributeSelfTime) {
  PhaseProfiler profiler(/*enabled=*/true);
  const PhaseId outer = profiler.phase("outer");
  const PhaseId inner = profiler.phase("inner");
  {
    PhaseProfiler::Scope outer_scope(&profiler, outer);
    for (int i = 0; i < 50; ++i) {
      PhaseProfiler::Scope inner_scope(&profiler, inner);
      volatile int spin = 0;
      for (int j = 0; j < 1000; ++j) spin = spin + j;
    }
  }
  const PhaseProfiler::PhaseStats& o = profiler.stats(outer);
  const PhaseProfiler::PhaseStats& i = profiler.stats(inner);
  EXPECT_EQ(o.calls, 1u);
  EXPECT_EQ(i.calls, 50u);
  // The outer total covers the inner total; outer self excludes it.
  EXPECT_GE(o.total_ns, i.total_ns);
  EXPECT_EQ(o.self_ns, o.total_ns - i.total_ns);
  // A leaf phase's self time is its total time.
  EXPECT_EQ(i.self_ns, i.total_ns);
}

TEST(PhaseProfiler, RecursiveScopesOnOnePhaseCountEveryEntry) {
  PhaseProfiler profiler(/*enabled=*/true);
  const PhaseId id = profiler.phase("recurse");
  {
    PhaseProfiler::Scope a(&profiler, id);
    {
      PhaseProfiler::Scope b(&profiler, id);
    }
  }
  const PhaseProfiler::PhaseStats& stats = profiler.stats(id);
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_LE(stats.self_ns, stats.total_ns);
}

TEST(PhaseProfiler, MergeAccumulatesByNameAndAppendsNew) {
  PhaseProfiler a(/*enabled=*/true);
  PhaseProfiler b(/*enabled=*/true);
  const PhaseId a_shared = a.phase("shared");
  const PhaseId b_only = b.phase("only_b");
  const PhaseId b_shared = b.phase("shared");
  {
    PhaseProfiler::Scope s(&a, a_shared);
  }
  {
    PhaseProfiler::Scope s(&b, b_shared);
  }
  {
    PhaseProfiler::Scope s(&b, b_shared);
  }
  {
    PhaseProfiler::Scope s(&b, b_only);
  }
  a.merge(b);
  ASSERT_EQ(a.phases().size(), 2u);
  EXPECT_EQ(a.phases()[0].name, "shared");
  EXPECT_EQ(a.phases()[0].calls, 3u);
  EXPECT_EQ(a.phases()[1].name, "only_b");
  EXPECT_EQ(a.phases()[1].calls, 1u);
}

TEST(PhaseProfiler, CountsJsonIsDeterministic) {
  // counts_json() is the bit-identity surface: no wall-clock fields.
  auto run = [] {
    PhaseProfiler profiler(/*enabled=*/true);
    const PhaseId dispatch = profiler.phase("dispatch");
    const PhaseId route = profiler.phase("route");
    for (int i = 0; i < 7; ++i) {
      PhaseProfiler::Scope outer(&profiler, dispatch);
      PhaseProfiler::Scope inner(&profiler, route);
    }
    return profiler.counts_json();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first, "{\"dispatch\":7,\"route\":7}");
}

TEST(PhaseProfiler, MergedCountsMatchSerialAtAnySlotOrder) {
  // The parallel reduction: per-slot profilers merged in slot order give
  // the same counts as one serial profiler over the same work.
  PhaseProfiler serial(/*enabled=*/true);
  const PhaseId s = serial.phase("eval");
  for (int i = 0; i < 10; ++i) {
    PhaseProfiler::Scope scope(&serial, s);
  }
  std::vector<PhaseProfiler> slots;
  for (int slot = 0; slot < 3; ++slot) {
    slots.emplace_back(/*enabled=*/true);
  }
  int spread[] = {4, 3, 3};
  for (int slot = 0; slot < 3; ++slot) {
    const PhaseId id = slots[slot].phase("eval");
    for (int i = 0; i < spread[slot]; ++i) {
      PhaseProfiler::Scope scope(&slots[slot], id);
    }
  }
  PhaseProfiler merged(/*enabled=*/true);
  for (const PhaseProfiler& slot : slots) merged.merge(slot);
  EXPECT_EQ(merged.counts_json(), serial.counts_json());
}

TEST(PhaseProfiler, ClearDropsPhasesAndOpenScopes) {
  PhaseProfiler profiler(/*enabled=*/true);
  const PhaseId id = profiler.phase("p");
  {
    PhaseProfiler::Scope scope(&profiler, id);
    profiler.clear();  // clearing with an open scope must not corrupt
  }
  EXPECT_TRUE(profiler.phases().empty());
  EXPECT_EQ(profiler.counts_json(), "{}");
}

TEST(PhaseProfiler, JsonCarriesAllThreeFields) {
  PhaseProfiler profiler(/*enabled=*/true);
  const PhaseId id = profiler.phase("p");
  {
    PhaseProfiler::Scope scope(&profiler, id);
  }
  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"self_ns\":"), std::string::npos);
}

TEST(PhaseProfiler, TraceMirrorEmitsCompleteEvents) {
  TraceRecorder trace;
  trace.set_enabled(true);
  const TraceTid tid = trace.register_track("profiler (wall us)");
  PhaseProfiler profiler(/*enabled=*/true);
  profiler.attach_trace(&trace, tid);
  const PhaseId id = profiler.phase("work");
  {
    PhaseProfiler::Scope scope(&profiler, id);
  }
  ASSERT_GE(trace.size(), 1u);
  const TraceEvent& ev = trace.events().back();
  EXPECT_EQ(ev.phase, 'X');
  EXPECT_EQ(ev.name, "work");
  EXPECT_EQ(ev.tid, tid);
  EXPECT_GE(ev.dur, 0.0);

  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

}  // namespace
}  // namespace scal::obs
