#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_checker.hpp"

namespace scal::obs {
namespace {

RunManifest sample_manifest() {
  RunManifest m;
  m.label = "unit \"quoted\" label \\ with escapes";
  m.started_at = "2026-08-05T10:00:00Z";
  m.git_version = "deadbeef-dirty";
  m.wall_seconds = 1.25;
  m.rms = "LOWEST";
  m.seed = 424242;
  m.horizon = 1500.0;
  m.nodes = 250;
  m.clusters = 12;
  m.estimators_per_cluster = 2;
  m.service_rate = 8.0;
  m.mean_interarrival = 0.3125;
  m.F = 12345.6789;
  m.G = 234.5;
  m.H = 56.25;
  m.efficiency = 0.4012345678901234;
  m.throughput = 1.5;
  m.counters.set("polls", 321);
  m.counters.set("transfers", 12);
  m.counters.set_real("G_scheduler", 200.125);
  m.anneal_iterations = 24;
  m.anneal_accepted = 10;
  m.anneal_best_objective = 199.0;
  return m;
}

TEST(RunManifest, ToJsonRoundTripsFieldsAndCounters) {
  const RunManifest m = sample_manifest();
  const testjson::Value root = testjson::parse(m.to_json());
  ASSERT_TRUE(root.is_object());

  EXPECT_EQ(root.at("label").string, m.label);
  EXPECT_EQ(root.at("git").string, "deadbeef-dirty");

  const auto& config = root.at("config");
  ASSERT_TRUE(config.is_object());
  EXPECT_EQ(config.at("rms").string, "LOWEST");
  EXPECT_EQ(config.at("seed").number, 424242.0);
  EXPECT_EQ(config.at("nodes").number, 250.0);
  EXPECT_EQ(config.at("mean_interarrival").number, 0.3125);

  const auto& result = root.at("result");
  ASSERT_TRUE(result.is_object());
  // json_number emits shortest-round-trip decimals, so parsing returns
  // the exact double.
  EXPECT_EQ(result.at("F").number, m.F);
  EXPECT_EQ(result.at("efficiency").number, m.efficiency);

  const auto& counters = root.at("counters");
  ASSERT_TRUE(counters.is_object());
  EXPECT_EQ(counters.at("polls").number, 321.0);
  EXPECT_EQ(counters.at("G_scheduler").number, 200.125);

  const auto& anneal = root.at("anneal");
  ASSERT_TRUE(anneal.is_object());
  EXPECT_EQ(anneal.at("iterations").number, 24.0);
  EXPECT_EQ(anneal.at("accepted").number, 10.0);
}

TEST(RunManifest, AppendJsonlWritesOneParsableLinePerRun) {
  const std::string path = ::testing::TempDir() + "manifest_test.jsonl";
  std::remove(path.c_str());

  RunManifest m = sample_manifest();
  ASSERT_TRUE(m.append_jsonl(path));
  m.label = "second run";
  ASSERT_TRUE(m.append_jsonl(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(testjson::parse(lines[0]).at("label").string,
            sample_manifest().label);
  EXPECT_EQ(testjson::parse(lines[1]).at("label").string, "second run");
}

TEST(RunManifest, GitDescribeAndTimestampAreAvailable) {
  EXPECT_FALSE(git_describe().empty());
  const std::string ts = utc_timestamp();
  // ISO-8601 Zulu: "YYYY-MM-DDTHH:MM:SSZ".
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

}  // namespace
}  // namespace scal::obs
