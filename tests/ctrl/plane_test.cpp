// GridSystem-level contracts of the aggregation control plane:
//
//  * Degenerate bypass: control_plane=true with fan-out 1 / batch 1 /
//    flush 0 is bit-identical to control_plane=false — aggregator
//    entities exist but the status path takes the exact legacy sends.
//  * Aggregation on: tree counters populate, the tree's work is charged
//    to G, job accounting stays conserved.
//  * Reset cycles across aggregation knobs (including crossing the
//    degenerate boundary in both directions) replay bit-identically to
//    fresh builds — the contract the enabler tuner leans on.
//  * Observability: the ctrl histograms agree with the manifest
//    counters and are purely observational.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "grid/system.hpp"
#include "grid/telemetry.hpp"
#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::grid {
namespace {

GridConfig base_config(RmsKind rms = RmsKind::kSenderInitiated) {
  GridConfig config;
  config.rms = rms;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

GridConfig aggregating_config(RmsKind rms = RmsKind::kSenderInitiated) {
  GridConfig config = base_config(rms);
  config.control_plane = true;
  config.tuning.agg_fanout = 2;
  config.tuning.agg_batch = 8;
  config.tuning.agg_flush = 6.0;
  return config;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.G_estimator, b.G_estimator);
  EXPECT_EQ(a.G_middleware, b.G_middleware);
  EXPECT_EQ(a.G_aggregator, b.G_aggregator);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.H_wasted, b.H_wasted);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_local, b.jobs_local);
  EXPECT_EQ(a.jobs_remote, b.jobs_remote);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.updates_received, b.updates_received);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.p95_response, b.p95_response);
  EXPECT_EQ(a.ctrl_updates_in, b.ctrl_updates_in);
  EXPECT_EQ(a.ctrl_updates_coalesced, b.ctrl_updates_coalesced);
  EXPECT_EQ(a.ctrl_batches, b.ctrl_batches);
}

class ControlPlane : public ::testing::TestWithParam<RmsKind> {};

TEST_P(ControlPlane, DegenerateKnobsAreBitIdenticalToOff) {
  GridConfig off = base_config(GetParam());
  const SimulationResult plain = rms::simulate(off);

  GridConfig degenerate = base_config(GetParam());
  degenerate.control_plane = true;  // knobs stay at fan-out 1/batch 1/flush 0
  ASSERT_TRUE(degenerate.tuning.aggregation_degenerate());
  const SimulationResult bypassed = rms::simulate(degenerate);

  expect_identical(plain, bypassed);
  EXPECT_EQ(bypassed.G_aggregator, 0.0);
  EXPECT_EQ(bypassed.ctrl_updates_in, 0u);
}

TEST_P(ControlPlane, AggregationPopulatesTreeCountersAndChargesG) {
  const SimulationResult r = rms::simulate(aggregating_config(GetParam()));
  EXPECT_GT(r.ctrl_updates_in, 0u);
  EXPECT_GT(r.ctrl_batches, 0u);
  EXPECT_GE(r.ctrl_tree_depth, 1u);
  EXPECT_GT(r.G_aggregator, 0.0);
  EXPECT_LE(r.ctrl_updates_coalesced, r.ctrl_updates_in);
  EXPECT_GE(r.ctrl_coalescing_ratio(), 0.0);
  EXPECT_LT(r.ctrl_coalescing_ratio(), 1.0);
  // Job accounting stays conserved under aggregation.
  EXPECT_GT(r.jobs_arrived, 0u);
  EXPECT_EQ(r.jobs_local + r.jobs_remote, r.jobs_arrived);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
}

TEST_P(ControlPlane, AggregationRunsAreReproducible) {
  const SimulationResult a = rms::simulate(aggregating_config(GetParam()));
  const SimulationResult b = rms::simulate(aggregating_config(GetParam()));
  expect_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(Policies, ControlPlane,
                         ::testing::Values(RmsKind::kCentral, RmsKind::kLowest,
                                           RmsKind::kSenderInitiated,
                                           RmsKind::kSymmetric,
                                           RmsKind::kAuction),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(
                                 static_cast<unsigned char>(c));
                           });
                           return name;
                         });

TEST(ControlPlaneReset, KnobResetMatchesFreshBuild) {
  GridConfig first = aggregating_config();
  GridConfig second = aggregating_config();
  second.tuning.agg_fanout = 4;
  second.tuning.agg_batch = 16;
  second.tuning.agg_flush = 2.5;

  GridSystem system(first, rms::scheduler_factory(first.rms));
  system.run();
  ASSERT_TRUE(system.reset_compatible(second));
  system.reset(second);
  const SimulationResult warm = system.run();

  GridSystem fresh(second, rms::scheduler_factory(second.rms));
  expect_identical(fresh.run(), warm);
}

TEST(ControlPlaneReset, CrossingTheDegenerateBoundaryBothWays) {
  GridConfig degenerate = base_config();
  degenerate.control_plane = true;
  GridConfig aggregating = aggregating_config();

  // Degenerate -> aggregating.
  GridSystem system(degenerate, rms::scheduler_factory(degenerate.rms));
  system.run();
  ASSERT_TRUE(system.reset_compatible(aggregating));
  system.reset(aggregating);
  const SimulationResult warm_on = system.run();
  GridSystem fresh_on(aggregating, rms::scheduler_factory(aggregating.rms));
  expect_identical(fresh_on.run(), warm_on);

  // Aggregating -> degenerate (must match plain control_plane=false too).
  system.reset(degenerate);
  const SimulationResult warm_off = system.run();
  expect_identical(rms::simulate(base_config()), warm_off);
}

TEST(ControlPlaneReset, ControlPlaneFlagIsStructural) {
  GridConfig off = base_config();
  GridConfig on = base_config();
  on.control_plane = true;
  GridSystem system(off, rms::scheduler_factory(off.rms));
  EXPECT_FALSE(system.reset_compatible(on));
}

TEST(ControlPlaneObs, HistogramsMatchManifestCounters) {
  obs::TelemetryConfig tc;
  tc.metrics = true;
  obs::Telemetry telemetry(tc);
  GridConfig config = aggregating_config();
  config.telemetry = &telemetry;
  const SimulationResult result = rms::simulate(config);

  const obs::Histogram& coalescing =
      telemetry.histograms().histogram("ctrl_coalescing");
  const obs::Histogram& hop_delay =
      telemetry.histograms().histogram("ctrl_hop_delay");
  // One coalescing sample per forwarded batch; one hop-delay sample per
  // forwarded update.  Updates still buffered at the horizon have not
  // forwarded, so the hop count is bounded by in - coalesced.
  EXPECT_EQ(coalescing.count(), result.ctrl_batches);
  EXPECT_LE(hop_delay.count(),
            result.ctrl_updates_in - result.ctrl_updates_coalesced);
  EXPECT_GT(hop_delay.count(), 0u);
  // The histogram's total absorbed mass is the coalesced counter, less
  // whatever is still sitting in buffers at the horizon.
  EXPECT_LE(static_cast<std::uint64_t>(coalescing.sum()),
            result.ctrl_updates_coalesced);

  obs::RunManifest manifest;
  fill_manifest(manifest, config, result);
  EXPECT_TRUE(manifest.control_plane);
  EXPECT_EQ(manifest.ctrl_updates_in, result.ctrl_updates_in);
  EXPECT_EQ(manifest.ctrl_batches, result.ctrl_batches);
  EXPECT_EQ(manifest.ctrl_tree_depth, result.ctrl_tree_depth);
  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"ctrl\""), std::string::npos);
  EXPECT_NE(json.find("\"agg_fanout\""), std::string::npos);

  // Control-plane-off manifests keep the legacy layout.
  obs::RunManifest off;
  fill_manifest(off, base_config(), rms::simulate(base_config()));
  EXPECT_EQ(off.to_json().find("\"ctrl\""), std::string::npos);
  EXPECT_EQ(off.to_json().find("\"agg_fanout\""), std::string::npos);
}

TEST(ControlPlaneObs, MetricsInstrumentationIsObservational) {
  const SimulationResult plain = rms::simulate(aggregating_config());

  obs::TelemetryConfig tc;
  tc.metrics = true;
  obs::Telemetry telemetry(tc);
  GridConfig instrumented = aggregating_config();
  instrumented.telemetry = &telemetry;
  const SimulationResult probed = rms::simulate(instrumented);

  expect_identical(plain, probed);
}

TEST(ControlPlaneFaults, AggregatorBlackoutsFlushAndRecover) {
  GridConfig config = aggregating_config();
  config.faults = fault::FaultPlan::parse("agg-blackout:period=80,length=10");
  const SimulationResult r = rms::simulate(config);
  EXPECT_GT(r.aggregator_blackouts, 0u);
  // Traffic keeps flowing through relays; accounting stays conserved.
  EXPECT_GT(r.ctrl_batches, 0u);
  EXPECT_EQ(r.jobs_local + r.jobs_remote, r.jobs_arrived);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);

  // Same plan, different cadence => different outcome (the windows are
  // actually doing something).
  GridConfig other = aggregating_config();
  other.faults = fault::FaultPlan::parse("agg-blackout:period=40,length=20");
  const SimulationResult r2 = rms::simulate(other);
  EXPECT_GT(r2.aggregator_blackouts, r.aggregator_blackouts);
}

}  // namespace
}  // namespace scal::grid
