#include "ctrl/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace scal::ctrl {
namespace {

net::Graph line_graph() {
  net::Graph g(4);
  g.add_edge(0, 1, 1.0, 10.0);
  g.add_edge(1, 2, 2.0, 10.0);
  g.add_edge(2, 3, 3.0, 10.0);
  return g;
}

TEST(AggregationTree, MembersOrderedByLatencyFromRoot) {
  const net::Graph g = line_graph();
  net::Router router(g);
  const AggregationTree tree = build_tree(router, 0, {3, 1, 2}, 1);
  ASSERT_EQ(tree.members.size(), 3u);
  EXPECT_EQ(tree.members[0], 1u);  // latency 1
  EXPECT_EQ(tree.members[1], 2u);  // latency 3
  EXPECT_EQ(tree.members[2], 3u);  // latency 6
}

TEST(AggregationTree, FanoutOneIsAChain) {
  const net::Graph g = line_graph();
  net::Router router(g);
  const AggregationTree tree = build_tree(router, 0, {1, 2, 3}, 1);
  EXPECT_EQ(tree.parent[0], kToRoot);
  EXPECT_EQ(tree.parent[1], 0);
  EXPECT_EQ(tree.parent[2], 1);
  EXPECT_EQ(tree.depth(), 3u);
}

TEST(AggregationTree, FanoutTwoIsABinaryHeap) {
  const net::Graph g = line_graph();
  net::Router router(g);
  const AggregationTree tree = build_tree(router, 0, {1, 2, 3}, 2);
  EXPECT_EQ(tree.parent[0], kToRoot);
  EXPECT_EQ(tree.parent[1], kToRoot);
  EXPECT_EQ(tree.parent[2], 0);
  EXPECT_EQ(tree.depth(), 2u);
}

TEST(AggregationTree, LargeFanoutIsAStar) {
  const net::Graph g = line_graph();
  net::Router router(g);
  const AggregationTree tree = build_tree(router, 0, {1, 2, 3}, 8);
  for (const std::int32_t p : tree.parent) EXPECT_EQ(p, kToRoot);
  EXPECT_EQ(tree.depth(), 1u);
}

TEST(AggregationTree, EmptyMemberSetIsDepthZero) {
  const net::Graph g = line_graph();
  net::Router router(g);
  const AggregationTree tree = build_tree(router, 0, {}, 2);
  EXPECT_TRUE(tree.members.empty());
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(AggregationTree, InvalidArgumentsThrow) {
  const net::Graph g = line_graph();
  net::Router router(g);
  EXPECT_THROW(build_tree(router, 0, {1, 2}, 0), std::invalid_argument);
  EXPECT_THROW(build_tree(router, net::kInvalidNode, {1}, 1),
               std::invalid_argument);
  AggregationTree tree = build_tree(router, 0, {1, 2}, 1);
  EXPECT_THROW(rewire(tree, 0), std::invalid_argument);
}

TEST(AggregationTree, RewireKeepsMemberOrder) {
  const net::Graph g = line_graph();
  net::Router router(g);
  AggregationTree tree = build_tree(router, 0, {1, 2, 3}, 1);
  const std::vector<net::NodeId> members = tree.members;
  rewire(tree, 3);
  EXPECT_EQ(tree.members, members);
  EXPECT_EQ(tree.fanout, 3u);
  EXPECT_EQ(tree.depth(), 1u);
  rewire(tree, 1);
  EXPECT_EQ(tree.members, members);
  EXPECT_EQ(tree.depth(), 3u);
}

/// Structural invariants that must hold on any generated topology: the
/// member list is a permutation of the input, every parent link points
/// at an earlier member (heap property), and the depth is bounded by
/// the member count.
void expect_well_formed(const AggregationTree& tree,
                        std::vector<net::NodeId> expected_members) {
  std::vector<net::NodeId> got = tree.members;
  std::sort(got.begin(), got.end());
  std::sort(expected_members.begin(), expected_members.end());
  EXPECT_EQ(got, expected_members);
  ASSERT_EQ(tree.parent.size(), tree.members.size());
  for (std::size_t i = 0; i < tree.parent.size(); ++i) {
    if (tree.parent[i] == kToRoot) continue;
    EXPECT_GE(tree.parent[i], 0);
    EXPECT_LT(static_cast<std::size_t>(tree.parent[i]), i);
  }
  EXPECT_LE(tree.depth(), tree.members.size());
  if (!tree.members.empty()) {
    EXPECT_GE(tree.depth(), 1u);
  }
}

TEST(AggregationTree, WellFormedAcrossTopologyShapes) {
  const net::TopologyKind kinds[] = {
      net::TopologyKind::kPreferentialAttachment, net::TopologyKind::kWaxman,
      net::TopologyKind::kRingLattice, net::TopologyKind::kStar,
      net::TopologyKind::kTransitStub};
  for (const net::TopologyKind kind : kinds) {
    net::TopologyConfig tc;
    tc.kind = kind;
    tc.nodes = 48;
    util::RandomStream rng(11, "topology");
    const net::Graph g = net::generate_topology(tc, rng);
    net::Router router(g);
    std::vector<net::NodeId> members;
    for (net::NodeId n = 1; n < 25 && n < g.node_count(); ++n) {
      members.push_back(n);
    }
    for (const std::uint32_t fanout : {1u, 2u, 3u, 7u, 64u}) {
      const AggregationTree tree = build_tree(router, 0, members, fanout);
      expect_well_formed(tree, members);
    }
  }
}

TEST(AggregationTree, DeterministicAcrossRebuilds) {
  net::TopologyConfig tc;
  tc.nodes = 40;
  util::RandomStream rng_a(3, "topology");
  util::RandomStream rng_b(3, "topology");
  const net::Graph ga = net::generate_topology(tc, rng_a);
  const net::Graph gb = net::generate_topology(tc, rng_b);
  net::Router ra(ga);
  net::Router rb(gb);
  const std::vector<net::NodeId> members = {5, 9, 2, 17, 30, 12, 8};
  const AggregationTree a = build_tree(ra, 1, members, 3);
  const AggregationTree b = build_tree(rb, 1, members, 3);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.parent, b.parent);
}

}  // namespace
}  // namespace scal::ctrl
