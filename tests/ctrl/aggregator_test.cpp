#include "ctrl/aggregator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace scal::ctrl {
namespace {

grid::StatusUpdate update(grid::ResourceIndex resource, double load,
                          double stamp = 0.0) {
  grid::StatusUpdate u;
  u.cluster = 0;
  u.resource = resource;
  u.load = load;
  u.stamp = stamp;
  return u;
}

/// Harness owning the simulator, one aggregator, and a capture of every
/// forwarded batch (with its forward time).
struct Harness {
  explicit Harness(double process_cost = 0.002, double forward_cost = 0.01)
      : agg(sim, 1, /*node=*/7, process_cost, forward_cost,
            [this](std::vector<grid::StatusUpdate> batch) {
              forward_times.push_back(sim.now());
              batches.push_back(std::move(batch));
            }) {}

  sim::Simulator sim;
  std::vector<std::vector<grid::StatusUpdate>> batches;
  std::vector<double> forward_times;
  Aggregator agg;
};

TEST(Aggregator, DegenerateKnobsForwardEachUpdateAlone) {
  Harness h;
  h.agg.configure(1, 0.0);
  h.sim.schedule_at(0.0, [&]() { h.agg.ingest({update(0, 1.0)}); });
  h.sim.schedule_at(5.0, [&]() { h.agg.ingest({update(1, 2.0)}); });
  h.sim.run(100.0);
  ASSERT_EQ(h.batches.size(), 2u);
  EXPECT_EQ(h.batches[0].size(), 1u);
  EXPECT_EQ(h.batches[1].size(), 1u);
  EXPECT_EQ(h.agg.updates_in(), 2u);
  EXPECT_EQ(h.agg.updates_out(), 2u);
  EXPECT_EQ(h.agg.updates_coalesced(), 0u);
  EXPECT_EQ(h.agg.batches_out(), 2u);
  // process + forward cost per update.
  EXPECT_DOUBLE_EQ(h.forward_times[0], 0.002 + 0.01);
}

TEST(Aggregator, CoalescingReplacesSameResourceUpdate) {
  Harness h;
  h.agg.configure(/*max_batch=*/8, /*flush_interval=*/10.0);
  h.sim.schedule_at(0.0, [&]() { h.agg.ingest({update(3, 1.0, 0.0)}); });
  h.sim.schedule_at(2.0, [&]() { h.agg.ingest({update(3, 4.0, 2.0)}); });
  h.sim.run(100.0);
  ASSERT_EQ(h.batches.size(), 1u);
  ASSERT_EQ(h.batches[0].size(), 1u);
  // The newer view survives.
  EXPECT_DOUBLE_EQ(h.batches[0][0].load, 4.0);
  EXPECT_EQ(h.agg.updates_in(), 2u);
  EXPECT_EQ(h.agg.updates_out(), 1u);
  EXPECT_EQ(h.agg.updates_coalesced(), 1u);
}

TEST(Aggregator, DistinctResourcesDoNotCoalesce) {
  Harness h;
  h.agg.configure(8, 10.0);
  h.sim.schedule_at(0.0, [&]() {
    h.agg.ingest({update(0, 1.0), update(1, 2.0), update(2, 3.0)});
  });
  h.sim.run(100.0);
  ASSERT_EQ(h.batches.size(), 1u);
  EXPECT_EQ(h.batches[0].size(), 3u);
  EXPECT_EQ(h.agg.updates_coalesced(), 0u);
}

TEST(Aggregator, MaxBatchTriggersImmediateFlush) {
  Harness h;
  h.agg.configure(/*max_batch=*/3, /*flush_interval=*/50.0);
  h.sim.schedule_at(0.0, [&]() {
    h.agg.ingest({update(0, 1.0), update(1, 1.0), update(2, 1.0)});
  });
  h.sim.run(10.0);  // well before the 50-unit flush timer
  ASSERT_EQ(h.batches.size(), 1u);
  EXPECT_EQ(h.batches[0].size(), 3u);
}

TEST(Aggregator, FlushTimerShipsAPartialBatch) {
  Harness h(/*process_cost=*/0.0, /*forward_cost=*/0.0);
  h.agg.configure(/*max_batch=*/100, /*flush_interval=*/5.0);
  h.sim.schedule_at(1.0, [&]() { h.agg.ingest({update(0, 1.0)}); });
  h.sim.run(100.0);
  ASSERT_EQ(h.batches.size(), 1u);
  // Buffered at t=1, timer arms for +5.
  EXPECT_DOUBLE_EQ(h.forward_times[0], 6.0);
}

TEST(Aggregator, BlackoutFlushesPendingBufferAtZeroCost) {
  Harness h(/*process_cost=*/0.0, /*forward_cost=*/0.25);
  h.agg.configure(100, 50.0);
  h.sim.schedule_at(0.0, [&]() { h.agg.ingest({update(0, 1.0)}); });
  h.sim.schedule_at(2.0, [&]() { h.agg.set_blackout(true); });
  h.sim.run(10.0);
  // The failover flush runs inline at the blackout instant, not through
  // the (charged) work queue.
  ASSERT_EQ(h.batches.size(), 1u);
  EXPECT_DOUBLE_EQ(h.forward_times[0], 2.0);
  EXPECT_TRUE(h.agg.blacked_out());
}

TEST(Aggregator, BlackoutRelaysArrivalsUnbufferedAndUncharged) {
  Harness h;
  h.agg.configure(100, 50.0);
  h.sim.schedule_at(0.0, [&]() { h.agg.set_blackout(true); });
  h.sim.schedule_at(1.0, [&]() {
    h.agg.ingest({update(0, 1.0), update(1, 2.0)});
  });
  h.sim.run(10.0);
  ASSERT_EQ(h.batches.size(), 1u);
  EXPECT_EQ(h.batches[0].size(), 2u);
  EXPECT_DOUBLE_EQ(h.forward_times[0], 1.0);  // relayed inline
  EXPECT_EQ(h.agg.updates_in(), 0u);          // not counted as tree work
  EXPECT_DOUBLE_EQ(h.agg.work_in_system_time(), 0.0);
  h.agg.set_blackout(false);
  EXPECT_FALSE(h.agg.blacked_out());
}

TEST(Aggregator, ResetRestoresConstructedState) {
  Harness h;
  h.agg.configure(4, 2.0);
  h.sim.schedule_at(0.0, [&]() {
    h.agg.ingest({update(0, 1.0), update(0, 2.0)});
  });
  h.sim.run(100.0);
  EXPECT_GT(h.agg.updates_in(), 0u);
  h.sim.reset();
  h.agg.reset();
  EXPECT_EQ(h.agg.updates_in(), 0u);
  EXPECT_EQ(h.agg.updates_out(), 0u);
  EXPECT_EQ(h.agg.updates_coalesced(), 0u);
  EXPECT_EQ(h.agg.batches_out(), 0u);
  EXPECT_FALSE(h.agg.blacked_out());
  // Reusable: a fresh cycle behaves like a fresh aggregator.
  h.batches.clear();
  h.agg.configure(1, 0.0);
  h.sim.schedule_at(0.0, [&]() { h.agg.ingest({update(5, 1.0)}); });
  h.sim.run(10.0);
  ASSERT_EQ(h.batches.size(), 1u);
  EXPECT_EQ(h.batches[0][0].resource, 5u);
}

TEST(Aggregator, InvalidConfigurationThrows) {
  sim::Simulator sim;
  EXPECT_THROW(
      Aggregator(sim, 1, 0, -1.0, 0.0, [](std::vector<grid::StatusUpdate>) {}),
      std::invalid_argument);
  EXPECT_THROW(Aggregator(sim, 1, 0, 0.0, 0.0, nullptr),
               std::invalid_argument);
  Aggregator agg(sim, 1, 0, 0.0, 0.0, [](std::vector<grid::StatusUpdate>) {});
  EXPECT_THROW(agg.configure(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace scal::ctrl
