// DistributedSchedulerBase helpers (transfer accounting, the R-I
// demand/reply handshake) exercised in isolation through a probe policy
// on a two-cluster grid.

#include <gtest/gtest.h>

#include "rms/base.hpp"
#include "rms/factory.hpp"

namespace scal::rms {
namespace {

class ProbePolicy : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

  std::vector<grid::RmsMessage> received;
  util::TokenMap<std::uint64_t, workload::Job> negotiating;

  using DistributedSchedulerBase::decide_demand_reply;
  using DistributedSchedulerBase::reply_demand;
  using DistributedSchedulerBase::schedule_local;
  using DistributedSchedulerBase::transfer_job;

 protected:
  void handle_job(workload::Job job) override {
    schedule_local(std::move(job));
  }
  void handle_message(const grid::RmsMessage& msg) override {
    received.push_back(msg);
    if (msg.kind == grid::MsgKind::kDemandRequest) {
      reply_demand(msg);
      return;
    }
    if (msg.kind == grid::MsgKind::kDemandReply) {
      decide_demand_reply(msg, negotiating);
      return;
    }
    DistributedSchedulerBase::handle_message(msg);
  }
};

struct TwoClusterGrid {
  std::vector<ProbePolicy*> scheds;
  std::unique_ptr<grid::GridSystem> system;

  TwoClusterGrid() {
    grid::GridConfig config;
    config.topology.nodes = 40;
    config.cluster_size = 20;
    config.horizon = 300.0;
    config.workload.mean_interarrival = 1e9;  // no background jobs
    grid::SchedulerFactory factory =
        [this](grid::GridSystem& system, sim::EntityId id,
               grid::ClusterId cluster, net::NodeId node) {
          auto s = std::make_unique<ProbePolicy>(system, id, cluster, node);
          scheds.push_back(s.get());
          return s;
        };
    system = std::make_unique<grid::GridSystem>(config, factory);
  }
};

workload::Job remote_job(workload::JobId id) {
  workload::Job j;
  j.id = id;
  j.exec_time = 800.0;
  j.job_class = workload::JobClass::kRemote;
  j.benefit_factor = 5.0;
  return j;
}

TEST(DistributedBase, TransferDeliversJobAndCounts) {
  TwoClusterGrid grid;
  grid.scheds[0]->transfer_job(1, remote_job(5));
  grid.system->simulator().run(50.0);
  ASSERT_EQ(grid.scheds[1]->received.size(), 1u);
  EXPECT_EQ(grid.scheds[1]->received[0].kind,
            grid::MsgKind::kJobTransfer);
  ASSERT_TRUE(grid.scheds[1]->received[0].job.has_value());
  EXPECT_EQ(grid.scheds[1]->received[0].job->id, 5u);
  EXPECT_EQ(grid.system->metrics().transfers(), 1u);
}

TEST(DistributedBase, DemandHandshakeTransfersWhenRemoteWins) {
  TwoClusterGrid grid;
  ProbePolicy& holder = *grid.scheds[0];
  // Make the local cluster look terrible: every resource heavily loaded.
  grid::RmsMessage demand;
  demand.kind = grid::MsgKind::kDemandRequest;
  demand.token = 77;
  demand.a = 800.0;
  holder.negotiating.emplace(77, remote_job(9));
  // Fake the reply directly: volunteer quotes a tiny ATT.
  grid::RmsMessage reply;
  reply.kind = grid::MsgKind::kDemandReply;
  reply.token = 77;
  reply.from = 1;
  reply.a = 0.0;  // instant turnaround over there
  // Pre-load local table with misery so local_att is large.
  for (int i = 0; i < 40; ++i) holder.deliver_job(remote_job(200 + i));
  grid.system->simulator().run(10.0);
  holder.deliver_message(reply);
  grid.system->simulator().run(50.0);
  // The job was transferred to cluster 1 (it received a kJobTransfer).
  bool transferred = false;
  for (const auto& m : grid.scheds[1]->received) {
    transferred |= m.kind == grid::MsgKind::kJobTransfer && m.job &&
                   m.job->id == 9u;
  }
  EXPECT_TRUE(transferred);
  EXPECT_TRUE(holder.negotiating.empty());
}

TEST(DistributedBase, DemandReplyForUnknownTokenIgnored) {
  TwoClusterGrid grid;
  grid::RmsMessage reply;
  reply.kind = grid::MsgKind::kDemandReply;
  reply.token = 12345;
  reply.from = 1;
  EXPECT_FALSE(grid.scheds[0]->decide_demand_reply(
      reply, grid.scheds[0]->negotiating));
}

TEST(DistributedBase, ReplyDemandQuotesAttAndRus) {
  TwoClusterGrid grid;
  grid::RmsMessage demand;
  demand.kind = grid::MsgKind::kDemandRequest;
  demand.token = 3;
  demand.from = 0;
  demand.a = 400.0;  // demand units
  grid.scheds[1]->deliver_message(demand);
  grid.system->simulator().run(50.0);
  ASSERT_GE(grid.scheds[0]->received.size(), 1u);
  const auto& reply = grid.scheds[0]->received.back();
  EXPECT_EQ(reply.kind, grid::MsgKind::kDemandReply);
  EXPECT_EQ(reply.token, 3u);
  // Idle cluster: AWT 0, so ATT == ERT == demand / service_rate.
  EXPECT_NEAR(reply.a, 400.0 / 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(reply.b, 0.0);  // RUS of an idle cluster
}

TEST(MsgKind, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(grid::MsgKind::kNoJob); ++k) {
    EXPECT_STRNE(grid::to_string(static_cast<grid::MsgKind>(k)), "?");
  }
}

}  // namespace
}  // namespace scal::rms
