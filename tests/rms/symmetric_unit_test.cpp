// Sy-I protocol corner cases: advertisement use, consumption, and the
// S-I fallback.  The volunteering interval is pushed past the horizon
// so the periodic PUSH side stays quiet and the hand-delivered messages
// are the only advertisements in play.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

struct SyGrid {
  std::unique_ptr<grid::GridSystem> system;

  SyGrid() {
    grid::GridConfig config;
    config.rms = grid::RmsKind::kSymmetric;
    config.topology.nodes = 60;
    config.cluster_size = 20;
    config.horizon = 400.0;
    config.workload.mean_interarrival = 1e9;
    config.tuning.volunteer_interval = 1e9;  // periodic side silent
    config.tuning.neighborhood_size = 2;
    system = rms::make_grid(config);
  }

  grid::SchedulerBase& sched(grid::ClusterId c) {
    return system->scheduler_for(c);
  }

  workload::Job remote(workload::JobId id) {
    workload::Job j;
    j.id = id;
    j.exec_time = 900.0;
    j.job_class = workload::JobClass::kRemote;
    j.benefit_factor = 100.0;
    j.arrival = system->simulator().now();
    return j;
  }

  void deliver_advert(grid::ClusterId from, grid::ClusterId to,
                      double stamp) {
    grid::RmsMessage advert;
    advert.kind = grid::MsgKind::kVolunteer;
    advert.from = from;
    advert.to = to;
    advert.stamp = stamp;
    sched(to).deliver_message(advert);
  }
};

TEST(SymmetricUnit, FreshAdvertTriggersDemandHandshakeNotPoll) {
  SyGrid grid;
  auto& sim = grid.system->simulator();
  sim.schedule_at(5.0, [&grid]() { grid.deliver_advert(1, 0, 5.0); });
  sim.schedule_at(10.0, [&grid]() {
    grid.sched(0).deliver_job(grid.remote(1));
  });
  grid.system->run();
  // One demand request (counted as a poll), not an L_p-wide round.
  EXPECT_EQ(grid.system->metrics().polls(), 1u);
  // Both clusters are idle, so the turnaround comparison keeps the job
  // local (transfer would only add delay) — no transfer is correct.
  EXPECT_EQ(grid.system->metrics().transfers(), 0u);
}

TEST(SymmetricUnit, NoAdvertFallsBackToPollRound) {
  SyGrid grid;
  auto& sim = grid.system->simulator();
  sim.schedule_at(10.0, [&grid]() {
    grid.sched(0).deliver_job(grid.remote(1));
  });
  grid.system->run();
  // Full S-I round: L_p = 2 polls.
  EXPECT_EQ(grid.system->metrics().polls(), 2u);
}

TEST(SymmetricUnit, AdvertIsConsumedOnce) {
  SyGrid grid;
  auto& sim = grid.system->simulator();
  sim.schedule_at(5.0, [&grid]() { grid.deliver_advert(1, 0, 5.0); });
  // Two REMOTE jobs: the first consumes the advert (1 demand poll), the
  // second must fall back to the S-I round (L_p = 2 polls).
  sim.schedule_at(10.0, [&grid]() {
    grid.sched(0).deliver_job(grid.remote(1));
  });
  sim.schedule_at(20.0, [&grid]() {
    grid.sched(0).deliver_job(grid.remote(2));
  });
  grid.system->run();
  EXPECT_EQ(grid.system->metrics().polls(), 3u);
}

}  // namespace
}  // namespace scal::rms
