// Factory wiring: every RMS kind constructs, and the policy surface
// flags (middleware usage, idle-event subscription) match the paper's
// protocol families.

#include <gtest/gtest.h>

#include <map>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

grid::GridConfig tiny(grid::RmsKind kind) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 60;
  config.horizon = 50.0;
  config.workload.mean_interarrival = 5.0;
  return config;
}

TEST(Factory, EveryKindConstructsAndRuns) {
  for (const grid::RmsKind kind :
       {grid::RmsKind::kCentral, grid::RmsKind::kLowest,
        grid::RmsKind::kReserve, grid::RmsKind::kAuction,
        grid::RmsKind::kSenderInitiated, grid::RmsKind::kReceiverInitiated,
        grid::RmsKind::kSymmetric, grid::RmsKind::kHierarchical,
        grid::RmsKind::kRandom}) {
    EXPECT_NO_THROW({
      const auto r = simulate(tiny(kind));
      (void)r;
    }) << grid::to_string(kind);
  }
}

TEST(Factory, MiddlewareFamilyFlags) {
  // The superscheduler family routes through the middleware; nobody
  // else does.  Observable through the scheduler objects themselves.
  const std::map<grid::RmsKind, bool> expect_middleware = {
      {grid::RmsKind::kCentral, false},
      {grid::RmsKind::kLowest, false},
      {grid::RmsKind::kReserve, false},
      {grid::RmsKind::kAuction, false},
      {grid::RmsKind::kSenderInitiated, true},
      {grid::RmsKind::kReceiverInitiated, true},
      {grid::RmsKind::kSymmetric, true},
      {grid::RmsKind::kHierarchical, false},
      {grid::RmsKind::kRandom, false},
  };
  for (const auto& [kind, uses] : expect_middleware) {
    auto system = make_grid(tiny(kind));
    EXPECT_EQ(system->scheduler_for(0).uses_middleware(), uses)
        << grid::to_string(kind);
  }
}

TEST(Factory, IdleEventSubscribers) {
  // Only the PUSH+PULL pair reacts to idle events from the estimator
  // stream.
  const std::map<grid::RmsKind, bool> expect_idle = {
      {grid::RmsKind::kCentral, false},
      {grid::RmsKind::kLowest, false},
      {grid::RmsKind::kReserve, false},
      {grid::RmsKind::kAuction, true},
      {grid::RmsKind::kSenderInitiated, false},
      {grid::RmsKind::kReceiverInitiated, false},
      {grid::RmsKind::kSymmetric, true},
      {grid::RmsKind::kHierarchical, false},
      {grid::RmsKind::kRandom, false},
  };
  for (const auto& [kind, wants] : expect_idle) {
    auto system = make_grid(tiny(kind));
    EXPECT_EQ(system->scheduler_for(0).wants_idle_events(), wants)
        << grid::to_string(kind);
  }
}

TEST(Factory, SimulateEqualsMakeGridRun) {
  const auto direct = simulate(tiny(grid::RmsKind::kLowest));
  auto system = make_grid(tiny(grid::RmsKind::kLowest));
  const auto via_grid = system->run();
  EXPECT_DOUBLE_EQ(direct.G(), via_grid.G());
  EXPECT_EQ(direct.events_dispatched, via_grid.events_dispatched);
}

}  // namespace
}  // namespace scal::rms
