// RANDOM baseline (Zhou'88 comparator) behavior, and the comparison that
// justifies status estimation: informed policies beat it.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

grid::GridConfig cfg(grid::RmsKind kind, double ia = 0.45) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 200;
  config.horizon = 900.0;
  config.workload.mean_interarrival = ia;
  config.seed = 21;
  return config;
}

TEST(RandomPolicy, StringRoundTrip) {
  EXPECT_EQ(grid::to_string(grid::RmsKind::kRandom), "RANDOM");
  EXPECT_EQ(grid::rms_from_string("RANDOM"), grid::RmsKind::kRandom);
}

TEST(RandomPolicy, RunsAndConserves) {
  const auto r = simulate(cfg(grid::RmsKind::kRandom));
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  // No status-driven traffic at all.
  EXPECT_EQ(r.polls, 0u);
  EXPECT_EQ(r.auctions, 0u);
  EXPECT_EQ(r.adverts, 0u);
  // But REMOTE jobs do move.
  EXPECT_GT(r.transfers, 0u);
}

TEST(RandomPolicy, InformedPoliciesBeatIt) {
  // Zhou's core result, reproduced: at meaningful load, LOWEST's
  // deadline success beats blind random placement.
  const auto random = simulate(cfg(grid::RmsKind::kRandom));
  const auto lowest = simulate(cfg(grid::RmsKind::kLowest));
  EXPECT_GT(lowest.jobs_succeeded, random.jobs_succeeded);
  EXPECT_LT(lowest.mean_response, random.mean_response);
}

TEST(RandomPolicy, Deterministic) {
  const auto a = simulate(cfg(grid::RmsKind::kRandom));
  const auto b = simulate(cfg(grid::RmsKind::kRandom));
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
}

TEST(BottleneckIsolation, CentralConcentratesSchedulerWork) {
  const auto central = simulate(cfg(grid::RmsKind::kCentral));
  EXPECT_DOUBLE_EQ(central.G_scheduler_max_share, 1.0);

  const auto lowest = simulate(cfg(grid::RmsKind::kLowest));
  // 10 clusters: a balanced distributed RMS stays well below 1.
  EXPECT_LT(lowest.G_scheduler_max_share, 0.5);
  EXPECT_GT(lowest.G_scheduler_max_share, 0.05);
  EXPECT_LE(lowest.G_scheduler_max, lowest.G_scheduler);
}

TEST(BottleneckIsolation, HierRootIsTheHotspot) {
  const auto hier = simulate(cfg(grid::RmsKind::kHierarchical));
  // The root does all REMOTE routing: its share sits between the
  // balanced-distributed and fully-central extremes.
  EXPECT_GT(hier.G_scheduler_max_share, 0.15);
  EXPECT_LT(hier.G_scheduler_max_share, 1.0);
}

}  // namespace
}  // namespace scal::rms
