// AUCTION protocol corner cases, driven message-by-message on a real
// two-cluster grid (no background workload).

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

struct AuctionGrid {
  std::unique_ptr<grid::GridSystem> system;

  AuctionGrid() {
    grid::GridConfig config;
    config.rms = grid::RmsKind::kAuction;
    config.topology.nodes = 40;
    config.cluster_size = 20;
    config.horizon = 500.0;
    config.workload.mean_interarrival = 1e9;  // quiet grid
    config.tuning.update_interval = 5.0;      // brisk status flow
    system = rms::make_grid(config);
  }

  grid::SchedulerBase& sched(grid::ClusterId c) {
    return system->scheduler_for(c);
  }

  workload::Job job(workload::JobId id, double exec = 900.0) {
    workload::Job j;
    j.id = id;
    j.exec_time = exec;
    j.job_class = exec > 700.0 ? workload::JobClass::kRemote
                               : workload::JobClass::kLocal;
    j.benefit_factor = 100.0;
    j.arrival = system->simulator().now();
    return j;
  }
};

TEST(AuctionUnit, InviteWithoutBacklogDrawsNoBid) {
  AuctionGrid grid;
  // Cluster 1 is idle: an invitation must not produce a bid.
  grid::RmsMessage invite;
  invite.kind = grid::MsgKind::kAuctionInvite;
  invite.from = 0;
  invite.to = 1;
  invite.token = 42;
  grid.sched(1).deliver_message(invite);
  grid.system->simulator().run(50.0);
  // No bid messages: network only carried what we injected (plus status
  // traffic); the auction at cluster 0 never hears back.  Detectable
  // through the absence of any auction award / transfer.
  const auto r_metrics = grid.system->metrics().transfers();
  EXPECT_EQ(r_metrics, 0u);
}

TEST(AuctionUnit, AwardWithEmptyQueueRepliesNoJob) {
  AuctionGrid grid;
  grid::RmsMessage award;
  award.kind = grid::MsgKind::kAuctionAward;
  award.from = 0;
  award.to = 1;
  award.token = 7;
  grid.sched(1).deliver_message(award);
  grid.system->simulator().run(50.0);
  // Nothing to steal: no transfer happened, nothing crashed.
  EXPECT_EQ(grid.system->metrics().transfers(), 0u);
}

TEST(AuctionUnit, FullAuctionMovesABackloggedJob) {
  AuctionGrid grid;
  auto& sim = grid.system->simulator();
  // Pre-schedule the scenario, then drive it through GridSystem::run()
  // so status reporting and estimators are live.
  sim.schedule_at(1.0, [&grid]() {
    // Load cluster 1's resources heavily so it will bid and can donate.
    for (int i = 0; i < 60; ++i) {
      grid.sched(1).deliver_job(grid.job(100 + i, 650.0));  // LOCAL jobs
    }
  });
  sim.schedule_at(10.0, [&grid]() {
    // Cluster 0 stays idle; its estimator stream needs a busy -> idle
    // transition to trigger an auction.  The job must stay busy across
    // at least one report tick (interval 5) to be observed: 80 demand
    // at rate 8 runs for 10 time units.
    grid.sched(0).deliver_job(grid.job(1, 80.0));
  });
  grid.system->run();

  // The idle transition at cluster 0 should have triggered at least one
  // auction; with cluster 1 backlogged, a job must have moved 1 -> 0.
  EXPECT_GT(grid.system->metrics().auctions(), 0u);
  EXPECT_GT(grid.system->metrics().transfers(), 0u);
}

TEST(AuctionUnit, LateBidAfterCloseIsIgnored) {
  AuctionGrid grid;
  // A bid for a token that never had an auction (or whose auction has
  // closed) must be dropped without effect.
  grid::RmsMessage bid;
  bid.kind = grid::MsgKind::kAuctionBid;
  bid.from = 1;
  bid.to = 0;
  bid.token = 999;
  bid.a = 5.0;
  grid.sched(0).deliver_message(bid);
  grid.system->simulator().run(50.0);
  EXPECT_EQ(grid.system->metrics().transfers(), 0u);
}

}  // namespace
}  // namespace scal::rms
