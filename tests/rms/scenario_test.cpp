#include "rms/scenario.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "exec/thread_pool.hpp"
#include "rms/base.hpp"
#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig small_config() {
  grid::GridConfig config;
  config.topology.nodes = 60;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 2.0;
  config.seed = 11;
  return config;
}

TEST(Scenario, RunMatchesFreeFunctionShim) {
  grid::GridConfig config = small_config();
  config.rms = grid::RmsKind::kLowest;
  const grid::SimulationResult via_scenario = Scenario(config).run();
  const grid::SimulationResult via_shim = rms::simulate(config);
  EXPECT_EQ(via_scenario.events_dispatched, via_shim.events_dispatched);
  EXPECT_DOUBLE_EQ(via_scenario.G(), via_shim.G());
  EXPECT_DOUBLE_EQ(via_scenario.efficiency(), via_shim.efficiency());
  EXPECT_EQ(via_scenario.jobs_completed, via_shim.jobs_completed);
}

TEST(Scenario, SettersLandInConfig) {
  Scenario s;
  s.rms(grid::RmsKind::kCentral)
      .nodes(80)
      .seed(99)
      .horizon(500.0)
      .faults("churn:mtbf=400,mttr=40");
  EXPECT_EQ(s.config().rms, grid::RmsKind::kCentral);
  EXPECT_EQ(s.config().topology.nodes, 80u);
  EXPECT_EQ(s.config().seed, 99u);
  EXPECT_DOUBLE_EQ(s.config().horizon, 500.0);
  EXPECT_TRUE(s.config().faults.any());
  EXPECT_DOUBLE_EQ(s.config().faults.churn.mtbf, 400.0);
}

TEST(Scenario, BadFaultSpecThrows) {
  Scenario s;
  EXPECT_THROW(s.faults("nonsense:spec"), std::exception);
}

TEST(Scenario, IsReusableAndDeterministic) {
  Scenario s{small_config()};
  s.rms(grid::RmsKind::kReserve);
  const auto first = s.run();
  const auto second = s.run();
  EXPECT_EQ(first.events_dispatched, second.events_dispatched);
  EXPECT_DOUBLE_EQ(first.G(), second.G());
}

TEST(Scenario, CustomSchedulerFactoryIsUsed) {
  struct CountingScheduler : rms::DistributedSchedulerBase {
    using DistributedSchedulerBase::DistributedSchedulerBase;
    void handle_job(workload::Job job) override {
      dispatch(cluster(), 0, std::move(job));
    }
  };
  int built = 0;
  Scenario s{small_config()};
  s.scheduler([&built](grid::GridSystem& system, sim::EntityId id,
                       grid::ClusterId cluster, net::NodeId node)
                  -> std::unique_ptr<grid::SchedulerBase> {
    ++built;
    return std::make_unique<CountingScheduler>(system, id, cluster, node);
  });
  auto system = s.build();
  EXPECT_EQ(built, static_cast<int>(system->cluster_count()));
}

TEST(Scenario, RunKindsMatchesIndividualRuns) {
  const Scenario base{small_config()};
  const std::vector<grid::RmsKind> kinds = {grid::RmsKind::kCentral,
                                            grid::RmsKind::kLowest,
                                            grid::RmsKind::kSymmetric};
  const auto batch = Scenario::run_kinds(base, kinds);
  ASSERT_EQ(batch.size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto solo = Scenario(base).rms(kinds[i]).run();
    EXPECT_EQ(batch[i].events_dispatched, solo.events_dispatched) << i;
    EXPECT_DOUBLE_EQ(batch[i].G(), solo.G()) << i;
  }
}

TEST(Scenario, RunKindsBitIdenticalUnderPool) {
  const Scenario base{small_config()};
  const std::vector<grid::RmsKind> kinds = {grid::RmsKind::kCentral,
                                            grid::RmsKind::kLowest,
                                            grid::RmsKind::kReserve};
  const auto serial = Scenario::run_kinds(base, kinds);
  exec::ThreadPool pool(2);
  const auto parallel = Scenario::run_kinds(base, kinds, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].events_dispatched, parallel[i].events_dispatched);
    EXPECT_DOUBLE_EQ(serial[i].G(), parallel[i].G());
    EXPECT_DOUBLE_EQ(serial[i].efficiency(), parallel[i].efficiency());
  }
}

TEST(Scenario, PoolAccessorRoundTrips) {
  exec::ThreadPool pool(1);
  Scenario s;
  EXPECT_EQ(s.pool(), nullptr);
  s.pool(&pool);
  EXPECT_EQ(s.pool(), &pool);
}

}  // namespace
}  // namespace scal
