#include "rms/session.hpp"

#include <gtest/gtest.h>

#include "net/tree_cache.hpp"
#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::rms {
namespace {

grid::GridConfig small_config() {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

void expect_identical(const grid::SimulationResult& a,
                      const grid::SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.G_estimator, b.G_estimator);
  EXPECT_EQ(a.G_middleware, b.G_middleware);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.H_wasted, b.H_wasted);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
}

TEST(SimulationSession, ReusesSystemAcrossTuningChanges) {
  grid::GridConfig base = small_config();
  grid::GridConfig retuned = base;
  retuned.tuning.update_interval = 35.0;
  retuned.tuning.neighborhood_size = 2;

  SimulationSession session;
  expect_identical(session.run(base), simulate(base));
  expect_identical(session.run(retuned), simulate(retuned));
  expect_identical(session.run(base), simulate(base));
  // Three runs, one construction: the tuning-only changes were resets.
  EXPECT_EQ(session.rebuilds(), 1u);
}

TEST(SimulationSession, RebuildsOnStructuralChange) {
  grid::GridConfig base = small_config();
  grid::GridConfig bigger = base;
  bigger.topology.nodes = 100;

  SimulationSession session;
  session.run(base);
  expect_identical(session.run(bigger), simulate(bigger));
  EXPECT_EQ(session.rebuilds(), 2u);
  // And the bigger system is itself reusable from here on.
  grid::GridConfig bigger_tuned = bigger;
  bigger_tuned.tuning.link_delay_scale = 1.4;
  expect_identical(session.run(bigger_tuned), simulate(bigger_tuned));
  EXPECT_EQ(session.rebuilds(), 2u);
}

TEST(SimulationSession, TreeSharingIsResultInvisible) {
  // Sessions opt their systems into the shared router-tree cache by
  // default; the results must be bit-identical to a sharing-off session
  // and to the one-shot simulate() path.
  net::SharedTreeCache::instance().clear();
  const grid::GridConfig config = small_config();

  SimulationSession sharing;
  ASSERT_TRUE(sharing.tree_sharing());
  const auto with = sharing.run(config);

  SimulationSession isolated;
  isolated.set_tree_sharing(false);
  const auto without = isolated.run(config);

  expect_identical(with, without);
  expect_identical(with, simulate(config));
  // The sharing session really published trees for others to adopt.
  EXPECT_GT(net::SharedTreeCache::instance().publishes(), 0u);
  net::SharedTreeCache::instance().clear();
}

TEST(SimulationSession, TelemetryKeepsSharingOff) {
  // Adopted trees would skew the profiler's net.route scope counts, so
  // an instrumented run must never share (manifests stay byte-stable).
  net::SharedTreeCache::instance().clear();
  grid::GridConfig config = small_config();
  obs::Telemetry telemetry{{}};
  config.telemetry = &telemetry;

  SimulationSession session;
  ASSERT_TRUE(session.tree_sharing());
  (void)session.run(config);
  EXPECT_EQ(net::SharedTreeCache::instance().publishes(), 0u);
  EXPECT_EQ(net::SharedTreeCache::instance().size(), 0u);
}

TEST(SessionPool, SlotsAreLazyAndStable) {
  SessionPool pool;
  EXPECT_EQ(pool.size(), 0u);
  SimulationSession& s2 = pool.slot(2);
  EXPECT_EQ(pool.size(), 3u);
  SimulationSession& s0 = pool.slot(0);
  // Growth must not move existing sessions (deque-backed stability).
  EXPECT_EQ(&pool.slot(2), &s2);
  EXPECT_EQ(&pool.slot(0), &s0);
  pool.slot(5);
  EXPECT_EQ(pool.size(), 6u);
  EXPECT_EQ(&pool.slot(2), &s2);
}

}  // namespace
}  // namespace scal::rms
