// Protocol-specific behaviors of the seven RMS models (paper §3.3).

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

grid::GridConfig base_config(grid::RmsKind kind) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.cluster_size = 20;
  config.horizon = 800.0;
  config.workload.mean_interarrival = 0.8;
  config.seed = 13;
  return config;
}

TEST(LowestProtocol, PollsScaleWithNeighborhoodSize) {
  grid::GridConfig small = base_config(grid::RmsKind::kLowest);
  small.tuning.neighborhood_size = 1;
  grid::GridConfig large = small;
  large.tuning.neighborhood_size = 4;
  const auto r_small = simulate(small);
  const auto r_large = simulate(large);
  // Polls per REMOTE arrival = L_p, so 4x the neighborhood ~= 4x polls.
  EXPECT_NEAR(static_cast<double>(r_large.polls) /
                  static_cast<double>(r_small.polls),
              4.0, 0.4);
}

TEST(LowestProtocol, OnlyRemoteJobsTriggerPolls) {
  grid::GridConfig config = base_config(grid::RmsKind::kLowest);
  // Make every job LOCAL: exec times uniform far below T_CPU.
  config.workload.exec_model = workload::ExecTimeModel::kUniform;
  config.workload.uniform_lo = 50.0;
  config.workload.uniform_hi = 200.0;
  const auto r = simulate(config);
  EXPECT_EQ(r.jobs_remote, 0u);
  EXPECT_EQ(r.polls, 0u);
  EXPECT_EQ(r.transfers, 0u);
}

TEST(LowestProtocol, AllRemoteMeansPollsPerJob) {
  grid::GridConfig config = base_config(grid::RmsKind::kLowest);
  config.tuning.neighborhood_size = 2;
  config.workload.exec_model = workload::ExecTimeModel::kUniform;
  config.workload.uniform_lo = 800.0;   // all REMOTE
  config.workload.uniform_hi = 1200.0;
  config.workload.mean_interarrival = 2.0;
  const auto r = simulate(config);
  EXPECT_EQ(r.jobs_local, 0u);
  EXPECT_NEAR(static_cast<double>(r.polls),
              2.0 * static_cast<double>(r.jobs_arrived),
              0.1 * static_cast<double>(r.jobs_arrived));
}

TEST(ReserveProtocol, AdvertisesOnlyWhenLightlyLoaded) {
  // Heavy load everywhere: busy fraction stays above T_l, so no cluster
  // should register reservations.
  grid::GridConfig hot = base_config(grid::RmsKind::kReserve);
  hot.workload.mean_interarrival = 0.4;  // rho >> 1
  const auto r_hot = simulate(hot);

  grid::GridConfig cold = base_config(grid::RmsKind::kReserve);
  cold.workload.mean_interarrival = 8.0;  // mostly idle
  const auto r_cold = simulate(cold);

  EXPECT_GT(r_cold.adverts, r_hot.adverts);
}

TEST(AuctionProtocol, AuctionVolumeGrowsWithEstimatorReplication) {
  grid::GridConfig one = base_config(grid::RmsKind::kAuction);
  one.workload.mean_interarrival = 2.0;
  grid::GridConfig four = one;
  four.estimators_per_cluster = 4;
  const auto r1 = simulate(one);
  const auto r4 = simulate(four);
  // Each estimator's trigger stream is paced independently, so
  // replicating estimators multiplies auctions (Case 3's mechanism).
  EXPECT_GT(r4.auctions, 2 * r1.auctions);
}

TEST(AuctionProtocol, AuctionsMoveJobs) {
  grid::GridConfig config = base_config(grid::RmsKind::kAuction);
  const auto r = simulate(config);
  EXPECT_GT(r.auctions, 0u);
  // Transfers include both poll-driven and auction-driven handoffs.
  EXPECT_GT(r.transfers, 0u);
}

TEST(SenderInitiatedProtocol, MiddlewareCarriesAllPolls) {
  const auto r = simulate(base_config(grid::RmsKind::kSenderInitiated));
  EXPECT_GT(r.polls, 0u);
  EXPECT_GT(r.G_middleware, 0.0);
}

TEST(ReceiverInitiatedProtocol, VolunteerIntervalControlsAdverts) {
  grid::GridConfig slow = base_config(grid::RmsKind::kReceiverInitiated);
  slow.workload.mean_interarrival = 4.0;  // idle resources exist
  slow.tuning.volunteer_interval = 200.0;
  grid::GridConfig fast = slow;
  fast.tuning.volunteer_interval = 20.0;
  const auto r_slow = simulate(slow);
  const auto r_fast = simulate(fast);
  EXPECT_GT(r_fast.adverts, 3 * r_slow.adverts);
}

TEST(ReceiverInitiatedProtocol, NoJobLostToParking) {
  // Overload one: parked jobs must still finish or be counted
  // unfinished; conservation is exact.
  grid::GridConfig config = base_config(grid::RmsKind::kReceiverInitiated);
  config.workload.mean_interarrival = 0.5;
  const auto r = simulate(config);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  EXPECT_GT(r.jobs_completed, 0u);
}

TEST(SymmetricProtocol, AdvertisesMoreThanSenderInitiated) {
  const auto si = simulate(base_config(grid::RmsKind::kSenderInitiated));
  const auto syi = simulate(base_config(grid::RmsKind::kSymmetric));
  EXPECT_EQ(si.adverts, 0u);
  EXPECT_GT(syi.adverts, 0u);
}

TEST(SymmetricProtocol, FreshAdvertsReducePollTraffic) {
  // With frequent volunteering, Sy-I should place REMOTE jobs via the
  // advertisement handshake instead of the L_p-wide S-I poll.
  grid::GridConfig syi = base_config(grid::RmsKind::kSymmetric);
  syi.workload.mean_interarrival = 2.0;
  syi.tuning.volunteer_interval = 20.0;
  const auto r_syi = simulate(syi);

  grid::GridConfig si = syi;
  si.rms = grid::RmsKind::kSenderInitiated;
  const auto r_si = simulate(si);

  EXPECT_LT(r_syi.polls, r_si.polls);
}

TEST(CentralProtocol, TracksWholePoolAndBalancesIt) {
  const auto central = simulate(base_config(grid::RmsKind::kCentral));
  // All updates land at the single scheduler: its G_scheduler share is
  // nonzero and there is exactly zero inter-scheduler traffic.
  EXPECT_GT(central.G_scheduler, 0.0);
  EXPECT_EQ(central.polls, 0u);
  EXPECT_EQ(central.transfers, 0u);
}

class UpdateIntervalTest
    : public ::testing::TestWithParam<grid::RmsKind> {};

TEST_P(UpdateIntervalTest, LongerIntervalMeansFewerUpdates) {
  grid::GridConfig fast = base_config(GetParam());
  fast.tuning.update_interval = 5.0;
  grid::GridConfig slow = base_config(GetParam());
  slow.tuning.update_interval = 80.0;
  const auto r_fast = simulate(fast);
  const auto r_slow = simulate(slow);
  EXPECT_GT(r_fast.updates_received, r_slow.updates_received);
}

INSTANTIATE_TEST_SUITE_P(
    Sample, UpdateIntervalTest,
    ::testing::Values(grid::RmsKind::kCentral, grid::RmsKind::kLowest,
                      grid::RmsKind::kSymmetric),
    [](const auto& info) {
      std::string name = grid::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace scal::rms
