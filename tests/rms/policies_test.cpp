// Behavioral tests that every RMS policy must satisfy, parameterized
// across all seven models.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

grid::GridConfig policy_config(grid::RmsKind kind, std::uint64_t seed = 42) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.cluster_size = 20;
  config.horizon = 600.0;
  config.workload.mean_interarrival = 0.8;
  config.seed = seed;
  return config;
}

class PolicyTest : public ::testing::TestWithParam<grid::RmsKind> {};

TEST_P(PolicyTest, CompletesMostJobsAtModerateLoad) {
  const auto r = simulate(policy_config(GetParam()));
  ASSERT_GT(r.jobs_arrived, 100u);
  // A sane policy completes the lion's share of a rho ~ 0.85 workload.
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.70);
}

TEST_P(PolicyTest, JobAccountingConserved) {
  const auto r = simulate(policy_config(GetParam()));
  EXPECT_EQ(r.jobs_local + r.jobs_remote, r.jobs_arrived);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  EXPECT_EQ(r.jobs_succeeded + r.jobs_missed_deadline, r.jobs_completed);
}

TEST_P(PolicyTest, WorkTermsPositive) {
  const auto r = simulate(policy_config(GetParam()));
  EXPECT_GT(r.F, 0.0);
  EXPECT_GT(r.G_scheduler, 0.0);
  EXPECT_GT(r.G_estimator, 0.0);
  EXPECT_GT(r.H_control, 0.0);
  EXPECT_GT(r.efficiency(), 0.0);
  EXPECT_LT(r.efficiency(), 1.0);
}

TEST_P(PolicyTest, DeterministicForFixedSeed) {
  const auto a = simulate(policy_config(GetParam(), 7));
  const auto b = simulate(policy_config(GetParam(), 7));
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.F, b.F);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
  EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
}

TEST_P(PolicyTest, DifferentSeedsDiffer) {
  const auto a = simulate(policy_config(GetParam(), 1));
  const auto b = simulate(policy_config(GetParam(), 2));
  EXPECT_NE(a.events_dispatched, b.events_dispatched);
}

TEST_P(PolicyTest, ResponseTimesAreSane) {
  const auto r = simulate(policy_config(GetParam()));
  EXPECT_GT(r.mean_response, 0.0);
  EXPECT_GE(r.p95_response, r.mean_response * 0.5);
  EXPECT_LT(r.mean_response, 600.0);  // bounded by the horizon
}

TEST_P(PolicyTest, ThroughputMatchesCompletions) {
  const auto r = simulate(policy_config(GetParam()));
  EXPECT_NEAR(r.throughput,
              static_cast<double>(r.jobs_completed) / r.horizon, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, PolicyTest, ::testing::ValuesIn(grid::kAllRmsKinds),
    [](const auto& info) {
      std::string name = grid::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PolicyComparison, DistributedModelsUseProtocolTraffic) {
  // The protocol counters distinguish the families: polling models poll,
  // advertising models advertise, AUCTION auctions, CENTRAL does none.
  const auto central = simulate(policy_config(grid::RmsKind::kCentral));
  EXPECT_EQ(central.polls, 0u);
  EXPECT_EQ(central.auctions, 0u);
  EXPECT_EQ(central.adverts, 0u);

  const auto lowest = simulate(policy_config(grid::RmsKind::kLowest));
  EXPECT_GT(lowest.polls, 0u);
  EXPECT_EQ(lowest.auctions, 0u);

  const auto reserve = simulate(policy_config(grid::RmsKind::kReserve));
  EXPECT_GT(reserve.adverts, 0u);

  const auto auction = simulate(policy_config(grid::RmsKind::kAuction));
  EXPECT_GT(auction.auctions, 0u);

  const auto si = simulate(policy_config(grid::RmsKind::kSenderInitiated));
  EXPECT_GT(si.polls, 0u);
  EXPECT_GT(si.G_middleware, 0.0);

  const auto ri = simulate(policy_config(grid::RmsKind::kReceiverInitiated));
  EXPECT_GT(ri.adverts, 0u);
  EXPECT_GT(ri.G_middleware, 0.0);

  const auto syi = simulate(policy_config(grid::RmsKind::kSymmetric));
  EXPECT_GT(syi.adverts, 0u);
  EXPECT_GT(syi.G_middleware, 0.0);
}

TEST(PolicyComparison, OnlyMiddlewareFamilyPaysMiddleware) {
  for (const grid::RmsKind kind :
       {grid::RmsKind::kCentral, grid::RmsKind::kLowest,
        grid::RmsKind::kReserve, grid::RmsKind::kAuction}) {
    const auto r = simulate(policy_config(kind));
    EXPECT_DOUBLE_EQ(r.G_middleware, 0.0) << grid::to_string(kind);
  }
}

TEST(PolicyComparison, LoadBalancingBeatsNothingUnderSkew) {
  // With all jobs submitted to one cluster, policies that can move
  // REMOTE work (LOWEST) should complete more than a policy stuck with
  // local-only placement would.  We approximate "no balancing" with
  // neighborhood size pinned to 1 and compare poll-driven transfers.
  grid::GridConfig config = policy_config(grid::RmsKind::kLowest);
  config.workload.mean_interarrival = 2.0;
  const auto r = simulate(config);
  EXPECT_GT(r.transfers, 0u);
}

}  // namespace
}  // namespace scal::rms
