// HIER (two-level manager extension) behavior.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

grid::GridConfig hier_config(std::uint64_t seed = 42) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kHierarchical;
  config.topology.nodes = 120;
  config.cluster_size = 20;
  config.horizon = 600.0;
  config.workload.mean_interarrival = 0.9;
  config.seed = seed;
  return config;
}

TEST(Hierarchical, RoundTripsThroughStrings) {
  EXPECT_EQ(grid::to_string(grid::RmsKind::kHierarchical), "HIER");
  EXPECT_EQ(grid::rms_from_string("HIER"), grid::RmsKind::kHierarchical);
}

TEST(Hierarchical, CompletesAndConserves) {
  const auto r = simulate(hier_config());
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  EXPECT_EQ(r.jobs_succeeded + r.jobs_missed_deadline, r.jobs_completed);
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.7);
}

TEST(Hierarchical, Deterministic) {
  const auto a = simulate(hier_config(9));
  const auto b = simulate(hier_config(9));
  EXPECT_DOUBLE_EQ(a.G(), b.G());
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
}

TEST(Hierarchical, MovesRemoteWorkViaRoot) {
  const auto r = simulate(hier_config());
  // REMOTE jobs are transferred (leaf -> root, often root -> leaf).
  EXPECT_GT(r.transfers, r.jobs_remote / 2);
  // Digests flow (counted as adverts).
  EXPECT_GT(r.adverts, 0u);
  // No polling or auctions in the hierarchy.
  EXPECT_EQ(r.polls, 0u);
  EXPECT_EQ(r.auctions, 0u);
}

TEST(Hierarchical, CheaperPerJobThanCentralAtScale) {
  // The point of the hierarchy: root decisions scan clusters, not
  // resources, so per-job scheduler overhead grows far slower with the
  // pool than CENTRAL's.
  auto per_job_g = [](grid::RmsKind kind, std::size_t nodes) {
    grid::GridConfig config = hier_config();
    config.rms = kind;
    config.topology.nodes = nodes;
    config.workload.mean_interarrival = 0.9 * 120.0 /
                                        static_cast<double>(nodes);
    const auto r = simulate(config);
    return r.G_scheduler / static_cast<double>(r.jobs_arrived);
  };
  const double hier_growth =
      per_job_g(grid::RmsKind::kHierarchical, 480) /
      per_job_g(grid::RmsKind::kHierarchical, 120);
  const double central_growth = per_job_g(grid::RmsKind::kCentral, 480) /
                                per_job_g(grid::RmsKind::kCentral, 120);
  EXPECT_LT(hier_growth, central_growth);
}

TEST(Hierarchical, LocalJobsStayLocal) {
  grid::GridConfig config = hier_config();
  // Make every job LOCAL: no transfers should happen at all.
  config.workload.exec_model = workload::ExecTimeModel::kUniform;
  config.workload.uniform_lo = 50.0;
  config.workload.uniform_hi = 300.0;
  const auto r = simulate(config);
  EXPECT_EQ(r.jobs_remote, 0u);
  EXPECT_EQ(r.transfers, 0u);
}

}  // namespace
}  // namespace scal::rms
