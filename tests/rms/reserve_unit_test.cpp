// RESERVE protocol corner cases, driven message-by-message.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::rms {
namespace {

struct ReserveGrid {
  std::unique_ptr<grid::GridSystem> system;

  ReserveGrid() {
    grid::GridConfig config;
    config.rms = grid::RmsKind::kReserve;
    config.topology.nodes = 40;
    config.cluster_size = 20;
    config.horizon = 400.0;
    config.workload.mean_interarrival = 1e9;
    config.tuning.update_interval = 5.0;
    system = rms::make_grid(config);
  }

  grid::SchedulerBase& sched(grid::ClusterId c) {
    return system->scheduler_for(c);
  }

  workload::Job remote(workload::JobId id) {
    workload::Job j;
    j.id = id;
    j.exec_time = 900.0;
    j.job_class = workload::JobClass::kRemote;
    j.benefit_factor = 100.0;
    j.arrival = system->simulator().now();
    return j;
  }
};

TEST(ReserveUnit, ProbeAgainstIdleClusterSaysYes) {
  ReserveGrid grid;
  grid::RmsMessage probe;
  probe.kind = grid::MsgKind::kReserveProbe;
  probe.from = 0;
  probe.to = 1;
  probe.token = 5;
  // Deliver to idle cluster 1; it must answer kReserveReply with a = 1
  // (below threshold), which cluster 0 ignores for an unknown token.
  grid.sched(1).deliver_message(probe);
  grid.system->simulator().run(30.0);
  // No crash, no transfer (token unknown at cluster 0).
  EXPECT_EQ(grid.system->metrics().transfers(), 0u);
}

TEST(ReserveUnit, ReservationsFlowFromIdleClusters) {
  ReserveGrid grid;
  auto& sim = grid.system->simulator();
  // Both clusters idle: after the first status batches, each scheduler
  // sees busy fraction 0 < T_l and advertises reservations.
  sim.schedule_at(1.0, [] {});
  grid.system->run();
  EXPECT_GT(grid.system->metrics().adverts(), 0u);
}

TEST(ReserveUnit, LoadedHolderUsesReservationToShedWork) {
  ReserveGrid grid;
  auto& sim = grid.system->simulator();
  sim.schedule_at(30.0, [&grid]() {
    // By now cluster 1 (idle) has registered a reservation at cluster 0.
    // Flood cluster 0 with REMOTE jobs: its busy fraction rises above
    // T_l and it probes + transfers toward the reserver.
    for (int i = 0; i < 50; ++i) {
      grid.sched(0).deliver_job(grid.remote(100 + i));
    }
  });
  grid.system->run();
  EXPECT_GT(grid.system->metrics().polls(), 0u);      // probes
  EXPECT_GT(grid.system->metrics().transfers(), 0u);  // accepted handoffs
}

TEST(ReserveUnit, StaleReplyForUnknownTokenIsIgnored) {
  ReserveGrid grid;
  grid::RmsMessage reply;
  reply.kind = grid::MsgKind::kReserveReply;
  reply.from = 1;
  reply.to = 0;
  reply.token = 4242;
  reply.a = 1.0;
  grid.sched(0).deliver_message(reply);
  grid.system->simulator().run(20.0);
  EXPECT_EQ(grid.system->metrics().transfers(), 0u);
}

}  // namespace
}  // namespace scal::rms
