#include "grid/metrics.hpp"

#include <gtest/gtest.h>

namespace scal::grid {
namespace {

workload::Job job_with(double exec, double arrival, double factor) {
  workload::Job j;
  j.exec_time = exec;
  j.arrival = arrival;
  j.benefit_factor = factor;
  j.job_class = exec <= 700.0 ? workload::JobClass::kLocal
                              : workload::JobClass::kRemote;
  return j;
}

TEST(MetricsCollector, ArrivalClassCounting) {
  MetricsCollector m;
  m.record_arrival(job_with(100.0, 0.0, 3.0));
  m.record_arrival(job_with(900.0, 1.0, 3.0));
  EXPECT_EQ(m.jobs_arrived(), 2u);
  EXPECT_EQ(m.jobs_local(), 1u);
  EXPECT_EQ(m.jobs_remote(), 1u);
}

TEST(MetricsCollector, SuccessWithinBenefitWindow) {
  MetricsCollector m;
  const auto j = job_with(100.0, 10.0, 2.0);
  // Response 19 <= 2 * service(10) = 20: success.
  m.record_completion(j, 29.0, 10.0, 0.5);
  EXPECT_EQ(m.jobs_succeeded(), 1u);
  EXPECT_DOUBLE_EQ(m.useful_work(), 10.0);
  EXPECT_DOUBLE_EQ(m.wasted_work(), 0.0);
  EXPECT_DOUBLE_EQ(m.control_overhead(), 0.5);
}

TEST(MetricsCollector, MissBeyondBenefitWindow) {
  MetricsCollector m;
  const auto j = job_with(100.0, 10.0, 2.0);
  // Response 21 > 20: miss; its work counts as waste.
  m.record_completion(j, 31.0, 10.0, 0.5);
  EXPECT_EQ(m.jobs_missed_deadline(), 1u);
  EXPECT_DOUBLE_EQ(m.useful_work(), 0.0);
  EXPECT_DOUBLE_EQ(m.wasted_work(), 10.0);
}

TEST(MetricsCollector, ExactBoundaryCountsAsSuccess) {
  MetricsCollector m;
  const auto j = job_with(100.0, 0.0, 2.0);
  m.record_completion(j, 20.0, 10.0, 0.0);
  EXPECT_EQ(m.jobs_succeeded(), 1u);
}

TEST(MetricsCollector, UnfinishedAddsWaste) {
  MetricsCollector m;
  m.record_unfinished(7.5);
  EXPECT_EQ(m.jobs_unfinished(), 1u);
  EXPECT_DOUBLE_EQ(m.wasted_work(), 7.5);
}

TEST(MetricsCollector, ResponseTimeSamplesRecorded) {
  MetricsCollector m;
  m.record_completion(job_with(10.0, 0.0, 100.0), 5.0, 1.0, 0.0);
  m.record_completion(job_with(10.0, 0.0, 100.0), 15.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(m.response_times().mean(), 10.0);
}

TEST(SimulationResult, EfficiencyFormula) {
  SimulationResult r;
  r.F = 40.0;
  r.G_scheduler = 20.0;
  r.G_estimator = 15.0;
  r.G_middleware = 5.0;
  r.H_control = 10.0;
  r.H_wasted = 10.0;
  EXPECT_DOUBLE_EQ(r.G(), 40.0);
  EXPECT_DOUBLE_EQ(r.H(), 20.0);
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.4);
}

TEST(SimulationResult, ZeroWorkZeroEfficiency) {
  SimulationResult r;
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.0);
}

TEST(MetricsCollector, ProtocolCounters) {
  MetricsCollector m;
  m.count_poll();
  m.count_poll();
  m.count_transfer();
  m.count_auction();
  m.count_advert();
  m.count_update_received();
  m.count_update_suppressed();
  EXPECT_EQ(m.polls(), 2u);
  EXPECT_EQ(m.transfers(), 1u);
  EXPECT_EQ(m.auctions(), 1u);
  EXPECT_EQ(m.adverts(), 1u);
  EXPECT_EQ(m.updates_received(), 1u);
  EXPECT_EQ(m.updates_suppressed(), 1u);
}

TEST(MetricsCollector, SnapshotMirrorsAccessors) {
  MetricsCollector m;
  m.record_arrival(job_with(100.0, 0.0, 3.0));
  m.record_completion(job_with(100.0, 10.0, 2.0), 29.0, 10.0, 0.5);
  m.record_unfinished(3.0);
  m.count_poll();
  m.count_transfer();
  m.count_update_received();

  const MetricsSnapshot s = m.snapshot();
  EXPECT_DOUBLE_EQ(s.useful_work, m.useful_work());
  EXPECT_DOUBLE_EQ(s.wasted_work, m.wasted_work());
  EXPECT_DOUBLE_EQ(s.control_overhead, m.control_overhead());
  EXPECT_EQ(s.jobs_arrived, m.jobs_arrived());
  EXPECT_EQ(s.jobs_completed, m.jobs_completed());
  EXPECT_EQ(s.jobs_succeeded, m.jobs_succeeded());
  EXPECT_EQ(s.polls, m.polls());
  EXPECT_EQ(s.transfers, m.transfers());
  EXPECT_EQ(s.updates_received, m.updates_received());
}

TEST(MetricsCollector, MergeEqualsSerialAccumulation) {
  // Two shards fed disjoint halves of a job stream, merged in shard
  // order, must match the collector that saw the whole stream serially.
  MetricsCollector serial;
  MetricsCollector shard_a;
  MetricsCollector shard_b;

  const auto feed_first = [](MetricsCollector& m) {
    m.record_arrival(job_with(100.0, 0.0, 3.0));
    m.record_completion(job_with(100.0, 10.0, 2.0), 29.0, 10.0, 0.5);
    m.count_poll();
    m.count_update_received();
  };
  const auto feed_second = [](MetricsCollector& m) {
    m.record_arrival(job_with(900.0, 1.0, 3.0));
    m.record_completion(job_with(100.0, 10.0, 2.0), 31.0, 10.0, 0.25);
    m.record_unfinished(7.5);
    m.count_poll();
    m.count_transfer();
    m.count_auction();
  };
  feed_first(serial);
  feed_second(serial);
  feed_first(shard_a);
  feed_second(shard_b);

  MetricsCollector merged;
  merged.merge(shard_a);
  merged.merge(shard_b);

  const MetricsSnapshot want = serial.snapshot();
  const MetricsSnapshot got = merged.snapshot();
  EXPECT_DOUBLE_EQ(got.useful_work, want.useful_work);
  EXPECT_DOUBLE_EQ(got.wasted_work, want.wasted_work);
  EXPECT_DOUBLE_EQ(got.control_overhead, want.control_overhead);
  EXPECT_EQ(got.jobs_arrived, want.jobs_arrived);
  EXPECT_EQ(got.jobs_local, want.jobs_local);
  EXPECT_EQ(got.jobs_remote, want.jobs_remote);
  EXPECT_EQ(got.jobs_completed, want.jobs_completed);
  EXPECT_EQ(got.jobs_succeeded, want.jobs_succeeded);
  EXPECT_EQ(got.jobs_missed_deadline, want.jobs_missed_deadline);
  EXPECT_EQ(got.jobs_unfinished, want.jobs_unfinished);
  EXPECT_EQ(got.polls, want.polls);
  EXPECT_EQ(got.transfers, want.transfers);
  EXPECT_EQ(got.auctions, want.auctions);
  EXPECT_EQ(got.updates_received, want.updates_received);

  // Response samples append in merge order == serial arrival order.
  ASSERT_EQ(merged.response_times().count(), serial.response_times().count());
  const auto& mv = merged.response_times().values();
  const auto& sv = serial.response_times().values();
  for (std::size_t i = 0; i < sv.size(); ++i) {
    EXPECT_DOUBLE_EQ(mv[i], sv[i]);
  }
}

TEST(MetricsCollector, MergeDoesNotTouchJobLogs) {
  JobLog log;
  log.set_enabled(true);
  MetricsCollector a;
  a.attach_job_log(&log);
  MetricsCollector b;
  b.count_poll();
  a.merge(b);
  EXPECT_EQ(a.job_log(), &log);
  EXPECT_EQ(a.polls(), 1u);
}

TEST(MetricsCollector, ResetClearsEverythingButKeepsJobLog) {
  JobLog log;
  log.set_enabled(true);
  MetricsCollector m;
  m.attach_job_log(&log);
  m.record_arrival(job_with(100.0, 0.0, 3.0));
  m.record_completion(job_with(100.0, 10.0, 2.0), 29.0, 10.0, 0.5);
  m.count_poll();
  m.count_auction();

  m.reset();
  const MetricsSnapshot s = m.snapshot();
  EXPECT_DOUBLE_EQ(s.useful_work, 0.0);
  EXPECT_DOUBLE_EQ(s.control_overhead, 0.0);
  EXPECT_EQ(s.jobs_arrived, 0u);
  EXPECT_EQ(s.polls, 0u);
  EXPECT_EQ(s.auctions, 0u);
  EXPECT_EQ(m.response_times().count(), 0u);
  // The attached log survives a reset (it belongs to the caller).
  EXPECT_EQ(m.job_log(), &log);
}

}  // namespace
}  // namespace scal::grid
