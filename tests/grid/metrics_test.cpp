#include "grid/metrics.hpp"

#include <gtest/gtest.h>

namespace scal::grid {
namespace {

workload::Job job_with(double exec, double arrival, double factor) {
  workload::Job j;
  j.exec_time = exec;
  j.arrival = arrival;
  j.benefit_factor = factor;
  j.job_class = exec <= 700.0 ? workload::JobClass::kLocal
                              : workload::JobClass::kRemote;
  return j;
}

TEST(MetricsCollector, ArrivalClassCounting) {
  MetricsCollector m;
  m.record_arrival(job_with(100.0, 0.0, 3.0));
  m.record_arrival(job_with(900.0, 1.0, 3.0));
  EXPECT_EQ(m.jobs_arrived(), 2u);
  EXPECT_EQ(m.jobs_local(), 1u);
  EXPECT_EQ(m.jobs_remote(), 1u);
}

TEST(MetricsCollector, SuccessWithinBenefitWindow) {
  MetricsCollector m;
  const auto j = job_with(100.0, 10.0, 2.0);
  // Response 19 <= 2 * service(10) = 20: success.
  m.record_completion(j, 29.0, 10.0, 0.5);
  EXPECT_EQ(m.jobs_succeeded(), 1u);
  EXPECT_DOUBLE_EQ(m.useful_work(), 10.0);
  EXPECT_DOUBLE_EQ(m.wasted_work(), 0.0);
  EXPECT_DOUBLE_EQ(m.control_overhead(), 0.5);
}

TEST(MetricsCollector, MissBeyondBenefitWindow) {
  MetricsCollector m;
  const auto j = job_with(100.0, 10.0, 2.0);
  // Response 21 > 20: miss; its work counts as waste.
  m.record_completion(j, 31.0, 10.0, 0.5);
  EXPECT_EQ(m.jobs_missed_deadline(), 1u);
  EXPECT_DOUBLE_EQ(m.useful_work(), 0.0);
  EXPECT_DOUBLE_EQ(m.wasted_work(), 10.0);
}

TEST(MetricsCollector, ExactBoundaryCountsAsSuccess) {
  MetricsCollector m;
  const auto j = job_with(100.0, 0.0, 2.0);
  m.record_completion(j, 20.0, 10.0, 0.0);
  EXPECT_EQ(m.jobs_succeeded(), 1u);
}

TEST(MetricsCollector, UnfinishedAddsWaste) {
  MetricsCollector m;
  m.record_unfinished(7.5);
  EXPECT_EQ(m.jobs_unfinished(), 1u);
  EXPECT_DOUBLE_EQ(m.wasted_work(), 7.5);
}

TEST(MetricsCollector, ResponseTimeSamplesRecorded) {
  MetricsCollector m;
  m.record_completion(job_with(10.0, 0.0, 100.0), 5.0, 1.0, 0.0);
  m.record_completion(job_with(10.0, 0.0, 100.0), 15.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(m.response_times().mean(), 10.0);
}

TEST(SimulationResult, EfficiencyFormula) {
  SimulationResult r;
  r.F = 40.0;
  r.G_scheduler = 20.0;
  r.G_estimator = 15.0;
  r.G_middleware = 5.0;
  r.H_control = 10.0;
  r.H_wasted = 10.0;
  EXPECT_DOUBLE_EQ(r.G(), 40.0);
  EXPECT_DOUBLE_EQ(r.H(), 20.0);
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.4);
}

TEST(SimulationResult, ZeroWorkZeroEfficiency) {
  SimulationResult r;
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.0);
}

TEST(MetricsCollector, ProtocolCounters) {
  MetricsCollector m;
  m.count_poll();
  m.count_poll();
  m.count_transfer();
  m.count_auction();
  m.count_advert();
  m.count_update_received();
  m.count_update_suppressed();
  EXPECT_EQ(m.polls(), 2u);
  EXPECT_EQ(m.transfers(), 1u);
  EXPECT_EQ(m.auctions(), 1u);
  EXPECT_EQ(m.adverts(), 1u);
  EXPECT_EQ(m.updates_received(), 1u);
  EXPECT_EQ(m.updates_suppressed(), 1u);
}

TEST(MetricsCollector, SnapshotMirrorsAccessors) {
  MetricsCollector m;
  m.record_arrival(job_with(100.0, 0.0, 3.0));
  m.record_completion(job_with(100.0, 10.0, 2.0), 29.0, 10.0, 0.5);
  m.record_unfinished(3.0);
  m.count_poll();
  m.count_transfer();
  m.count_update_received();

  const MetricsSnapshot s = m.snapshot();
  EXPECT_DOUBLE_EQ(s.useful_work, m.useful_work());
  EXPECT_DOUBLE_EQ(s.wasted_work, m.wasted_work());
  EXPECT_DOUBLE_EQ(s.control_overhead, m.control_overhead());
  EXPECT_EQ(s.jobs_arrived, m.jobs_arrived());
  EXPECT_EQ(s.jobs_completed, m.jobs_completed());
  EXPECT_EQ(s.jobs_succeeded, m.jobs_succeeded());
  EXPECT_EQ(s.polls, m.polls());
  EXPECT_EQ(s.transfers, m.transfers());
  EXPECT_EQ(s.updates_received, m.updates_received());
}

TEST(MetricsCollector, ResetClearsEverythingButKeepsJobLog) {
  JobLog log;
  log.set_enabled(true);
  MetricsCollector m;
  m.attach_job_log(&log);
  m.record_arrival(job_with(100.0, 0.0, 3.0));
  m.record_completion(job_with(100.0, 10.0, 2.0), 29.0, 10.0, 0.5);
  m.count_poll();
  m.count_auction();

  m.reset();
  const MetricsSnapshot s = m.snapshot();
  EXPECT_DOUBLE_EQ(s.useful_work, 0.0);
  EXPECT_DOUBLE_EQ(s.control_overhead, 0.0);
  EXPECT_EQ(s.jobs_arrived, 0u);
  EXPECT_EQ(s.polls, 0u);
  EXPECT_EQ(s.auctions, 0u);
  EXPECT_EQ(m.response_times().count(), 0u);
  // The attached log survives a reset (it belongs to the caller).
  EXPECT_EQ(m.job_log(), &log);
}

}  // namespace
}  // namespace scal::grid
