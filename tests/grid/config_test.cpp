#include "grid/config.hpp"

#include <gtest/gtest.h>

namespace scal::grid {
namespace {

TEST(RmsKind, RoundTripsThroughStrings) {
  for (const RmsKind kind : kAllRmsKinds) {
    EXPECT_EQ(rms_from_string(to_string(kind)), kind);
  }
}

TEST(RmsKind, RejectsUnknownName) {
  EXPECT_THROW(rms_from_string("NOPE"), std::invalid_argument);
}

TEST(GridConfig, DefaultIsValid) {
  GridConfig config;
  config.topology.nodes = 100;
  EXPECT_NO_THROW(config.validate());
}

TEST(GridConfig, ClusterCountFloorsWithMinimumOne) {
  GridConfig config;
  config.topology.nodes = 100;
  config.cluster_size = 20;
  EXPECT_EQ(config.cluster_count(), 5u);
  config.topology.nodes = 119;
  EXPECT_EQ(config.cluster_count(), 5u);
  config.topology.nodes = 10;
  EXPECT_EQ(config.cluster_count(), 1u);
}

TEST(GridConfig, ValidationCatchesNonsense) {
  GridConfig good;
  good.topology.nodes = 100;

  auto expect_invalid = [](GridConfig c) {
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };

  GridConfig c = good;
  c.topology.nodes = 2;
  expect_invalid(c);

  c = good;
  c.cluster_size = 2;
  expect_invalid(c);

  c = good;
  c.estimators_per_cluster = 0;
  expect_invalid(c);

  c = good;
  c.estimators_per_cluster = c.cluster_size;  // no room for resources
  expect_invalid(c);

  c = good;
  c.service_rate = 0.0;
  expect_invalid(c);

  c = good;
  c.horizon = -1.0;
  expect_invalid(c);

  c = good;
  c.tuning.update_interval = 0.0;
  expect_invalid(c);

  c = good;
  c.tuning.neighborhood_size = 0;
  expect_invalid(c);

  c = good;
  c.protocol.t_l = 1.5;
  expect_invalid(c);

  c = good;
  c.protocol.delta = 0.0;
  expect_invalid(c);
}

TEST(GridConfig, AllSevenKindsEnumerated) {
  EXPECT_EQ(std::size(kAllRmsKinds), 7u);
}

}  // namespace
}  // namespace scal::grid
