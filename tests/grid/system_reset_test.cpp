// Golden tests for GridSystem::reset(): rewinding a built system to new
// tuning and re-running must be byte-identical to constructing a fresh
// system from the target config — the reusable-simulation-state contract
// the enabler tuner's session backend relies on.

#include "grid/system.hpp"

#include <gtest/gtest.h>

#include "grid/digest.hpp"
#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::grid {
namespace {

GridConfig small_config(RmsKind rms = RmsKind::kLowest) {
  GridConfig config;
  config.rms = rms;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

GridConfig faulty_config() {
  GridConfig config = small_config(RmsKind::kSenderInitiated);
  config.faults = fault::FaultPlan::parse(
      "churn:mtbf=150,mttr=20;net:drop=0.05,delayp=0.1,delaym=2");
  return config;
}

SimulationResult run_fresh(const GridConfig& config) {
  GridSystem system(config, rms::scheduler_factory(config.rms));
  return system.run();
}

/// Exact (bitwise, via ==) equality on every scalar the result carries.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.G_estimator, b.G_estimator);
  EXPECT_EQ(a.G_middleware, b.G_middleware);
  EXPECT_EQ(a.G_scheduler_max_share, b.G_scheduler_max_share);
  EXPECT_EQ(a.G_scheduler_max, b.G_scheduler_max);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.H_wasted, b.H_wasted);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.p95_response, b.p95_response);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_local, b.jobs_local);
  EXPECT_EQ(a.jobs_remote, b.jobs_remote);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_succeeded, b.jobs_succeeded);
  EXPECT_EQ(a.jobs_missed_deadline, b.jobs_missed_deadline);
  EXPECT_EQ(a.jobs_unfinished, b.jobs_unfinished);
  EXPECT_EQ(a.polls, b.polls);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.auctions, b.auctions);
  EXPECT_EQ(a.adverts, b.adverts);
  EXPECT_EQ(a.updates_received, b.updates_received);
  EXPECT_EQ(a.updates_suppressed, b.updates_suppressed);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.resource_crashes, b.resource_crashes);
  EXPECT_EQ(a.resource_recoveries, b.resource_recoveries);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_EQ(a.round_retries, b.round_retries);
  EXPECT_EQ(a.status_evictions, b.status_evictions);
  EXPECT_EQ(a.blackout_drops, b.blackout_drops);
  EXPECT_EQ(a.messages_delayed, b.messages_delayed);
  EXPECT_EQ(a.messages_duplicated, b.messages_duplicated);
  EXPECT_EQ(a.resource_downtime, b.resource_downtime);
  EXPECT_EQ(a.availability, b.availability);
}

TEST(GridSystemReset, ResetRerunMatchesFreshBuild) {
  const GridConfig base = small_config();
  GridConfig retuned = base;
  retuned.tuning.update_interval = 35.0;
  retuned.tuning.neighborhood_size = 2;
  retuned.tuning.link_delay_scale = 1.5;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  system.run();
  ASSERT_TRUE(system.reset_compatible(retuned));
  system.reset(retuned);
  expect_identical(system.run(), run_fresh(retuned));
}

TEST(GridSystemReset, SameTuningResetReplaysRun) {
  const GridConfig config = small_config();
  GridSystem system(config, rms::scheduler_factory(config.rms));
  const SimulationResult first = system.run();
  system.reset(config);
  expect_identical(system.run(), first);
}

TEST(GridSystemReset, ResetRerunMatchesFreshBuildWithFaults) {
  const GridConfig base = faulty_config();
  GridConfig retuned = base;
  retuned.tuning.update_interval = 12.0;
  retuned.tuning.link_delay_scale = 0.8;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  const SimulationResult warm = system.run();
  EXPECT_GT(warm.resource_crashes, 0u);
  system.reset(retuned);
  const SimulationResult reset_run = system.run();
  expect_identical(reset_run, run_fresh(retuned));
  // The fault machinery must be genuinely live after the reset too.
  EXPECT_GT(reset_run.resource_crashes, 0u);
  EXPECT_GT(reset_run.messages_dropped, 0u);
}

TEST(GridSystemReset, RepeatedResetCyclesStayIdentical) {
  const GridConfig base = small_config(RmsKind::kReserve);
  GridConfig other = base;
  other.tuning.update_interval = 28.0;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  const SimulationResult base_fresh = run_fresh(base);
  const SimulationResult other_fresh = run_fresh(other);
  expect_identical(system.run(), base_fresh);
  for (int cycle = 0; cycle < 3; ++cycle) {
    system.reset(other);
    expect_identical(system.run(), other_fresh);
    system.reset(base);
    expect_identical(system.run(), base_fresh);
  }
}

TEST(GridSystemReset, StructuralChangesAreIncompatible) {
  const GridConfig base = small_config();
  GridSystem system(base, rms::scheduler_factory(base.rms));

  GridConfig bigger = base;
  bigger.topology.nodes = 100;
  EXPECT_FALSE(system.reset_compatible(bigger));
  EXPECT_THROW(system.reset(bigger), std::logic_error);

  GridConfig other_rms = base;
  other_rms.rms = RmsKind::kCentral;
  EXPECT_FALSE(system.reset_compatible(other_rms));

  GridConfig other_seed = base;
  other_seed.seed = 43;
  EXPECT_FALSE(system.reset_compatible(other_seed));

  GridConfig other_faults = base;
  other_faults.faults = fault::FaultPlan::parse("churn:mtbf=100,mttr=10");
  EXPECT_FALSE(system.reset_compatible(other_faults));

  GridConfig tuned = base;
  tuned.tuning.update_interval = 33.0;
  EXPECT_TRUE(system.reset_compatible(tuned));
}

TEST(GridSystemReset, TelemetryDisablesReset) {
  const GridConfig base = small_config();
  GridSystem system(base, rms::scheduler_factory(base.rms));
  GridConfig instrumented = base;
  obs::TelemetryConfig tc;
  obs::Telemetry telemetry(tc);
  instrumented.telemetry = &telemetry;
  EXPECT_FALSE(system.reset_compatible(instrumented));
}

TEST(ConfigDigest, TrackedFieldsMoveTheDigest) {
  const GridConfig base = small_config();
  const auto d0 = config_digest(base);

  GridConfig tuned = base;
  tuned.tuning.update_interval = 33.0;
  EXPECT_NE(config_digest(tuned), d0);
  // Excluding tuning folds tuned and base together — the reset contract.
  EXPECT_EQ(config_digest(tuned, /*include_tuning=*/false),
            config_digest(base, /*include_tuning=*/false));

  GridConfig seeded = base;
  seeded.seed = 7;
  EXPECT_NE(config_digest(seeded, false), config_digest(base, false));

  GridConfig loaded = base;
  loaded.workload.mean_interarrival = 0.9;
  EXPECT_NE(config_digest(loaded, false), config_digest(base, false));

  GridConfig robust = base;
  robust.faults.robustness.retry_budget = 5;
  // Robustness knobs are hashed even while no fault class is enabled
  // (to_spec would omit them) so a digest match always means "same run".
  EXPECT_NE(config_digest(robust, false), config_digest(base, false));
}

}  // namespace
}  // namespace scal::grid
