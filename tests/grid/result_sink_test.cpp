// ResultSink — the storage half of the streaming-tier API split.  The
// load-bearing contracts: the streaming sink's mean is bitwise identical
// to the full sink's (same 0.0-seeded fold in completion order), its p95
// is a bounded-error histogram estimate, merges are mode-checked, and
// every sink's JobLog honors the capacity bound.

#include "grid/result_sink.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "grid/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace scal::grid {
namespace {

std::vector<double> noisy_responses(std::size_t n, std::uint64_t seed) {
  util::RandomStream rng(seed, "responses");
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(rng.exponential(3.0) + 0.25);
  }
  return values;
}

TEST(ResultModeTest, RoundTripsThroughStrings) {
  EXPECT_EQ(to_string(ResultMode::kFull), "full");
  EXPECT_EQ(to_string(ResultMode::kStreaming), "streaming");
  EXPECT_EQ(result_mode_from_string("full"), ResultMode::kFull);
  EXPECT_EQ(result_mode_from_string("streaming"), ResultMode::kStreaming);
  EXPECT_THROW(result_mode_from_string("bogus"), std::invalid_argument);
}

TEST(MakeResultSink, BuildsTheRequestedMode) {
  EXPECT_EQ(make_result_sink(ResultMode::kFull)->mode(), ResultMode::kFull);
  EXPECT_EQ(make_result_sink(ResultMode::kStreaming)->mode(),
            ResultMode::kStreaming);
  EXPECT_NE(make_result_sink(ResultMode::kFull)->samples(), nullptr);
  EXPECT_EQ(make_result_sink(ResultMode::kStreaming)->samples(), nullptr);
}

TEST(FullResultSink, IsExactlyTheSampleStore) {
  FullResultSink sink;
  util::Samples expected;
  for (const double v : noisy_responses(500, 7)) {
    sink.record_response(v);
    expected.add(v);
  }
  EXPECT_EQ(sink.response_count(), 500u);
  EXPECT_EQ(sink.response_mean(), expected.mean());
  EXPECT_EQ(sink.response_p95(), expected.percentile(95.0));
  ASSERT_NE(sink.samples(), nullptr);
  EXPECT_EQ(sink.samples()->values(), expected.values());
}

TEST(StreamingResultSink, MeanBitwiseIdenticalToSamples) {
  StreamingResultSink streaming;
  util::Samples exact;
  for (const double v : noisy_responses(2000, 11)) {
    streaming.record_response(v);
    exact.add(v);
  }
  // == on purpose: the streaming fold performs the identical operation
  // sequence, so the doubles match to the last bit — the property that
  // keeps default goldens byte-identical across result modes.
  EXPECT_EQ(streaming.response_mean(), exact.mean());
  EXPECT_EQ(streaming.response_count(), 2000u);
}

TEST(StreamingResultSink, P95IsABoundedErrorEstimate) {
  StreamingResultSink streaming;
  util::Samples exact;
  for (const double v : noisy_responses(5000, 13)) {
    streaming.record_response(v);
    exact.add(v);
  }
  const double approx = streaming.response_p95();
  const double truth = exact.percentile(95.0);
  // Relative quantile error is bounded by one sub-bucket width (12.5%).
  EXPECT_NEAR(approx, truth, 0.13 * truth);
  EXPECT_GE(approx, exact.min());
  EXPECT_LE(approx, exact.max());
}

TEST(StreamingResultSink, EmptyReadsAsZero) {
  StreamingResultSink sink;
  EXPECT_EQ(sink.response_count(), 0u);
  EXPECT_EQ(sink.response_mean(), 0.0);
  EXPECT_EQ(sink.response_p95(), 0.0);
}

TEST(ResultSinkMerge, FullAppendsInOrder) {
  FullResultSink a;
  FullResultSink b;
  util::Samples expected;
  for (const double v : {1.0, 2.0, 3.0}) {
    a.record_response(v);
    expected.add(v);
  }
  for (const double v : {10.0, 20.0}) {
    b.record_response(v);
  }
  a.merge_responses(b);
  expected.add(10.0);
  expected.add(20.0);
  EXPECT_EQ(a.response_count(), 5u);
  EXPECT_EQ(a.samples()->values(), expected.values());
}

TEST(ResultSinkMerge, StreamingFoldsCountsSumsAndBuckets) {
  StreamingResultSink a;
  StreamingResultSink b;
  StreamingResultSink serial;
  const auto first = noisy_responses(300, 17);
  const auto second = noisy_responses(200, 19);
  for (const double v : first) {
    a.record_response(v);
    serial.record_response(v);
  }
  for (const double v : second) {
    b.record_response(v);
    serial.record_response(v);
  }
  a.merge_responses(b);
  EXPECT_EQ(a.response_count(), serial.response_count());
  // The merged mean is a sum-of-partial-sums, so it can differ from the
  // serial fold in the last ULPs; what matters is that merging in task
  // order is deterministic (same shards -> same bits at any pool width).
  EXPECT_DOUBLE_EQ(a.response_mean(), serial.response_mean());
  // Bucket-wise addition is exact integer arithmetic.
  EXPECT_EQ(a.response_p95(), serial.response_p95());
}

TEST(ResultSinkMerge, CrossModeThrows) {
  FullResultSink full;
  StreamingResultSink streaming;
  EXPECT_THROW(full.merge_responses(streaming), std::logic_error);
  EXPECT_THROW(streaming.merge_responses(full), std::logic_error);
}

TEST(ResultSinkClear, DropsResponsesButNotTheLog) {
  StreamingResultSink sink;
  sink.log().set_enabled(true);
  sink.log().record(1, JobEvent::kArrival, 0.5);
  sink.record_response(2.0);
  sink.clear_responses();
  EXPECT_EQ(sink.response_count(), 0u);
  EXPECT_EQ(sink.response_mean(), 0.0);
  EXPECT_EQ(sink.log().size(), 1u);  // the reset path clears it separately
}

TEST(JobLogCapacity, KeepsFirstNThenCounts) {
  JobLog log;
  log.set_enabled(true);
  log.set_capacity(3);
  for (workload::JobId id = 0; id < 10; ++id) {
    log.record(id, JobEvent::kArrival, static_cast<double>(id));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 7u);
  // The survivors are the first three, untouched.
  EXPECT_EQ(log.records()[2].job, 2u);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.capacity(), 3u);  // the bound survives a clear
}

TEST(MetricsCollector, RecordJobEventRoutesToTheAttachedSink) {
  MetricsCollector metrics;
  StreamingResultSink sink;
  sink.log().set_enabled(true);
  metrics.attach_sink(&sink);
  metrics.record_job_event(7, JobEvent::kDispatch, 1.5, 3);
  ASSERT_EQ(sink.log().size(), 1u);
  EXPECT_EQ(sink.log().records()[0].job, 7u);
  EXPECT_EQ(sink.log().records()[0].place, 3u);

  // Detaching restores the embedded full sink; the external log shim
  // still overrides the destination when attached.
  metrics.attach_sink(nullptr);
  EXPECT_EQ(metrics.sink().mode(), ResultMode::kFull);
  JobLog external;
  external.set_enabled(true);
  metrics.attach_job_log(&external);
  metrics.record_job_event(8, JobEvent::kStart, 2.0, 1);
  EXPECT_EQ(external.size(), 1u);
  EXPECT_EQ(sink.log().size(), 1u);
}

TEST(MetricsCollector, ResponseTimesThrowOnStreamingSink) {
  MetricsCollector metrics;
  StreamingResultSink sink;
  metrics.attach_sink(&sink);
  EXPECT_THROW(metrics.response_times(), std::logic_error);
  // The mode-agnostic accessors keep working.
  sink.record_response(4.0);
  EXPECT_EQ(metrics.response_count(), 1u);
  EXPECT_EQ(metrics.response_mean(), 4.0);
}

}  // namespace
}  // namespace scal::grid
