// SchedulerBase plumbing, exercised through a minimal probe policy
// wired into a real GridSystem.

#include <gtest/gtest.h>

#include "grid/system.hpp"
#include "workload/trace.hpp"

namespace scal::grid {
namespace {

/// Minimal policy: local least-loaded placement, records everything the
/// base class hands it.
class ProbeScheduler : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

  std::vector<workload::Job> seen_jobs;
  std::vector<RmsMessage> seen_messages;
  std::size_t batches = 0;

  // Expose protected helpers for the test body.
  using SchedulerBase::busy_fraction;
  using SchedulerBase::least_loaded;
  using SchedulerBase::random_peers;
  using SchedulerBase::table;
  using SchedulerBase::tracks;

 protected:
  void handle_job(workload::Job job) override {
    seen_jobs.push_back(job);
    dispatch(cluster(), least_loaded(cluster()), std::move(job));
  }
  void handle_message(const RmsMessage& msg) override {
    seen_messages.push_back(msg);
  }
  void after_batch(const StatusBatch&) override { ++batches; }
};

GridConfig probe_config() {
  GridConfig config;
  config.topology.nodes = 60;
  config.cluster_size = 20;
  config.horizon = 200.0;
  config.workload.mean_interarrival = 2.0;
  return config;
}

struct ProbeGrid {
  std::vector<ProbeScheduler*> schedulers;
  std::unique_ptr<GridSystem> system;

  explicit ProbeGrid(GridConfig config = probe_config()) {
    SchedulerFactory factory = [this](GridSystem& system, sim::EntityId id,
                                      ClusterId cluster, net::NodeId node) {
      auto sched = std::make_unique<ProbeScheduler>(system, id, cluster,
                                                    node);
      schedulers.push_back(sched.get());
      return sched;
    };
    system = std::make_unique<GridSystem>(std::move(config),
                                          std::move(factory));
  }
};

TEST(SchedulerBase, TablesInitializedOptimistically) {
  ProbeGrid grid;
  ProbeScheduler& sched = *grid.schedulers[0];
  const auto& table = sched.table(sched.cluster());
  EXPECT_EQ(table.size(),
            grid.system->resource_count(sched.cluster()));
  for (const ResourceView& v : table) EXPECT_DOUBLE_EQ(v.load, 0.0);
  EXPECT_DOUBLE_EQ(sched.busy_fraction(sched.cluster()), 0.0);
}

TEST(SchedulerBase, UntrackedClusterThrows) {
  ProbeGrid grid;
  ProbeScheduler& sched = *grid.schedulers[0];
  const auto other = static_cast<ClusterId>(sched.cluster() == 0 ? 1 : 0);
  EXPECT_FALSE(sched.tracks(other));
  EXPECT_THROW(sched.table(other), std::out_of_range);
}

TEST(SchedulerBase, DispatchBumpsTableOptimistically) {
  ProbeGrid grid;
  ProbeScheduler& sched = *grid.schedulers[0];
  workload::Job job;
  job.exec_time = 100.0;
  sched.deliver_job(job);
  grid.system->simulator().run(5.0);
  ASSERT_EQ(sched.seen_jobs.size(), 1u);
  double total_load = 0.0;
  for (const ResourceView& v : sched.table(sched.cluster())) {
    total_load += v.load;
  }
  EXPECT_DOUBLE_EQ(total_load, 1.0);
}

TEST(SchedulerBase, RandomPeersNeverIncludesSelfAndIsDistinct) {
  ProbeGrid grid;
  ProbeScheduler& sched = *grid.schedulers[1];
  for (int trial = 0; trial < 200; ++trial) {
    const auto peers = sched.random_peers(2);
    ASSERT_EQ(peers.size(), 2u);
    EXPECT_NE(peers[0], peers[1]);
    for (const ClusterId p : peers) {
      EXPECT_NE(p, sched.cluster());
      EXPECT_LT(p, grid.system->cluster_count());
    }
  }
}

TEST(SchedulerBase, RandomPeersCapsAtClusterCount) {
  ProbeGrid grid;
  const auto peers = grid.schedulers[0]->random_peers(99);
  EXPECT_EQ(peers.size(), grid.system->cluster_count() - 1);
}

TEST(SchedulerBase, BatchesFlowDuringRun) {
  ProbeGrid grid;
  grid.system->run();
  std::size_t total_batches = 0;
  for (const auto* sched : grid.schedulers) {
    total_batches += sched->batches;
  }
  EXPECT_GT(total_batches, 0u);
}

TEST(SchedulerBase, ParkedJobsDefaultsToZero) {
  ProbeGrid grid;
  EXPECT_EQ(grid.schedulers[0]->parked_jobs(), 0u);
}

TEST(SchedulerBase, TraceReplayDrivesDeliverJob) {
  // Build a 3-job trace, replay it, and check the probe saw exactly it.
  std::vector<workload::Job> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i;
    jobs[i].arrival = 10.0 * static_cast<double>(i + 1);
    jobs[i].exec_time = 50.0;
    jobs[i].benefit_factor = 5.0;
    jobs[i].benefit_deadline = 250.0;
    jobs[i].origin_cluster = static_cast<std::uint32_t>(i);
  }
  const std::string path =
      ::testing::TempDir() + "/scal_probe_trace.csv";
  workload::save_trace_file(jobs, path);

  GridConfig config = probe_config();
  config.trace_path = path;
  ProbeGrid grid(config);
  const SimulationResult r = grid.system->run();
  EXPECT_EQ(r.jobs_arrived, 3u);
  std::size_t seen = 0;
  for (const auto* sched : grid.schedulers) {
    seen += sched->seen_jobs.size();
  }
  EXPECT_EQ(seen, 3u);
  std::remove(path.c_str());
}

TEST(SchedulerBase, TraceReplayDropsJobsPastHorizon) {
  std::vector<workload::Job> jobs(2);
  jobs[0].arrival = 10.0;
  jobs[0].exec_time = 10.0;
  jobs[0].benefit_factor = 5.0;
  jobs[1].arrival = 10000.0;  // beyond the 200-unit horizon
  jobs[1].exec_time = 10.0;
  jobs[1].benefit_factor = 5.0;
  const std::string path =
      ::testing::TempDir() + "/scal_probe_trace_horizon.csv";
  workload::save_trace_file(jobs, path);

  GridConfig config = probe_config();
  config.trace_path = path;
  ProbeGrid grid(config);
  const SimulationResult r = grid.system->run();
  EXPECT_EQ(r.jobs_arrived, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scal::grid
