// The distribution probes (job wait/response/slowdown histograms,
// scheduler queue depth at decision points, estimator staleness) must be
// purely observational: running with --metrics on may not change a
// single bit of the measured quantities, and the histograms themselves
// must be bit-identical between repeated instrumented runs.

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>
#include <string>

#include "obs/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal::grid {
namespace {

GridConfig base_config(RmsKind rms) {
  GridConfig config;
  config.rms = rms;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 0.8;
  config.seed = 7;
  return config;
}

obs::TelemetryConfig metrics_config() {
  obs::TelemetryConfig tc;
  tc.metrics = true;
  return tc;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.G_estimator, b.G_estimator);
  EXPECT_EQ(a.G_middleware, b.G_middleware);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.H_wasted, b.H_wasted);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.p95_response, b.p95_response);
}

class MetricsProbes : public ::testing::TestWithParam<RmsKind> {};

TEST_P(MetricsProbes, MetricsOnVersusOffIsBitIdentical) {
  const SimulationResult plain = rms::simulate(base_config(GetParam()));

  obs::Telemetry telemetry(metrics_config());
  GridConfig instrumented = base_config(GetParam());
  instrumented.telemetry = &telemetry;
  const SimulationResult probed = rms::simulate(instrumented);

  expect_identical(plain, probed);
}

TEST_P(MetricsProbes, HistogramsArePopulatedAndConsistent) {
  obs::Telemetry telemetry(metrics_config());
  GridConfig config = base_config(GetParam());
  config.telemetry = &telemetry;
  const SimulationResult result = rms::simulate(config);

  obs::HistogramRegistry& h = telemetry.histograms();
  const obs::Histogram& wait = h.histogram("job_wait");
  const obs::Histogram& response = h.histogram("job_response");
  const obs::Histogram& slowdown = h.histogram("job_slowdown");
  const obs::Histogram& queue = h.histogram("sched_queue_depth");
  const obs::Histogram& staleness = h.histogram("status_staleness");

  // One wait/response sample per completed job.
  EXPECT_EQ(response.count(), result.jobs_completed);
  EXPECT_EQ(wait.count(), result.jobs_completed);
  // Response = wait + service time, so response dominates wait and both
  // moment sets are internally consistent.
  EXPECT_GE(response.min(), wait.min());
  EXPECT_GE(response.sum(), wait.sum());
  EXPECT_GE(response.mean(), 0.0);
  EXPECT_GE(wait.min(), 0.0);
  // Slowdown = response / service >= 1 for every job.
  EXPECT_GT(slowdown.count(), 0u);
  EXPECT_GE(slowdown.min(), 1.0);
  // Every routed job passed a scheduler decision point and consumed a
  // status snapshot with a non-negative sim-time age.
  EXPECT_GT(queue.count(), 0u);
  EXPECT_GE(queue.min(), 0.0);
  EXPECT_GT(staleness.count(), 0u);
  EXPECT_GE(staleness.min(), 0.0);

  // The histogram mean matches the exact counter-based mean bit-for-bit
  // only up to summation order, so compare loosely.
  EXPECT_NEAR(response.mean(), result.mean_response,
              1e-9 * (1.0 + result.mean_response));
}

TEST_P(MetricsProbes, TwoInstrumentedRunsAgreeBitExactly) {
  obs::Telemetry t1(metrics_config());
  GridConfig c1 = base_config(GetParam());
  c1.telemetry = &t1;
  const SimulationResult r1 = rms::simulate(c1);

  obs::Telemetry t2(metrics_config());
  GridConfig c2 = base_config(GetParam());
  c2.telemetry = &t2;
  const SimulationResult r2 = rms::simulate(c2);

  expect_identical(r1, r2);
  EXPECT_EQ(t1.histograms().to_json(), t2.histograms().to_json());
  EXPECT_EQ(t1.profiler().counts_json(), t2.profiler().counts_json());
}

TEST_P(MetricsProbes, ProfilerCountsTrackTheRun) {
  obs::Telemetry telemetry(metrics_config());
  GridConfig config = base_config(GetParam());
  config.telemetry = &telemetry;
  const SimulationResult result = rms::simulate(config);

  bool saw_run = false;
  bool saw_decision = false;
  for (const auto& phase : telemetry.profiler().phases()) {
    if (phase.name == "sim.run") {
      saw_run = true;
      EXPECT_EQ(phase.calls, 1u);
      EXPECT_GE(phase.total_ns, phase.self_ns);
    }
    if (phase.name == "sched.decision") {
      saw_decision = true;
      EXPECT_GT(phase.calls, 0u);
    }
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_decision);
  EXPECT_GT(result.jobs_completed, 0u);
}

TEST(MetricsProbes, ManifestCarriesMetricsBlockOnlyWhenEnabled) {
  auto exported_manifest = [](const obs::TelemetryConfig& tc) {
    obs::Telemetry telemetry(tc);
    GridConfig config = base_config(RmsKind::kLowest);
    config.telemetry = &telemetry;
    rms::simulate(config);
    EXPECT_TRUE(telemetry.export_all());
    std::ifstream in(tc.manifest_path);
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return json;
  };

  // Metrics off: the exported manifest has no "metrics" key, keeping
  // golden manifests byte-identical to the seed.
  obs::TelemetryConfig off;
  off.manifest_path = ::testing::TempDir() + "probes_off.jsonl";
  off.label = "probes_off";
  EXPECT_EQ(exported_manifest(off).find("\"metrics\""), std::string::npos);

  obs::TelemetryConfig on;
  on.manifest_path = ::testing::TempDir() + "probes_on.jsonl";
  on.label = "probes_on";
  on.metrics = true;
  const std::string json = exported_manifest(on);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"job_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Policies, MetricsProbes,
                         ::testing::Values(RmsKind::kLowest,
                                           RmsKind::kCentral,
                                           RmsKind::kSymmetric),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace scal::grid
