// The streaming tier's bit-identity contract: a run with
// result_mode = streaming pulls its arrivals through JobStream into
// recycled arena slots and folds results online, yet every figure-facing
// number — F, G, H, the job counters, the protocol counters, the mean
// response, the workload stats — is EXACTLY the number the materialized
// full-mode run produces, for every RMS kind, with faults on, and at any
// worker-pool width.  Only the p95 differs by design (histogram
// estimate); the tests pin everything else with operator==.

#include <gtest/gtest.h>

#include <string>

#include "core/procedure.hpp"
#include "exec/thread_pool.hpp"
#include "grid/digest.hpp"
#include "grid/system.hpp"
#include "rms/factory.hpp"
#include "rms/scenario.hpp"
#include "workload/arrival_cache.hpp"

namespace scal {
namespace {

grid::GridConfig config_for(grid::RmsKind kind, grid::ResultMode mode,
                            std::uint64_t seed = 42) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 120;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = seed;
  config.result_mode = mode;
  return config;
}

void expect_identical_but_p95(const grid::SimulationResult& full,
                              const grid::SimulationResult& streaming,
                              const std::string& label) {
  // The paper's work terms, bit for bit.
  EXPECT_EQ(full.F, streaming.F) << label;
  EXPECT_EQ(full.G_scheduler, streaming.G_scheduler) << label;
  EXPECT_EQ(full.G_estimator, streaming.G_estimator) << label;
  EXPECT_EQ(full.G_middleware, streaming.G_middleware) << label;
  EXPECT_EQ(full.G_aggregator, streaming.G_aggregator) << label;
  EXPECT_EQ(full.H_control, streaming.H_control) << label;
  EXPECT_EQ(full.H_wasted, streaming.H_wasted) << label;
  // Job accounting.
  EXPECT_EQ(full.jobs_arrived, streaming.jobs_arrived) << label;
  EXPECT_EQ(full.jobs_local, streaming.jobs_local) << label;
  EXPECT_EQ(full.jobs_remote, streaming.jobs_remote) << label;
  EXPECT_EQ(full.jobs_completed, streaming.jobs_completed) << label;
  EXPECT_EQ(full.jobs_succeeded, streaming.jobs_succeeded) << label;
  EXPECT_EQ(full.jobs_missed_deadline, streaming.jobs_missed_deadline)
      << label;
  EXPECT_EQ(full.jobs_unfinished, streaming.jobs_unfinished) << label;
  // Protocol and fabric counters.
  EXPECT_EQ(full.polls, streaming.polls) << label;
  EXPECT_EQ(full.transfers, streaming.transfers) << label;
  EXPECT_EQ(full.auctions, streaming.auctions) << label;
  EXPECT_EQ(full.adverts, streaming.adverts) << label;
  EXPECT_EQ(full.updates_received, streaming.updates_received) << label;
  EXPECT_EQ(full.updates_suppressed, streaming.updates_suppressed) << label;
  EXPECT_EQ(full.network_messages, streaming.network_messages) << label;
  EXPECT_EQ(full.events_dispatched, streaming.events_dispatched) << label;
  // Secondary measures: the mean folds identically in both modes.
  EXPECT_EQ(full.throughput, streaming.throughput) << label;
  EXPECT_EQ(full.mean_response, streaming.mean_response) << label;
  // Fault subsystem.
  EXPECT_EQ(full.jobs_killed, streaming.jobs_killed) << label;
  EXPECT_EQ(full.jobs_requeued, streaming.jobs_requeued) << label;
  EXPECT_EQ(full.jobs_lost, streaming.jobs_lost) << label;
  EXPECT_EQ(full.resource_crashes, streaming.resource_crashes) << label;
  EXPECT_EQ(full.resource_downtime, streaming.resource_downtime) << label;
  // Workload provenance: the streaming fold replaces summarize().
  EXPECT_EQ(full.workload_stats.jobs, streaming.workload_stats.jobs) << label;
  EXPECT_EQ(full.workload_stats.mean_interarrival,
            streaming.workload_stats.mean_interarrival)
      << label;
  EXPECT_EQ(full.workload_stats.mean_exec_time,
            streaming.workload_stats.mean_exec_time)
      << label;
  EXPECT_EQ(full.workload_stats.total_demand,
            streaming.workload_stats.total_demand)
      << label;
  EXPECT_EQ(full.workload_stats.span, streaming.workload_stats.span) << label;
}

class StreamingIdentityTest : public ::testing::TestWithParam<grid::RmsKind> {
};

TEST_P(StreamingIdentityTest, MatchesFullModeBitForBit) {
  workload::ArrivalCache::instance().clear();
  const auto full =
      rms::simulate(config_for(GetParam(), grid::ResultMode::kFull));
  const auto streaming =
      rms::simulate(config_for(GetParam(), grid::ResultMode::kStreaming));
  expect_identical_but_p95(full, streaming, grid::to_string(GetParam()));
  EXPECT_EQ(full.result_mode, grid::ResultMode::kFull);
  EXPECT_EQ(streaming.result_mode, grid::ResultMode::kStreaming);
  // The chained arrival path keeps exactly one pending slot in flight
  // and recycles it once per job.
  EXPECT_EQ(streaming.arena_high_water, 1u);
  EXPECT_EQ(streaming.arena_reuses, streaming.jobs_arrived);
  // The approximate p95 still has to land near the exact one (the
  // histogram's relative error bound is one sub-bucket, 12.5%).
  EXPECT_NEAR(streaming.p95_response, full.p95_response,
              0.13 * full.p95_response + 1e-9)
      << grid::to_string(GetParam());
}

TEST_P(StreamingIdentityTest, MatchesFullModeUnderFaults) {
  workload::ArrivalCache::instance().clear();
  grid::GridConfig full_config =
      config_for(GetParam(), grid::ResultMode::kFull, 7);
  full_config.faults =
      fault::FaultPlan::parse("churn:mtbf=120,mttr=15;net:drop=0.02");
  grid::GridConfig streaming_config = full_config;
  streaming_config.result_mode = grid::ResultMode::kStreaming;
  const auto full = rms::simulate(full_config);
  const auto streaming = rms::simulate(streaming_config);
  EXPECT_GT(full.resource_crashes, 0u) << grid::to_string(GetParam());
  expect_identical_but_p95(full, streaming, grid::to_string(GetParam()));
}

// Every kind, including the extension policies — the paper's seven
// plus HIER and RANDOM.
constexpr grid::RmsKind kEveryRmsKind[] = {
    grid::RmsKind::kCentral,          grid::RmsKind::kLowest,
    grid::RmsKind::kReserve,          grid::RmsKind::kAuction,
    grid::RmsKind::kSenderInitiated,  grid::RmsKind::kReceiverInitiated,
    grid::RmsKind::kSymmetric,        grid::RmsKind::kHierarchical,
    grid::RmsKind::kRandom,
};

INSTANTIATE_TEST_SUITE_P(AllKinds, StreamingIdentityTest,
                         ::testing::ValuesIn(kEveryRmsKind),
                         [](const auto& info) {
                           std::string name = grid::to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(StreamingJobLog, RecordsTheIdenticalLifecycleStream) {
  workload::ArrivalCache::instance().clear();
  grid::GridConfig config =
      config_for(grid::RmsKind::kLowest, grid::ResultMode::kFull);
  config.job_log = true;
  const auto full_system = Scenario(config).build();
  full_system->run();
  config.result_mode = grid::ResultMode::kStreaming;
  const auto streaming_system = Scenario(config).build();
  streaming_system->run();

  const grid::JobLog& a = full_system->job_log();
  const grid::JobLog& b = streaming_system->job_log();
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].job, b.records()[i].job);
    EXPECT_EQ(a.records()[i].event, b.records()[i].event);
    EXPECT_EQ(a.records()[i].at, b.records()[i].at);
    EXPECT_EQ(a.records()[i].place, b.records()[i].place);
  }
}

TEST(StreamingJobLog, CapacityBoundsTheLogAndCountsDrops) {
  workload::ArrivalCache::instance().clear();
  grid::GridConfig config =
      config_for(grid::RmsKind::kLowest, grid::ResultMode::kStreaming);
  config.job_log = true;
  config.job_log_capacity = 50;
  const auto result = rms::simulate(config);
  EXPECT_EQ(result.job_log_records, 50u);
  EXPECT_GT(result.job_log_dropped, 0u);

  // Unbounded control: the same run keeps everything.
  config.job_log_capacity = 0;
  const auto unbounded = rms::simulate(config);
  EXPECT_EQ(unbounded.job_log_dropped, 0u);
  EXPECT_EQ(unbounded.job_log_records,
            result.job_log_records + result.job_log_dropped);
}

TEST(StreamingDigest, ResultModeIsStructural) {
  // Flipping the result mode swaps the sink implementation — a
  // structural change (session pools must rebuild, not reset) — while
  // the workload digest is unchanged: both modes share one ArrivalCache
  // entry.
  const grid::GridConfig full =
      config_for(grid::RmsKind::kLowest, grid::ResultMode::kFull);
  const grid::GridConfig streaming =
      config_for(grid::RmsKind::kLowest, grid::ResultMode::kStreaming);
  EXPECT_NE(grid::config_digest(full), grid::config_digest(streaming));
  EXPECT_EQ(grid::workload_digest(full), grid::workload_digest(streaming));
}

TEST(StreamingParallel, PoolLanesBitIdenticalToSerial) {
  workload::ArrivalCache::instance().clear();
  grid::GridConfig base =
      config_for(grid::RmsKind::kLowest, grid::ResultMode::kStreaming, 5);
  base.horizon = 200.0;
  core::ProcedureConfig procedure;
  procedure.scase = core::ScalingCase::case1_network_size();
  procedure.scale_factors = {1, 2};
  procedure.tuner.evaluations = 3;
  procedure.tuner.e0 = 0.8;
  procedure.tuner.band = 0.1;
  procedure.warm_evaluations = 2;

  const core::CaseResult serial = core::measure_scalability(
      base, grid::RmsKind::kLowest, procedure);
  exec::ThreadPool pool(3);
  procedure.pool = &pool;
  const core::CaseResult parallel = core::measure_scalability(
      base, grid::RmsKind::kLowest, procedure);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].sim.F, parallel.points[i].sim.F);
    EXPECT_EQ(serial.points[i].sim.G(), parallel.points[i].sim.G());
    EXPECT_EQ(serial.points[i].sim.mean_response,
              parallel.points[i].sim.mean_response);
    EXPECT_EQ(serial.points[i].sim.jobs_arrived,
              parallel.points[i].sim.jobs_arrived);
  }
}

TEST(StreamingReset, ReusedSystemStaysBitIdentical) {
  // The session-pool path: reset(next) + run() must equal a fresh build,
  // in streaming mode too (the arena and stream state rewind cleanly).
  workload::ArrivalCache::instance().clear();
  grid::GridConfig config =
      config_for(grid::RmsKind::kLowest, grid::ResultMode::kStreaming);
  auto system = Scenario(config).build();
  const auto first = system->run();
  system->reset(config);
  const auto again = system->run();
  expect_identical_but_p95(first, again, "reset-reuse");
  EXPECT_EQ(first.p95_response, again.p95_response);
}

}  // namespace
}  // namespace scal
