#include "grid/sampler.hpp"

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::grid {
namespace {

GridConfig sampled_config(double interval, double ia = 1.0) {
  GridConfig config;
  config.rms = RmsKind::kLowest;
  config.topology.nodes = 80;
  config.horizon = 400.0;
  config.workload.mean_interarrival = ia;
  config.sample_interval = interval;
  return config;
}

TEST(StateSampler, OffByDefault) {
  auto system = rms::make_grid(sampled_config(0.0));
  system->run();
  EXPECT_EQ(system->sampler(), nullptr);
}

TEST(StateSampler, SamplesOnCadence) {
  auto system = rms::make_grid(sampled_config(50.0));
  system->run();
  ASSERT_NE(system->sampler(), nullptr);
  const auto& samples = system->sampler()->samples();
  // t = 0, 50, ..., 400 inclusive.
  ASSERT_EQ(samples.size(), 9u);
  EXPECT_DOUBLE_EQ(samples.front().at, 0.0);
  EXPECT_DOUBLE_EQ(samples[1].at, 50.0);
  EXPECT_DOUBLE_EQ(samples.back().at, 400.0);
}

TEST(StateSampler, ValuesAreSane) {
  auto system = rms::make_grid(sampled_config(25.0));
  system->run();
  const auto& samples = system->sampler()->samples();
  // First sample: empty system.
  EXPECT_DOUBLE_EQ(samples.front().pool_busy_fraction, 0.0);
  bool saw_busy = false;
  for (const StateSample& s : samples) {
    EXPECT_GE(s.pool_busy_fraction, 0.0);
    EXPECT_LE(s.pool_busy_fraction, 1.0);
    EXPECT_GE(s.hottest_cluster_busy, s.pool_busy_fraction - 1e-12);
    EXPECT_GE(s.max_resource_load, s.mean_resource_load - 1e-12);
    saw_busy = saw_busy || s.pool_busy_fraction > 0.0;
  }
  EXPECT_TRUE(saw_busy);
}

TEST(StateSampler, OverloadShowsRisingBacklog) {
  auto light = rms::make_grid(sampled_config(50.0, /*ia=*/4.0));
  light->run();
  auto heavy = rms::make_grid(sampled_config(50.0, /*ia=*/0.2));
  heavy->run();
  const auto& l = light->sampler()->samples();
  const auto& h = heavy->sampler()->samples();
  EXPECT_GT(h.back().mean_resource_load, l.back().mean_resource_load);
  EXPECT_GT(h.back().pool_busy_fraction, 0.9);
}

TEST(StateSampler, RejectsBadInterval) {
  auto system = rms::make_grid(sampled_config(0.0));
  EXPECT_THROW(StateSampler(*system, 999, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace scal::grid
