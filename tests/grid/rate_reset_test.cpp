// Rate-only reset compatibility: service-rate and interarrival deltas
// are re-applied by GridSystem::reset() instead of forcing a rebuild, so
// Case-2 style sweeps keep the warm topology/routing/cluster state.  The
// contract is the same as for tuning resets: reset(next) + run() must be
// bit-identical to a fresh build of next.

#include <gtest/gtest.h>

#include "grid/digest.hpp"
#include "grid/system.hpp"
#include "rms/factory.hpp"
#include "rms/session.hpp"

namespace scal::grid {
namespace {

GridConfig small_config(RmsKind rms = RmsKind::kLowest) {
  GridConfig config;
  config.rms = rms;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

SimulationResult run_fresh(const GridConfig& config) {
  GridSystem system(config, rms::scheduler_factory(config.rms));
  return system.run();
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.G_estimator, b.G_estimator);
  EXPECT_EQ(a.G_middleware, b.G_middleware);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.H_wasted, b.H_wasted);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.updates_received, b.updates_received);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.p95_response, b.p95_response);
}

TEST(RateReset, ServiceRateDeltaIsResetCompatible) {
  GridConfig base = small_config();
  GridConfig faster = base;
  faster.service_rate = base.service_rate * 2.0;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  EXPECT_TRUE(system.reset_compatible(faster));
  system.run();
  system.reset(faster);
  expect_identical(run_fresh(faster), system.run());
}

TEST(RateReset, ServiceRateResetRespectsHeterogeneity) {
  GridConfig base = small_config(RmsKind::kSenderInitiated);
  base.heterogeneity = 0.4;
  GridConfig faster = base;
  faster.service_rate = base.service_rate * 1.5;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  system.run();
  ASSERT_TRUE(system.reset_compatible(faster));
  system.reset(faster);
  // The per-resource multipliers must be re-applied exactly as a fresh
  // build at the new base rate would draw them.
  expect_identical(run_fresh(faster), system.run());
}

TEST(RateReset, InterarrivalDeltaRegeneratesArrivals) {
  GridConfig base = small_config();
  GridConfig loaded = base;
  loaded.workload.mean_interarrival = 0.5;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  EXPECT_TRUE(system.reset_compatible(loaded));
  const SimulationResult first = system.run();
  system.reset(loaded);
  const SimulationResult warm = system.run();
  EXPECT_GT(warm.jobs_arrived, first.jobs_arrived);
  expect_identical(run_fresh(loaded), warm);
}

TEST(RateReset, CombinedRateAndTuningDelta) {
  GridConfig base = small_config(RmsKind::kSymmetric);
  GridConfig next = base;
  next.service_rate = base.service_rate * 3.0;
  next.workload.mean_interarrival = 0.4;
  next.tuning.update_interval = 37.0;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  system.run();
  ASSERT_TRUE(system.reset_compatible(next));
  system.reset(next);
  expect_identical(run_fresh(next), system.run());
}

TEST(RateReset, RoundTripBackToBaseReplaysExactly) {
  GridConfig base = small_config();
  GridConfig faster = base;
  faster.service_rate = base.service_rate * 2.0;

  GridSystem system(base, rms::scheduler_factory(base.rms));
  const SimulationResult first = system.run();
  system.reset(faster);
  system.run();
  system.reset(base);
  expect_identical(first, system.run());
}

TEST(RateReset, StructuralDeltasStillRejected) {
  GridConfig base = small_config();
  GridSystem system(base, rms::scheduler_factory(base.rms));

  GridConfig other = base;
  other.cluster_size = 10;
  EXPECT_FALSE(system.reset_compatible(other));

  other = base;
  other.seed = 43;
  EXPECT_FALSE(system.reset_compatible(other));

  other = base;
  other.heterogeneity = 0.2;
  EXPECT_FALSE(system.reset_compatible(other));

  other = base;
  other.costs.job_control = 0.5;
  EXPECT_FALSE(system.reset_compatible(other));
}

TEST(RateReset, DigestSeparatesRateAndStructure) {
  GridConfig a = small_config();
  GridConfig b = a;
  b.service_rate = a.service_rate * 2.0;
  b.workload.mean_interarrival = 0.25;
  // Rates excluded: identical.  Rates included: distinct.
  EXPECT_EQ(config_digest(a, false, false), config_digest(b, false, false));
  EXPECT_NE(config_digest(a, false, true), config_digest(b, false, true));
  // Tuning stays orthogonal.
  b = a;
  b.tuning.agg_fanout = 3;
  EXPECT_EQ(config_digest(a, false, false), config_digest(b, false, false));
  EXPECT_NE(config_digest(a, true, true), config_digest(b, true, true));
}

TEST(RateReset, SessionReusesSystemAcrossRateSweep) {
  rms::SimulationSession session;
  GridConfig config = small_config();
  for (const double k : {1.0, 2.0, 4.0}) {
    GridConfig scaled = config;
    scaled.service_rate = config.service_rate * k;
    scaled.workload.mean_interarrival = config.workload.mean_interarrival / k;
    const SimulationResult warm = session.run(scaled);
    expect_identical(run_fresh(scaled), warm);
  }
  // The entire sweep reuses a single build — rate deltas never rebuild.
  EXPECT_EQ(session.rebuilds(), 1u);
}

}  // namespace
}  // namespace scal::grid
