#include "grid/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scal::grid {
namespace {

workload::Job make_job(workload::JobId id, double exec, double arrival = 0.0,
                       double benefit_factor = 3.0) {
  workload::Job j;
  j.id = id;
  j.arrival = arrival;
  j.exec_time = exec;
  j.benefit_factor = benefit_factor;
  j.benefit_deadline = benefit_factor * exec;
  return j;
}

class ResourceTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  MetricsCollector metrics_;
  std::vector<StatusUpdate> reports_;

  std::unique_ptr<Resource> make_resource(double rate = 2.0,
                                          double control = 0.0) {
    return std::make_unique<Resource>(
        sim_, 0, /*cluster=*/0, /*index=*/0, rate, control, metrics_,
        [this](const StatusUpdate& u) { reports_.push_back(u); });
  }
};

TEST_F(ResourceTest, ExecutesJobAtServiceRate) {
  auto res = make_resource(/*rate=*/2.0);
  res->accept_job(make_job(1, 10.0));
  EXPECT_TRUE(res->busy());
  EXPECT_DOUBLE_EQ(res->load(), 1.0);
  sim_.run();
  EXPECT_DOUBLE_EQ(sim_.now(), 5.0);  // 10 / 2
  EXPECT_FALSE(res->busy());
  EXPECT_EQ(res->jobs_executed(), 1u);
  EXPECT_EQ(metrics_.jobs_completed(), 1u);
}

TEST_F(ResourceTest, JobControlDelaysAndCounts) {
  auto res = make_resource(/*rate=*/1.0, /*control=*/0.5);
  res->accept_job(make_job(1, 10.0));
  sim_.run();
  EXPECT_DOUBLE_EQ(sim_.now(), 10.5);
  EXPECT_DOUBLE_EQ(metrics_.control_overhead(), 0.5);
}

TEST_F(ResourceTest, FifoQueueing) {
  auto res = make_resource(/*rate=*/1.0);
  std::vector<double> completions;
  res->accept_job(make_job(1, 5.0));
  res->accept_job(make_job(2, 3.0));
  EXPECT_DOUBLE_EQ(res->load(), 2.0);
  EXPECT_EQ(res->queue_length(), 1u);
  sim_.run();
  EXPECT_EQ(metrics_.jobs_completed(), 2u);
  EXPECT_DOUBLE_EQ(sim_.now(), 8.0);
}

TEST_F(ResourceTest, SuccessUsesBenefitFactorTimesRunTime) {
  auto res = make_resource(/*rate=*/2.0);
  // Job 1 runs immediately: response 5 <= 3 * 5 -> success.
  res->accept_job(make_job(1, 10.0, 0.0, 3.0));
  // Job 2 with tight factor queued behind: response = 5 (wait) + 5 (run)
  // = 10 > 1.5 * 5 -> miss.
  res->accept_job(make_job(2, 10.0, 0.0, 1.5));
  sim_.run();
  EXPECT_EQ(metrics_.jobs_succeeded(), 1u);
  EXPECT_EQ(metrics_.jobs_missed_deadline(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.useful_work(), 5.0);
  EXPECT_DOUBLE_EQ(metrics_.wasted_work(), 5.0);
}

TEST_F(ResourceTest, StealTakesMostRecentQueuedJobOnly) {
  auto res = make_resource();
  EXPECT_FALSE(res->steal_queued_job().has_value());
  res->accept_job(make_job(1, 10.0));
  // In service: not stealable.
  EXPECT_FALSE(res->steal_queued_job().has_value());
  res->accept_job(make_job(2, 10.0));
  res->accept_job(make_job(3, 10.0));
  const auto stolen = res->steal_queued_job();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->id, 3u);
  EXPECT_DOUBLE_EQ(res->load(), 2.0);
}

TEST_F(ResourceTest, PeriodicReportingWithSuppression) {
  auto res = make_resource();
  res->start_reporting(/*interval=*/10.0, /*offset=*/0.0,
                       /*suppression=*/true);
  sim_.run(35.0);
  // First report sent, the rest suppressed (idle, unchanged).
  EXPECT_EQ(reports_.size(), 1u);
  EXPECT_EQ(metrics_.updates_suppressed(), 3u);
  EXPECT_DOUBLE_EQ(reports_[0].load, 0.0);
}

TEST_F(ResourceTest, ReportsOnLoadChange) {
  auto res = make_resource(/*rate=*/1.0);
  res->start_reporting(10.0, 0.0, true);
  sim_.schedule_at(12.0, [&] { res->accept_job(make_job(1, 15.0)); });
  sim_.run(45.0);
  // t=0: load 0 (sent); t=10: suppressed; t=20: load 1 (sent);
  // job completes at 27; t=30: load 0 (sent); t=40: suppressed.
  ASSERT_EQ(reports_.size(), 3u);
  EXPECT_DOUBLE_EQ(reports_[1].load, 1.0);
  EXPECT_TRUE(reports_[1].busy);
  EXPECT_DOUBLE_EQ(reports_[2].load, 0.0);
}

TEST_F(ResourceTest, NoSuppressionSendsEveryTick) {
  auto res = make_resource();
  res->start_reporting(10.0, 0.0, /*suppression=*/false);
  sim_.run(35.0);
  EXPECT_EQ(reports_.size(), 4u);
  EXPECT_EQ(metrics_.updates_suppressed(), 0u);
}

TEST_F(ResourceTest, ReportOffsetDelaysFirstReport) {
  auto res = make_resource();
  res->start_reporting(10.0, 7.0, true);
  sim_.run(8.0);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_DOUBLE_EQ(reports_[0].stamp, 7.0);
}

TEST_F(ResourceTest, InServicePartialExcludesControl) {
  auto res = make_resource(/*rate=*/1.0, /*control=*/2.0);
  res->accept_job(make_job(1, 10.0));
  sim_.run(5.0);
  // 5 elapsed - 2 control = 3 of actual execution.
  EXPECT_DOUBLE_EQ(res->in_service_partial(), 3.0);
  sim_.run(1000.0);
  EXPECT_DOUBLE_EQ(res->in_service_partial(), 0.0);  // idle
}

TEST_F(ResourceTest, RejectsBadParameters) {
  EXPECT_THROW(Resource(sim_, 0, 0, 0, 0.0, 0.0, metrics_, {}),
               std::invalid_argument);
  auto res = make_resource();
  EXPECT_THROW(res->start_reporting(0.0, 0.0, true), std::invalid_argument);
}

}  // namespace
}  // namespace scal::grid
