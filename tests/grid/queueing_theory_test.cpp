// Validation of the resource service layer against closed-form queueing
// theory: an M/M/1 station must reproduce W = 1/(mu - lambda), and a
// bank of randomly-addressed stations must behave like independent
// M/M/1 queues.  These anchor the simulator's timing core to ground
// truth beyond self-consistency.

#include <gtest/gtest.h>

#include "grid/resource.hpp"
#include "util/rng.hpp"

namespace scal::grid {
namespace {

struct Station {
  sim::Simulator sim;
  MetricsCollector metrics;
  std::vector<std::unique_ptr<Resource>> resources;

  explicit Station(std::size_t count, double service_rate = 1.0) {
    for (std::size_t i = 0; i < count; ++i) {
      resources.push_back(std::make_unique<Resource>(
          sim, static_cast<sim::EntityId>(i), 0,
          static_cast<ResourceIndex>(i), service_rate,
          /*job_control=*/0.0, metrics, [](const StatusUpdate&) {}));
    }
  }
};

workload::Job exp_job(util::RandomStream& rng, workload::JobId id,
                      double arrival, double mean_demand) {
  workload::Job j;
  j.id = id;
  j.arrival = arrival;
  j.exec_time = rng.exponential(mean_demand);
  j.benefit_factor = 1e18;  // success bookkeeping is irrelevant here
  return j;
}

TEST(QueueingTheory, MM1MeanResponseMatchesFormula) {
  // lambda = 0.7, mu = 1.0 -> W = 1/(mu - lambda) = 3.333...
  Station station(1);
  util::RandomStream arrivals(42, "mm1-arrivals");
  util::RandomStream demands(42, "mm1-demands");
  double t = 0.0;
  const std::size_t n = 60000;
  for (std::size_t i = 0; i < n; ++i) {
    t += arrivals.exponential(1.0 / 0.7);
    workload::Job j = exp_job(demands, i, t, 1.0);
    station.sim.schedule_at(t, [&station, j]() {
      station.resources[0]->accept_job(j);
    });
  }
  station.sim.run();
  ASSERT_EQ(station.metrics.jobs_completed(), n);
  EXPECT_NEAR(station.metrics.response_times().mean(), 1.0 / (1.0 - 0.7),
              0.25);
}

TEST(QueueingTheory, MM1UtilizationMatchesRho) {
  Station station(1);
  util::RandomStream arrivals(7, "mm1-arrivals");
  util::RandomStream demands(7, "mm1-demands");
  double t = 0.0;
  const double horizon = 50000.0;
  std::size_t i = 0;
  while (t < horizon) {
    t += arrivals.exponential(2.0);  // lambda = 0.5
    workload::Job j = exp_job(demands, i++, t, 1.0);
    if (t >= horizon) break;
    station.sim.schedule_at(t, [&station, j]() {
      station.resources[0]->accept_job(j);
    });
  }
  station.sim.run(horizon);
  EXPECT_NEAR(station.resources[0]->busy_time() / horizon, 0.5, 0.03);
}

TEST(QueueingTheory, RandomDispatchBankBehavesLikeParallelMM1) {
  // 8 stations, uniform random dispatch, lambda_total = 4.8, mu = 1:
  // each station is M/M/1 with rho = 0.6 -> W = 1/(1 - 0.6) = 2.5.
  const std::size_t c = 8;
  Station station(c);
  util::RandomStream arrivals(11, "bank-arrivals");
  util::RandomStream demands(11, "bank-demands");
  util::RandomStream pick(11, "bank-pick");
  double t = 0.0;
  const std::size_t n = 120000;
  for (std::size_t i = 0; i < n; ++i) {
    t += arrivals.exponential(1.0 / 4.8);
    workload::Job j = exp_job(demands, i, t, 1.0);
    const auto target = static_cast<std::size_t>(
        pick.uniform_int(0, static_cast<std::int64_t>(c) - 1));
    station.sim.schedule_at(t, [&station, target, j]() {
      station.resources[target]->accept_job(j);
    });
  }
  station.sim.run();
  EXPECT_NEAR(station.metrics.response_times().mean(), 2.5, 0.25);
}

TEST(QueueingTheory, JoinShortestQueueBeatsRandomDispatch) {
  // Same offered load; JSQ (exact instantaneous loads) must cut the
  // mean response versus random dispatch — the entire premise of
  // status-driven RMS policies.
  const std::size_t c = 8;
  const std::size_t n = 60000;

  auto run = [&](bool jsq) {
    Station station(c);
    util::RandomStream arrivals(13, "jsq-arrivals");
    util::RandomStream demands(13, "jsq-demands");
    util::RandomStream pick(13, "jsq-pick");
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += arrivals.exponential(1.0 / 5.6);  // rho = 0.7
      workload::Job j = exp_job(demands, i, t, 1.0);
      station.sim.schedule_at(t, [&station, &pick, jsq, j]() {
        std::size_t target = 0;
        if (jsq) {
          for (std::size_t r = 1; r < station.resources.size(); ++r) {
            if (station.resources[r]->load() <
                station.resources[target]->load()) {
              target = r;
            }
          }
        } else {
          target = static_cast<std::size_t>(pick.uniform_int(
              0, static_cast<std::int64_t>(station.resources.size()) - 1));
        }
        station.resources[target]->accept_job(j);
      });
    }
    station.sim.run();
    return station.metrics.response_times().mean();
  };

  const double w_random = run(false);
  const double w_jsq = run(true);
  EXPECT_LT(w_jsq, 0.7 * w_random);
}

}  // namespace
}  // namespace scal::grid
