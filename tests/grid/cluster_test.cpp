#include "grid/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/topology.hpp"

namespace scal::grid {
namespace {

net::Graph make_graph(std::size_t nodes, std::uint64_t seed = 42) {
  net::TopologyConfig config;
  config.nodes = nodes;
  util::RandomStream rng(seed, "cluster-test");
  return net::generate_topology(config, rng);
}

TEST(Cluster, EveryNodeAssignedExactlyOnce) {
  const net::Graph g = make_graph(100);
  util::RandomStream rng(1, "p");
  const ClusterLayout layout = partition_into_clusters(g, 5, 1, rng);
  ASSERT_EQ(layout.clusters.size(), 5u);
  std::set<net::NodeId> seen;
  for (const auto& c : layout.clusters) {
    seen.insert(c.scheduler_node);
    seen.insert(c.estimator_nodes.begin(), c.estimator_nodes.end());
    seen.insert(c.resource_nodes.begin(), c.resource_nodes.end());
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Cluster, ClusterOfIsConsistentWithMembership) {
  const net::Graph g = make_graph(80);
  util::RandomStream rng(2, "p");
  const ClusterLayout layout = partition_into_clusters(g, 4, 2, rng);
  for (std::size_t c = 0; c < layout.clusters.size(); ++c) {
    const auto& cluster = layout.clusters[c];
    EXPECT_EQ(layout.cluster_of[cluster.scheduler_node], c);
    for (const auto n : cluster.estimator_nodes) {
      EXPECT_EQ(layout.cluster_of[n], c);
    }
    for (const auto n : cluster.resource_nodes) {
      EXPECT_EQ(layout.cluster_of[n], c);
    }
  }
}

TEST(Cluster, RolesSizedPerConfig) {
  const net::Graph g = make_graph(100);
  util::RandomStream rng(3, "p");
  const ClusterLayout layout = partition_into_clusters(g, 5, 3, rng);
  for (const auto& c : layout.clusters) {
    EXPECT_EQ(c.estimator_nodes.size(), 3u);
    EXPECT_GE(c.resource_nodes.size(), 1u);
  }
  EXPECT_EQ(layout.total_estimators(), 15u);
  EXPECT_EQ(layout.total_resources(), 100u - 5u - 15u);
}

TEST(Cluster, BalancedSizes) {
  const net::Graph g = make_graph(200);
  util::RandomStream rng(4, "p");
  const ClusterLayout layout = partition_into_clusters(g, 10, 1, rng);
  std::size_t min_size = SIZE_MAX, max_size = 0;
  for (const auto& c : layout.clusters) {
    const std::size_t size =
        1 + c.estimator_nodes.size() + c.resource_nodes.size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  // BFS growth with caps keeps sizes within a small spread.
  EXPECT_LE(max_size - min_size, 4u);
}

TEST(Cluster, SchedulerIsHighestDegreeMember) {
  const net::Graph g = make_graph(60);
  util::RandomStream rng(5, "p");
  const ClusterLayout layout = partition_into_clusters(g, 3, 1, rng);
  for (const auto& c : layout.clusters) {
    for (const auto n : c.resource_nodes) {
      EXPECT_GE(g.degree(c.scheduler_node), g.degree(n));
    }
  }
}

TEST(Cluster, DeterministicGivenSeed) {
  const net::Graph g = make_graph(90);
  util::RandomStream rng1(6, "p");
  util::RandomStream rng2(6, "p");
  const ClusterLayout a = partition_into_clusters(g, 4, 1, rng1);
  const ClusterLayout b = partition_into_clusters(g, 4, 1, rng2);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

TEST(Cluster, SingleClusterTakesEverything) {
  const net::Graph g = make_graph(30);
  util::RandomStream rng(7, "p");
  const ClusterLayout layout = partition_into_clusters(g, 1, 1, rng);
  EXPECT_EQ(layout.clusters.size(), 1u);
  EXPECT_EQ(layout.total_resources(), 28u);
}

TEST(Cluster, RejectsImpossibleRequests) {
  const net::Graph g = make_graph(10);
  util::RandomStream rng(8, "p");
  EXPECT_THROW(partition_into_clusters(g, 0, 1, rng),
               std::invalid_argument);
  EXPECT_THROW(partition_into_clusters(g, 5, 1, rng),
               std::invalid_argument);  // 5 clusters x 3 min > 10 nodes
}

TEST(Cluster, RejectsDisconnectedGraph) {
  net::Graph g(6);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(2, 3, 1, 1);
  g.add_edge(4, 5, 1, 1);
  util::RandomStream rng(9, "p");
  EXPECT_THROW(partition_into_clusters(g, 2, 1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace scal::grid
