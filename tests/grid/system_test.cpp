#include "grid/system.hpp"

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::grid {
namespace {

GridConfig small_config(RmsKind rms = RmsKind::kLowest) {
  GridConfig config;
  config.rms = rms;
  config.topology.nodes = 80;
  config.cluster_size = 20;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 42;
  return config;
}

TEST(GridSystem, BuildsConsistentLayout) {
  GridSystem system(small_config(), rms::scheduler_factory(RmsKind::kLowest));
  EXPECT_EQ(system.cluster_count(), 4u);
  for (ClusterId c = 0; c < system.cluster_count(); ++c) {
    EXPECT_EQ(system.resource_count(c),
              system.layout().clusters[c].resource_nodes.size());
    EXPECT_EQ(&system.scheduler_for(c), &system.scheduler_for(c));
  }
}

TEST(GridSystem, CentralHasSingleScheduler) {
  GridSystem system(small_config(RmsKind::kCentral),
                    rms::scheduler_factory(RmsKind::kCentral));
  SchedulerBase& s0 = system.scheduler_for(0);
  for (ClusterId c = 1; c < system.cluster_count(); ++c) {
    EXPECT_EQ(&system.scheduler_for(c), &s0);
  }
}

TEST(GridSystem, DistributedHasPerClusterSchedulers) {
  GridSystem system(small_config(), rms::scheduler_factory(RmsKind::kLowest));
  EXPECT_NE(&system.scheduler_for(0), &system.scheduler_for(1));
  EXPECT_EQ(system.scheduler_for(2).cluster(), 2u);
}

TEST(GridSystem, RunProducesConservedJobAccounting) {
  GridSystem system(small_config(), rms::scheduler_factory(RmsKind::kLowest));
  const SimulationResult r = system.run();
  EXPECT_GT(r.jobs_arrived, 0u);
  EXPECT_EQ(r.jobs_local + r.jobs_remote, r.jobs_arrived);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  EXPECT_EQ(r.jobs_succeeded + r.jobs_missed_deadline, r.jobs_completed);
}

TEST(GridSystem, RunTwiceThrows) {
  GridSystem system(small_config(), rms::scheduler_factory(RmsKind::kLowest));
  system.run();
  EXPECT_THROW(system.run(), std::logic_error);
}

TEST(GridSystem, WorkTermsArePositiveAndEfficiencySane) {
  GridSystem system(small_config(), rms::scheduler_factory(RmsKind::kLowest));
  const SimulationResult r = system.run();
  EXPECT_GT(r.F, 0.0);
  EXPECT_GT(r.G(), 0.0);
  EXPECT_GT(r.H(), 0.0);
  EXPECT_GT(r.efficiency(), 0.0);
  EXPECT_LT(r.efficiency(), 1.0);
}

TEST(GridSystem, NullFactoryRejected) {
  EXPECT_THROW(GridSystem(small_config(), nullptr), std::invalid_argument);
}

TEST(GridSystem, InvalidConfigRejectedAtConstruction) {
  GridConfig config = small_config();
  config.service_rate = -1.0;
  EXPECT_THROW(GridSystem(config, rms::scheduler_factory(RmsKind::kLowest)),
               std::invalid_argument);
}

TEST(GridSystem, UpdatesFlowToSchedulers) {
  const SimulationResult r = rms::simulate(small_config());
  EXPECT_GT(r.updates_received, 0u);
  EXPECT_GT(r.network_messages, 0u);
  EXPECT_GT(r.events_dispatched, 0u);
}

TEST(GridSystem, SuppressionReducesUpdates) {
  GridConfig on = small_config();
  GridConfig off = small_config();
  off.update_suppression = false;
  const auto r_on = rms::simulate(on);
  const auto r_off = rms::simulate(off);
  EXPECT_LT(r_on.updates_received, r_off.updates_received);
  EXPECT_GT(r_on.updates_suppressed, 0u);
  EXPECT_EQ(r_off.updates_suppressed, 0u);
}

TEST(GridSystem, MoreEstimatorsMultiplyUpdateTraffic) {
  GridConfig one = small_config();
  GridConfig three = small_config();
  three.estimators_per_cluster = 3;
  const auto r1 = rms::simulate(one);
  const auto r3 = rms::simulate(three);
  // Replicated estimators each receive the full update stream.
  EXPECT_GT(r3.updates_received, 2 * r1.updates_received);
}

TEST(GridSystem, LinkDelayScaleAffectsPredictedDelay) {
  GridConfig config = small_config();
  GridSystem a(config, rms::scheduler_factory(config.rms));
  config.tuning.link_delay_scale = 0.5;
  GridSystem b(config, rms::scheduler_factory(config.rms));
  const auto& layout = a.layout();
  const net::NodeId n0 = layout.clusters[0].scheduler_node;
  const net::NodeId n1 = layout.clusters[1].scheduler_node;
  EXPECT_NEAR(b.network().predict_delay(n0, n1, 8.0),
              0.5 * a.network().predict_delay(n0, n1, 8.0), 1e-9);
}

}  // namespace
}  // namespace scal::grid
