#include "grid/estimator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scal::grid {
namespace {

StatusUpdate update_for(ResourceIndex r, double load, sim::Time stamp) {
  StatusUpdate u;
  u.cluster = 0;
  u.resource = r;
  u.load = load;
  u.busy = load > 0.5;
  u.stamp = stamp;
  return u;
}

class EstimatorTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  std::vector<StatusBatch> batches_;

  std::unique_ptr<Estimator> make_estimator(double process = 0.01,
                                            double forward = 0.03,
                                            double window = 4.0,
                                            std::uint32_t index = 0) {
    return std::make_unique<Estimator>(
        sim_, 0, /*cluster=*/0, index, process, forward, window,
        [this](StatusBatch b) { batches_.push_back(std::move(b)); });
  }
};

TEST_F(EstimatorTest, BatchesUpdatesWithinWindow) {
  auto est = make_estimator();
  est->receive_update(update_for(0, 1.0, 0.0));
  est->receive_update(update_for(1, 2.0, 0.0));
  est->receive_update(update_for(2, 0.0, 0.0));
  sim_.run();
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].updates.size(), 3u);
  EXPECT_EQ(est->updates_handled(), 3u);
  EXPECT_EQ(est->batches_forwarded(), 1u);
}

TEST_F(EstimatorTest, SeparateWindowsSeparateBatches) {
  auto est = make_estimator(0.01, 0.03, 4.0);
  est->receive_update(update_for(0, 1.0, 0.0));
  sim_.schedule_at(10.0, [&] { est->receive_update(update_for(0, 2.0, 10.0)); });
  sim_.run();
  EXPECT_EQ(batches_.size(), 2u);
}

TEST_F(EstimatorTest, BatchCarriesClusterAndEstimatorIndex) {
  auto est = make_estimator(0.01, 0.03, 4.0, /*index=*/3);
  est->receive_update(update_for(0, 1.0, 0.0));
  sim_.run();
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_EQ(batches_[0].estimator, 3u);
  EXPECT_EQ(batches_[0].cluster, 0u);
}

TEST_F(EstimatorTest, FlagsIdleTransitions) {
  auto est = make_estimator();
  est->receive_update(update_for(0, 2.0, 0.0));
  sim_.schedule_at(10.0, [&] { est->receive_update(update_for(0, 0.0, 10.0)); });
  sim_.schedule_at(20.0, [&] { est->receive_update(update_for(0, 0.0, 20.0)); });
  sim_.run();
  ASSERT_EQ(batches_.size(), 3u);
  EXPECT_FALSE(batches_[0].updates[0].idle_transition);  // first sighting
  EXPECT_TRUE(batches_[1].updates[0].idle_transition);   // busy -> idle
  EXPECT_FALSE(batches_[2].updates[0].idle_transition);  // idle -> idle
}

TEST_F(EstimatorTest, FirstUpdateIdleIsNotATransition) {
  auto est = make_estimator();
  est->receive_update(update_for(0, 0.0, 0.0));
  sim_.run();
  ASSERT_EQ(batches_.size(), 1u);
  EXPECT_FALSE(batches_[0].updates[0].idle_transition);
}

TEST_F(EstimatorTest, RecoveryIsNotAnIdleTransition) {
  // Regression: a resource that crashes while busy reports load 0 on its
  // first post-recovery update.  That busy -> idle edge is a state reset,
  // not a genuine drain; flagging it fired phantom AUCTION / Sy-I
  // volunteer rounds for a machine that just lost all its work.
  auto est = make_estimator();
  est->receive_update(update_for(0, 2.0, 0.0));  // busy
  sim_.schedule_at(10.0, [&] {
    StatusUpdate u = update_for(0, 0.0, 10.0);
    u.recovered = true;  // first report after crash recovery
    est->receive_update(u);
  });
  sim_.schedule_at(20.0, [&] { est->receive_update(update_for(0, 2.0, 20.0)); });
  sim_.schedule_at(30.0, [&] { est->receive_update(update_for(0, 0.0, 30.0)); });
  sim_.run();
  ASSERT_EQ(batches_.size(), 4u);
  EXPECT_FALSE(batches_[1].updates[0].idle_transition);  // recovery reset
  EXPECT_TRUE(batches_[3].updates[0].idle_transition);   // real drain later
}

TEST_F(EstimatorTest, AccumulatesProcessingCostAsServerWork) {
  auto est = make_estimator(/*process=*/0.5, /*forward=*/1.0, 4.0);
  est->receive_update(update_for(0, 1.0, 0.0));
  est->receive_update(update_for(1, 1.0, 0.0));
  sim_.run();
  EXPECT_DOUBLE_EQ(est->busy_time(), 2.0 * 0.5 + 1.0);
}

TEST_F(EstimatorTest, RejectsNegativeCosts) {
  EXPECT_THROW(Estimator(sim_, 0, 0, 0, -0.1, 0.0, 1.0, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scal::grid
