#include "grid/middleware.hpp"

#include <gtest/gtest.h>

namespace scal::grid {
namespace {

TEST(Middleware, RelaysAfterServiceTime) {
  sim::Simulator sim;
  Middleware mw(sim, 0, 0.5);
  double delivered_at = -1.0;
  mw.relay([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.5);
  EXPECT_DOUBLE_EQ(mw.busy_time(), 0.5);
}

TEST(Middleware, QueueIsFifoSingleServer) {
  sim::Simulator sim;
  Middleware mw(sim, 0, 1.0);
  std::vector<int> order;
  mw.relay([&] { order.push_back(1); });
  mw.relay([&] { order.push_back(2); });
  mw.relay([&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // serial service
}

TEST(Middleware, WorkInSystemGrowsUnderBurst) {
  sim::Simulator sim;
  Middleware mw(sim, 0, 1.0);
  for (int i = 0; i < 10; ++i) mw.relay({});
  sim.run();
  // Busy 10; waits 1+2+...+9 = 45.
  EXPECT_DOUBLE_EQ(mw.work_in_system_time(), 55.0);
}

TEST(Middleware, ServiceTimeAccessor) {
  sim::Simulator sim;
  Middleware mw(sim, 0, 0.025);
  EXPECT_DOUBLE_EQ(mw.service_time(), 0.025);
}

}  // namespace
}  // namespace scal::grid
