#include "grid/joblog.hpp"

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal::grid {
namespace {

TEST(JobLog, DisabledRecordsNothing) {
  JobLog log;
  log.record(1, JobEvent::kArrival, 0.0);
  EXPECT_EQ(log.size(), 0u);
}

TEST(JobLog, TimelineAndQueries) {
  JobLog log;
  log.set_enabled(true);
  log.record(7, JobEvent::kArrival, 1.0, 2);
  log.record(8, JobEvent::kArrival, 1.5, 0);
  log.record(7, JobEvent::kTransfer, 2.0, 4);
  log.record(7, JobEvent::kDispatch, 3.0, 4);
  log.record(7, JobEvent::kStart, 4.5, 11);
  log.record(7, JobEvent::kComplete, 9.0, 11);

  const auto timeline = log.timeline(7);
  ASSERT_EQ(timeline.size(), 5u);
  EXPECT_EQ(timeline[0].event, JobEvent::kArrival);
  EXPECT_EQ(timeline[4].event, JobEvent::kComplete);
  EXPECT_EQ(timeline[1].place, 4u);

  EXPECT_EQ(log.count(JobEvent::kArrival), 2u);
  EXPECT_EQ(log.transfer_hops(7), 1u);
  EXPECT_EQ(log.transfer_hops(8), 0u);
  EXPECT_TRUE(log.timeline(99).empty());

  const auto waits = log.delays(JobEvent::kArrival, JobEvent::kStart);
  EXPECT_EQ(waits.count(), 1u);  // job 8 never started
  EXPECT_DOUBLE_EQ(waits.mean(), 3.5);
}

TEST(JobLog, EventNames) {
  EXPECT_STREQ(to_string(JobEvent::kArrival), "arrival");
  EXPECT_STREQ(to_string(JobEvent::kComplete), "complete");
}

TEST(JobLog, FullSimulationProducesConsistentLifecycles) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 100;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.5;
  config.job_log = true;

  auto system = rms::make_grid(config);
  const SimulationResult r = system->run();
  const JobLog& log = system->job_log();

  EXPECT_EQ(log.count(JobEvent::kArrival), r.jobs_arrived);
  EXPECT_EQ(log.count(JobEvent::kComplete), r.jobs_completed);
  // Every completed job must have started, every start must follow a
  // dispatch.
  EXPECT_GE(log.count(JobEvent::kStart), log.count(JobEvent::kComplete));
  EXPECT_GE(log.count(JobEvent::kDispatch), log.count(JobEvent::kStart));
  // Transfers recorded in the log match the metrics counter.
  EXPECT_EQ(log.count(JobEvent::kTransfer), r.transfers);

  // Spot-check monotone timelines.
  std::size_t checked = 0;
  for (const JobLogRecord& rec : log.records()) {
    if (rec.event != JobEvent::kArrival || checked >= 25) continue;
    ++checked;
    const auto timeline = log.timeline(rec.job);
    for (std::size_t i = 1; i < timeline.size(); ++i) {
      EXPECT_LE(timeline[i - 1].at, timeline[i].at);
    }
  }

  // Placement latency (arrival -> start) is positive and bounded by
  // the horizon.
  const auto waits = log.delays(JobEvent::kArrival, JobEvent::kStart);
  EXPECT_GT(waits.count(), 0u);
  EXPECT_GE(waits.min(), 0.0);
  EXPECT_LE(waits.max(), config.horizon);
}

TEST(JobLog, OffByDefault) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 80;
  config.horizon = 150.0;
  auto system = rms::make_grid(config);
  system->run();
  EXPECT_EQ(system->job_log().size(), 0u);
}

}  // namespace
}  // namespace scal::grid
