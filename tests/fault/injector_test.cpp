// FaultInjector: schedule shape (crash alternates with recover, blackout
// windows open and close), counter accuracy, and the substream
// determinism contract the --jobs bit-identity rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/injector.hpp"
#include "sim/simulator.hpp"

namespace scal::fault {
namespace {

struct Recorded {
  double at = 0.0;
  std::size_t index = 0;
  bool down = false;
};

struct Harness {
  sim::Simulator sim;
  std::vector<Recorded> crashes;
  std::vector<Recorded> recoveries;
  std::vector<Recorded> estimator_windows;
  std::vector<Recorded> scheduler_windows;
  std::vector<Recorded> aggregator_windows;

  FaultHooks hooks() {
    FaultHooks h;
    h.crash_resource = [this](std::size_t r) {
      crashes.push_back({sim.now(), r, true});
    };
    h.recover_resource = [this](std::size_t r) {
      recoveries.push_back({sim.now(), r, false});
    };
    h.estimator_blackout = [this](std::size_t e, bool down) {
      estimator_windows.push_back({sim.now(), e, down});
    };
    h.scheduler_blackout = [this](std::size_t s, bool down) {
      scheduler_windows.push_back({sim.now(), s, down});
    };
    h.aggregator_blackout = [this](std::size_t a, bool down) {
      aggregator_windows.push_back({sim.now(), a, down});
    };
    return h;
  }
};

FaultPlan churn_plan(double mtbf, double mttr) {
  FaultPlan plan;
  plan.churn.mtbf = mtbf;
  plan.churn.mttr = mttr;
  return plan;
}

TEST(FaultInjector, InertPlanSchedulesNothing) {
  Harness h;
  FaultInjector injector(h.sim, 1, FaultPlan{}, fault_seeds(7), 4, 2, 2,
                         h.hooks());
  injector.start();
  EXPECT_TRUE(h.sim.idle());
  EXPECT_EQ(h.sim.run(1e6), 0u);
  EXPECT_EQ(injector.counters().crashes, 0u);
}

TEST(FaultInjector, ChurnAlternatesCrashAndRecover) {
  Harness h;
  FaultInjector injector(h.sim, 1, churn_plan(50.0, 10.0), fault_seeds(7),
                         1, 0, 0, h.hooks());
  injector.start();
  h.sim.run(2000.0);
  ASSERT_GT(h.crashes.size(), 3u);
  // Strict alternation, crash first, per resource.
  EXPECT_TRUE(h.recoveries.size() == h.crashes.size() ||
              h.recoveries.size() + 1 == h.crashes.size());
  for (std::size_t i = 0; i < h.recoveries.size(); ++i) {
    EXPECT_LT(h.crashes[i].at, h.recoveries[i].at);
    if (i + 1 < h.crashes.size()) {
      EXPECT_LT(h.recoveries[i].at, h.crashes[i + 1].at);
    }
  }
  EXPECT_EQ(injector.counters().crashes, h.crashes.size());
  EXPECT_EQ(injector.counters().recoveries, h.recoveries.size());
}

TEST(FaultInjector, ChurnIsDeterministic) {
  const auto run = [] {
    Harness h;
    FaultInjector injector(h.sim, 1, churn_plan(80.0, 15.0), fault_seeds(42),
                           3, 0, 0, h.hooks());
    injector.start();
    h.sim.run(5000.0);
    return h.crashes;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].index, b[i].index);
  }
}

TEST(FaultInjector, ResourcesChurnIndependently) {
  Harness h;
  FaultInjector injector(h.sim, 1, churn_plan(60.0, 10.0), fault_seeds(9),
                         2, 0, 0, h.hooks());
  injector.start();
  h.sim.run(3000.0);
  double first[2] = {0.0, 0.0};
  for (const Recorded& c : h.crashes) {
    if (first[c.index] == 0.0) first[c.index] = c.at;
  }
  ASSERT_GT(first[0], 0.0);
  ASSERT_GT(first[1], 0.0);
  EXPECT_NE(first[0], first[1]);
}

TEST(FaultInjector, ResourceStreamStableUnderPoolGrowth) {
  // Resource i's churn substream depends only on i, so growing the pool
  // (a scale sweep) never perturbs the smaller pool's fault times.
  const auto first_crash = [](std::size_t resources) {
    Harness h;
    FaultInjector injector(h.sim, 1, churn_plan(60.0, 10.0), fault_seeds(5),
                           resources, 0, 0, h.hooks());
    injector.start();
    h.sim.run(5000.0);
    for (const Recorded& c : h.crashes) {
      if (c.index == 0) return c.at;
    }
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(first_crash(1), first_crash(8));
}

TEST(FaultInjector, BlackoutWindowsOpenAndClose) {
  Harness h;
  FaultPlan plan;
  plan.estimator_blackout.period = 100.0;
  plan.estimator_blackout.length = 20.0;
  plan.scheduler_blackout.period = 300.0;
  plan.scheduler_blackout.length = 30.0;
  FaultInjector injector(h.sim, 1, plan, fault_seeds(3), 2, 3, 2, h.hooks());
  injector.start();
  h.sim.run(1000.0);
  ASSERT_GT(h.estimator_windows.size(), 4u);
  ASSERT_GT(h.scheduler_windows.size(), 2u);
  // Per entity: down, up, down, up ... with length-long down phases.
  for (std::size_t e = 0; e < 3; ++e) {
    double down_at = -1.0;
    bool expect_down = true;
    for (const Recorded& w : h.estimator_windows) {
      if (w.index != e) continue;
      EXPECT_EQ(w.down, expect_down);
      if (w.down) {
        down_at = w.at;
      } else {
        EXPECT_NEAR(w.at - down_at, 20.0, 1e-9);
      }
      expect_down = !expect_down;
    }
  }
  EXPECT_EQ(injector.counters().estimator_blackouts,
            static_cast<std::uint64_t>(
                std::count_if(h.estimator_windows.begin(),
                              h.estimator_windows.end(),
                              [](const Recorded& w) { return w.down; })));
}

TEST(FaultInjector, AggregatorBlackoutWindowsFireAndCount) {
  Harness h;
  FaultPlan plan;
  plan.aggregator_blackout.period = 150.0;
  plan.aggregator_blackout.length = 15.0;
  FaultInjector injector(h.sim, 1, plan, fault_seeds(5), 0, 0, 0, h.hooks(),
                         /*aggregators=*/3);
  injector.start();
  h.sim.run(1000.0);
  ASSERT_GT(h.aggregator_windows.size(), 4u);
  // Other classes stay silent.
  EXPECT_TRUE(h.estimator_windows.empty());
  EXPECT_TRUE(h.scheduler_windows.empty());
  for (std::size_t a = 0; a < 3; ++a) {
    double down_at = -1.0;
    bool expect_down = true;
    for (const Recorded& w : h.aggregator_windows) {
      if (w.index != a) continue;
      EXPECT_EQ(w.down, expect_down);
      if (w.down) {
        down_at = w.at;
      } else {
        EXPECT_NEAR(w.at - down_at, 15.0, 1e-9);
      }
      expect_down = !expect_down;
    }
  }
  EXPECT_EQ(injector.counters().aggregator_blackouts,
            static_cast<std::uint64_t>(
                std::count_if(h.aggregator_windows.begin(),
                              h.aggregator_windows.end(),
                              [](const Recorded& w) { return w.down; })));
}

TEST(FaultInjector, AggregatorStreamDoesNotPerturbLegacyStreams) {
  // Appending the aggregator substream must leave churn and the other
  // blackout phases untouched: a plan with aggregator windows added
  // replays the estimator schedule of the plan without them.
  FaultPlan base;
  base.estimator_blackout.period = 100.0;
  base.estimator_blackout.length = 10.0;
  FaultPlan with_agg = base;
  with_agg.aggregator_blackout.period = 170.0;
  with_agg.aggregator_blackout.length = 17.0;

  Harness ha;
  FaultInjector ia(ha.sim, 1, base, fault_seeds(21), 2, 2, 1, ha.hooks());
  ia.start();
  ha.sim.run(800.0);

  Harness hb;
  FaultInjector ib(hb.sim, 1, with_agg, fault_seeds(21), 2, 2, 1, hb.hooks(),
                   /*aggregators=*/4);
  ib.start();
  hb.sim.run(800.0);

  ASSERT_EQ(ha.estimator_windows.size(), hb.estimator_windows.size());
  for (std::size_t i = 0; i < ha.estimator_windows.size(); ++i) {
    EXPECT_EQ(ha.estimator_windows[i].at, hb.estimator_windows[i].at);
    EXPECT_EQ(ha.estimator_windows[i].index, hb.estimator_windows[i].index);
  }
  EXPECT_GT(hb.aggregator_windows.size(), 0u);
}

TEST(FaultInjector, BlackoutPhasesAreDesynchronized) {
  Harness h;
  FaultPlan plan;
  plan.estimator_blackout.period = 100.0;
  plan.estimator_blackout.length = 10.0;
  FaultInjector injector(h.sim, 1, plan, fault_seeds(11), 0, 2, 0, h.hooks());
  injector.start();
  h.sim.run(500.0);
  double first[2] = {-1.0, -1.0};
  for (const Recorded& w : h.estimator_windows) {
    if (w.down && first[w.index] < 0.0) first[w.index] = w.at;
  }
  ASSERT_GE(first[0], 0.0);
  ASSERT_GE(first[1], 0.0);
  EXPECT_NE(first[0], first[1]);
}

TEST(FaultInjector, FaultSeedsAreDomainSeparated) {
  // The fault tree must not alias the workload/topology trees of the
  // same master seed.
  EXPECT_NE(fault_seeds(123).at(0), exec::SeedSequence(123).at(0));
  EXPECT_NE(fault_seeds(123).at(0), fault_seeds(124).at(0));
}

}  // namespace
}  // namespace scal::fault
