// FaultPlan: spec-string round trips, validation, and the inertness of
// the default plan (the zero-fault bit-identity contract starts here).

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/plan.hpp"

namespace scal::fault {
namespace {

TEST(FaultPlan, DefaultIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.churn.enabled());
  EXPECT_FALSE(plan.messages.enabled());
  EXPECT_FALSE(plan.estimator_blackout.enabled());
  EXPECT_FALSE(plan.scheduler_blackout.enabled());
  EXPECT_EQ(plan.to_spec(), "");
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, ParseEmptyIsInert) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.any());
}

TEST(FaultPlan, ParseChurn) {
  const FaultPlan plan = FaultPlan::parse("churn:mtbf=400,mttr=40");
  EXPECT_TRUE(plan.any());
  EXPECT_DOUBLE_EQ(plan.churn.mtbf, 400.0);
  EXPECT_DOUBLE_EQ(plan.churn.mttr, 40.0);
  EXPECT_FALSE(plan.messages.enabled());
}

TEST(FaultPlan, ParseAllClasses) {
  const FaultPlan plan = FaultPlan::parse(
      "churn:mtbf=800,mttr=20;net:drop=0.05,dup=0.01,delayp=0.1,delaym=3;"
      "est-blackout:period=200,length=25;sched-blackout:period=500,length=50;"
      "robust:stale=6,retries=3,backoff=2.5,requeue=4");
  EXPECT_TRUE(plan.churn.enabled());
  EXPECT_DOUBLE_EQ(plan.messages.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan.messages.duplicate, 0.01);
  EXPECT_DOUBLE_EQ(plan.messages.delay_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.messages.delay_mean, 3.0);
  EXPECT_DOUBLE_EQ(plan.estimator_blackout.period, 200.0);
  EXPECT_DOUBLE_EQ(plan.estimator_blackout.length, 25.0);
  EXPECT_DOUBLE_EQ(plan.scheduler_blackout.period, 500.0);
  EXPECT_DOUBLE_EQ(plan.robustness.staleness_factor, 6.0);
  EXPECT_EQ(plan.robustness.retry_budget, 3u);
  EXPECT_DOUBLE_EQ(plan.robustness.retry_backoff_base, 2.5);
  EXPECT_EQ(plan.robustness.requeue_budget, 4u);
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, SpecRoundTrips) {
  const char* specs[] = {
      "churn:mtbf=400,mttr=40",
      "net:drop=0.02",
      "churn:mtbf=250,mttr=10;est-blackout:period=100,length=10",
      "agg-blackout:period=120,length=15",
      "sched-blackout:period=300,length=30;agg-blackout:period=90,length=9",
  };
  for (const char* spec : specs) {
    const FaultPlan plan = FaultPlan::parse(spec);
    const FaultPlan again = FaultPlan::parse(plan.to_spec());
    EXPECT_EQ(plan.to_spec(), again.to_spec()) << spec;
    EXPECT_DOUBLE_EQ(plan.churn.mtbf, again.churn.mtbf) << spec;
    EXPECT_DOUBLE_EQ(plan.messages.drop, again.messages.drop) << spec;
    EXPECT_DOUBLE_EQ(plan.estimator_blackout.period,
                     again.estimator_blackout.period)
        << spec;
  }
}

TEST(FaultPlan, ParseAggregatorBlackout) {
  const FaultPlan plan = FaultPlan::parse("agg-blackout:period=160,length=12");
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.aggregator_blackout.enabled());
  EXPECT_DOUBLE_EQ(plan.aggregator_blackout.period, 160.0);
  EXPECT_DOUBLE_EQ(plan.aggregator_blackout.length, 12.0);
  EXPECT_FALSE(plan.estimator_blackout.enabled());
  EXPECT_FALSE(plan.scheduler_blackout.enabled());
  EXPECT_NO_THROW(plan.validate());
  // Emitted after sched-blackout, before robust.
  const std::string spec = plan.to_spec();
  EXPECT_NE(spec.find("agg-blackout:period=160,length=12"), std::string::npos);
}

TEST(FaultPlan, AggregatorBlackoutValidation) {
  FaultPlan plan;
  plan.aggregator_blackout.period = 60.0;
  plan.aggregator_blackout.length = 60.0;  // must leave up-time
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.aggregator_blackout.length = 10.0;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, SpecIncludesRobustnessWhenActive) {
  const FaultPlan plan = FaultPlan::parse("churn:mtbf=400,mttr=40");
  // A manifest alone must reproduce the run, robustness knobs included.
  EXPECT_NE(plan.to_spec().find("robust:"), std::string::npos);
}

TEST(FaultPlan, ParseRejectsMalformed) {
  EXPECT_THROW(FaultPlan::parse("bogus:mtbf=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("churn:mtbf"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("churn:nope=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("churn:mtbf=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse(";"), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsOutOfRange) {
  FaultPlan plan;
  plan.churn.mtbf = 100.0;  // enabled, mttr missing
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.churn.mttr = 10.0;
  EXPECT_NO_THROW(plan.validate());

  plan = FaultPlan{};
  plan.messages.drop = 1.0;  // probabilities live in [0, 1)
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.messages.delay_probability = 0.5;  // needs a positive mean
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.estimator_blackout.period = 50.0;
  plan.estimator_blackout.length = 50.0;  // must leave up-time
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.churn = ChurnSpec{100.0, 10.0};
  plan.robustness.staleness_factor = 1.0;  // would evict fresh entries
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace scal::fault
