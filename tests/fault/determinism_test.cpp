// Determinism under faults: the fault subsystem must preserve the two
// reproducibility contracts the measurement procedure rests on —
//   (1) zero faults is byte-identical to a build without the subsystem
//       (no extra RNG draws, events, or decisions), and
//   (2) with faults on, sweeps are bit-identical at any --jobs N,
//       down to the exported CSV bytes and the manifest JSON.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/procedure.hpp"
#include "core/report.hpp"
#include "exec/thread_pool.hpp"
#include "grid/telemetry.hpp"
#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig small_config(grid::RmsKind kind) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.horizon = 400.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 20260705;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FaultDeterminism, ZeroFaultsEqualsSeedBehavior) {
  // A default plan and a plan parsed from "" must both be invisible:
  // same events, same work, same RNG consumption as the seed build
  // (golden_master_test pins the absolute numbers; this pins the
  // equivalence of the two "off" spellings).
  grid::GridConfig off = small_config(grid::RmsKind::kLowest);
  grid::GridConfig parsed = small_config(grid::RmsKind::kLowest);
  parsed.faults = fault::FaultPlan::parse("");
  const auto a = rms::simulate(off);
  const auto b = rms::simulate(parsed);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.jobs_succeeded, b.jobs_succeeded);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
  EXPECT_DOUBLE_EQ(a.F, b.F);
  // No fault bookkeeping leaks into a clean run.
  EXPECT_EQ(a.resource_crashes, 0u);
  EXPECT_EQ(a.jobs_killed, 0u);
  EXPECT_DOUBLE_EQ(a.availability, 1.0);
}

TEST(FaultDeterminism, FaultyRunsAreReproducible) {
  grid::GridConfig config = small_config(grid::RmsKind::kSymmetric);
  config.faults =
      fault::FaultPlan::parse("churn:mtbf=150,mttr=25;net:drop=0.03");
  const auto a = rms::simulate(config);
  const auto b = rms::simulate(config);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.resource_crashes, b.resource_crashes);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
  EXPECT_DOUBLE_EQ(a.resource_downtime, b.resource_downtime);
}

TEST(FaultDeterminism, FaultScheduleIsolatedFromPolicyDraws) {
  // Fault timing comes from its own seed tree: two policies under the
  // same plan see the identical churn schedule.
  grid::GridConfig a_cfg = small_config(grid::RmsKind::kCentral);
  grid::GridConfig b_cfg = small_config(grid::RmsKind::kLowest);
  a_cfg.faults = b_cfg.faults =
      fault::FaultPlan::parse("churn:mtbf=150,mttr=25");
  const auto a = rms::simulate(a_cfg);
  const auto b = rms::simulate(b_cfg);
  EXPECT_EQ(a.resource_crashes, b.resource_crashes);
  EXPECT_EQ(a.resource_recoveries, b.resource_recoveries);
  EXPECT_DOUBLE_EQ(a.resource_downtime, b.resource_downtime);
}

TEST(FaultDeterminism, SweepCsvAndManifestByteIdenticalAcrossJobs) {
  grid::GridConfig base = small_config(grid::RmsKind::kLowest);
  base.faults = fault::FaultPlan::parse("churn:mtbf=200,mttr=25");

  core::ProcedureConfig procedure;
  procedure.scase = core::ScalingCase::case1_network_size();
  procedure.scale_factors = {1, 2};
  procedure.tuner.evaluations = 3;
  procedure.tuner.e0 = 0.8;
  procedure.tuner.band = 0.1;

  const std::vector<grid::RmsKind> kinds{grid::RmsKind::kLowest,
                                         grid::RmsKind::kCentral};

  const auto sweep = [&](exec::ThreadPool* pool, const std::string& tag) {
    core::ProcedureConfig p = procedure;
    p.pool = pool;
    const auto results = core::measure_all(base, kinds, p);
    const std::string csv =
        ::testing::TempDir() + "/scal_fault_jobs_" + tag + ".csv";
    core::write_case_csv(results, csv);
    // Manifest for the last point of the first kind, with the identity
    // fields (timestamps, wall clock) pinned so only simulation-derived
    // content is compared.
    obs::RunManifest manifest;
    manifest.label = "determinism";
    manifest.started_at = "pinned";
    manifest.git_version = "pinned";
    const core::ScalePoint& last = results.front().points.back();
    grid::GridConfig scaled =
        core::apply_scale(base, p.scase, last.k);
    scaled.rms = results.front().rms;
    scaled.tuning = last.tuning;
    grid::fill_manifest(manifest, scaled, last.sim);
    const std::string bytes = slurp(csv);
    std::remove(csv.c_str());
    return std::make_pair(bytes, manifest.to_json());
  };

  const auto serial = sweep(nullptr, "j1");
  exec::ThreadPool pool(3);  // --jobs 4
  const auto parallel = sweep(&pool, "j4");

  ASSERT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, parallel.first);    // CSV bytes
  EXPECT_EQ(serial.second, parallel.second);  // manifest JSON
  // The manifest really carries the fault block.
  EXPECT_NE(serial.second.find("\"faults\""), std::string::npos);
  EXPECT_NE(serial.second.find("churn:mtbf=200"), std::string::npos);
  EXPECT_NE(serial.second.find("efficiency_avail"), std::string::npos);
}

}  // namespace
}  // namespace scal
