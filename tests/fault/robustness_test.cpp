// System-level fault tolerance: every policy must survive resource
// churn, message faults, and control blackouts with exact job
// conservation, bounded loss, and sensible availability accounting.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig faulty_config(grid::RmsKind kind,
                               const std::string& spec) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.horizon = 600.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 77;
  config.faults = fault::FaultPlan::parse(spec);
  return config;
}

class FaultToleranceTest
    : public ::testing::TestWithParam<grid::RmsKind> {};

TEST_P(FaultToleranceTest, SurvivesResourceChurn) {
  const auto r =
      rms::simulate(faulty_config(GetParam(), "churn:mtbf=150,mttr=25"));
  const std::string name = grid::to_string(GetParam());
  // Churn really happened and was recorded.
  EXPECT_GT(r.resource_crashes, 0u) << name;
  EXPECT_GT(r.resource_recoveries, 0u) << name;
  EXPECT_GT(r.resource_downtime, 0.0) << name;
  // Exact conservation: crash-killed jobs requeue or are counted lost,
  // and lost jobs stay a subset of unfinished.
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived) << name;
  EXPECT_LE(r.jobs_lost, r.jobs_killed) << name;
  EXPECT_LE(r.jobs_lost, r.jobs_unfinished) << name;
  // Availability accounting: strictly inside (0, 1) under real churn,
  // and the adjusted efficiency credits the RMS for the missing pool.
  EXPECT_GT(r.availability, 0.0) << name;
  EXPECT_LT(r.availability, 1.0) << name;
  EXPECT_GE(r.efficiency_avail(), r.efficiency()) << name;
  // The grid still completes the bulk of the workload.
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.5)
      << name;
}

TEST_P(FaultToleranceTest, SurvivesMessageFaults) {
  const auto r = rms::simulate(faulty_config(
      GetParam(), "net:drop=0.05,dup=0.05,delayp=0.2,delaym=2"));
  const std::string name = grid::to_string(GetParam());
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived) << name;
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.65)
      << name;
  // No churn: the pool never shrinks.
  EXPECT_EQ(r.resource_crashes, 0u) << name;
  EXPECT_DOUBLE_EQ(r.availability, 1.0) << name;
}

TEST_P(FaultToleranceTest, SurvivesControlBlackouts) {
  const auto r = rms::simulate(faulty_config(
      GetParam(),
      "est-blackout:period=120,length=20;sched-blackout:period=240,length=20"));
  const std::string name = grid::to_string(GetParam());
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived) << name;
  EXPECT_GT(r.blackout_drops, 0u) << name;
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.5)
      << name;
}

TEST_P(FaultToleranceTest, SurvivesEverythingAtOnce) {
  const auto r = rms::simulate(faulty_config(
      GetParam(),
      "churn:mtbf=200,mttr=25;net:drop=0.03,delayp=0.1,delaym=2;"
      "est-blackout:period=150,length=15"));
  const std::string name = grid::to_string(GetParam());
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived) << name;
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.4)
      << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, FaultToleranceTest, ::testing::ValuesIn(grid::kAllRmsKinds),
    [](const auto& info) {
      std::string name = grid::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FaultTolerance, KilledJobsRequeueWithinBudget) {
  const auto r = rms::simulate(
      faulty_config(grid::RmsKind::kLowest, "churn:mtbf=120,mttr=20"));
  EXPECT_GT(r.jobs_killed, 0u);
  EXPECT_GT(r.jobs_requeued, 0u);
  // Each kill consumes at most one requeue (or becomes a loss).
  EXPECT_LE(r.jobs_requeued + r.jobs_lost, r.jobs_killed);
}

TEST(FaultTolerance, MessageFaultCountersExported) {
  const auto r = rms::simulate(faulty_config(
      grid::RmsKind::kLowest, "net:dup=0.1,delayp=0.3,delaym=3"));
  EXPECT_GT(r.messages_duplicated, 0u);
  EXPECT_GT(r.messages_delayed, 0u);
}

TEST(FaultTolerance, StalenessEvictionEngages) {
  // Long outages push table entries past the staleness window; the
  // robustness mixin must actually evict them (counted).
  const auto r = rms::simulate(
      faulty_config(grid::RmsKind::kCentral, "churn:mtbf=150,mttr=60"));
  EXPECT_GT(r.status_evictions, 0u);
}

TEST(FaultTolerance, ChurnCostsShowUpInOverhead) {
  // The robustness machinery (retries, requeues, repeat decisions) is
  // charged to G: a faulty run must not report less RMS work than the
  // identical clean run while completing less useful work.
  const auto clean =
      rms::simulate(faulty_config(grid::RmsKind::kLowest, ""));
  const auto churned = rms::simulate(
      faulty_config(grid::RmsKind::kLowest, "churn:mtbf=150,mttr=25"));
  EXPECT_LT(churned.jobs_completed, clean.jobs_completed);
  EXPECT_LT(churned.efficiency(), clean.efficiency());
}

TEST(FaultTolerance, RejectsInvalidPlan) {
  grid::GridConfig config = faulty_config(grid::RmsKind::kLowest, "");
  config.faults.churn.mtbf = 100.0;  // mttr missing
  EXPECT_THROW(rms::simulate(config), std::invalid_argument);
}

}  // namespace
}  // namespace scal
