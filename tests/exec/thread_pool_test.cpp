#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace scal::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) {
    group.run([&]() { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int ran = 0;
  pool.submit([&]() { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
  }  // Destruction must execute everything still queued.
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskGroup, WaitHelpsWithUnclaimedTasks) {
  // One worker, kept busy by a slow task: wait() must execute the
  // remaining group tasks inline instead of blocking on the worker.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&]() {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([&]() { ran.fetch_add(1); });
  }
  group.wait();  // would deadlock without help-first join
  EXPECT_EQ(ran.load(), 8);
  release.store(true);
}

TEST(TaskGroup, RethrowsTaskException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([]() { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, DestructorWithoutWaitDoesNotTerminate) {
  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.run([]() { throw std::runtime_error("swallowed at ~TaskGroup"); });
  }  // must join and swallow, not std::terminate
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NullPoolRunsSerial) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyPoolRunsSerial) {
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  parallel_for(&pool, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  parallel_for(&pool, 0, [](std::size_t) { FAIL() << "body called"; });
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(&pool, 100,
                            [](std::size_t i) {
                              if (i == 17) throw std::runtime_error("17");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, NestedUseOfOneSharedPoolCompletes) {
  // Outer iterations each run an inner parallel_for on the same pool.
  // With a blocking (non-helping) join this deadlocks as soon as every
  // worker is parked in an outer wait.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 8;
  std::vector<std::vector<int>> sums(kOuter, std::vector<int>(kInner, 0));
  parallel_for(&pool, kOuter, [&](std::size_t o) {
    parallel_for(&pool, kInner, [&, o](std::size_t i) {
      sums[o][i] = static_cast<int>(o * kInner + i);
    });
  });
  int total = 0;
  for (const auto& row : sums) {
    total = std::accumulate(row.begin(), row.end(), total);
  }
  EXPECT_EQ(total, static_cast<int>(kOuter * kInner * (kOuter * kInner - 1) / 2));
}

TEST(ParallelFor, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(&pool, 5000,
               [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 5000L * 4999L / 2L);
}

}  // namespace
}  // namespace scal::exec
