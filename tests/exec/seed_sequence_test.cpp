#include "exec/seed_sequence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "exec/jobs.hpp"
#include "util/rng.hpp"

namespace scal::exec {
namespace {

TEST(SeedSequence, StatelessAndOrderIndependent) {
  const SeedSequence seq(12345);
  const std::uint64_t late_first = seq.at(7);
  const std::uint64_t early = seq.at(0);
  EXPECT_EQ(seq.at(7), late_first);  // query order doesn't matter
  EXPECT_EQ(seq.at(0), early);
  EXPECT_EQ(SeedSequence(12345).at(7), late_first);  // pure in (root, i)
}

TEST(SeedSequence, SubstreamsAreDistinct) {
  const SeedSequence seq(42);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(seq.at(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SeedSequence, DifferentRootsDiverge) {
  EXPECT_NE(SeedSequence(1).at(0), SeedSequence(2).at(0));
}

TEST(SeedSequence, MatchesSplitmixStream) {
  // at(i) is defined as the splitmix64 output at position i + 1 of the
  // stream rooted at `root` — the same generator util::RandomStream
  // uses for seeding, which keeps the whole repo on one RNG family.
  const std::uint64_t root = 987654321;
  std::uint64_t state = root;
  const SeedSequence seq(root);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(seq.at(i), util::splitmix64(state)) << "index " << i;
  }
}

TEST(SeedSequence, ChildDerivesNestedStreams) {
  const SeedSequence seq(7);
  const SeedSequence child = seq.child(3);
  EXPECT_EQ(child.root(), seq.at(3));
  EXPECT_NE(child.at(0), seq.at(0));
  EXPECT_NE(child.at(0), seq.at(3));
}

TEST(Jobs, HardwareJobsIsAtLeastOne) {
  EXPECT_GE(hardware_jobs(), 1u);
}

TEST(Jobs, ParsesIntegersAndHwAlias) {
  EXPECT_EQ(parse_jobs("4", 0), 4u);
  EXPECT_EQ(parse_jobs("1", 0), 1u);
  EXPECT_EQ(parse_jobs("hw", 0), hardware_jobs());
  EXPECT_EQ(parse_jobs("auto", 0), hardware_jobs());
}

TEST(Jobs, RejectsGarbageViaFallback) {
  EXPECT_EQ(parse_jobs("", 9), 9u);
  EXPECT_EQ(parse_jobs("zero", 9), 9u);
  EXPECT_EQ(parse_jobs("0", 9), 9u);
  EXPECT_EQ(parse_jobs("-3", 9), 9u);
  EXPECT_EQ(parse_jobs("4x", 9), 9u);
}

}  // namespace
}  // namespace scal::exec
