// The subsystem's non-negotiable invariant: --jobs 1 and --jobs N are
// bit-identical, for every parallel construct in the stack.  These
// tests run each construct serially and on a 3-worker pool (4 lanes)
// and compare results field by field with exact equality.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/procedure.hpp"
#include "core/sensitivity.hpp"
#include "exec/thread_pool.hpp"
#include "obs/anneal_log.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"

namespace scal::exec {
namespace {

/// Deterministic pseudo-simulation whose result depends on the seed,
/// the scale (node count), and the tuned update interval — enough
/// structure for the tuner and the replication stats to be non-trivial.
grid::SimulationResult fake_runner(const grid::GridConfig& config) {
  const double nodes = static_cast<double>(config.topology.nodes);
  const double tau = config.tuning.update_interval;
  std::uint64_t state = config.seed;
  const double noise =
      static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  grid::SimulationResult r;
  r.F = 10.0 * nodes * (1.0 + 0.05 * noise);
  r.G_scheduler = 0.05 * nodes + 400.0 / tau + 2.0 * tau + noise;
  r.H_control = 8.0 * nodes;
  r.throughput = nodes / (1.0 + noise);
  r.mean_response = 3.0 + noise;
  r.jobs_arrived = static_cast<std::uint64_t>(nodes);
  r.jobs_completed = r.jobs_arrived;
  r.jobs_succeeded = r.jobs_arrived;
  return r;
}

core::ProcedureConfig fast_procedure() {
  core::ProcedureConfig p;
  p.scase = core::ScalingCase::case1_network_size();
  p.scale_factors = {1, 2, 3};
  p.tuner.evaluations = 24;
  p.tuner.restarts = 3;
  p.warm_evaluations = 8;
  grid::GridConfig c;
  c.topology.nodes = 100;
  p.tuner.e0 = fake_runner(c).efficiency();
  p.tuner.band = 0.05;
  return p;
}

grid::GridConfig base_config() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  config.seed = 42;
  return config;
}

void expect_identical(const grid::SimulationResult& a,
                      const grid::SimulationResult& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(a.G_scheduler, b.G_scheduler);
  EXPECT_EQ(a.H_control, b.H_control);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

void expect_identical(const core::CaseResult& a, const core::CaseResult& b) {
  EXPECT_EQ(a.rms, b.rms);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].k, b.points[i].k);
    EXPECT_EQ(a.points[i].feasible, b.points[i].feasible);
    EXPECT_EQ(a.points[i].tuning.update_interval,
              b.points[i].tuning.update_interval);
    EXPECT_EQ(a.points[i].tuning.neighborhood_size,
              b.points[i].tuning.neighborhood_size);
    EXPECT_EQ(a.points[i].tuning.link_delay_scale,
              b.points[i].tuning.link_delay_scale);
    EXPECT_EQ(a.points[i].tuning.volunteer_interval,
              b.points[i].tuning.volunteer_interval);
    expect_identical(a.points[i].sim, b.points[i].sim);
  }
}

TEST(Determinism, MeasureAllMatchesSerialBitForBit) {
  const std::vector<grid::RmsKind> kinds = {
      grid::RmsKind::kCentral, grid::RmsKind::kLowest,
      grid::RmsKind::kRandom};

  core::ProcedureConfig serial_p = fast_procedure();
  obs::AnnealLog serial_log;
  serial_p.tuner.anneal_log = &serial_log;
  const auto serial =
      core::measure_all(base_config(), kinds, serial_p, fake_runner);

  ThreadPool pool(3);
  core::ProcedureConfig pooled_p = fast_procedure();
  obs::AnnealLog pooled_log;
  pooled_p.tuner.anneal_log = &pooled_log;
  pooled_p.pool = &pool;
  const auto pooled =
      core::measure_all(base_config(), kinds, pooled_p, fake_runner);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], pooled[i]);
  }

  // The shared anneal log too: same rows, same order.
  ASSERT_EQ(serial_log.size(), pooled_log.size());
  for (std::size_t i = 0; i < serial_log.size(); ++i) {
    const obs::AnnealRecord& a = serial_log.records()[i];
    const obs::AnnealRecord& b = pooled_log.records()[i];
    EXPECT_EQ(a.label, b.label) << "row " << i;
    EXPECT_EQ(a.chain, b.chain) << "row " << i;
    EXPECT_EQ(a.iteration, b.iteration) << "row " << i;
    EXPECT_EQ(a.candidate_value, b.candidate_value) << "row " << i;
    EXPECT_EQ(a.current_value, b.current_value) << "row " << i;
    EXPECT_EQ(a.best_value, b.best_value) << "row " << i;
    EXPECT_EQ(a.accepted, b.accepted) << "row " << i;
  }
}

TEST(Determinism, MeasureAllIsStableAcrossRepeatedPoolRuns) {
  // Rules out schedule-dependent results hiding behind a lucky match:
  // two pool runs (fresh pools, different interleavings) must agree.
  const std::vector<grid::RmsKind> kinds = {grid::RmsKind::kCentral,
                                            grid::RmsKind::kLowest};
  std::vector<std::vector<core::CaseResult>> runs;
  for (int run = 0; run < 2; ++run) {
    ThreadPool pool(3);
    core::ProcedureConfig p = fast_procedure();
    p.pool = &pool;
    runs.push_back(core::measure_all(base_config(), kinds, p, fake_runner));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    expect_identical(runs[0][i], runs[1][i]);
  }
}

TEST(Determinism, ReplicateMatchesSerialBitForBit) {
  const grid::GridConfig config = base_config();
  const auto serial = core::replicate(config, 8, /*base_seed=*/100,
                                      fake_runner);
  ThreadPool pool(3);
  const auto pooled = core::replicate(config, 8, /*base_seed=*/100,
                                      fake_runner, &pool);
  EXPECT_EQ(serial.seeds, pooled.seeds);
  EXPECT_EQ(serial.G.mean(), pooled.G.mean());
  EXPECT_EQ(serial.G.stddev(), pooled.G.stddev());
  EXPECT_EQ(serial.F.mean(), pooled.F.mean());
  EXPECT_EQ(serial.H.mean(), pooled.H.mean());
  EXPECT_EQ(serial.efficiency.mean(), pooled.efficiency.mean());
  EXPECT_EQ(serial.efficiency.stddev(), pooled.efficiency.stddev());
  EXPECT_EQ(serial.throughput.mean(), pooled.throughput.mean());
  EXPECT_EQ(serial.mean_response.mean(), pooled.mean_response.mean());
}

TEST(Determinism, ReplicateRealSimulationMatchesSerial) {
  // Small end-to-end check through the real simulator: the pool must
  // not perturb rms::simulate either (each run has its own System).
  grid::GridConfig config;
  config.topology.nodes = 40;
  config.horizon = 120.0;
  config.workload.mean_interarrival = 2.0;
  const auto serial = core::replicate(config, 3, /*base_seed=*/7);
  ThreadPool pool(3);
  const auto pooled = core::replicate(config, 3, /*base_seed=*/7,
                                      core::default_runner(), &pool);
  EXPECT_EQ(serial.G.mean(), pooled.G.mean());
  EXPECT_EQ(serial.G.stddev(), pooled.G.stddev());
  EXPECT_EQ(serial.efficiency.mean(), pooled.efficiency.mean());
  EXPECT_EQ(serial.mean_response.mean(), pooled.mean_response.mean());
}

TEST(Determinism, AggregationOnReplicateMatchesSerial) {
  // The aggregation control plane adds timers and batch sends to the
  // event stream; none of it may depend on worker interleaving.
  grid::GridConfig config;
  config.topology.nodes = 40;
  config.horizon = 120.0;
  config.workload.mean_interarrival = 2.0;
  config.control_plane = true;
  config.tuning.agg_fanout = 2;
  config.tuning.agg_batch = 6;
  config.tuning.agg_flush = 5.0;
  const auto serial = core::replicate(config, 3, /*base_seed=*/7);
  ThreadPool pool(3);
  const auto pooled = core::replicate(config, 3, /*base_seed=*/7,
                                      core::default_runner(), &pool);
  EXPECT_EQ(serial.G.mean(), pooled.G.mean());
  EXPECT_EQ(serial.G.stddev(), pooled.G.stddev());
  EXPECT_EQ(serial.efficiency.mean(), pooled.efficiency.mean());
  EXPECT_EQ(serial.mean_response.mean(), pooled.mean_response.mean());
}

TEST(Determinism, ReplicateRejectsTelemetryWithPool) {
  grid::GridConfig config = base_config();
  obs::Telemetry telemetry{{}};
  config.telemetry = &telemetry;
  ThreadPool pool(2);
  EXPECT_THROW(core::replicate(config, 4, 1, fake_runner, &pool),
               std::invalid_argument);
}

}  // namespace
}  // namespace scal::exec
