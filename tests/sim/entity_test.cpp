#include "sim/entity.hpp"

#include <gtest/gtest.h>

namespace scal::sim {
namespace {

class ProbeEntity : public Entity {
 public:
  using Entity::Entity;
  Time visible_now() const { return now(); }
};

TEST(Entity, CarriesIdentity) {
  Simulator sim;
  ProbeEntity e(sim, 42, "probe");
  EXPECT_EQ(e.id(), 42u);
  EXPECT_EQ(e.name(), "probe");
}

TEST(Entity, NowTracksSimulatorClock) {
  Simulator sim;
  ProbeEntity e(sim, 0, "probe");
  EXPECT_DOUBLE_EQ(e.visible_now(), 0.0);
  sim.schedule_in(7.5, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(e.visible_now(), 7.5);
}

TEST(Entity, NotCopyable) {
  static_assert(!std::is_copy_constructible_v<Entity>);
  static_assert(!std::is_copy_assignable_v<Entity>);
}

}  // namespace
}  // namespace scal::sim
