#include "sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scal::sim {
namespace {

TEST(Server, ServesOneItem) {
  Simulator sim;
  Server server(sim, 0, "s");
  bool done = false;
  server.submit(2.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(server.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(server.offered_work(), 2.0);
  EXPECT_EQ(server.completed(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Server, FifoOrderAndSerialService) {
  Simulator sim;
  Server server(sim, 0, "s");
  std::vector<std::pair<int, Time>> completions;
  for (int i = 0; i < 3; ++i) {
    server.submit(1.0, [&, i] { completions.emplace_back(i, sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].first, 0);
  EXPECT_DOUBLE_EQ(completions[0].second, 1.0);
  EXPECT_DOUBLE_EQ(completions[1].second, 2.0);
  EXPECT_DOUBLE_EQ(completions[2].second, 3.0);
}

TEST(Server, ZeroCostItemsComplete) {
  Simulator sim;
  Server server(sim, 0, "s");
  int done = 0;
  server.submit(0.0, [&] { ++done; });
  server.submit(0.0, [&] { ++done; });
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_DOUBLE_EQ(server.busy_time(), 0.0);
}

TEST(Server, RejectsNegativeCost) {
  Simulator sim;
  Server server(sim, 0, "s");
  EXPECT_THROW(server.submit(-1.0, {}), std::invalid_argument);
}

TEST(Server, QueueLengthTracksBacklog) {
  Simulator sim;
  Server server(sim, 0, "s");
  for (int i = 0; i < 5; ++i) server.submit(1.0, {});
  // One in service, four waiting.
  EXPECT_EQ(server.queue_length(), 4u);
  EXPECT_TRUE(server.busy());
  EXPECT_EQ(server.max_queue_length(), 4u);
  sim.run();
  EXPECT_EQ(server.queue_length(), 0u);
  EXPECT_FALSE(server.busy());
  EXPECT_EQ(server.completed(), 5u);
}

TEST(Server, SubmitFromCompletionCallback) {
  Simulator sim;
  Server server(sim, 0, "s");
  bool nested_done = false;
  server.submit(1.0, [&] {
    server.submit(1.0, [&] { nested_done = true; });
  });
  sim.run();
  EXPECT_TRUE(nested_done);
  EXPECT_DOUBLE_EQ(server.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Server, WorkInSystemEqualsBusyWhenUnsaturated) {
  Simulator sim;
  Server server(sim, 0, "s");
  // Items spaced far apart: never queue.
  for (int i = 0; i < 4; ++i) {
    sim.schedule_in(10.0 * i, [&] { server.submit(1.0, {}); });
  }
  sim.run();
  EXPECT_DOUBLE_EQ(server.work_in_system_time(), server.busy_time());
}

TEST(Server, WorkInSystemGrowsUnderSaturation) {
  Simulator sim;
  Server server(sim, 0, "s");
  // 10 items of cost 10 arrive at t=0: total wait = 10+20+...+90.
  for (int i = 0; i < 10; ++i) server.submit(10.0, {});
  sim.run();
  EXPECT_DOUBLE_EQ(server.busy_time(), 100.0);
  EXPECT_DOUBLE_EQ(server.work_in_system_time(), 100.0 + 450.0);
}

TEST(Server, OfferedWorkExceedsBusyWhenCutOff) {
  Simulator sim;
  Server server(sim, 0, "s");
  for (int i = 0; i < 10; ++i) server.submit(10.0, {});
  sim.run(25.0);  // only two complete, third started
  EXPECT_DOUBLE_EQ(server.offered_work(), 100.0);
  EXPECT_EQ(server.completed(), 2u);
}

TEST(Server, QueueTimeIntegralAccountsTail) {
  Simulator sim;
  Server server(sim, 0, "s");
  server.submit(10.0, {});
  server.submit(10.0, {});  // waits 10
  sim.run(5.0);
  // At t=5: one in service, one waiting since t=0.
  EXPECT_DOUBLE_EQ(server.queue_time_integral(), 5.0);
}

}  // namespace
}  // namespace scal::sim
