#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scal::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, AdvancesTimeToEvents) {
  Simulator sim;
  std::vector<Time> seen;
  sim.schedule_in(5.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_in(2.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Time>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  const auto count = sim.run();
  EXPECT_EQ(count, 5u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, HorizonStopsAndAdvancesClock) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_in(1.0, [] {});
  sim.schedule_in(100.0, [&] { late_fired = true; });
  sim.run(10.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  // A later run picks the event up.
  sim.run();
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_in(10.0, [&] { fired = true; });
  sim.run(10.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.schedule_in(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_in(i, [&] {
      if (++fired == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_in(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsDispatchedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched_events(), 7u);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(3.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ResetRewindsToFreshState) {
  Simulator sim;
  bool stale_fired = false;
  sim.schedule_in(2.0, [] {});
  sim.schedule_in(50.0, [&] { stale_fired = true; });
  sim.run(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);

  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.dispatched_events(), 0u);

  // The rerun replays like a fresh kernel: clock restarts from zero,
  // pre-reset events are gone, tie order matches schedule order.
  std::vector<Time> seen;
  sim.schedule_in(5.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_in(2.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Time>{2.0, 5.0}));
  EXPECT_FALSE(stale_fired);
  EXPECT_EQ(sim.dispatched_events(), 2u);
}

TEST(Simulator, ResetDetachesDispatchObserver) {
  Simulator sim;
  int ticks = 0;
  sim.set_dispatch_observer(1, [&](Time, std::uint64_t, std::size_t) {
    ++ticks;
  });
  sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(ticks, 1);
  sim.reset();
  sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(ticks, 1);
}

TEST(Simulator, ResetDuringRunThrows) {
  Simulator sim;
  sim.schedule_in(1.0, [&] { EXPECT_THROW(sim.reset(), std::logic_error); });
  sim.run();
}

}  // namespace
}  // namespace scal::sim
