#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace scal::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeMatchesEarliest) {
  EventQueue q;
  q.push(7.0, [] {});
  q.push(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredEventReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAllThenEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<double> popped;
  q.push(10.0, [] {});
  q.push(1.0, [] {});
  popped.push_back(q.pop().at);
  q.push(5.0, [] {});
  q.push(0.5, [] {});  // earlier than already-popped is allowed here;
                       // the Simulator is what enforces causality
  popped.push_back(q.pop().at);
  popped.push_back(q.pop().at);
  popped.push_back(q.pop().at);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 0.5, 5.0, 10.0}));
}

TEST(EventQueue, TracksTotalPushed) {
  EventQueue q;
  for (int i = 0; i < 4; ++i) q.push(1.0, [] {});
  EXPECT_EQ(q.total_pushed(), 4u);
}

TEST(EventQueue, CancelThenPopSkipsCancelled) {
  // Cancellation is eager: the event leaves the heap immediately, so a
  // pop right after a cancel must hand out the next live event, and
  // size() must never count cancelled entries (the old lazy-cancel
  // design double-counted buried tombstones).
  EventQueue q;
  std::vector<int> fired;
  q.push(1.0, [&] { fired.push_back(1); });
  const EventId second = q.push(2.0, [&] { fired.push_back(2); });
  q.push(3.0, [&] { fired.push_back(3); });
  EXPECT_TRUE(q.cancel(second));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelAfterFireIsRejectedEvenWhenSlotReused) {
  EventQueue q;
  const EventId first = q.push(1.0, [] {});
  q.pop();  // fires `first`; its arena slot returns to the free list
  // The next push reuses the slot; the stale id must not cancel it.
  bool fired = false;
  const EventId second = q.push(2.0, [&] { fired = true; });
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(second));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, TieBreakSurvivesSameTimestampCancelChurn) {
  // Heavy same-timestamp churn with interleaved cancels: the survivors
  // must still fire in insertion order.  Heap-erase moves entries
  // around, so this pins that the (time, seq) keys — not heap positions
  // — define the order.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(q.push(5.0, [&fired, i] { fired.push_back(i); }));
  }
  std::vector<int> expect;
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 1) {
      EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
    } else {
      expect.push_back(i);
    }
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, expect);
}

TEST(EventQueue, MixedTimestampCancelPopsInOrder) {
  // Pseudo-random times with a cancelled subset: remaining events pop
  // in nondecreasing time order.
  EventQueue q;
  std::vector<EventId> ids;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    ids.push_back(q.push(static_cast<double>(x % 1000), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(q.cancel(ids[i]));
  }
  double last = -1.0;
  while (!q.empty()) {
    const double at = q.pop().at;
    EXPECT_GE(at, last);
    last = at;
  }
}

TEST(EventQueue, ArenaSlotsAreReused) {
  // Steady-state churn must not grow the arena: pushed-then-popped
  // slots go back to the free list and get handed out again.
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    q.push(static_cast<double>(round), [] {});
    q.push(static_cast<double>(round) + 0.5, [] {});
    q.pop();
    q.pop();
  }
  EXPECT_LE(q.arena_size(), 2u);
  EXPECT_EQ(q.total_pushed(), 200u);
}

TEST(EventQueue, CancelOfForeignIdIsRejected) {
  EventQueue q;
  q.push(1.0, [] {});
  // Slot index far beyond the arena: must be rejected, not crash.
  EXPECT_FALSE(q.cancel(static_cast<EventId>(0xFFFFFFFFull)));
}

TEST(EventQueue, PeekTimeMatchesNextTime) {
  EventQueue q;
  q.push(4.0, [] {});
  q.push(1.5, [] {});
  EXPECT_DOUBLE_EQ(q.peek_time(), q.next_time());
  EXPECT_DOUBLE_EQ(q.peek_time(), 1.5);
}

TEST(EventQueue, ClearMatchesFreshQueue) {
  // clear() must leave the queue indistinguishable from a new one: same
  // slot handout order and same seq tie-breaking, so a reset simulation
  // replays bit-identically on a recycled arena.
  EventQueue used;
  for (int i = 0; i < 8; ++i) used.push(static_cast<double>(i), [] {});
  used.pop();
  used.pop();
  used.clear();
  EXPECT_TRUE(used.empty());
  EXPECT_EQ(used.total_pushed(), 0u);

  EventQueue fresh;
  std::vector<int> fired_used;
  std::vector<int> fired_fresh;
  auto feed = [](EventQueue& q, std::vector<int>& fired) {
    for (int i = 0; i < 6; ++i) {
      q.push(3.0, [&fired, i] { fired.push_back(i); });
    }
    while (!q.empty()) q.pop().fn();
  };
  feed(used, fired_used);
  feed(fresh, fired_fresh);
  EXPECT_EQ(fired_used, fired_fresh);
}

TEST(EventQueue, ClearInvalidatesLiveIds) {
  EventQueue q;
  const EventId stale = q.push(1.0, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(stale));
  bool fired = false;
  q.push(2.0, [&] { fired = true; });
  // The recycled slot's new id must work even though the stale one is dead.
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ClearReleasesCallables) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> weak = token;
  EventQueue q;
  q.push(1.0, [token] {});
  token.reset();
  EXPECT_FALSE(weak.expired());
  q.clear();
  EXPECT_TRUE(weak.expired());
}

}  // namespace
}  // namespace scal::sim
