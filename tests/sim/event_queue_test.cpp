#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scal::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeMatchesEarliest) {
  EventQueue q;
  q.push(7.0, [] {});
  q.push(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredEventReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAllThenEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<double> popped;
  q.push(10.0, [] {});
  q.push(1.0, [] {});
  popped.push_back(q.pop().at);
  q.push(5.0, [] {});
  q.push(0.5, [] {});  // earlier than already-popped is allowed here;
                       // the Simulator is what enforces causality
  popped.push_back(q.pop().at);
  popped.push_back(q.pop().at);
  popped.push_back(q.pop().at);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 0.5, 5.0, 10.0}));
}

TEST(EventQueue, TracksTotalPushed) {
  EventQueue q;
  for (int i = 0; i < 4; ++i) q.push(1.0, [] {});
  EXPECT_EQ(q.total_pushed(), 4u);
}

}  // namespace
}  // namespace scal::sim
