#include "opt/eval_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace scal::opt {
namespace {

EvalKey key(double a, double b, std::uint64_t d0 = 1, std::uint64_t d1 = 2) {
  EvalKey k;
  k.digest = {d0, d1};
  k.point = {a, b};
  return k;
}

TEST(EvalCache, MissThenHit) {
  EvalCache<int> cache;
  EXPECT_FALSE(cache.lookup(key(1.0, 2.0)).value.has_value());
  cache.insert(key(1.0, 2.0), 42);
  const auto probe = cache.lookup(key(1.0, 2.0));
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, 42);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, KeysAreExactNoTolerance) {
  EvalCache<int> cache;
  cache.insert(key(1.0, 2.0), 1);
  // The tiniest coordinate perturbation is a different key: caching must
  // never be an approximation.
  EXPECT_FALSE(
      cache.lookup(key(1.0 + 1e-15, 2.0)).value.has_value());
  // Same point under a different configuration digest is also distinct.
  EXPECT_FALSE(cache.lookup(key(1.0, 2.0, 9, 2)).value.has_value());
  EXPECT_FALSE(cache.lookup(key(1.0, 2.0, 1, 9)).value.has_value());
  EXPECT_TRUE(cache.lookup(key(1.0, 2.0)).value.has_value());
}

TEST(EvalCache, FirstInsertWins) {
  EvalCache<int> cache;
  cache.insert(key(3.0, 4.0), 10);
  cache.insert(key(3.0, 4.0), 20);
  EXPECT_EQ(*cache.lookup(key(3.0, 4.0)).value, 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, PriorEpochClassification) {
  EvalCache<int> cache;
  cache.begin_epoch();
  cache.insert(key(1.0, 1.0), 1);
  // Inserted this epoch: a hit, but not a prior-epoch one.
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).value.has_value());
  EXPECT_FALSE(cache.lookup(key(1.0, 1.0)).prior_epoch);
  // Absent keys are never prior-epoch.
  EXPECT_FALSE(cache.lookup(key(2.0, 2.0)).prior_epoch);

  cache.begin_epoch();
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).prior_epoch);
  // Re-inserting must not reclassify the entry as current-epoch.
  cache.insert(key(1.0, 1.0), 99);
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).prior_epoch);
  EXPECT_EQ(*cache.lookup(key(1.0, 1.0)).value, 1);
  // A genuinely new entry this epoch is not prior.
  cache.insert(key(2.0, 2.0), 2);
  EXPECT_FALSE(cache.lookup(key(2.0, 2.0)).prior_epoch);
}

TEST(EvalCache, ClearResetsEverything) {
  EvalCache<int> cache;
  cache.begin_epoch();
  cache.insert(key(1.0, 1.0), 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), 0u);
  EXPECT_FALSE(cache.lookup(key(1.0, 1.0)).value.has_value());
}

TEST(EvalCache, ConcurrentHammerStaysConsistent) {
  // Many threads insert and look up an overlapping key set whose value
  // is a pure function of the key — every successful lookup must return
  // that function's value (first-evaluator-wins over identical values).
  EvalCache<int> cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::vector<int> bad_reads(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &bad_reads, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int i = (round * 7 + t * 3) % kKeys;
        const EvalKey k = key(static_cast<double>(i), 0.5);
        const auto probe = cache.lookup(k);
        if (probe.value) {
          if (*probe.value != i * 10) ++bad_reads[static_cast<size_t>(t)];
          if (probe.prior_epoch) ++bad_reads[static_cast<size_t>(t)];
        } else {
          cache.insert(k, i * 10);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const int bad : bad_reads) EXPECT_EQ(bad, 0);
  EXPECT_LE(cache.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const auto probe = cache.lookup(key(static_cast<double>(i), 0.5));
    if (probe.value) {
      EXPECT_EQ(*probe.value, i * 10);
    }
  }
}

TEST(EvalCacheAcquire, OwnerThenHit) {
  EvalCache<int> cache;
  auto first = cache.acquire(key(1.0, 2.0));
  EXPECT_TRUE(first.owner);
  EXPECT_FALSE(first.value.has_value());
  EXPECT_FALSE(first.waited);
  cache.fulfill(key(1.0, 2.0), 7);
  const auto second = cache.acquire(key(1.0, 2.0));
  EXPECT_FALSE(second.owner);
  ASSERT_TRUE(second.value.has_value());
  EXPECT_EQ(*second.value, 7);
  EXPECT_FALSE(second.waited);
  EXPECT_FALSE(second.from_disk);
}

TEST(EvalCacheAcquire, ClaimCarriesCurrentEpochStamp) {
  // A claim must classify exactly like the insert it replaces: not
  // prior-epoch within the claiming tune, prior-epoch in the next.
  EvalCache<int> cache;
  cache.begin_epoch();
  const auto claimed = cache.acquire(key(1.0, 1.0));
  EXPECT_TRUE(claimed.owner);
  EXPECT_FALSE(claimed.prior_epoch);
  cache.fulfill(key(1.0, 1.0), 1);
  EXPECT_FALSE(cache.acquire(key(1.0, 1.0)).prior_epoch);
  cache.begin_epoch();
  EXPECT_TRUE(cache.acquire(key(1.0, 1.0)).prior_epoch);
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).prior_epoch);
}

TEST(EvalCacheAcquire, AbandonLetsWaiterReclaim) {
  EvalCache<int> cache;
  const EvalKey k = key(5.0, 5.0);
  ASSERT_TRUE(cache.acquire(k).owner);
  std::atomic<bool> reclaimed{false};
  std::thread waiter([&] {
    const auto got = cache.acquire(k);  // blocks until abandon
    if (got.owner) {
      reclaimed = true;
      cache.fulfill(k, 11);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.abandon(k);
  waiter.join();
  EXPECT_TRUE(reclaimed);
  EXPECT_EQ(*cache.lookup(k).value, 11);
  EXPECT_GE(cache.in_flight_waits(), 1u);
}

TEST(EvalCacheAcquire, LookupNeverSeesInFlightClaims) {
  // The non-blocking arm must treat a claim as a miss, not a value.
  EvalCache<int> cache;
  ASSERT_TRUE(cache.acquire(key(9.0, 9.0)).owner);
  EXPECT_FALSE(cache.lookup(key(9.0, 9.0)).value.has_value());
  // insert() fulfills the claim (the !cache_values arm writing through).
  cache.insert(key(9.0, 9.0), 3);
  EXPECT_EQ(*cache.lookup(key(9.0, 9.0)).value, 3);
}

TEST(EvalCacheAcquire, InFlightDedupHammer) {
  // Many threads race acquire() over a small key set; owners sleep
  // before fulfilling so waiters really block.  Exactly one owner per
  // key, every non-owner gets the owner's value, no recomputation.
  EvalCache<int> cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 4;
  std::vector<std::atomic<int>> owners(kKeys);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kKeys; ++i) {
        const EvalKey k = key(static_cast<double>(i), 0.25);
        const auto got = cache.acquire(k);
        if (got.owner) {
          owners[static_cast<std::size_t>(i)]++;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          cache.fulfill(k, i * 100);
        } else if (!got.value || *got.value != i * 100) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad, 0);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(owners[static_cast<std::size_t>(i)].load(), 1)
        << "key " << i << " evaluated more than once";
  }
}

TEST(EvalCachePersist, PreloadMarksEntriesFromDisk) {
  EvalCache<int> cache;
  cache.preload(key(1.0, 1.0), 5);
  EXPECT_EQ(cache.preloaded(), 1u);
  cache.begin_epoch();
  const auto got = cache.acquire(key(1.0, 1.0));
  ASSERT_TRUE(got.value.has_value());
  EXPECT_EQ(*got.value, 5);
  EXPECT_TRUE(got.from_disk);
  EXPECT_TRUE(got.prior_epoch);  // preloaded pre-epoch = warm for every tune
  EXPECT_EQ(cache.disk_hits(), 1u);
  // Preload is first-wins: it never clobbers a computed entry.
  cache.insert(key(2.0, 2.0), 7);
  cache.preload(key(2.0, 2.0), 8);
  EXPECT_EQ(*cache.lookup(key(2.0, 2.0)).value, 7);
  EXPECT_EQ(cache.preloaded(), 1u);
}

TEST(EvalCachePersist, SnapshotSkipsInFlightClaims) {
  EvalCache<int> cache;
  cache.insert(key(1.0, 1.0), 1);
  cache.insert(key(2.0, 2.0), 2);
  ASSERT_TRUE(cache.acquire(key(3.0, 3.0)).owner);  // never fulfilled
  const auto entries = cache.snapshot();
  EXPECT_EQ(entries.size(), 2u);
  for (const auto& [k, v] : entries) {
    EXPECT_EQ(v, static_cast<int>(k.point[0]));
  }
  cache.abandon(key(3.0, 3.0));
}

}  // namespace
}  // namespace scal::opt
