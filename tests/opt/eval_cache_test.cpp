#include "opt/eval_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace scal::opt {
namespace {

EvalKey key(double a, double b, std::uint64_t d0 = 1, std::uint64_t d1 = 2) {
  EvalKey k;
  k.digest = {d0, d1};
  k.point = {a, b};
  return k;
}

TEST(EvalCache, MissThenHit) {
  EvalCache<int> cache;
  EXPECT_FALSE(cache.lookup(key(1.0, 2.0)).value.has_value());
  cache.insert(key(1.0, 2.0), 42);
  const auto probe = cache.lookup(key(1.0, 2.0));
  ASSERT_TRUE(probe.value.has_value());
  EXPECT_EQ(*probe.value, 42);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, KeysAreExactNoTolerance) {
  EvalCache<int> cache;
  cache.insert(key(1.0, 2.0), 1);
  // The tiniest coordinate perturbation is a different key: caching must
  // never be an approximation.
  EXPECT_FALSE(
      cache.lookup(key(1.0 + 1e-15, 2.0)).value.has_value());
  // Same point under a different configuration digest is also distinct.
  EXPECT_FALSE(cache.lookup(key(1.0, 2.0, 9, 2)).value.has_value());
  EXPECT_FALSE(cache.lookup(key(1.0, 2.0, 1, 9)).value.has_value());
  EXPECT_TRUE(cache.lookup(key(1.0, 2.0)).value.has_value());
}

TEST(EvalCache, FirstInsertWins) {
  EvalCache<int> cache;
  cache.insert(key(3.0, 4.0), 10);
  cache.insert(key(3.0, 4.0), 20);
  EXPECT_EQ(*cache.lookup(key(3.0, 4.0)).value, 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, PriorEpochClassification) {
  EvalCache<int> cache;
  cache.begin_epoch();
  cache.insert(key(1.0, 1.0), 1);
  // Inserted this epoch: a hit, but not a prior-epoch one.
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).value.has_value());
  EXPECT_FALSE(cache.lookup(key(1.0, 1.0)).prior_epoch);
  // Absent keys are never prior-epoch.
  EXPECT_FALSE(cache.lookup(key(2.0, 2.0)).prior_epoch);

  cache.begin_epoch();
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).prior_epoch);
  // Re-inserting must not reclassify the entry as current-epoch.
  cache.insert(key(1.0, 1.0), 99);
  EXPECT_TRUE(cache.lookup(key(1.0, 1.0)).prior_epoch);
  EXPECT_EQ(*cache.lookup(key(1.0, 1.0)).value, 1);
  // A genuinely new entry this epoch is not prior.
  cache.insert(key(2.0, 2.0), 2);
  EXPECT_FALSE(cache.lookup(key(2.0, 2.0)).prior_epoch);
}

TEST(EvalCache, ClearResetsEverything) {
  EvalCache<int> cache;
  cache.begin_epoch();
  cache.insert(key(1.0, 1.0), 1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), 0u);
  EXPECT_FALSE(cache.lookup(key(1.0, 1.0)).value.has_value());
}

TEST(EvalCache, ConcurrentHammerStaysConsistent) {
  // Many threads insert and look up an overlapping key set whose value
  // is a pure function of the key — every successful lookup must return
  // that function's value (first-evaluator-wins over identical values).
  EvalCache<int> cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::vector<int> bad_reads(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &bad_reads, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int i = (round * 7 + t * 3) % kKeys;
        const EvalKey k = key(static_cast<double>(i), 0.5);
        const auto probe = cache.lookup(k);
        if (probe.value) {
          if (*probe.value != i * 10) ++bad_reads[static_cast<size_t>(t)];
          if (probe.prior_epoch) ++bad_reads[static_cast<size_t>(t)];
        } else {
          cache.insert(k, i * 10);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const int bad : bad_reads) EXPECT_EQ(bad, 0);
  EXPECT_LE(cache.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const auto probe = cache.lookup(key(static_cast<double>(i), 0.5));
    if (probe.value) {
      EXPECT_EQ(*probe.value, i * 10);
    }
  }
}

}  // namespace
}  // namespace scal::opt
