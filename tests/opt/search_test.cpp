#include "opt/search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::opt {
namespace {

double sphere(const Point& p) {
  double s = 0.0;
  for (const double x : p) s += x * x;
  return s;
}

Space box2() {
  return Space({
      {"x", VarKind::kContinuous, -2.0, 2.0, false},
      {"y", VarKind::kContinuous, -2.0, 2.0, false},
  });
}

TEST(RandomSearch, FindsReasonablePoint) {
  util::RandomStream rng(42, "rs");
  const auto result = random_search(box2(), sphere, 500, rng);
  EXPECT_EQ(result.evaluations, 500u);
  EXPECT_LT(result.best_value, 0.5);
}

TEST(RandomSearch, BudgetOfOne) {
  util::RandomStream rng(1, "rs");
  const auto result = random_search(box2(), sphere, 1, rng);
  EXPECT_EQ(result.evaluations, 1u);
}

TEST(RandomSearch, RejectsZeroBudget) {
  util::RandomStream rng(1, "rs");
  EXPECT_THROW(random_search(box2(), sphere, 0, rng),
               std::invalid_argument);
}

TEST(GridSearch, HitsExactGridOptimum) {
  // 5 levels over [-2, 2] include 0 exactly.
  const auto result = grid_search(box2(), sphere, 5);
  EXPECT_EQ(result.evaluations, 25u);
  EXPECT_DOUBLE_EQ(result.best_value, 0.0);
  EXPECT_EQ(result.best_point, (Point{0.0, 0.0}));
}

TEST(GridSearch, EnumeratesNarrowIntegerRangesExactly) {
  const Space s({
      {"i", VarKind::kInteger, 1.0, 3.0, false},
      {"j", VarKind::kInteger, 1.0, 2.0, false},
  });
  std::size_t calls = 0;
  grid_search(s, [&](const Point&) { return static_cast<double>(++calls); },
              10);
  EXPECT_EQ(calls, 6u);  // 3 x 2 full enumeration
}

TEST(GridSearch, SingleLevelUsesCenter) {
  const auto result = grid_search(box2(), sphere, 1);
  EXPECT_EQ(result.evaluations, 1u);
  EXPECT_DOUBLE_EQ(result.best_point[0], 0.0);
}

TEST(GridSearch, LogScaleLevelsAreGeometric) {
  const Space s({{"x", VarKind::kContinuous, 1.0, 100.0, true}});
  std::vector<double> seen;
  grid_search(s,
              [&](const Point& p) {
                seen.push_back(p[0]);
                return 0.0;
              },
              3);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_NEAR(seen[1], 10.0, 1e-9);  // geometric midpoint of [1, 100]
}

TEST(GridSearch, RejectsZeroLevels) {
  EXPECT_THROW(grid_search(box2(), sphere, 0), std::invalid_argument);
}

}  // namespace
}  // namespace scal::opt
