#include "opt/annealing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::opt {
namespace {

double sphere(const Point& p) {
  double s = 0.0;
  for (const double x : p) s += x * x;
  return s;
}

double rastrigin(const Point& p) {
  double s = 10.0 * static_cast<double>(p.size());
  for (const double x : p) {
    s += x * x - 10.0 * std::cos(2.0 * M_PI * x);
  }
  return s;
}

Space box(std::size_t dims, double lo, double hi) {
  std::vector<Variable> vars;
  for (std::size_t i = 0; i < dims; ++i) {
    vars.push_back({"x" + std::to_string(i), VarKind::kContinuous, lo, hi,
                    false});
  }
  return Space(std::move(vars));
}

TEST(Annealing, MinimizesSphere) {
  const Space space = box(3, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 2000;
  util::RandomStream rng(42, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_LT(result.best_value, 0.5);
  for (const double x : result.best_point) EXPECT_LT(std::abs(x), 1.0);
}

TEST(Annealing, EscapesRastriginLocalMinima) {
  const Space space = box(2, -5.12, 5.12);
  AnnealingConfig config;
  config.iterations = 4000;
  config.restarts = 4;
  util::RandomStream rng(7, "sa");
  const auto result = anneal(space, rastrigin, config, rng);
  // Global minimum 0 at origin; plain greedy descent from the center
  // typically strands above ~1; SA with restarts should do better.
  EXPECT_LT(result.best_value, 2.0);
}

TEST(Annealing, DeterministicGivenSeed) {
  const Space space = box(2, -1.0, 1.0);
  AnnealingConfig config;
  config.iterations = 300;
  util::RandomStream rng1(5, "sa");
  util::RandomStream rng2(5, "sa");
  const auto a = anneal(space, sphere, config, rng1);
  const auto b = anneal(space, sphere, config, rng2);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_point, b.best_point);
}

TEST(Annealing, HonorsEvaluationBudget) {
  const Space space = box(2, -1.0, 1.0);
  AnnealingConfig config;
  config.iterations = 123;
  std::size_t calls = 0;
  const Objective counting = [&](const Point& p) {
    ++calls;
    return sphere(p);
  };
  util::RandomStream rng(1, "sa");
  const auto result = anneal(space, counting, config, rng);
  EXPECT_EQ(calls, result.evaluations);
  EXPECT_LE(calls, config.iterations);
  EXPECT_GE(calls, config.iterations - 1);
}

TEST(Annealing, WarmStartIsUsed) {
  const Space space = box(2, -10.0, 10.0);
  AnnealingConfig config;
  config.iterations = 1;  // only evaluates the initial point
  config.initial_point = Point{3.0, 4.0};
  util::RandomStream rng(1, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_DOUBLE_EQ(result.best_value, 25.0);
  EXPECT_EQ(result.best_point, (Point{3.0, 4.0}));
}

TEST(Annealing, WarmStartOutOfBoundsIsClamped) {
  const Space space = box(1, 0.0, 1.0);
  AnnealingConfig config;
  config.iterations = 1;
  config.initial_point = Point{99.0};
  util::RandomStream rng(1, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_DOUBLE_EQ(result.best_point[0], 1.0);
}

TEST(Annealing, BestNeverWorseThanInitial) {
  const Space space = box(4, -3.0, 3.0);
  AnnealingConfig config;
  config.iterations = 500;
  util::RandomStream rng(9, "sa");
  const double initial = sphere(space.center());
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_LE(result.best_value, initial);
}

TEST(Annealing, MixedIntegerSpaceStaysFeasible) {
  const Space space({
      {"c", VarKind::kContinuous, -2.0, 2.0, false},
      {"i", VarKind::kInteger, 1.0, 6.0, false},
  });
  const Objective objective = [&](const Point& p) {
    EXPECT_TRUE(space.contains(p));
    return sphere(p);
  };
  AnnealingConfig config;
  config.iterations = 400;
  util::RandomStream rng(3, "sa");
  const auto result = anneal(space, objective, config, rng);
  EXPECT_DOUBLE_EQ(result.best_point[1], 1.0);  // integer minimum
}

TEST(Annealing, RejectsBadConfig) {
  const Space space = box(1, 0.0, 1.0);
  util::RandomStream rng(1, "sa");
  AnnealingConfig zero;
  zero.iterations = 0;
  EXPECT_THROW(anneal(space, sphere, zero, rng), std::invalid_argument);
  AnnealingConfig bad_temp;
  bad_temp.final_temperature = 2.0;
  bad_temp.initial_temperature = 1.0;
  EXPECT_THROW(anneal(space, sphere, bad_temp, rng), std::invalid_argument);
  EXPECT_THROW(anneal(Space(std::vector<Variable>{}), sphere,
                      AnnealingConfig{}, rng),
               std::invalid_argument);
}

TEST(Annealing, ObserverSeesEveryEvaluation) {
  const Space space = box(2, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 120;
  config.restarts = 2;
  std::vector<AnnealStep> steps;
  config.observer = [&](const AnnealStep& step) { steps.push_back(step); };
  util::RandomStream rng(3, "sa");
  const auto result = anneal(space, sphere, config, rng);

  ASSERT_EQ(steps.size(), result.evaluations);
  // Each chain opens with an iteration-0 step that is always accepted.
  std::size_t chain_starts = 0;
  std::size_t accepted = 0, improved = 0;
  double best_so_far = steps.front().best_value;
  for (const AnnealStep& s : steps) {
    if (s.iteration == 0) {
      ++chain_starts;
      EXPECT_TRUE(s.accepted);
    } else {
      accepted += s.accepted ? 1 : 0;
      improved += s.improved ? 1 : 0;
    }
    // best_value is monotone non-increasing across the whole search.
    EXPECT_LE(s.best_value, best_so_far + 1e-12);
    best_so_far = s.best_value;
    EXPECT_GT(s.temperature, 0.0);
  }
  EXPECT_EQ(chain_starts, config.restarts);
  EXPECT_EQ(accepted, result.accepted_moves);
  EXPECT_EQ(improved, result.improving_moves);
}

TEST(Annealing, ObserverDoesNotPerturbSearch) {
  const Space space = box(3, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 400;

  util::RandomStream rng_a(21, "sa");
  const auto plain = anneal(space, sphere, config, rng_a);

  config.observer = [](const AnnealStep&) {};
  util::RandomStream rng_b(21, "sa");
  const auto observed = anneal(space, sphere, config, rng_b);

  EXPECT_EQ(plain.best_value, observed.best_value);
  EXPECT_EQ(plain.best_point, observed.best_point);
  EXPECT_EQ(plain.accepted_moves, observed.accepted_moves);
}

TEST(Annealing, CountsAcceptedAndImprovingMoves) {
  const Space space = box(2, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 1000;
  util::RandomStream rng(11, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_GT(result.accepted_moves, 0u);
  EXPECT_GE(result.accepted_moves, result.improving_moves);
}

}  // namespace
}  // namespace scal::opt
