#include "opt/annealing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/thread_pool.hpp"

namespace scal::opt {
namespace {

double sphere(const Point& p) {
  double s = 0.0;
  for (const double x : p) s += x * x;
  return s;
}

double rastrigin(const Point& p) {
  double s = 10.0 * static_cast<double>(p.size());
  for (const double x : p) {
    s += x * x - 10.0 * std::cos(2.0 * M_PI * x);
  }
  return s;
}

Space box(std::size_t dims, double lo, double hi) {
  std::vector<Variable> vars;
  for (std::size_t i = 0; i < dims; ++i) {
    vars.push_back({"x" + std::to_string(i), VarKind::kContinuous, lo, hi,
                    false});
  }
  return Space(std::move(vars));
}

TEST(Annealing, MinimizesSphere) {
  const Space space = box(3, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 2000;
  util::RandomStream rng(42, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_LT(result.best_value, 0.5);
  for (const double x : result.best_point) EXPECT_LT(std::abs(x), 1.0);
}

TEST(Annealing, EscapesRastriginLocalMinima) {
  const Space space = box(2, -5.12, 5.12);
  AnnealingConfig config;
  config.iterations = 4000;
  config.restarts = 4;
  util::RandomStream rng(7, "sa");
  const auto result = anneal(space, rastrigin, config, rng);
  // Global minimum 0 at origin; plain greedy descent from the center
  // typically strands above ~1; SA with restarts should do better.
  EXPECT_LT(result.best_value, 2.0);
}

TEST(Annealing, DeterministicGivenSeed) {
  const Space space = box(2, -1.0, 1.0);
  AnnealingConfig config;
  config.iterations = 300;
  util::RandomStream rng1(5, "sa");
  util::RandomStream rng2(5, "sa");
  const auto a = anneal(space, sphere, config, rng1);
  const auto b = anneal(space, sphere, config, rng2);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_point, b.best_point);
}

TEST(Annealing, HonorsEvaluationBudget) {
  const Space space = box(2, -1.0, 1.0);
  AnnealingConfig config;
  config.iterations = 123;
  std::size_t calls = 0;
  const Objective counting = [&](const Point& p) {
    ++calls;
    return sphere(p);
  };
  util::RandomStream rng(1, "sa");
  const auto result = anneal(space, counting, config, rng);
  EXPECT_EQ(calls, result.evaluations);
  EXPECT_LE(calls, config.iterations);
  EXPECT_GE(calls, config.iterations - 1);
}

TEST(Annealing, WarmStartIsUsed) {
  const Space space = box(2, -10.0, 10.0);
  AnnealingConfig config;
  config.iterations = 1;  // only evaluates the initial point
  config.initial_point = Point{3.0, 4.0};
  util::RandomStream rng(1, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_DOUBLE_EQ(result.best_value, 25.0);
  EXPECT_EQ(result.best_point, (Point{3.0, 4.0}));
}

TEST(Annealing, WarmStartOutOfBoundsIsClamped) {
  const Space space = box(1, 0.0, 1.0);
  AnnealingConfig config;
  config.iterations = 1;
  config.initial_point = Point{99.0};
  util::RandomStream rng(1, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_DOUBLE_EQ(result.best_point[0], 1.0);
}

TEST(Annealing, BestNeverWorseThanInitial) {
  const Space space = box(4, -3.0, 3.0);
  AnnealingConfig config;
  config.iterations = 500;
  util::RandomStream rng(9, "sa");
  const double initial = sphere(space.center());
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_LE(result.best_value, initial);
}

TEST(Annealing, MixedIntegerSpaceStaysFeasible) {
  const Space space({
      {"c", VarKind::kContinuous, -2.0, 2.0, false},
      {"i", VarKind::kInteger, 1.0, 6.0, false},
  });
  const Objective objective = [&](const Point& p) {
    EXPECT_TRUE(space.contains(p));
    return sphere(p);
  };
  AnnealingConfig config;
  config.iterations = 400;
  util::RandomStream rng(3, "sa");
  const auto result = anneal(space, objective, config, rng);
  EXPECT_DOUBLE_EQ(result.best_point[1], 1.0);  // integer minimum
}

TEST(Annealing, RejectsBadConfig) {
  const Space space = box(1, 0.0, 1.0);
  util::RandomStream rng(1, "sa");
  AnnealingConfig zero;
  zero.iterations = 0;
  EXPECT_THROW(anneal(space, sphere, zero, rng), std::invalid_argument);
  AnnealingConfig bad_temp;
  bad_temp.final_temperature = 2.0;
  bad_temp.initial_temperature = 1.0;
  EXPECT_THROW(anneal(space, sphere, bad_temp, rng), std::invalid_argument);
  EXPECT_THROW(anneal(Space(std::vector<Variable>{}), sphere,
                      AnnealingConfig{}, rng),
               std::invalid_argument);
}

TEST(Annealing, ObserverSeesEveryEvaluation) {
  const Space space = box(2, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 120;
  config.restarts = 2;
  std::vector<AnnealStep> steps;
  config.observer = [&](const AnnealStep& step) { steps.push_back(step); };
  util::RandomStream rng(3, "sa");
  const auto result = anneal(space, sphere, config, rng);

  ASSERT_EQ(steps.size(), result.evaluations);
  // Each chain opens with an iteration-0 step that is always accepted.
  std::size_t chain_starts = 0;
  std::size_t accepted = 0, improved = 0;
  double best_so_far = steps.front().best_value;
  for (const AnnealStep& s : steps) {
    if (s.iteration == 0) {
      ++chain_starts;
      EXPECT_TRUE(s.accepted);
    } else {
      accepted += s.accepted ? 1 : 0;
      improved += s.improved ? 1 : 0;
    }
    // best_value is monotone non-increasing across the whole search.
    EXPECT_LE(s.best_value, best_so_far + 1e-12);
    best_so_far = s.best_value;
    EXPECT_GT(s.temperature, 0.0);
  }
  EXPECT_EQ(chain_starts, config.restarts);
  EXPECT_EQ(accepted, result.accepted_moves);
  EXPECT_EQ(improved, result.improving_moves);
}

TEST(Annealing, ObserverDoesNotPerturbSearch) {
  const Space space = box(3, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 400;

  util::RandomStream rng_a(21, "sa");
  const auto plain = anneal(space, sphere, config, rng_a);

  config.observer = [](const AnnealStep&) {};
  util::RandomStream rng_b(21, "sa");
  const auto observed = anneal(space, sphere, config, rng_b);

  EXPECT_EQ(plain.best_value, observed.best_value);
  EXPECT_EQ(plain.best_point, observed.best_point);
  EXPECT_EQ(plain.accepted_moves, observed.accepted_moves);
}

TEST(Annealing, CountsAcceptedAndImprovingMoves) {
  const Space space = box(2, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 1000;
  util::RandomStream rng(11, "sa");
  const auto result = anneal(space, sphere, config, rng);
  EXPECT_GT(result.accepted_moves, 0u);
  EXPECT_GE(result.accepted_moves, result.improving_moves);
}

TEST(Annealing, RestartsPickBestChainAndSumEvaluations) {
  const Space space = box(2, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 240;
  config.restarts = 4;
  std::vector<AnnealStep> steps;
  config.observer = [&](const AnnealStep& step) { steps.push_back(step); };
  util::RandomStream rng(17, "sa");
  const auto result = anneal(space, sphere, config, rng);

  // evaluations is the sum over chains, which together exhaust the
  // budget (each chain gets its near-equal share of config.iterations).
  EXPECT_EQ(result.evaluations, steps.size());
  EXPECT_GE(result.evaluations, config.iterations - config.restarts);
  EXPECT_LE(result.evaluations, config.iterations);

  // The returned best is the minimum over every chain's own best.
  std::vector<double> chain_best(config.restarts,
                                 std::numeric_limits<double>::infinity());
  std::vector<std::size_t> chain_steps(config.restarts, 0);
  for (const AnnealStep& s : steps) {
    ASSERT_LT(s.chain, config.restarts);
    chain_best[s.chain] = std::min(chain_best[s.chain], s.candidate_value);
    ++chain_steps[s.chain];
  }
  const double overall =
      *std::min_element(chain_best.begin(), chain_best.end());
  EXPECT_DOUBLE_EQ(result.best_value, overall);

  // The observer sees every chain exactly once, as one contiguous
  // chain-major block: iteration restarts from 0 precisely at each
  // chain boundary.
  for (std::size_t c = 0; c < config.restarts; ++c) {
    EXPECT_GT(chain_steps[c], 0u) << "chain " << c << " never observed";
  }
  std::size_t boundaries = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].iteration == 0) {
      ++boundaries;
      EXPECT_EQ(steps[i].chain, boundaries - 1);  // chains in index order
    } else {
      EXPECT_EQ(steps[i].chain, steps[i - 1].chain);
      EXPECT_EQ(steps[i].iteration, steps[i - 1].iteration + 1);
    }
  }
  EXPECT_EQ(boundaries, config.restarts);
}

TEST(Annealing, PoolAndSerialChainsAreBitIdentical) {
  const Space space = box(3, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 300;
  config.restarts = 4;

  std::vector<AnnealStep> serial_steps;
  config.observer = [&](const AnnealStep& s) { serial_steps.push_back(s); };
  util::RandomStream rng_serial(23, "sa");
  const auto serial = anneal(space, rastrigin, config, rng_serial);

  exec::ThreadPool pool(3);
  config.pool = &pool;
  std::vector<AnnealStep> pooled_steps;
  config.observer = [&](const AnnealStep& s) { pooled_steps.push_back(s); };
  util::RandomStream rng_pooled(23, "sa");
  const auto pooled = anneal(space, rastrigin, config, rng_pooled);

  EXPECT_EQ(serial.best_point, pooled.best_point);
  EXPECT_EQ(serial.best_value, pooled.best_value);
  EXPECT_EQ(serial.evaluations, pooled.evaluations);
  EXPECT_EQ(serial.accepted_moves, pooled.accepted_moves);
  EXPECT_EQ(serial.improving_moves, pooled.improving_moves);
  ASSERT_EQ(serial_steps.size(), pooled_steps.size());
  for (std::size_t i = 0; i < serial_steps.size(); ++i) {
    EXPECT_EQ(serial_steps[i].chain, pooled_steps[i].chain);
    EXPECT_EQ(serial_steps[i].iteration, pooled_steps[i].iteration);
    EXPECT_EQ(serial_steps[i].candidate_value,
              pooled_steps[i].candidate_value);
    EXPECT_EQ(serial_steps[i].current_value, pooled_steps[i].current_value);
    EXPECT_EQ(serial_steps[i].best_value, pooled_steps[i].best_value);
    EXPECT_EQ(serial_steps[i].accepted, pooled_steps[i].accepted);
  }
}

TEST(Annealing, ChainObjectiveFactoryIsCalledOncePerChain) {
  const Space space = box(2, -5.0, 5.0);
  AnnealingConfig config;
  config.iterations = 80;
  config.restarts = 3;
  std::vector<std::size_t> made;
  std::vector<std::size_t> calls(config.restarts, 0);
  config.chain_objective = [&](std::size_t chain) -> Objective {
    made.push_back(chain);
    return [&calls, chain](const Point& p) {
      ++calls[chain];
      return sphere(p);
    };
  };
  util::RandomStream rng(31, "sa");
  const auto result = anneal(space, Objective{}, config, rng);
  EXPECT_EQ(made, (std::vector<std::size_t>{0, 1, 2}));
  std::size_t total = 0;
  for (const std::size_t c : calls) {
    EXPECT_GT(c, 0u);
    total += c;
  }
  EXPECT_EQ(total, result.evaluations);
}

}  // namespace
}  // namespace scal::opt
