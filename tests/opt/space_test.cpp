#include "opt/space.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scal::opt {
namespace {

Space mixed_space() {
  return Space({
      {"interval", VarKind::kContinuous, 1.0, 100.0, true},
      {"neighbors", VarKind::kInteger, 1.0, 8.0, false},
      {"scale", VarKind::kContinuous, 0.25, 1.6, false},
  });
}

TEST(Space, IndexOfFindsByName) {
  const Space s = mixed_space();
  EXPECT_EQ(s.index_of("interval"), 0u);
  EXPECT_EQ(s.index_of("scale"), 2u);
  EXPECT_THROW(s.index_of("nope"), std::out_of_range);
}

TEST(Space, ClampBoundsAndRoundsIntegers) {
  const Space s = mixed_space();
  const Point p = s.clamp({1000.0, 3.4, -5.0});
  EXPECT_DOUBLE_EQ(p[0], 100.0);
  EXPECT_DOUBLE_EQ(p[1], 3.0);
  EXPECT_DOUBLE_EQ(p[2], 0.25);
  EXPECT_TRUE(s.contains(p));
}

TEST(Space, ContainsRejectsOffGridIntegers) {
  const Space s = mixed_space();
  EXPECT_FALSE(s.contains({10.0, 2.5, 1.0}));
  EXPECT_TRUE(s.contains({10.0, 2.0, 1.0}));
  EXPECT_FALSE(s.contains({10.0, 2.0}));  // wrong dimension
}

TEST(Space, SampleAlwaysInBounds) {
  const Space s = mixed_space();
  util::RandomStream rng(42, "space");
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(s.contains(s.sample(rng)));
  }
}

TEST(Space, LogScaleSamplingCoversDecades) {
  const Space s({{"x", VarKind::kContinuous, 1.0, 1000.0, true}});
  util::RandomStream rng(1, "space");
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (s.sample(rng)[0] < 10.0) ++low;
  }
  // Log-uniform: a third of the mass per decade.
  EXPECT_NEAR(static_cast<double>(low) / n, 1.0 / 3.0, 0.03);
}

TEST(Space, NeighborStaysInBoundsAndMoves) {
  const Space s = mixed_space();
  util::RandomStream rng(7, "space");
  Point p = s.center();
  int moved = 0;
  for (int i = 0; i < 500; ++i) {
    const Point q = s.neighbor(p, 0.5, rng);
    EXPECT_TRUE(s.contains(q));
    if (q != p) ++moved;
  }
  EXPECT_GT(moved, 400);
}

TEST(Space, NeighborTemperatureShrinksSteps) {
  const Space s({{"x", VarKind::kContinuous, 0.0, 1.0, false}});
  util::RandomStream rng(8, "space");
  double hot = 0.0, cold = 0.0;
  const Point p{0.5};
  for (int i = 0; i < 2000; ++i) {
    hot += std::abs(s.neighbor(p, 1.0, rng)[0] - 0.5);
    cold += std::abs(s.neighbor(p, 0.05, rng)[0] - 0.5);
  }
  EXPECT_GT(hot, 3.0 * cold);
}

TEST(Space, CenterIsMidpointOrGeometricMean) {
  const Space s = mixed_space();
  const Point c = s.center();
  EXPECT_NEAR(c[0], std::sqrt(1.0 * 100.0), 1e-9);
  EXPECT_DOUBLE_EQ(c[1], std::round(0.5 * (1.0 + 8.0)));
  EXPECT_NEAR(c[2], 0.5 * (0.25 + 1.6), 1e-12);
}

TEST(Space, RejectsBadBounds) {
  EXPECT_THROW(Space({{"x", VarKind::kContinuous, 2.0, 1.0, false}}),
               std::invalid_argument);
  EXPECT_THROW(Space({{"x", VarKind::kContinuous, 0.0, 1.0, true}}),
               std::invalid_argument);  // log scale needs lo > 0
}

}  // namespace
}  // namespace scal::opt
