// The pull-based workload surface: JobStream next()/peek() semantics,
// the bounding and replay adapters, the materializing shims, and the
// byte-budgeted ArrivalCache the streams are memoized in.  The contract
// under test is the streaming tier's foundation: pulling a stream yields
// exactly the jobs the eager generate_until path materialized, job for
// job, while holding O(1) state.

#include "workload/stream.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "workload/arrival_cache.hpp"
#include "workload/generator.hpp"
#include "workload/source.hpp"
#include "workload/trace.hpp"

namespace scal::workload {
namespace {

WorkloadConfig small_workload() {
  WorkloadConfig config;
  config.mean_interarrival = 2.0;
  config.clusters = 6;
  return config;
}

std::vector<Job> jobs_at(std::initializer_list<double> arrivals) {
  std::vector<Job> jobs;
  JobId id = 0;
  for (const double t : arrivals) {
    Job job;
    job.id = id++;
    job.arrival = t;
    job.exec_time = 1.0;
    jobs.push_back(job);
  }
  return jobs;
}

std::unique_ptr<VectorReplayStream> replay(std::vector<Job> jobs) {
  return std::make_unique<VectorReplayStream>(
      std::make_shared<const std::vector<Job>>(std::move(jobs)));
}

void expect_same_jobs(const std::vector<Job>& actual,
                      const std::vector<Job>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
    EXPECT_EQ(actual[i].arrival, expected[i].arrival);
    EXPECT_EQ(actual[i].exec_time, expected[i].exec_time);
    EXPECT_EQ(actual[i].benefit_factor, expected[i].benefit_factor);
    EXPECT_EQ(actual[i].origin_cluster, expected[i].origin_cluster);
  }
}

TEST(JobStream, NextDrainsInOrderThenStaysExhausted) {
  auto stream = replay(jobs_at({1.0, 2.0, 3.0}));
  Job job;
  for (const double expected : {1.0, 2.0, 3.0}) {
    ASSERT_TRUE(stream->next(job));
    EXPECT_DOUBLE_EQ(job.arrival, expected);
  }
  EXPECT_FALSE(stream->next(job));
  EXPECT_FALSE(stream->next(job));  // exhaustion is terminal
  EXPECT_EQ(stream->produced(), 3u);
}

TEST(JobStream, PeekDoesNotConsume) {
  auto stream = replay(jobs_at({1.0, 2.0}));
  const Job* ahead = stream->peek();
  ASSERT_NE(ahead, nullptr);
  EXPECT_DOUBLE_EQ(ahead->arrival, 1.0);
  // Repeated peeks see the same job; produced() is untouched.
  EXPECT_DOUBLE_EQ(stream->peek()->arrival, 1.0);
  EXPECT_EQ(stream->produced(), 0u);

  Job job;
  ASSERT_TRUE(stream->next(job));  // the peeked job, now consumed
  EXPECT_DOUBLE_EQ(job.arrival, 1.0);
  EXPECT_EQ(stream->produced(), 1u);

  EXPECT_DOUBLE_EQ(stream->peek()->arrival, 2.0);
  ASSERT_TRUE(stream->next(job));
  EXPECT_DOUBLE_EQ(job.arrival, 2.0);
  EXPECT_EQ(stream->peek(), nullptr);  // exhausted
  EXPECT_FALSE(stream->next(job));
}

TEST(VectorReplayStream, SharesTheVectorWithoutCopying) {
  auto jobs = std::make_shared<const std::vector<Job>>(jobs_at({1.0, 2.0}));
  VectorReplayStream a(jobs);
  VectorReplayStream b(jobs);  // independent cursors over one allocation
  Job job;
  ASSERT_TRUE(a.next(job));
  ASSERT_TRUE(a.next(job));
  EXPECT_FALSE(a.next(job));
  ASSERT_TRUE(b.next(job));
  EXPECT_DOUBLE_EQ(job.arrival, 1.0);
}

TEST(VectorReplayStream, NullVectorIsEmpty) {
  VectorReplayStream stream(nullptr);
  Job job;
  EXPECT_FALSE(stream.next(job));
}

TEST(BoundedStream, DropsTheFirstBeyondHorizonJobAndTerminates) {
  // generate_until contract: the first job at or past the horizon is
  // consumed from the base stream and dropped; the bound is exclusive.
  BoundedStream stream(replay(jobs_at({1.0, 4.0, 5.0, 6.0})), 5.0);
  Job job;
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.arrival, 1.0);
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.arrival, 4.0);
  EXPECT_FALSE(stream.next(job));  // 5.0 >= horizon: dropped, terminal
  EXPECT_FALSE(stream.next(job));  // even though 6.0 < infinity remains
}

TEST(BoundedStream, MaxJobsCapsEmission) {
  BoundedStream stream(replay(jobs_at({1.0, 2.0, 3.0, 4.0})), 100.0, 2);
  Job job;
  ASSERT_TRUE(stream.next(job));
  ASSERT_TRUE(stream.next(job));
  EXPECT_DOUBLE_EQ(job.arrival, 2.0);
  EXPECT_FALSE(stream.next(job));
}

TEST(Collect, MaterializesTheStreamUpToMaxJobs) {
  const std::vector<Job> expected = jobs_at({1.0, 2.0, 3.0});
  auto full = replay(expected);
  expect_same_jobs(collect(*full), expected);

  auto capped = replay(expected);
  EXPECT_EQ(collect(*capped, 2).size(), 2u);
}

TEST(MakeStream, PullsExactlyWhatGenerateUntilMaterializes) {
  const WorkloadConfig config = small_workload();
  const SourceSpec spec;
  const auto expected =
      make_source(spec, config, 42, 400.0)->generate_until(400.0);
  ASSERT_FALSE(expected.empty());

  auto stream = make_stream(spec, config, 42, 400.0);
  std::vector<Job> pulled;
  Job job;
  while (stream->next(job)) pulled.push_back(job);
  expect_same_jobs(pulled, expected);
  EXPECT_EQ(stream->produced(), expected.size());
}

TEST(MakeStream, HonorsMaxJobs) {
  const WorkloadConfig config = small_workload();
  auto stream = make_stream(SourceSpec{}, config, 42, 400.0, 5);
  EXPECT_EQ(collect(*stream).size(), 5u);
}

TEST(TraceStatsAccumulator, BitwiseIdenticalToSummarize) {
  const WorkloadConfig config = small_workload();
  const auto jobs =
      make_source(SourceSpec{}, config, 42, 600.0)->generate_until(600.0);
  ASSERT_GT(jobs.size(), 10u);

  TraceStatsAccumulator acc;
  for (const Job& job : jobs) acc.add(job);
  const TraceStats streamed = acc.stats();
  const TraceStats eager = summarize(jobs);

  // The streaming result path swaps summarize() for the fold; the
  // manifest stays byte-identical only if every field matches bitwise.
  EXPECT_EQ(streamed.jobs, eager.jobs);
  EXPECT_EQ(streamed.local_jobs, eager.local_jobs);
  EXPECT_EQ(streamed.remote_jobs, eager.remote_jobs);
  EXPECT_EQ(streamed.mean_interarrival, eager.mean_interarrival);
  EXPECT_EQ(streamed.mean_exec_time, eager.mean_exec_time);
  EXPECT_EQ(streamed.max_exec_time, eager.max_exec_time);
  EXPECT_EQ(streamed.total_demand, eager.total_demand);
  EXPECT_EQ(streamed.span, eager.span);
}

TEST(TraceStatsAccumulator, EmptyMatchesEmptySummary) {
  const TraceStats streamed = TraceStatsAccumulator{}.stats();
  const TraceStats eager = summarize({});
  EXPECT_EQ(streamed.jobs, eager.jobs);
  EXPECT_EQ(streamed.mean_interarrival, eager.mean_interarrival);
  EXPECT_EQ(streamed.span, eager.span);
}

TEST(ArrivalCacheBudget, EvictsOldestFirstWhenOverBudget) {
  ArrivalCache cache;  // local instance: budget tests stay isolated
  cache.set_max_bytes(3 * sizeof(Job));
  const ArrivalCache::Key k1 = {1, 1};
  const ArrivalCache::Key k2 = {2, 2};
  auto two_jobs = std::make_shared<const std::vector<Job>>(2);
  cache.store(k1, two_jobs);
  EXPECT_EQ(cache.bytes(), 2 * sizeof(Job));
  EXPECT_EQ(cache.evictions(), 0u);

  // Storing two more jobs exceeds the budget; the oldest entry goes.
  cache.store(k2, std::make_shared<const std::vector<Job>>(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 2 * sizeof(Job));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_NE(cache.lookup(k2), nullptr);
}

TEST(ArrivalCacheBudget, OversizedEntryIsReturnedButNotMemoized) {
  ArrivalCache cache;
  cache.set_max_bytes(sizeof(Job));
  auto huge = std::make_shared<const std::vector<Job>>(5);
  // The caller's stream still works; it just is not resident.
  EXPECT_EQ(cache.store({9, 9}, huge).get(), huge.get());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(ArrivalCacheBudget, ZeroBudgetIsUnbounded) {
  ArrivalCache cache;
  EXPECT_EQ(cache.max_bytes(), 0u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.store({i, i}, std::make_shared<const std::vector<Job>>(4));
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(CachedStream, OneShotMissStreamsLiveAndCountsTheSkip) {
  ArrivalCache& cache = ArrivalCache::instance();
  cache.clear();
  const WorkloadConfig config = small_workload();
  const std::array<std::uint64_t, 2> key = {0x51717ULL, 0xf100dULL};
  const std::uint64_t skips_before = cache.store_skips();

  PulledArrivals pulled =
      cached_stream(key, SourceSpec{}, config, 42, 400.0, /*reusable=*/false);
  EXPECT_FALSE(pulled.from_cache);
  ASSERT_NE(pulled.stream, nullptr);
  const std::vector<Job> live = collect(*pulled.stream);
  ASSERT_FALSE(live.empty());

  // Nothing was stored: the one-shot run kept per-job memory O(1).
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.store_skips(), skips_before + 1);

  // The live stream is still the canonical stream, job for job.
  const auto expected =
      make_source(SourceSpec{}, config, 42, 400.0)->generate_until(400.0);
  expect_same_jobs(live, expected);
  cache.clear();
}

TEST(CachedStream, ReusableMissStoresAndHitReplays) {
  ArrivalCache& cache = ArrivalCache::instance();
  cache.clear();
  const WorkloadConfig config = small_workload();
  const std::array<std::uint64_t, 2> key = {0xcafeULL, 0xbeefULL};

  PulledArrivals first =
      cached_stream(key, SourceSpec{}, config, 42, 400.0, /*reusable=*/true);
  EXPECT_FALSE(first.from_cache);
  const std::vector<Job> generated = collect(*first.stream);
  EXPECT_NE(cache.lookup(key), nullptr);

  // Second pull — reusable or not — replays the memoized vector.
  PulledArrivals second =
      cached_stream(key, SourceSpec{}, config, 42, 400.0, /*reusable=*/false);
  EXPECT_TRUE(second.from_cache);
  expect_same_jobs(collect(*second.stream), generated);
  cache.clear();
}

}  // namespace
}  // namespace scal::workload
