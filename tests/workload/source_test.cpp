#include "workload/source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/arrival_cache.hpp"
#include "workload/generator.hpp"

namespace scal::workload {
namespace {

WorkloadConfig small_workload() {
  WorkloadConfig config;
  config.mean_interarrival = 2.0;
  config.clusters = 6;
  return config;
}

TEST(SyntheticSource, MatchesGeneratorJobForJob) {
  const WorkloadConfig config = small_workload();
  WorkloadGenerator gen(config, util::RandomStream(42, "workload"));
  SyntheticSource source(config, util::RandomStream(42, "workload"));
  const auto expected = gen.generate_until(500.0);
  const auto actual = source.generate_until(500.0);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(actual[i].arrival, expected[i].arrival);
    EXPECT_DOUBLE_EQ(actual[i].exec_time, expected[i].exec_time);
    EXPECT_DOUBLE_EQ(actual[i].benefit_factor, expected[i].benefit_factor);
    EXPECT_EQ(actual[i].origin_cluster, expected[i].origin_cluster);
  }
}

TEST(SourceSpec, DefaultIsLegacySyntheticPath) {
  const SourceSpec spec;
  EXPECT_TRUE(spec.is_default());
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.summary(), "synthetic");
}

TEST(SourceSpec, ParsesEveryCliForm) {
  EXPECT_TRUE(SourceSpec::parse("").is_default());
  EXPECT_TRUE(SourceSpec::parse("synthetic").is_default());

  const SourceSpec trace = SourceSpec::parse("trace:runs/wl.csv");
  EXPECT_EQ(trace.kind, SourceKind::kTrace);
  EXPECT_EQ(trace.path, "runs/wl.csv");

  const SourceSpec swf = SourceSpec::parse("swf:logs/kth.swf");
  EXPECT_EQ(swf.kind, SourceKind::kSwf);
  EXPECT_EQ(swf.path, "logs/kth.swf");
  EXPECT_DOUBLE_EQ(swf.time_scale, 1.0);

  const SourceSpec scaled = SourceSpec::parse("swf:logs/kth.swf@0.01");
  EXPECT_EQ(scaled.path, "logs/kth.swf");
  EXPECT_DOUBLE_EQ(scaled.time_scale, 0.01);
}

TEST(SourceSpec, RejectsBadText) {
  EXPECT_THROW(SourceSpec::parse("bogus:x"), std::invalid_argument);
  EXPECT_THROW(SourceSpec::parse("trace"), std::invalid_argument);
  EXPECT_THROW(SourceSpec::parse("trace:"), std::invalid_argument);
  EXPECT_THROW(SourceSpec::parse("swf:p@0"), std::invalid_argument);
  EXPECT_THROW(SourceSpec::parse("swf:p@nope"), std::invalid_argument);
}

TEST(SourceSpec, ValidateCatchesMissingPathAndBadScale) {
  SourceSpec spec;
  spec.kind = SourceKind::kSwf;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.path = "x.swf";
  spec.time_scale = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SourceSpec, SummaryNamesTheFullStack) {
  SourceSpec spec = SourceSpec::parse("swf:d.swf@0.5");
  spec.modulators = parse_modulators("diurnal:amplitude=0.6,period=500");
  EXPECT_EQ(spec.summary(),
            "swf:d.swf@0.5+diurnal(amplitude=0.6,period=500)");
}

TEST(Modulators, SpecRoundTrips) {
  const std::string text =
      "diurnal:amplitude=0.6,period=500;flash:at=600,width=60,factor=8;"
      "burst:every=300,width=25,alpha=1.4,max=12";
  const auto chain = parse_modulators(text);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].kind, ModulatorKind::kDiurnal);
  EXPECT_DOUBLE_EQ(chain[0].amplitude, 0.6);
  EXPECT_EQ(chain[1].kind, ModulatorKind::kFlash);
  EXPECT_DOUBLE_EQ(chain[1].factor, 8.0);
  EXPECT_EQ(chain[2].kind, ModulatorKind::kBurst);
  EXPECT_DOUBLE_EQ(chain[2].max_factor, 12.0);
  EXPECT_EQ(modulators_to_spec(chain), text);
  EXPECT_TRUE(parse_modulators("").empty());
}

TEST(Modulators, RejectsBadGrammarAndParameters) {
  EXPECT_THROW(parse_modulators("diurnal"), std::invalid_argument);
  EXPECT_THROW(parse_modulators("wave:amplitude=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_modulators("diurnal:amplitude"),
               std::invalid_argument);
  EXPECT_THROW(parse_modulators("diurnal:volume=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_modulators("diurnal:amplitude=1.0,period=10"),
               std::invalid_argument);
  EXPECT_THROW(parse_modulators("flash:at=0,width=10,factor=0.5"),
               std::invalid_argument);
  EXPECT_THROW(parse_modulators("burst:every=0,width=10"),
               std::invalid_argument);
}

TEST(TimeWarp, DiurnalInvertsItsRateIntegral) {
  ModulatorSpec spec;
  spec.kind = ModulatorKind::kDiurnal;
  spec.amplitude = 0.7;
  spec.period = 400.0;
  TimeWarp warp(spec, util::RandomStream(1));
  const double two_pi = 2.0 * 3.14159265358979323846;
  const double c = spec.amplitude * spec.period / two_pi;
  double prev = 0.0;
  for (double t = 5.0; t < 2000.0; t += 7.3) {
    const double s = warp.warp(t);
    EXPECT_LE(s, t);                // modulators only add load
    EXPECT_GE(s, prev);             // monotone
    // Lambda(s) == t to bisection resolution.
    const double lam = s + c * (1.0 - std::cos(two_pi * s / spec.period));
    EXPECT_NEAR(lam, t, 1e-6 * t);
    prev = s;
  }
}

TEST(TimeWarp, FlashCompressesTheWindowExactly) {
  ModulatorSpec spec;
  spec.kind = ModulatorKind::kFlash;
  spec.at = 100.0;
  spec.width = 50.0;
  spec.factor = 4.0;
  TimeWarp warp(spec, util::RandomStream(1));
  // Before the onset: identity.
  EXPECT_DOUBLE_EQ(warp.warp(60.0), 60.0);
  EXPECT_DOUBLE_EQ(warp.warp(100.0), 100.0);
  // Inside the flash the base stream maps into [at, at + width) at 4x
  // density: Lambda covers [100, 300) of base time over s in [100, 150).
  EXPECT_DOUBLE_EQ(warp.warp(200.0), 125.0);
  EXPECT_DOUBLE_EQ(warp.warp(300.0), 150.0);
  // Past the window: a constant shift of (factor-1)*width = 150.
  EXPECT_DOUBLE_EQ(warp.warp(500.0), 350.0);
}

TEST(TimeWarp, BurstIsDeterministicAndMonotone) {
  ModulatorSpec spec;
  spec.kind = ModulatorKind::kBurst;
  spec.every = 100.0;
  spec.mean_width = 20.0;
  spec.alpha = 1.4;
  spec.max_factor = 6.0;
  TimeWarp a(spec, util::RandomStream(77));
  TimeWarp b(spec, util::RandomStream(77));
  TimeWarp c(spec, util::RandomStream(78));
  double prev = 0.0;
  bool seed_matters = false;
  for (double t = 1.0; t < 5000.0; t += 11.7) {
    const double sa = a.warp(t);
    EXPECT_DOUBLE_EQ(sa, b.warp(t));  // same seed: same realized train
    if (sa != c.warp(t)) seed_matters = true;
    EXPECT_LE(sa, t);
    EXPECT_GE(sa, prev);
    prev = sa;
  }
  EXPECT_TRUE(seed_matters);
}

TEST(TimeWarp, RejectsDecreasingInputs) {
  ModulatorSpec spec;
  spec.kind = ModulatorKind::kDiurnal;
  spec.amplitude = 0.5;
  spec.period = 100.0;
  TimeWarp warp(spec, util::RandomStream(1));
  warp.warp(10.0);
  EXPECT_THROW(warp.warp(9.0), std::logic_error);
}

TEST(MakeSource, ModulatorsReshapeArrivalsOnly) {
  const WorkloadConfig config = small_workload();
  SourceSpec plain;
  SourceSpec modulated;
  modulated.modulators =
      parse_modulators("diurnal:amplitude=0.8,period=250");
  const auto base = make_source(plain, config, 42, 1e9)
                        ->generate_until(1e9, 500);
  const auto warped = make_source(modulated, config, 42, 1e9)
                          ->generate_until(1e9, 500);
  ASSERT_EQ(warped.size(), base.size());  // count preserved
  double prev = -1.0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_LE(warped[i].arrival, base[i].arrival);
    EXPECT_GE(warped[i].arrival, prev);  // order preserved
    prev = warped[i].arrival;
    // Everything but the arrival instant is untouched.
    EXPECT_EQ(warped[i].id, base[i].id);
    EXPECT_DOUBLE_EQ(warped[i].exec_time, base[i].exec_time);
    EXPECT_DOUBLE_EQ(warped[i].benefit_factor, base[i].benefit_factor);
    EXPECT_EQ(warped[i].origin_cluster, base[i].origin_cluster);
  }
}

TEST(MakeSource, ChainPositionsDrawFromIsolatedSubstreams) {
  // Appending a stage must not perturb the stages before it: position i
  // always derives its RNG from modulator_seeds(seed).at(i).
  const WorkloadConfig config = small_workload();
  SourceSpec just_burst;
  just_burst.modulators = parse_modulators("burst:every=80,width=15");
  SourceSpec burst_plus_identity = just_burst;
  // A zero-amplitude diurnal warps nothing, so any output difference
  // could only come from the burst stage drawing a different substream.
  burst_plus_identity.modulators.push_back(
      parse_modulators("diurnal:amplitude=0,period=1").front());
  const auto a = make_source(just_burst, config, 42, 1e9)
                     ->generate_until(1e9, 300);
  const auto b = make_source(burst_plus_identity, config, 42, 1e9)
                     ->generate_until(1e9, 300);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(ArrivalCacheTest, MissGeneratesThenHitsRecall) {
  ArrivalCache::instance().clear();
  const WorkloadConfig config = small_workload();
  const SourceSpec spec;
  const std::array<std::uint64_t, 2> key = {0xabcdefULL, 0x123456ULL};
  const ArrivalStream first = cached_arrivals(key, spec, config, 42, 400.0);
  EXPECT_FALSE(first.from_cache);
  ASSERT_TRUE(first.jobs);
  EXPECT_FALSE(first.jobs->empty());
  const ArrivalStream second = cached_arrivals(key, spec, config, 42, 400.0);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.jobs.get(), first.jobs.get());  // shared, not copied
  EXPECT_GE(ArrivalCache::instance().hits(), 1u);
}

TEST(ArrivalCacheTest, FirstInsertWins) {
  ArrivalCache& cache = ArrivalCache::instance();
  cache.clear();
  const std::array<std::uint64_t, 2> key = {7ULL, 9ULL};
  auto first = std::make_shared<const std::vector<Job>>(1);
  auto second = std::make_shared<const std::vector<Job>>(2);
  EXPECT_EQ(cache.store(key, first).get(), first.get());
  // A racing second insert is dropped; the canonical vector survives.
  EXPECT_EQ(cache.store(key, second).get(), first.get());
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace scal::workload
