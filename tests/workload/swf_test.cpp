#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scal::workload {
namespace {

SwfMapping small_mapping() {
  SwfMapping mapping;
  mapping.time_scale = 1.0;
  mapping.t_cpu = 700.0;
  mapping.clusters = 4;
  mapping.seed = 42;
  return mapping;
}

// One SWF record: the 4 mandatory fields plus the optional tail up to
// the user id (field 11).  -1 marks missing values, as in the archive.
std::string row(double submit, double run, double req = -1.0,
                double uid = -1.0) {
  std::ostringstream out;
  out << "1 " << submit << " 0 " << run << " 1 -1 -1 1 " << req
      << " -1 1 " << uid << "\n";
  return out.str();
}

TEST(Swf, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "; Computer: test machine\n"
      "# alt comment style\n"
      "\n"
      "   \t \n" +
      row(0.0, 100.0) + row(10.0, 50.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 10.0);
}

TEST(Swf, ShortRecordThrows) {
  std::istringstream in("1 0 0\n");  // 3 fields; need >= 4
  EXPECT_THROW(load_swf(in, small_mapping()), std::runtime_error);
}

TEST(Swf, NonNumericFieldThrows) {
  std::istringstream in("1 0 0 abc\n");
  EXPECT_THROW(load_swf(in, small_mapping()), std::runtime_error);
}

TEST(Swf, ExtraFieldsBeyondEighteenIgnored) {
  std::istringstream in(
      "1 0 0 100 1 -1 -1 1 -1 -1 1 3 1 -1 0 -1 -1 -1 99 98 97\n");
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 100.0);
}

TEST(Swf, MissingSubmitTimeDropsRecord) {
  std::istringstream in(row(-1.0, 100.0) + row(5.0, 50.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 50.0);
}

TEST(Swf, MissingRunTimeFallsBackToRequestedTime) {
  std::istringstream in(row(0.0, -1.0, 300.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 300.0);
  EXPECT_DOUBLE_EQ(jobs[0].requested_time, 300.0);
}

TEST(Swf, ZeroRuntimeJobsDropped) {
  // Cancelled-before-start records: run 0 / -1 with no requested time.
  std::istringstream in(row(0.0, 0.0) + row(1.0, -1.0) + row(2.0, 10.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 10.0);
}

TEST(Swf, RequestedTimeIsAtLeastRunTime) {
  // Logs where the job overran its request: requested_time must still
  // upper-bound exec_time.
  std::istringstream in(row(0.0, 500.0, 100.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 500.0);
  EXPECT_DOUBLE_EQ(jobs[0].requested_time, 500.0);
}

TEST(Swf, OutOfOrderSubmitTimesSortedAndRebased) {
  std::istringstream in(row(100.0, 10.0) + row(40.0, 20.0) +
                        row(70.0, 30.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 3u);
  // Sorted by submit, rebased so the first arrival is 0, sequential ids.
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 30.0);
  EXPECT_DOUBLE_EQ(jobs[2].arrival, 60.0);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 20.0);
  EXPECT_DOUBLE_EQ(jobs[1].exec_time, 30.0);
  EXPECT_DOUBLE_EQ(jobs[2].exec_time, 10.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].id, i);
}

TEST(Swf, TimeScaleAppliesToArrivalAndRunTimes) {
  SwfMapping mapping = small_mapping();
  mapping.time_scale = 0.1;
  std::istringstream in(row(100.0, 50.0, 80.0) + row(300.0, 20.0));
  const auto jobs = load_swf(in, mapping);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 20.0);
  EXPECT_DOUBLE_EQ(jobs[0].exec_time, 5.0);
  EXPECT_DOUBLE_EQ(jobs[0].requested_time, 8.0);
}

TEST(Swf, JobClassSplitsOnTcpu) {
  std::istringstream in(row(0.0, 700.0) + row(1.0, 701.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].job_class, JobClass::kLocal);
  EXPECT_EQ(jobs[1].job_class, JobClass::kRemote);
}

TEST(Swf, OriginFromUserIdModuloClusters) {
  std::istringstream in(row(0.0, 10.0, -1.0, 7.0) +
                        row(1.0, 10.0, -1.0, 4.0));
  const auto jobs = load_swf(in, small_mapping());  // 4 clusters
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].origin_cluster, 3u);
  EXPECT_EQ(jobs[1].origin_cluster, 0u);
}

TEST(Swf, MissingUserIdRoundRobinsOrigin) {
  std::istringstream in(row(0.0, 10.0) + row(1.0, 10.0) + row(2.0, 10.0) +
                        row(3.0, 10.0) + row(4.0, 10.0));
  const auto jobs = load_swf(in, small_mapping());  // 4 clusters
  ASSERT_EQ(jobs.size(), 5u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].origin_cluster, i % 4);
  }
}

TEST(Swf, BenefitFactorsInRangeAndDeterministic) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += row(i, 10.0);
  std::istringstream in1(text), in2(text);
  const auto a = load_swf(in1, small_mapping());
  const auto b = load_swf(in2, small_mapping());
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].benefit_factor, 2.0);
    EXPECT_LT(a[i].benefit_factor, 5.0);
    EXPECT_DOUBLE_EQ(a[i].benefit_factor, b[i].benefit_factor);
    EXPECT_DOUBLE_EQ(a[i].benefit_deadline,
                     a[i].exec_time * a[i].benefit_factor);
  }
}

TEST(Swf, PaperModelFieldsFixed) {
  std::istringstream in(row(0.0, 10.0));
  const auto jobs = load_swf(in, small_mapping());
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].partition_size, 1u);   // paper Section 3.1
  EXPECT_FALSE(jobs[0].cancellable);       // paper Section 3.1
}

TEST(Swf, RejectsBadMapping) {
  std::istringstream in(row(0.0, 10.0));
  SwfMapping mapping = small_mapping();
  mapping.time_scale = 0.0;
  EXPECT_THROW(load_swf(in, mapping), std::invalid_argument);
  mapping = small_mapping();
  mapping.clusters = 0;
  EXPECT_THROW(load_swf(in, mapping), std::invalid_argument);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(load_swf_file("/nonexistent/nope.swf", small_mapping()),
               std::runtime_error);
}

TEST(SwfSource, StreamsJobsInOrderThenExhausts) {
  std::istringstream in(row(0.0, 10.0) + row(5.0, 20.0));
  SwfSource source(load_swf(in, small_mapping()));
  Job j;
  ASSERT_TRUE(source.next(j));
  EXPECT_DOUBLE_EQ(j.arrival, 0.0);
  ASSERT_TRUE(source.next(j));
  EXPECT_DOUBLE_EQ(j.arrival, 5.0);
  EXPECT_FALSE(source.next(j));
}

TEST(SwfSource, GenerateUntilRespectsHorizon) {
  std::istringstream in(row(0.0, 10.0) + row(5.0, 10.0) + row(50.0, 10.0));
  SwfSource source(load_swf(in, small_mapping()));
  const auto jobs = source.generate_until(50.0);
  EXPECT_EQ(jobs.size(), 2u);  // arrival 50 is at the horizon: excluded
}

}  // namespace
}  // namespace scal::workload
