#include <gtest/gtest.h>

#include <cmath>

#include "workload/generator.hpp"

namespace scal::workload {
namespace {

WorkloadConfig modulated_config() {
  WorkloadConfig config;
  config.mean_interarrival = 2.0;
  config.clusters = 8;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period = 1000.0;
  return config;
}

TEST(DiurnalModulation, PeakTroughContrast) {
  WorkloadGenerator gen(modulated_config(),
                        util::RandomStream(42, "mod"));
  const auto jobs = gen.generate_until(20000.0);
  ASSERT_GT(jobs.size(), 2000u);
  // Count arrivals in the peak quarter (t mod P in [P/8, 3P/8]) vs the
  // trough quarter ([5P/8, 7P/8]) of each period.
  std::size_t peak = 0, trough = 0;
  for (const Job& j : jobs) {
    const double phase = std::fmod(j.arrival, 1000.0) / 1000.0;
    if (phase >= 0.125 && phase < 0.375) ++peak;
    if (phase >= 0.625 && phase < 0.875) ++trough;
  }
  // With amplitude 0.8 the expected ratio is ~ (1+0.72)/(1-0.72) ~ 6.
  EXPECT_GT(static_cast<double>(peak) / static_cast<double>(trough), 3.0);
}

TEST(DiurnalModulation, MeanRatePreserved) {
  WorkloadGenerator gen(modulated_config(),
                        util::RandomStream(7, "mod"));
  const auto jobs = gen.generate_until(40000.0);
  // Long-run mean interarrival should still be ~ the configured mean
  // (the sin term integrates to zero over whole periods).
  const double mean = 40000.0 / static_cast<double>(jobs.size());
  EXPECT_NEAR(mean, 2.0, 0.15);
}

TEST(DiurnalModulation, ArrivalsStrictlyIncreasing) {
  WorkloadGenerator gen(modulated_config(),
                        util::RandomStream(9, "mod"));
  double prev = -1.0;
  for (int i = 0; i < 2000; ++i) {
    const Job j = gen.next();
    EXPECT_GT(j.arrival, prev);
    prev = j.arrival;
  }
}

TEST(DiurnalModulation, RejectsBadParameters) {
  WorkloadConfig config = modulated_config();
  config.diurnal_amplitude = 1.0;  // must be < 1
  EXPECT_THROW(WorkloadGenerator(config, util::RandomStream(1, "m")),
               std::invalid_argument);
  config = modulated_config();
  config.diurnal_period = 0.0;
  EXPECT_THROW(WorkloadGenerator(config, util::RandomStream(1, "m")),
               std::invalid_argument);
}

TEST(HotspotOrigin, SkewConcentratesOnClusterZero) {
  WorkloadConfig config;
  config.mean_interarrival = 1.0;
  config.clusters = 10;
  config.origin_hotspot_weight = 0.5;
  WorkloadGenerator gen(config, util::RandomStream(11, "hot"));
  std::size_t at_zero = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.next().origin_cluster == 0) ++at_zero;
  }
  // P(cluster 0) = 0.5 + 0.5 * (1/10) = 0.55.
  EXPECT_NEAR(static_cast<double>(at_zero) / n, 0.55, 0.02);
}

TEST(HotspotOrigin, ZeroWeightIsUniform) {
  WorkloadConfig config;
  config.mean_interarrival = 1.0;
  config.clusters = 4;
  WorkloadGenerator gen(config, util::RandomStream(12, "hot"));
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().origin_cluster];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(HotspotOrigin, RejectsBadWeight) {
  WorkloadConfig config;
  config.origin_hotspot_weight = 1.5;
  EXPECT_THROW(WorkloadGenerator(config, util::RandomStream(1, "h")),
               std::invalid_argument);
}

}  // namespace
}  // namespace scal::workload
