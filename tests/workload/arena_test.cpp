// JobArena — the recycled-slot pool behind the streaming arrival path.
// The invariants under test: acquisitions recycle LIFO, addresses are
// stable while held, high_water tracks the true in-flight footprint,
// and misuse (foreign/double release, clearing while held) throws
// instead of corrupting the free list.

#include "workload/arena.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace scal::workload {
namespace {

TEST(JobArena, AcquireGrowsThenRecyclesLifo) {
  JobArena arena;
  Job* a = arena.acquire();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.slots(), 1u);
  EXPECT_EQ(arena.in_use(), 1u);
  EXPECT_EQ(arena.reuses(), 0u);

  arena.release(a);
  EXPECT_EQ(arena.in_use(), 0u);

  // The freed slot comes straight back (LIFO keeps it cache-hot).
  Job* b = arena.acquire();
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.slots(), 1u);
  EXPECT_EQ(arena.reuses(), 1u);
  arena.release(b);
}

TEST(JobArena, HighWaterTracksPeakInFlight) {
  JobArena arena;
  Job* a = arena.acquire();
  Job* b = arena.acquire();
  Job* c = arena.acquire();
  EXPECT_EQ(arena.high_water(), 3u);
  arena.release(b);
  arena.release(c);
  // Draining does not lower the peak; reacquiring below it does not
  // raise it.
  Job* d = arena.acquire();
  EXPECT_EQ(arena.high_water(), 3u);
  EXPECT_EQ(arena.slots(), 3u);
  arena.release(d);
  arena.release(a);
  EXPECT_EQ(arena.high_water(), 3u);
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(JobArena, SlotAddressesStableWhileHeld) {
  JobArena arena;
  std::vector<Job*> held;
  for (int i = 0; i < 100; ++i) {
    Job* slot = arena.acquire();
    slot->id = static_cast<JobId>(i);
    held.push_back(slot);
  }
  // Growth must not have moved earlier slots (the streaming path holds
  // a raw pointer across arbitrary later acquisitions).
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(held[static_cast<std::size_t>(i)]->id,
              static_cast<JobId>(i));
  }
  for (Job* slot : held) arena.release(slot);
}

TEST(JobArena, MillionCycleReusesOneSlot) {
  JobArena arena;
  for (int i = 0; i < 1'000'000; ++i) {
    Job* slot = arena.acquire();
    arena.release(slot);
  }
  EXPECT_EQ(arena.slots(), 1u);
  EXPECT_EQ(arena.high_water(), 1u);
  EXPECT_EQ(arena.reuses(), 999'999u);
}

TEST(JobArena, DoubleReleaseThrows) {
  JobArena arena;
  Job* slot = arena.acquire();
  arena.release(slot);
  EXPECT_THROW(arena.release(slot), std::invalid_argument);
}

TEST(JobArena, ForeignReleaseThrows) {
  JobArena arena;
  JobArena other;
  Job* foreign = other.acquire();
  EXPECT_THROW(arena.release(foreign), std::invalid_argument);
  Job local;
  EXPECT_THROW(arena.release(&local), std::invalid_argument);
  other.release(foreign);
}

TEST(JobArena, ClearWhileHeldThrows) {
  JobArena arena;
  Job* slot = arena.acquire();
  EXPECT_THROW(arena.clear(), std::logic_error);
  arena.release(slot);
  arena.clear();
  EXPECT_EQ(arena.slots(), 0u);
  // A cleared arena starts over.
  Job* fresh = arena.acquire();
  EXPECT_EQ(arena.slots(), 1u);
  arena.release(fresh);
}

}  // namespace
}  // namespace scal::workload
