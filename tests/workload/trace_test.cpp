#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hpp"

namespace scal::workload {
namespace {

std::vector<Job> sample_jobs(std::size_t n) {
  WorkloadConfig config;
  config.mean_interarrival = 3.0;
  config.clusters = 5;
  WorkloadGenerator gen(config, util::RandomStream(42, "trace"));
  return gen.generate_until(1e12, n);
}

TEST(Trace, RoundTripPreservesEveryField) {
  const auto jobs = sample_jobs(200);
  std::stringstream buffer;
  save_trace(jobs, buffer);
  const auto loaded = load_trace(buffer);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].arrival, jobs[i].arrival);
    EXPECT_DOUBLE_EQ(loaded[i].exec_time, jobs[i].exec_time);
    EXPECT_DOUBLE_EQ(loaded[i].requested_time, jobs[i].requested_time);
    EXPECT_EQ(loaded[i].partition_size, jobs[i].partition_size);
    EXPECT_EQ(loaded[i].cancellable, jobs[i].cancellable);
    EXPECT_EQ(loaded[i].job_class, jobs[i].job_class);
    EXPECT_DOUBLE_EQ(loaded[i].benefit_factor, jobs[i].benefit_factor);
    EXPECT_DOUBLE_EQ(loaded[i].benefit_deadline, jobs[i].benefit_deadline);
    EXPECT_EQ(loaded[i].origin_cluster, jobs[i].origin_cluster);
  }
}

TEST(Trace, FileRoundTrip) {
  const auto jobs = sample_jobs(20);
  const std::string path = ::testing::TempDir() + "/scal_trace_test.csv";
  save_trace_file(jobs, path);
  const auto loaded = load_trace_file(path);
  EXPECT_EQ(loaded.size(), jobs.size());
  std::remove(path.c_str());
}

TEST(Trace, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  save_trace({}, buffer);
  EXPECT_TRUE(load_trace(buffer).empty());
}

TEST(Trace, RejectsBadHeader) {
  std::stringstream buffer("not,a,trace\n1,2,3\n");
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(Trace, RejectsTruncatedRow) {
  std::stringstream buffer;
  save_trace(sample_jobs(1), buffer);
  std::string text = buffer.str();
  text = text.substr(0, text.rfind(',') - 2);  // chop the row's tail
  std::stringstream broken(text);
  EXPECT_THROW(load_trace(broken), std::runtime_error);
}

TEST(Trace, RejectsMissingFile) {
  EXPECT_THROW(load_trace_file("/nonexistent/nope.csv"),
               std::runtime_error);
}

TEST(TraceStats, SummarizesCorrectly) {
  std::vector<Job> jobs(3);
  jobs[0].arrival = 0.0;
  jobs[0].exec_time = 100.0;
  jobs[0].job_class = JobClass::kLocal;
  jobs[1].arrival = 10.0;
  jobs[1].exec_time = 900.0;
  jobs[1].job_class = JobClass::kRemote;
  jobs[2].arrival = 20.0;
  jobs[2].exec_time = 200.0;
  jobs[2].job_class = JobClass::kLocal;
  const TraceStats s = summarize(jobs);
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_EQ(s.local_jobs, 2u);
  EXPECT_EQ(s.remote_jobs, 1u);
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 10.0);
  EXPECT_DOUBLE_EQ(s.mean_exec_time, 400.0);
  EXPECT_DOUBLE_EQ(s.max_exec_time, 900.0);
  EXPECT_DOUBLE_EQ(s.total_demand, 1200.0);
  EXPECT_DOUBLE_EQ(s.span, 20.0);
}

TEST(TraceStats, EmptyIsAllZero) {
  const TraceStats s = summarize({});
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.total_demand, 0.0);
}

}  // namespace
}  // namespace scal::workload
