#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/trace.hpp"

namespace scal::workload {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.mean_interarrival = 5.0;
  config.clusters = 4;
  return config;
}

TEST(WorkloadGenerator, ArrivalsStrictlyIncreasing) {
  WorkloadGenerator gen(base_config(), util::RandomStream(42, "wl"));
  double prev = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const Job j = gen.next();
    EXPECT_GT(j.arrival, prev);
    prev = j.arrival;
  }
}

TEST(WorkloadGenerator, IdsAreSequential) {
  WorkloadGenerator gen(base_config(), util::RandomStream(42, "wl"));
  for (JobId i = 0; i < 100; ++i) EXPECT_EQ(gen.next().id, i);
}

TEST(WorkloadGenerator, PaperConstraintsHold) {
  // Paper Section 3.1: partition size 1, no cancellation; Table 1:
  // T_CPU classification and U_b factor in [2, 5].
  const WorkloadConfig config = base_config();
  WorkloadGenerator gen(config, util::RandomStream(1, "wl"));
  for (int i = 0; i < 5000; ++i) {
    const Job j = gen.next();
    EXPECT_EQ(j.partition_size, 1u);
    EXPECT_FALSE(j.cancellable);
    EXPECT_EQ(j.job_class, j.exec_time <= config.t_cpu ? JobClass::kLocal
                                                       : JobClass::kRemote);
    EXPECT_GE(j.benefit_factor, config.benefit_lo);
    EXPECT_LE(j.benefit_factor, config.benefit_hi);
    EXPECT_NEAR(j.benefit_deadline, j.benefit_factor * j.exec_time, 1e-9);
    EXPECT_GE(j.requested_time, j.exec_time);
    EXPECT_LE(j.requested_time,
              j.exec_time * config.requested_factor_max * (1 + 1e-12));
    EXPECT_LT(j.origin_cluster, config.clusters);
  }
}

TEST(WorkloadGenerator, MeanInterarrivalMatches) {
  WorkloadGenerator gen(base_config(), util::RandomStream(2, "wl"));
  const auto jobs = gen.generate_until(1e9, 20000);
  const TraceStats stats = summarize(jobs);
  EXPECT_NEAR(stats.mean_interarrival, 5.0, 0.15);
}

TEST(WorkloadGenerator, GenerateUntilRespectsHorizon) {
  WorkloadGenerator gen(base_config(), util::RandomStream(3, "wl"));
  const auto jobs = gen.generate_until(100.0);
  ASSERT_FALSE(jobs.empty());
  for (const Job& j : jobs) EXPECT_LT(j.arrival, 100.0);
}

TEST(WorkloadGenerator, GenerateUntilRespectsMaxJobs) {
  WorkloadGenerator gen(base_config(), util::RandomStream(4, "wl"));
  EXPECT_EQ(gen.generate_until(1e12, 17).size(), 17u);
}

TEST(WorkloadGenerator, SameSeedSameTrace) {
  WorkloadGenerator a(base_config(), util::RandomStream(9, "wl"));
  WorkloadGenerator b(base_config(), util::RandomStream(9, "wl"));
  for (int i = 0; i < 200; ++i) {
    const Job ja = a.next();
    const Job jb = b.next();
    EXPECT_DOUBLE_EQ(ja.arrival, jb.arrival);
    EXPECT_DOUBLE_EQ(ja.exec_time, jb.exec_time);
    EXPECT_EQ(ja.origin_cluster, jb.origin_cluster);
  }
}

TEST(WorkloadGenerator, LocalFractionMatchesLognormalCdf) {
  const WorkloadConfig config = base_config();
  WorkloadGenerator gen(config, util::RandomStream(5, "wl"));
  const auto jobs = gen.generate_until(1e9, 40000);
  const TraceStats stats = summarize(jobs);
  // P(exec <= 700) for lognormal(mu=6, sigma=0.9).
  const double z = (std::log(700.0) - 6.0) / 0.9;
  const double expected = 0.5 * std::erfc(-z / std::sqrt(2.0));
  EXPECT_NEAR(static_cast<double>(stats.local_jobs) / stats.jobs, expected,
              0.02);
}

class ExecModelTest : public ::testing::TestWithParam<ExecTimeModel> {};

TEST_P(ExecModelTest, EmpiricalMeanMatchesAnalytic) {
  WorkloadConfig config = base_config();
  config.exec_model = GetParam();
  WorkloadGenerator gen(config, util::RandomStream(6, "wl"));
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += gen.next().exec_time;
  const double analytic = expected_exec_time(config);
  EXPECT_NEAR(sum / n, analytic, 0.05 * analytic);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ExecModelTest,
                         ::testing::Values(ExecTimeModel::kLognormal,
                                           ExecTimeModel::kBoundedPareto,
                                           ExecTimeModel::kUniform),
                         [](const auto& info) {
                           switch (info.param) {
                             case ExecTimeModel::kLognormal:
                               return "Lognormal";
                             case ExecTimeModel::kBoundedPareto:
                               return "BoundedPareto";
                             case ExecTimeModel::kUniform:
                               return "Uniform";
                           }
                           return "Unknown";
                         });

TEST(WorkloadGenerator, RejectsBadConfig) {
  WorkloadConfig config = base_config();
  config.mean_interarrival = 0.0;
  EXPECT_THROW(WorkloadGenerator(config, util::RandomStream(1, "wl")),
               std::invalid_argument);
  config = base_config();
  config.clusters = 0;
  EXPECT_THROW(WorkloadGenerator(config, util::RandomStream(1, "wl")),
               std::invalid_argument);
  config = base_config();
  config.benefit_hi = config.benefit_lo - 1;
  EXPECT_THROW(WorkloadGenerator(config, util::RandomStream(1, "wl")),
               std::invalid_argument);
}

}  // namespace
}  // namespace scal::workload
