#include <gtest/gtest.h>

#include <cstdio>

#include "exec/thread_pool.hpp"
#include "rms/scenario.hpp"
#include "workload/source.hpp"
#include "workload/trace.hpp"

namespace scal::workload {
namespace {

grid::GridConfig small_grid() {
  grid::GridConfig config;
  config.topology.nodes = 60;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 2.0;
  config.seed = 11;
  return config;
}

void expect_identical(const grid::SimulationResult& a,
                      const grid::SimulationResult& b) {
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_succeeded, b.jobs_succeeded);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_DOUBLE_EQ(a.F, b.F);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
  EXPECT_DOUBLE_EQ(a.H(), b.H());
  EXPECT_DOUBLE_EQ(a.efficiency(), b.efficiency());
  EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
  EXPECT_DOUBLE_EQ(a.p95_response, b.p95_response);
}

// The save_trace / trace-source round trip must be lossless at the
// simulation level: a generated-then-saved workload replayed through
// the trace source yields the same run, event for event.
TEST(TraceRoundTrip, ReplayReproducesIdenticalRun) {
  grid::GridConfig config = small_grid();
  config.job_log = true;

  auto direct_system = Scenario(config).build();
  const WorkloadConfig wl = [&] {
    WorkloadConfig w = config.workload;
    w.clusters =
        static_cast<std::uint32_t>(direct_system->cluster_count());
    return w;
  }();
  const grid::SimulationResult direct = direct_system->run();

  // Save exactly the stream the run consumed (same spec, seed, horizon).
  const std::vector<Job> jobs =
      make_source(SourceSpec{}, wl, config.seed, config.horizon)
          ->generate_until(config.horizon);
  ASSERT_EQ(jobs.size(), direct.jobs_arrived);
  const std::string path =
      ::testing::TempDir() + "/scal_roundtrip_workload.csv";
  save_trace_file(jobs, path);

  grid::GridConfig replay_config = small_grid();
  replay_config.job_log = true;
  replay_config.workload_source = SourceSpec::parse("trace:" + path);
  auto replay_system = Scenario(replay_config).build();
  const grid::SimulationResult replay = replay_system->run();

  expect_identical(direct, replay);
  const auto& direct_log = direct_system->job_log().records();
  const auto& replay_log = replay_system->job_log().records();
  ASSERT_EQ(replay_log.size(), direct_log.size());
  for (std::size_t i = 0; i < direct_log.size(); ++i) {
    EXPECT_EQ(replay_log[i].job, direct_log[i].job);
    EXPECT_EQ(replay_log[i].event, direct_log[i].event);
    EXPECT_DOUBLE_EQ(replay_log[i].at, direct_log[i].at);
    EXPECT_EQ(replay_log[i].place, direct_log[i].place);
  }
  std::remove(path.c_str());
}

// Legacy GridConfig::trace_path and the trace source are the same code
// path; a file replayed through either must produce the same run.
TEST(TraceRoundTrip, TracePathAndTraceSourceAgree) {
  grid::GridConfig config = small_grid();
  auto probe = Scenario(config).build();
  WorkloadConfig wl = config.workload;
  wl.clusters = static_cast<std::uint32_t>(probe->cluster_count());
  const std::vector<Job> jobs =
      make_source(SourceSpec{}, wl, config.seed, config.horizon)
          ->generate_until(config.horizon);
  const std::string path = ::testing::TempDir() + "/scal_tracepath.csv";
  save_trace_file(jobs, path);

  grid::GridConfig via_legacy = small_grid();
  via_legacy.trace_path = path;
  grid::GridConfig via_source = small_grid();
  via_source.workload_source = SourceSpec::parse("trace:" + path);
  expect_identical(Scenario(via_legacy).run(), Scenario(via_source).run());
  std::remove(path.c_str());
}

// Modulated runs honor the determinism contract: bit-identical results
// whether the per-RMS sweep runs serial or on a worker pool.
TEST(ModulatedDeterminism, RunKindsSerialMatchesPool) {
  grid::GridConfig config = small_grid();
  config.workload_source.modulators = parse_modulators(
      "diurnal:amplitude=0.6,period=120;burst:every=60,width=10");
  const Scenario base{config};
  const std::vector<grid::RmsKind> kinds = {
      grid::RmsKind::kCentral, grid::RmsKind::kLowest,
      grid::RmsKind::kReserve, grid::RmsKind::kSymmetric};
  const auto serial = Scenario::run_kinds(base, kinds, nullptr);
  exec::ThreadPool pool(3);
  const auto pooled = Scenario::run_kinds(base, kinds, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], pooled[i]);
  }
}

// Same contract for an SWF replay: the parsed stream is a pure function
// of (file, mapping), so per-RMS sweeps are pool-invariant too.
TEST(ModulatedDeterminism, SwfRunsAreSeedStable) {
  // A small in-repo fixture keeps this hermetic.
  const std::string fixture =
      std::string(SCAL_SOURCE_DIR) + "/tests/data/sample_small.swf";
  grid::GridConfig config = small_grid();
  config.workload_source = SourceSpec::parse("swf:" + fixture + "@0.5");
  const Scenario base{config};
  const std::vector<grid::RmsKind> kinds = {grid::RmsKind::kCentral,
                                            grid::RmsKind::kLowest};
  const auto serial = Scenario::run_kinds(base, kinds, nullptr);
  exec::ThreadPool pool(2);
  const auto pooled = Scenario::run_kinds(base, kinds, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].jobs_arrived, 0u);
    expect_identical(serial[i], pooled[i]);
  }
}

}  // namespace
}  // namespace scal::workload
