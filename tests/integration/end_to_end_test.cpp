// End-to-end: run the paper's measurement procedure on real simulations
// at reduced scale and check the qualitative structure the framework is
// supposed to expose.

#include <gtest/gtest.h>

#include "core/procedure.hpp"
#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig small_base() {
  grid::GridConfig config;
  config.topology.nodes = 100;
  config.cluster_size = 20;
  config.horizon = 500.0;
  config.workload.mean_interarrival = 0.85;
  config.seed = 42;
  return config;
}

TEST(EndToEnd, FullProcedureProducesAnalyzableSweep) {
  core::ProcedureConfig procedure;
  procedure.scase = core::ScalingCase::case1_network_size();
  procedure.scale_factors = {1, 2};
  procedure.tuner.evaluations = 4;
  procedure.warm_evaluations = 3;
  procedure.tuner.e0 =
      rms::simulate(small_base()).efficiency();
  procedure.tuner.band = 0.08;

  const core::CaseResult result = core::measure_scalability(
      small_base(), grid::RmsKind::kLowest, procedure);
  const core::IsoefficiencyReport report = core::analyze(result);
  ASSERT_EQ(report.k.size(), 2u);
  EXPECT_GT(report.G[1], report.G[0]);  // more work at larger scale
  EXPECT_GT(report.f[1], 1.2);          // useful work grew with workload
}

TEST(EndToEnd, CentralPaysMoreThanDistributedPerDecisionAtScale) {
  // Case 1 mechanism check: CENTRAL's per-job overhead grows with the
  // pool it tracks; LOWEST's does not.
  auto run = [](grid::RmsKind kind, std::size_t nodes) {
    grid::GridConfig config = small_base();
    config.rms = kind;
    config.topology.nodes = nodes;
    config.workload.mean_interarrival =
        0.85 * 100.0 / static_cast<double>(nodes);
    const auto r = rms::simulate(config);
    return r.G_scheduler / static_cast<double>(r.jobs_arrived);
  };
  const double central_growth =
      run(grid::RmsKind::kCentral, 300) / run(grid::RmsKind::kCentral, 100);
  const double lowest_growth =
      run(grid::RmsKind::kLowest, 300) / run(grid::RmsKind::kLowest, 100);
  EXPECT_GT(central_growth, lowest_growth);
}

TEST(EndToEnd, EstimatorScalingHurtsAuctionMoreThanLowest) {
  // Case 3 mechanism check at small scale (the Figure 4 kink).
  auto run = [](grid::RmsKind kind, std::size_t estimators) {
    grid::GridConfig config = small_base();
    config.rms = kind;
    config.estimators_per_cluster = estimators;
    config.cluster_size = 19 + estimators;
    config.topology.nodes = 95 + 5 * estimators;
    config.workload.mean_interarrival = 3.0;
    return rms::simulate(config).G();
  };
  const double auction_growth = run(grid::RmsKind::kAuction, 4) /
                                run(grid::RmsKind::kAuction, 1);
  const double lowest_growth =
      run(grid::RmsKind::kLowest, 4) / run(grid::RmsKind::kLowest, 1);
  EXPECT_GT(auction_growth, lowest_growth);
}

TEST(EndToEnd, NeighborhoodScalingHurtsPollersMost) {
  // Case 4 mechanism check (the Figure 5 contrast): LOWEST's overhead
  // scales with L_p; R-I's volunteering barely depends on it.
  auto run = [](grid::RmsKind kind, std::uint32_t lp) {
    grid::GridConfig config = small_base();
    config.rms = kind;
    config.tuning.neighborhood_size = lp;
    return rms::simulate(config).G();
  };
  const double lowest_growth =
      run(grid::RmsKind::kLowest, 8) / run(grid::RmsKind::kLowest, 2);
  const double ri_growth = run(grid::RmsKind::kReceiverInitiated, 8) /
                           run(grid::RmsKind::kReceiverInitiated, 2);
  EXPECT_GT(lowest_growth, ri_growth);
}

TEST(EndToEnd, SaturatedCentralShowsWorkInSystemBlowup) {
  // Slam one central scheduler with a heavy arrival stream: the
  // work-in-system G must grow superlinearly versus a mild stream.
  auto run = [](double interarrival) {
    grid::GridConfig config = small_base();
    config.rms = grid::RmsKind::kCentral;
    config.topology.nodes = 200;
    config.workload.mean_interarrival = interarrival;
    // Expensive decisions to force saturation.
    config.costs.sched_decision_base = 0.4;
    return rms::simulate(config).G_scheduler;
  };
  const double mild = run(1.0);
  const double heavy = run(0.25);  // 4x the load
  EXPECT_GT(heavy, 6.0 * mild);
}

TEST(EndToEnd, ExampleQuickstartPathWorks) {
  // The quickstart example's exact flow: default config + one policy.
  grid::GridConfig config;
  config.rms = grid::RmsKind::kSymmetric;
  config.topology.nodes = 200;
  config.horizon = 500.0;
  config.workload.mean_interarrival = 4.0;
  const auto r = rms::simulate(config);
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_GT(r.efficiency(), 0.0);
}

}  // namespace
}  // namespace scal
