// Property-based sweeps: invariants that must hold for every policy,
// seed, topology kind, and load level.

#include <gtest/gtest.h>

#include <tuple>

#include "rms/factory.hpp"

namespace scal {
namespace {

using PropertyParam =
    std::tuple<grid::RmsKind, std::uint64_t /*seed*/, double /*interarrival*/>;

class SimulationProperties
    : public ::testing::TestWithParam<PropertyParam> {
 protected:
  grid::GridConfig make_config() const {
    const auto& [kind, seed, interarrival] = GetParam();
    grid::GridConfig config;
    config.rms = kind;
    config.topology.nodes = 100;
    config.horizon = 400.0;
    config.workload.mean_interarrival = interarrival;
    config.seed = seed;
    return config;
  }
};

TEST_P(SimulationProperties, Invariants) {
  const auto r = rms::simulate(make_config());

  // Job conservation.
  EXPECT_EQ(r.jobs_local + r.jobs_remote, r.jobs_arrived);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  EXPECT_EQ(r.jobs_succeeded + r.jobs_missed_deadline, r.jobs_completed);

  // Work terms non-negative; efficiency in (0, 1).
  EXPECT_GE(r.F, 0.0);
  EXPECT_GE(r.G_scheduler, 0.0);
  EXPECT_GE(r.G_estimator, 0.0);
  EXPECT_GE(r.G_middleware, 0.0);
  EXPECT_GE(r.H_control, 0.0);
  EXPECT_GE(r.H_wasted, 0.0);
  if (r.jobs_completed > 0) {
    EXPECT_GT(r.efficiency(), 0.0);
    EXPECT_LT(r.efficiency(), 1.0);
  }

  // F and wasted work are measured in resource service time, so their
  // sum is bounded by (number of resources) x horizon.
  const grid::GridConfig config = make_config();
  const double resources = static_cast<double>(
      config.cluster_count() *
      (config.cluster_size - 1 - config.estimators_per_cluster));
  EXPECT_LE(r.F + r.H_wasted, resources * r.horizon + 1e-9);

  // Response times are positive and p95 >= mean is not required, but
  // p95 must be >= the median-ish floor of 0.
  if (r.jobs_completed > 0) {
    EXPECT_GT(r.mean_response, 0.0);
    EXPECT_GE(r.p95_response, 0.0);
  }

  // Suppression never exceeds the number of reporting opportunities.
  EXPECT_GT(r.updates_received + r.updates_suppressed, 0u);

  // Throughput consistent with completions.
  EXPECT_NEAR(r.throughput * r.horizon,
              static_cast<double>(r.jobs_completed), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulationProperties,
    ::testing::Combine(::testing::ValuesIn(grid::kAllRmsKinds),
                       ::testing::Values(1u, 42u, 20250705u),
                       ::testing::Values(0.6, 1.2, 4.0)),
    [](const auto& info) {
      std::string name = grid::to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += "_seed" + std::to_string(std::get<1>(info.param));
      name += "_ia" + std::to_string(
                          static_cast<int>(std::get<2>(info.param) * 10));
      return name;
    });

class TopologyProperties
    : public ::testing::TestWithParam<net::TopologyKind> {};

TEST_P(TopologyProperties, AnyConnectedTopologyWorks) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.kind = GetParam();
  config.topology.nodes = 80;
  config.horizon = 300.0;
  config.workload.mean_interarrival = 2.0;
  const auto r = rms::simulate(config);
  EXPECT_GT(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TopologyProperties,
    ::testing::Values(net::TopologyKind::kPreferentialAttachment,
                      net::TopologyKind::kWaxman,
                      net::TopologyKind::kRingLattice,
                      net::TopologyKind::kStar,
                      net::TopologyKind::kTransitStub),
    [](const auto& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LoadMonotonicity, MoreLoadMoreArrivals) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 100;
  config.horizon = 400.0;
  std::uint64_t prev_arrived = 0;
  for (const double ia : {4.0, 2.0, 1.0, 0.5}) {
    config.workload.mean_interarrival = ia;
    const auto r = rms::simulate(config);
    EXPECT_GT(r.jobs_arrived, prev_arrived);
    prev_arrived = r.jobs_arrived;
  }
}

TEST(HorizonMonotonicity, LongerHorizonMoreWork) {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kSenderInitiated;
  config.topology.nodes = 100;
  config.workload.mean_interarrival = 1.0;
  config.horizon = 300.0;
  const auto short_run = rms::simulate(config);
  config.horizon = 600.0;
  const auto long_run = rms::simulate(config);
  EXPECT_GT(long_run.jobs_arrived, short_run.jobs_arrived);
  EXPECT_GT(long_run.F, short_run.F);
  EXPECT_GT(long_run.G(), short_run.G());
}

}  // namespace
}  // namespace scal
