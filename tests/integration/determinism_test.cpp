// Determinism: the whole experiment is a pure function of
// (configuration, seed).  These tests protect the property the
// measurement procedure's reproducibility rests on.

#include <gtest/gtest.h>

#include "core/procedure.hpp"
#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig config_for(grid::RmsKind kind, std::uint64_t seed) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 120;
  config.horizon = 500.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = seed;
  return config;
}

bool results_identical(const grid::SimulationResult& a,
                       const grid::SimulationResult& b) {
  return a.F == b.F && a.G_scheduler == b.G_scheduler &&
         a.G_estimator == b.G_estimator &&
         a.G_middleware == b.G_middleware && a.H_control == b.H_control &&
         a.H_wasted == b.H_wasted && a.jobs_arrived == b.jobs_arrived &&
         a.jobs_completed == b.jobs_completed &&
         a.jobs_succeeded == b.jobs_succeeded &&
         a.mean_response == b.mean_response &&
         a.network_messages == b.network_messages &&
         a.events_dispatched == b.events_dispatched &&
         a.polls == b.polls && a.transfers == b.transfers &&
         a.auctions == b.auctions && a.adverts == b.adverts;
}

class DeterminismTest : public ::testing::TestWithParam<grid::RmsKind> {};

TEST_P(DeterminismTest, BitIdenticalAcrossRuns) {
  const auto a = rms::simulate(config_for(GetParam(), 42));
  const auto b = rms::simulate(config_for(GetParam(), 42));
  EXPECT_TRUE(results_identical(a, b)) << grid::to_string(GetParam());
}

TEST_P(DeterminismTest, SeedChangesOutcome) {
  const auto a = rms::simulate(config_for(GetParam(), 1));
  const auto b = rms::simulate(config_for(GetParam(), 99));
  EXPECT_FALSE(results_identical(a, b)) << grid::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, DeterminismTest, ::testing::ValuesIn(grid::kAllRmsKinds),
    [](const auto& info) {
      std::string name = grid::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DeterminismTest2, ProcedureIsDeterministic) {
  core::ProcedureConfig procedure;
  procedure.scase = core::ScalingCase::case1_network_size();
  procedure.scale_factors = {1, 2};
  procedure.tuner.evaluations = 3;
  procedure.tuner.e0 = 0.85;
  procedure.tuner.band = 0.1;

  const auto run = [&] {
    return core::measure_scalability(config_for(grid::RmsKind::kLowest, 7),
                                     grid::RmsKind::kLowest, procedure);
  };
  const core::CaseResult a = run();
  const core::CaseResult b = run();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].sim.G(), b.points[i].sim.G());
    EXPECT_DOUBLE_EQ(a.points[i].tuning.update_interval,
                     b.points[i].tuning.update_interval);
  }
}

TEST(DeterminismTest2, TopologySeedIsolatedFromWorkloadSeed) {
  // Changing nothing but a named stream's consumer count must not
  // perturb other streams: two configs differing only in RMS kind see
  // the identical workload and topology.
  const auto a = rms::simulate(config_for(grid::RmsKind::kCentral, 5));
  const auto b = rms::simulate(config_for(grid::RmsKind::kLowest, 5));
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_local, b.jobs_local);
  EXPECT_EQ(a.jobs_remote, b.jobs_remote);
}

}  // namespace
}  // namespace scal
