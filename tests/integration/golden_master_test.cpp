// Golden-master regression canary: one pinned configuration per policy
// family, with the headline counters asserted exactly.  Any change to
// the event ordering, RNG stream usage, cost model, or protocol logic
// moves these numbers — which is the point: such changes must be
// deliberate, and updating the constants here is the acknowledgment.
//
// To refresh after an intentional change:
//   build/tests/integration_test --gtest_filter='GoldenMaster.Print*'
// prints the current values in copy-pastable form.

#include <gtest/gtest.h>

#include <iostream>

#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig golden_config(grid::RmsKind kind) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.cluster_size = 20;
  config.horizon = 500.0;
  config.workload.mean_interarrival = 1.0;
  config.seed = 20260705;
  return config;
}

struct Golden {
  grid::RmsKind kind;
  std::uint64_t arrived;
  std::uint64_t succeeded;
  std::uint64_t events;
};

// Pinned values for the current model (see header comment to refresh).
const Golden kGolden[] = {
    {grid::RmsKind::kCentral, 480, 387, 7419},
    {grid::RmsKind::kLowest, 480, 383, 9715},
    {grid::RmsKind::kSymmetric, 480, 381, 11682},
};
constexpr bool kGoldenRecorded = true;

TEST(GoldenMaster, PrintCurrentValues) {
  for (const grid::RmsKind kind :
       {grid::RmsKind::kCentral, grid::RmsKind::kLowest,
        grid::RmsKind::kSymmetric}) {
    const auto r = rms::simulate(golden_config(kind));
    std::cout << "    {grid::RmsKind::k?" << grid::to_string(kind) << ", "
              << r.jobs_arrived << ", " << r.jobs_succeeded << ", "
              << r.events_dispatched << "},\n";
  }
  SUCCEED();
}

TEST(GoldenMaster, PinnedCountersMatch) {
  if (!kGoldenRecorded) {
    GTEST_SKIP() << "golden values not recorded yet";
  }
  for (const Golden& g : kGolden) {
    const auto r = rms::simulate(golden_config(g.kind));
    EXPECT_EQ(r.jobs_arrived, g.arrived) << grid::to_string(g.kind);
    EXPECT_EQ(r.jobs_succeeded, g.succeeded) << grid::to_string(g.kind);
    EXPECT_EQ(r.events_dispatched, g.events) << grid::to_string(g.kind);
  }
}

}  // namespace
}  // namespace scal
