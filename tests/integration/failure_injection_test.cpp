// Failure injection: with a substantial fraction of control messages
// silently dropped, every policy must still conserve jobs, recover
// stranded negotiations through its watchdogs, and keep completing the
// bulk of the workload.  Job transfers are reliable by design.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig lossy_config(grid::RmsKind kind, double loss) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.horizon = 600.0;
  config.workload.mean_interarrival = 1.0;
  config.control_loss_probability = loss;
  config.seed = 77;
  return config;
}

class FailureInjectionTest
    : public ::testing::TestWithParam<grid::RmsKind> {};

TEST_P(FailureInjectionTest, SurvivesThirtyPercentControlLoss) {
  const auto r = rms::simulate(lossy_config(GetParam(), 0.30));
  // Messages really were dropped (policies without control traffic at
  // this load still lose status updates).
  EXPECT_GT(r.messages_dropped, 0u) << grid::to_string(GetParam());
  // Exact conservation: nothing stranded in pending maps forever.
  EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived);
  EXPECT_EQ(r.jobs_succeeded + r.jobs_missed_deadline, r.jobs_completed);
  // The grid still works: the large majority of jobs complete.
  EXPECT_GT(static_cast<double>(r.jobs_completed) /
                static_cast<double>(r.jobs_arrived),
            0.65);
}

TEST_P(FailureInjectionTest, DeterministicUnderLoss) {
  const auto a = rms::simulate(lossy_config(GetParam(), 0.2));
  const auto b = rms::simulate(lossy_config(GetParam(), 0.2));
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, FailureInjectionTest,
    ::testing::ValuesIn(grid::kAllRmsKinds), [](const auto& info) {
      std::string name = grid::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FailureInjection, LossZeroDropsNothing) {
  const auto r = rms::simulate(lossy_config(grid::RmsKind::kLowest, 0.0));
  EXPECT_EQ(r.messages_dropped, 0u);
}

TEST(FailureInjection, HigherLossDropsMore) {
  const auto low = rms::simulate(lossy_config(grid::RmsKind::kLowest, 0.1));
  const auto high = rms::simulate(lossy_config(grid::RmsKind::kLowest, 0.4));
  EXPECT_GT(high.messages_dropped, low.messages_dropped);
}

TEST(FailureInjection, LossDegradesButDoesNotBreakQuality) {
  const auto clean = rms::simulate(lossy_config(grid::RmsKind::kLowest, 0.0));
  const auto lossy = rms::simulate(lossy_config(grid::RmsKind::kLowest, 0.5));
  // Stale/missing information costs success, never correctness.
  EXPECT_LE(lossy.jobs_succeeded, clean.jobs_succeeded + 50);
  EXPECT_EQ(lossy.jobs_completed + lossy.jobs_unfinished,
            lossy.jobs_arrived);
}

TEST(FailureInjection, RejectsBadProbability) {
  grid::GridConfig config = lossy_config(grid::RmsKind::kLowest, 0.0);
  config.control_loss_probability = 1.0;
  EXPECT_THROW(rms::simulate(config), std::invalid_argument);
  config.control_loss_probability = -0.1;
  EXPECT_THROW(rms::simulate(config), std::invalid_argument);
}

}  // namespace
}  // namespace scal
