// Heterogeneous-resources extension: correctness and the expected
// qualitative effects (same total capacity in expectation, degraded
// placement quality as load views stop matching reality).

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig hetero_config(double h, grid::RmsKind kind =
                                             grid::RmsKind::kLowest) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 120;
  config.horizon = 700.0;
  config.workload.mean_interarrival = 0.85;
  config.heterogeneity = h;
  config.seed = 5;
  return config;
}

TEST(Heterogeneity, ZeroMatchesHomogeneousBaseline) {
  const auto a = rms::simulate(hetero_config(0.0));
  grid::GridConfig explicit_zero = hetero_config(0.0);
  explicit_zero.heterogeneity = 0.0;
  const auto b = rms::simulate(explicit_zero);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.F, b.F);
}

TEST(Heterogeneity, ConservationHoldsAcrossSpread) {
  for (const double h : {0.2, 0.5, 0.8}) {
    const auto r = rms::simulate(hetero_config(h));
    EXPECT_EQ(r.jobs_completed + r.jobs_unfinished, r.jobs_arrived) << h;
    EXPECT_EQ(r.jobs_succeeded + r.jobs_missed_deadline, r.jobs_completed)
        << h;
    EXPECT_GT(r.jobs_completed, 0u) << h;
  }
}

TEST(Heterogeneity, Deterministic) {
  const auto a = rms::simulate(hetero_config(0.6));
  const auto b = rms::simulate(hetero_config(0.6));
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_DOUBLE_EQ(a.G(), b.G());
}

TEST(Heterogeneity, SpreadChangesOutcome) {
  const auto homo = rms::simulate(hetero_config(0.0));
  const auto hetero = rms::simulate(hetero_config(0.6));
  EXPECT_NE(homo.events_dispatched, hetero.events_dispatched);
}

TEST(Heterogeneity, StrongSpreadCostsDeadlineSuccess) {
  // Count-based load views misjudge slow resources: success drops as
  // h grows (same expected capacity).  Allow slack for noise; direction
  // must hold between the extremes.
  const auto homo = rms::simulate(hetero_config(0.0));
  const auto hetero = rms::simulate(hetero_config(0.8));
  EXPECT_LT(hetero.jobs_succeeded, homo.jobs_succeeded);
}

TEST(Heterogeneity, RejectsOutOfRange) {
  grid::GridConfig config = hetero_config(0.0);
  config.heterogeneity = 0.95;
  EXPECT_THROW(rms::simulate(config), std::invalid_argument);
  config.heterogeneity = -0.1;
  EXPECT_THROW(rms::simulate(config), std::invalid_argument);
}

}  // namespace
}  // namespace scal
