// Analytic validation of the overhead accounting: with status updates
// disabled (report interval beyond the horizon) and load low enough
// that the scheduler servers never queue meaningfully, G_scheduler must
// equal the closed-form sum of the per-action costs times the observed
// action counts.  This pins the cost model to the measurement — if an
// action is double-charged or missed, these tests break.

#include <gtest/gtest.h>

#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig quiet_config(grid::RmsKind kind) {
  grid::GridConfig config;
  config.rms = kind;
  config.topology.nodes = 100;
  config.cluster_size = 20;
  config.horizon = 2000.0;
  config.workload.mean_interarrival = 4.0;  // low load: no queueing
  // Push the first status report past the horizon: no update traffic,
  // no idle events, tables stay at their optimistic zero state.
  config.tuning.update_interval = 1e9;
  config.seed = 3;
  return config;
}

TEST(AnalyticG, CentralIsPureDecisionCost) {
  const grid::GridConfig config = quiet_config(grid::RmsKind::kCentral);
  const auto r = rms::simulate(config);
  ASSERT_GT(r.jobs_arrived, 100u);
  EXPECT_EQ(r.updates_received, 0u);

  // Tracked resources: all clusters' tables.
  const double resources =
      static_cast<double>(config.cluster_count() *
                          (config.cluster_size - 1 -
                           config.estimators_per_cluster));
  const double per_decision =
      config.costs.sched_decision_base +
      config.costs.sched_decision_per_candidate * resources;
  const double expected =
      static_cast<double>(r.jobs_arrived) * per_decision;
  EXPECT_NEAR(r.G_scheduler, expected, 0.05 * expected);
}

TEST(AnalyticG, LowestIsDecisionsPollsTransfers) {
  const grid::GridConfig config = quiet_config(grid::RmsKind::kLowest);
  const auto r = rms::simulate(config);
  ASSERT_GT(r.polls, 0u);

  const double local_resources = static_cast<double>(
      config.cluster_size - 1 - config.estimators_per_cluster);
  const double per_decision =
      config.costs.sched_decision_base +
      config.costs.sched_decision_per_candidate * local_resources;
  // Each poll (request) costs: send + receive + reply-send +
  // reply-receive, all at sched_poll.
  const double poll_cost =
      static_cast<double>(r.polls) * 4.0 * config.costs.sched_poll;
  // Each transfer costs sched_transfer at sender and receiver.
  const double transfer_cost = static_cast<double>(r.transfers) * 2.0 *
                               config.costs.sched_transfer;
  // Work-in-system also contains the sender-side burst serialization:
  // a round's L_p send items queue behind one another, adding
  // sched_poll * (0 + 1 + ... + (L_p - 1)) of waiting per round.
  const double lp = static_cast<double>(config.tuning.neighborhood_size);
  const double rounds = static_cast<double>(r.polls) / lp;
  const double burst_wait =
      rounds * config.costs.sched_poll * lp * (lp - 1.0) / 2.0;
  const double expected =
      static_cast<double>(r.jobs_arrived) * per_decision + poll_cost +
      transfer_cost + burst_wait;
  EXPECT_NEAR(r.G_scheduler, expected, 0.05 * expected);
}

TEST(AnalyticG, PollCountMatchesRemoteJobsTimesLp) {
  const grid::GridConfig config = quiet_config(grid::RmsKind::kLowest);
  const auto r = rms::simulate(config);
  // With empty (zero) tables everywhere, every REMOTE job polls exactly
  // L_p peers (and the "strictly better" rule keeps jobs local after).
  EXPECT_EQ(r.polls,
            r.jobs_remote * config.tuning.neighborhood_size);
}

TEST(AnalyticG, MiddlewareChargesPerHopMessage) {
  const grid::GridConfig config =
      quiet_config(grid::RmsKind::kSenderInitiated);
  const auto r = rms::simulate(config);
  // Every poll, reply, and transfer of the S-I family crosses the
  // middleware once.  Work-in-system ~ busy time at this load.
  const double messages = static_cast<double>(2 * r.polls + r.transfers);
  const double expected = messages * config.costs.middleware_service;
  EXPECT_NEAR(r.G_middleware, expected, 0.10 * expected);
}

TEST(AnalyticG, ControlOverheadIsPerCompletionExact) {
  const grid::GridConfig config = quiet_config(grid::RmsKind::kLowest);
  const auto r = rms::simulate(config);
  const double expected = static_cast<double>(r.jobs_completed) *
                          config.costs.job_control /
                          config.service_rate;
  EXPECT_NEAR(r.H_control, expected, 1e-6 * expected);
}

}  // namespace
}  // namespace scal
