// System-level invariants of the scaling cases: apply_scale must
// produce grids whose *built* structure matches each case's contract.

#include <gtest/gtest.h>

#include "core/scaling.hpp"
#include "rms/factory.hpp"

namespace scal {
namespace {

grid::GridConfig base_config() {
  grid::GridConfig config;
  config.rms = grid::RmsKind::kLowest;
  config.topology.nodes = 120;
  config.cluster_size = 20;
  config.horizon = 200.0;
  config.workload.mean_interarrival = 2.0;
  return config;
}

TEST(ScalingSystem, Case1GrowsBuiltClustersAndResources) {
  const auto scase = core::ScalingCase::case1_network_size();
  auto base = rms::make_grid(core::apply_scale(base_config(), scase, 1.0));
  auto scaled = rms::make_grid(core::apply_scale(base_config(), scase, 3.0));
  EXPECT_EQ(scaled->cluster_count(), 3 * base->cluster_count());
  EXPECT_EQ(scaled->layout().total_resources(),
            3 * base->layout().total_resources());
}

TEST(ScalingSystem, Case3AddsEstimatorsKeepsResourcePoolIdentical) {
  const auto scase = core::ScalingCase::case3_estimators();
  auto base = rms::make_grid(core::apply_scale(base_config(), scase, 1.0));
  auto scaled = rms::make_grid(core::apply_scale(base_config(), scase, 4.0));
  // "Only the RMS is explicitly scaled... the RP is unaltered."
  EXPECT_EQ(scaled->layout().total_resources(),
            base->layout().total_resources());
  EXPECT_EQ(scaled->cluster_count(), base->cluster_count());
  EXPECT_EQ(scaled->layout().total_estimators(),
            4 * base->layout().total_estimators());
}

TEST(ScalingSystem, Case2OnlySpeedsUpService) {
  const auto scase = core::ScalingCase::case2_service_rate();
  const auto scaled_config = core::apply_scale(base_config(), scase, 5.0);
  auto base = rms::make_grid(base_config());
  auto scaled = rms::make_grid(scaled_config);
  EXPECT_EQ(scaled->cluster_count(), base->cluster_count());
  EXPECT_EQ(scaled->layout().total_resources(),
            base->layout().total_resources());
  // Mean service time scales down 5x.
  EXPECT_NEAR(scaled->mean_service_time(), base->mean_service_time() / 5.0,
              1e-9);
}

TEST(ScalingSystem, WorkloadScalesWithEveryCase) {
  for (const auto& scase :
       {core::ScalingCase::case1_network_size(),
        core::ScalingCase::case2_service_rate(),
        core::ScalingCase::case3_estimators(),
        core::ScalingCase::case4_neighborhood()}) {
    const auto r1 = rms::simulate(core::apply_scale(base_config(), scase, 1.0));
    const auto r3 = rms::simulate(core::apply_scale(base_config(), scase, 3.0));
    // Poisson noise aside, 3x the arrival rate.
    EXPECT_GT(r3.jobs_arrived, 2 * r1.jobs_arrived) << scase.name;
    EXPECT_LT(r3.jobs_arrived, 4 * r1.jobs_arrived) << scase.name;
  }
}

TEST(ScalingSystem, Case4ChangesOnlyPollFanout) {
  const auto scase = core::ScalingCase::case4_neighborhood();
  const auto c1 = core::apply_scale(base_config(), scase, 1.0);
  const auto c4 = core::apply_scale(base_config(), scase, 4.0);
  auto r1 = rms::simulate(c1);
  auto r4 = rms::simulate(c4);
  // Workload x4 and polls-per-REMOTE x4: polls grow ~16x.
  const double poll_growth = static_cast<double>(r4.polls) /
                             static_cast<double>(std::max<std::uint64_t>(
                                 1, r1.polls));
  EXPECT_GT(poll_growth, 8.0);
}

}  // namespace
}  // namespace scal
