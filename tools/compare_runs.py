#!/usr/bin/env python3
"""Diff two run manifests (counters, metrics, tuner block) with percent
deltas.

Usage:
    tools/compare_runs.py A.jsonl B.jsonl [--record N] [--threshold PCT]
    tools/compare_runs.py --self-test

A and B are JSONL manifest files as written by the benches' --manifest
flag (obs::RunManifest::append_jsonl); by default the LAST record of
each file is compared (--record selects another, 0-based).

Every numeric leaf shared by both records is printed with its absolute
and percent delta; non-numeric leaves are compared for equality.  The
two records must have the same structure (same nested keys): a key
present on one side only is a structural mismatch.

Exit status:
    0  structures match and no numeric delta exceeds --threshold
       (threshold default: infinity, i.e. deltas are informational)
    1  structures match but some delta exceeded --threshold
    2  structural mismatch, malformed input, or I/O failure
"""

import argparse
import json
import math
import sys


def load_record(path, index):
    try:
        with open(path) as f:
            lines = [line for line in f if line.strip()]
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not lines:
        print(f"error: {path} holds no records", file=sys.stderr)
        sys.exit(2)
    if index is None:
        index = len(lines) - 1
    if index < 0 or index >= len(lines):
        print(f"error: {path} has {len(lines)} record(s); "
              f"--record {index} is out of range", file=sys.stderr)
        sys.exit(2)
    try:
        return json.loads(lines[index])
    except ValueError as e:
        print(f"error: {path} record {index} is not JSON: {e}",
              file=sys.stderr)
        sys.exit(2)


def flatten(doc, prefix=""):
    """Flatten nested dicts to {dotted.path: leaf}; lists count as leaves."""
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, dict):
                out.update(flatten(value, path))
            else:
                out[path] = value
    return out


# Identity / environment / provenance fields: expected to differ between
# any two runs (jobs is the lane count a bench ran with — results are
# bit-identical at any value), so they are reported informally and never
# counted as mismatches.  The aggregation knobs are tuner *outputs*
# recorded for reproduction; any change to the enabler search moves
# them, so like provenance they are informational, while the measured
# F/G/H and ctrl counters they produced stay gated.
VOLATILE = {"started_at", "git", "wall_seconds", "peak_rss_bytes", "label",
            "jobs", "agg_fanout", "agg_batch", "agg_flush",
            # Arrival-cache provenance: depends on what else the process
            # ran before the record, not on the run itself ("cache_hits"
            # without the prefix is the tuner's — that one is real work).
            "from_cache", "arrival_cache_hits",
            "arrival_cache_evictions", "arrival_cache_store_skips",
            # Evaluation-reuse provenance (the manifest's "reuse" block):
            # tree shares and in-flight waits depend on thread scheduling
            # and on what else the process ran; disk hits depend on
            # whether a persistent cache file happened to exist.  The
            # results they produced stay gated.
            "tree_shares", "tree_publishes", "inflight_waits",
            "disk_hits", "disk_entries"}


def is_volatile(path):
    leaf = path.rsplit(".", 1)[-1]
    return leaf in VOLATILE or leaf.endswith("_ns")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare(a, b, threshold):
    """Returns (worst_exceeded, structural_ok); prints the table."""
    flat_a, flat_b = flatten(a), flatten(b)
    only_a = sorted(set(flat_a) - set(flat_b))
    only_b = sorted(set(flat_b) - set(flat_a))
    structural_ok = not only_a and not only_b
    for path in only_a:
        print(f"structure: {path} present only in A", file=sys.stderr)
    for path in only_b:
        print(f"structure: {path} present only in B", file=sys.stderr)

    exceeded = []
    print(f"{'field':44} {'A':>14} {'B':>14} {'delta%':>9}")
    for path in sorted(set(flat_a) & set(flat_b)):
        va, vb = flat_a[path], flat_b[path]
        if is_number(va) and is_number(vb):
            delta = vb - va
            pct = (delta / va * 100.0) if va != 0 else \
                (0.0 if vb == 0 else math.inf)
            note = ""
            if is_volatile(path):
                note = "  (volatile)"
            elif threshold is not None and abs(pct) > threshold:
                exceeded.append(path)
                note = "  EXCEEDS"
            print(f"{path:44} {va:14.6g} {vb:14.6g} {pct:9.2f}{note}")
        elif va != vb:
            if is_volatile(path):
                print(f"{path:44} differs (volatile): {va!r} vs {vb!r}")
            else:
                exceeded.append(path)
                print(f"{path:44} differs: {va!r} vs {vb!r}  EXCEEDS")
    return exceeded, structural_ok


def self_test():
    """Exercise the comparator on synthetic records; exits nonzero on bug."""
    base = {
        "label": "t", "wall_seconds": 1.0, "jobs": 1,
        "config": {"seed": 42, "nodes": 100},
        "result": {"F": 100.0, "G": 10.0},
        "counters": {"polls": 5},
        "metrics": {"histograms": {"job_wait": {"count": 10, "p50": 1.5}},
                    "phases": {"sim.run": {"calls": 1, "total_ns": 999}}},
        "tuner": {"evaluations": 18, "cache_hits": 3},
        "tuning": {"update_interval": 20.0, "agg_fanout": 2, "agg_flush": 6.0},
        "workload": {"source": "swf:x.swf@0.4", "jobs": 169, "span": 1300.0,
                     "from_cache": False, "arrival_cache_hits": 6},
        "reuse": {"tree_shares": 12, "tree_publishes": 3,
                  "inflight_waits": 2, "disk_hits": 0, "disk_entries": 0},
    }
    same = json.loads(json.dumps(base))
    same["wall_seconds"] = 2.0           # volatile: must not count
    same["jobs"] = 4                     # provenance: must not count
    same["metrics"]["phases"]["sim.run"]["total_ns"] = 123  # *_ns: volatile
    same["tuning"]["agg_fanout"] = 4     # tuner output: must not count
    same["tuning"]["agg_flush"] = 3.5    # tuner output: must not count
    same["workload"]["from_cache"] = True        # provenance: not counted
    same["workload"]["arrival_cache_hits"] = 99  # provenance: not counted
    same["reuse"]["tree_shares"] = 240           # scheduling: not counted
    same["reuse"]["tree_publishes"] = 9          # scheduling: not counted
    same["reuse"]["inflight_waits"] = 17         # scheduling: not counted
    same["reuse"]["disk_hits"] = 13              # warm-file: not counted
    same["reuse"]["disk_entries"] = 8            # warm-file: not counted
    exceeded, ok = compare(base, same, threshold=0.0)
    assert ok, "identical structures flagged as mismatch"
    assert not exceeded, f"volatile-only diffs flagged: {exceeded}"
    assert same["tuner"]["cache_hits"] == base["tuner"]["cache_hits"], \
        "self-test fixture drifted"

    cache_drift = json.loads(json.dumps(base))
    cache_drift["tuner"]["cache_hits"] = 9   # tuner hits ARE real work
    exceeded, ok = compare(base, cache_drift, threshold=0.0)
    assert ok and "tuner.cache_hits" in exceeded, \
        f"tuner cache-hit drift not caught: {exceeded}"

    drifted = json.loads(json.dumps(base))
    drifted["result"]["G"] = 12.0
    exceeded, ok = compare(base, drifted, threshold=5.0)
    assert ok and exceeded == ["result.G"], \
        f"20% drift not caught: {exceeded}"

    broken = json.loads(json.dumps(base))
    del broken["metrics"]
    _, ok = compare(base, broken, threshold=None)
    assert not ok, "missing metrics block not flagged as structural"
    print("self-test ok")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("manifests", nargs="*", metavar="MANIFEST")
    parser.add_argument("--record", type=int, default=None,
                        help="0-based record index (default: last)")
    parser.add_argument("--threshold", type=float, default=None, metavar="PCT",
                        help="fail (exit 1) when any non-volatile numeric "
                             "delta exceeds this percent")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in comparator checks and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return

    if len(args.manifests) != 2:
        parser.error("expected exactly two manifest files (or --self-test)")
    a = load_record(args.manifests[0], args.record)
    b = load_record(args.manifests[1], args.record)
    exceeded, structural_ok = compare(a, b, args.threshold)
    if not structural_ok:
        print("\nstructural mismatch", file=sys.stderr)
        sys.exit(2)
    if exceeded:
        print(f"\n{len(exceeded)} field(s) beyond threshold: "
              f"{', '.join(exceeded)}", file=sys.stderr)
        sys.exit(1)
    print("\nstructures match")


if __name__ == "__main__":
    main()
