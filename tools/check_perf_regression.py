#!/usr/bin/env python3
"""Compare two BENCH_*.json files from bench/perf_smoke and fail on regression.

Usage:
    tools/check_perf_regression.py CURRENT BASELINE [--threshold 0.25]
                                   [--no-normalize] [--require NAME]...

Checks, per benchmark shared by both files:
  * `items` (deterministic work counts: simulation events, queries) must
    match exactly -- a mismatch means behavior changed, not just speed,
    and is always an error.
  * `ns_per_item` must not exceed baseline * (1 + threshold).  By
    default both sides are first normalized by their own
    `calibration_spin` ns/item, which cancels machine-speed differences
    between the baseline's host and the current one (the committed
    baseline is rarely produced on the CI runner).  --no-normalize
    compares raw times.
  * Every --require NAME (repeatable) must be present in BOTH files, so
    a silently dropped benchmark cannot pass as "no shared regression".

Exit status: 0 when every shared benchmark passes, 1 on any regression
or count mismatch, 2 on malformed input.
"""

import argparse
import json
import sys

CALIBRATION = "calibration_spin"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
        return {r["name"]: r for r in doc["results"]}
    except (OSError, KeyError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw ns/item without calibration")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="benchmark that must exist in both files "
                             "(repeatable)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    missing = [n for n in args.require
               if n not in current or n not in baseline]
    if missing:
        print(f"error: required benchmark(s) missing: {', '.join(missing)}",
              file=sys.stderr)
        sys.exit(2)

    scale = 1.0
    if not args.no_normalize:
        cur_cal = current.get(CALIBRATION)
        base_cal = baseline.get(CALIBRATION)
        if cur_cal and base_cal and base_cal["ns_per_item"] > 0:
            # >1 means this machine is slower than the baseline's host;
            # dividing current times by it removes that handicap.
            scale = cur_cal["ns_per_item"] / base_cal["ns_per_item"]
            print(f"calibration ratio (current/baseline): {scale:.3f}")

    shared = [n for n in baseline if n in current and n != CALIBRATION]
    if not shared:
        print("error: no shared benchmarks between the two files",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    print(f"{'benchmark':24} {'base ns':>10} {'cur ns':>10} "
          f"{'ratio':>7}  verdict")
    for name in shared:
        base, cur = baseline[name], current[name]
        if base["items"] != cur["items"]:
            failures.append(name)
            print(f"{name:24} {'-':>10} {'-':>10} {'-':>7}  FAIL "
                  f"(items {cur['items']} != baseline {base['items']})")
            continue
        base_ns = base["ns_per_item"]
        cur_ns = cur["ns_per_item"] / scale
        ratio = cur_ns / base_ns if base_ns > 0 else 1.0
        ok = ratio <= 1.0 + args.threshold
        if not ok:
            failures.append(name)
        print(f"{name:24} {base_ns:10.1f} {cur_ns:10.1f} {ratio:7.2f}  "
              f"{'ok' if ok else 'FAIL'}")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(shared)} benchmarks within {args.threshold:.0%} "
          "of baseline")


if __name__ == "__main__":
    main()
