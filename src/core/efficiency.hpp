#pragma once
// The paper's performance model (Section 2): the F/G/H work terms of a
// managed distributed system and the efficiency
//     E(k) = F(k) / (F(k) + G(k) + H(k)),
// plus normalization against a base configuration:
//     f(k) = F(k)/F(k0),  g(k) = G(k)/G(k0),  h(k) = H(k)/H(k0).

#include "grid/metrics.hpp"

namespace scal::core {

/// The three work terms of one configuration.
struct WorkTerms {
  double F = 0.0;  ///< useful work delivered by the managee
  double G = 0.0;  ///< RMS (manager) overhead
  double H = 0.0;  ///< RP (managee) overhead

  double efficiency() const noexcept {
    const double total = F + G + H;
    return total > 0.0 ? F / total : 0.0;
  }
};

WorkTerms work_terms(const grid::SimulationResult& result);

/// Normalized terms of a scaled configuration relative to the base.
struct NormalizedTerms {
  double f = 1.0;
  double g = 1.0;
  double h = 1.0;
};

/// Throws if any base term is non-positive (normalization undefined).
NormalizedTerms normalize(const WorkTerms& base, const WorkTerms& scaled);

/// The constants of the isoefficiency identity (Equation 1):
///     f(k) = c * g(k) + c' * h(k)
/// with  c  = O_RMS / ((alpha - 1) W),  c' = O_RP / ((alpha - 1) W)
/// where alpha = 1/E(k0), W = F(k0), O_RMS = G(k0), O_RP = H(k0).
struct IsoefficiencyConstants {
  double alpha = 0.0;
  double c = 0.0;
  double c_prime = 0.0;
};

IsoefficiencyConstants isoefficiency_constants(const WorkTerms& base);

/// Equation (2): useful work must grow at least as fast as RMS overhead.
/// True when f(k) > c * g(k).
bool growth_condition_holds(const IsoefficiencyConstants& constants,
                            const NormalizedTerms& terms);

}  // namespace scal::core
