#include "core/report.hpp"

#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace scal::core {

std::string render_overhead_chart(const std::vector<CaseResult>& results,
                                  const std::string& title) {
  util::AsciiChart chart(title, "scale factor k", "G(k) [time units]");
  for (const CaseResult& r : results) {
    util::Series s;
    s.name = grid::to_string(r.rms);
    for (const ScalePoint& p : r.points) {
      s.x.push_back(p.k);
      s.y.push_back(p.sim.G());
    }
    chart.add_series(std::move(s));
  }
  return chart.render();
}

std::string render_measure_chart(
    const std::vector<CaseResult>& results, const std::string& title,
    const std::string& y_label,
    double (*measure)(const grid::SimulationResult&)) {
  util::AsciiChart chart(title, "scale factor k", y_label);
  for (const CaseResult& r : results) {
    util::Series s;
    s.name = grid::to_string(r.rms);
    for (const ScalePoint& p : r.points) {
      s.x.push_back(p.k);
      s.y.push_back(measure(p.sim));
    }
    chart.add_series(std::move(s));
  }
  return chart.render();
}

std::string render_case_table(const CaseResult& result) {
  const IsoefficiencyReport report = analyze(result);
  std::ostringstream os;
  os << grid::to_string(result.rms) << " — " << result.scase.name
     << "  (alpha=" << util::Table::fixed(report.constants.alpha, 3)
     << ", c=" << util::Table::fixed(report.constants.c, 4)
     << ", c'=" << util::Table::fixed(report.constants.c_prime, 4) << ")\n";
  util::Table table({"k", "G(k)", "g(k)", "dg/dk", "E(k)", "f(k)", "h(k)",
                     "f>c*g", "in band", "verdict"});
  for (std::size_t i = 0; i < report.k.size(); ++i) {
    table.add_row({
        util::Table::fixed(report.k[i], 0),
        util::Table::fixed(report.G[i], 1),
        util::Table::fixed(report.g[i], 3),
        i == 0 ? "-" : util::Table::fixed(report.g_slopes[i - 1], 3),
        util::Table::fixed(report.E[i], 3),
        util::Table::fixed(report.f[i], 3),
        util::Table::fixed(report.h[i], 3),
        report.growth_condition[i] ? "yes" : "NO",
        report.feasible[i] ? "yes" : "NO",
        i == 0 ? "-" : to_string(report.verdicts[i - 1]),
    });
  }
  os << table.to_string();
  return os.str();
}

std::string render_summary_table(const std::vector<CaseResult>& results) {
  util::Table table({"RMS", "overall dg/dk", "scalable through k",
                     "band held", "G(1)", "G(kmax)"});
  for (const CaseResult& r : results) {
    const IsoefficiencyReport report = analyze(r);
    std::size_t held = 0;
    for (const bool f : report.feasible) held += f ? 1 : 0;
    std::ostringstream band;
    band << held << '/' << report.feasible.size();
    table.add_row({
        grid::to_string(r.rms),
        util::Table::fixed(report.overall_slope, 3),
        util::Table::fixed(report.scalable_through, 0),
        band.str(),
        util::Table::fixed(report.G.front(), 1),
        util::Table::fixed(report.G.back(), 1),
    });
  }
  return table.to_string();
}

void write_case_csv(const std::vector<CaseResult>& results,
                    const std::string& path) {
  util::CsvWriter csv(
      path, {"rms", "k", "G", "g", "f", "h", "E", "feasible", "throughput",
             "mean_response", "p95_response", "update_interval",
             "neighborhood", "link_delay_scale", "volunteer_interval"});
  for (const CaseResult& r : results) {
    const IsoefficiencyReport report = analyze(r);
    for (std::size_t i = 0; i < r.points.size(); ++i) {
      const ScalePoint& p = r.points[i];
      csv.add_row(std::vector<std::string>{
          grid::to_string(r.rms),
          util::Table::num(p.k, 6),
          util::Table::num(p.sim.G(), 10),
          util::Table::num(report.g[i], 10),
          util::Table::num(report.f[i], 10),
          util::Table::num(report.h[i], 10),
          util::Table::num(report.E[i], 10),
          p.feasible ? "1" : "0",
          util::Table::num(p.sim.throughput, 10),
          util::Table::num(p.sim.mean_response, 10),
          util::Table::num(p.sim.p95_response, 10),
          util::Table::num(p.tuning.update_interval, 10),
          util::Table::num(p.tuning.neighborhood_size, 10),
          util::Table::num(p.tuning.link_delay_scale, 10),
          util::Table::num(p.tuning.volunteer_interval, 10),
      });
    }
  }
}

}  // namespace scal::core
