#pragma once
// The classic isoefficiency *function* (Grama-Gupta-Kumar, the paper's
// reference [1]), measured rather than derived: for each resource-pool
// size, find the workload intensity at which the managed system's
// efficiency equals E0.  A slowly growing W(k) means the system scales
// gracefully; a super-linear W(k) means ever more work is needed to
// keep the machinery busy usefully — the same judgment the paper's
// G(k)-slope metric makes, from the workload side.

#include <vector>

#include "core/tuner.hpp"

namespace scal::core {

struct IsoefficiencyFunctionConfig {
  /// Pool growth factors (network size, Case 1 style, enablers fixed).
  std::vector<double> scale_factors = {1, 2, 3, 4};
  double e0 = 0.85;
  double tolerance = 0.01;        ///< |E - e0| acceptance
  /// Workload multiplier search bracket (relative to the base arrival
  /// rate scaled by k, i.e. 1.0 = the paper's proportional scaling).
  double multiplier_lo = 0.25;
  double multiplier_hi = 4.0;
  std::size_t max_bisection_steps = 12;
};

struct IsoefficiencyPoint {
  double k = 1.0;
  /// Workload multiplier (on top of proportional-in-k scaling) at which
  /// E = e0; 0 when the bracket does not contain e0.
  double workload_multiplier = 0.0;
  double achieved_efficiency = 0.0;
  bool converged = false;
  grid::SimulationResult sim;
};

struct IsoefficiencyFunction {
  std::vector<IsoefficiencyPoint> points;
  /// Fitted log-log slope of the *total* workload W(k) = k x multiplier
  /// against k; 1.0 = linear isoefficiency (ideal), > 1 = super-linear.
  double loglog_slope = 0.0;
};

/// Measure the isoefficiency function of `base` under its configured
/// RMS.  Efficiency is monotone in load on this substrate (more load =
/// more deadline misses = lower E), which the bisection relies on.
IsoefficiencyFunction measure_isoefficiency_function(
    const grid::GridConfig& base, const IsoefficiencyFunctionConfig& config,
    const SimRunner& runner = default_runner());

}  // namespace scal::core
