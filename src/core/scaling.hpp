#pragma once
// Scaling strategies: the x(k) scaling variables and y(k) scaling
// enablers of the paper's four experimental cases (Tables 2-5).
//
//   Case 1  scale the RP by network size (RMS grows proportionately)
//   Case 2  scale the RP by resource service rate
//   Case 3  scale the RMS by number of status estimators
//   Case 4  scale the RMS by L_p (neighbors probed/polled)
//
// In every case the workload (job arrival rate) scales in the same
// proportion as the scaling variable, as the paper prescribes.

#include <string>
#include <vector>

#include "grid/config.hpp"
#include "opt/space.hpp"

namespace scal::core {

enum class ScalingVariableKind {
  kNetworkSize,   // Case 1
  kServiceRate,   // Case 2
  kEstimators,    // Case 3
  kNeighborhood,  // Case 4 (L_p)
};

std::string to_string(ScalingVariableKind kind);

/// Which enablers the tuner may adjust, with their bounds.
struct EnablerBounds {
  bool tune_update_interval = true;
  double update_interval_lo = 1.0;
  double update_interval_hi = 150.0;

  bool tune_neighborhood = true;
  std::uint32_t neighborhood_lo = 1;
  std::uint32_t neighborhood_hi = 8;

  bool tune_link_delay = true;
  double link_delay_lo = 0.25;  // faster control links are purchasable
  double link_delay_hi = 1.6;

  bool tune_volunteer_interval = false;
  double volunteer_interval_lo = 10.0;
  double volunteer_interval_hi = 300.0;

  // Control-plane aggregation knobs (docs/CONTROL_PLANE.md).  Off by
  // default: they only make sense when GridConfig::control_plane is set,
  // and the paper's own Tables 2-5 do not include them.  Turn them on
  // (e.g. via with_aggregation()) and the tuner searches fan-out, batch
  // size, and flush interval per (RMS kind, k) alongside the paper's
  // enablers.
  bool tune_agg_fanout = false;
  std::uint32_t agg_fanout_lo = 1;
  std::uint32_t agg_fanout_hi = 8;

  bool tune_agg_batch = false;
  std::uint32_t agg_batch_lo = 1;
  std::uint32_t agg_batch_hi = 32;

  bool tune_agg_flush = false;
  double agg_flush_lo = 0.0;  // 0 = forward immediately (linear, not log)
  double agg_flush_hi = 12.0;
};

struct ScalingCase {
  std::string name;
  ScalingVariableKind variable = ScalingVariableKind::kNetworkSize;
  EnablerBounds enablers;

  /// The paper's four cases, with the enabler sets of Tables 2-5
  /// (Cases 1-3: update interval, neighborhood size, link delay;
  ///  Case 4: update interval, volunteering interval, link delay).
  static ScalingCase case1_network_size();
  static ScalingCase case2_service_rate();
  static ScalingCase case3_estimators();
  static ScalingCase case4_neighborhood();

  /// This case with the aggregation-tree enablers switched on (the
  /// ext_aggregation experiment; requires GridConfig::control_plane).
  ScalingCase with_aggregation() const;

  /// Human-readable scaling-variable and enabler lists (Tables 2-5 rows).
  std::vector<std::string> scaling_variable_rows() const;
  std::vector<std::string> enabler_rows() const;
};

/// Apply scale factor `k >= 1` to a base configuration.  Scales the
/// designated scaling variable and the workload arrival rate; leaves the
/// enablers at their current values (the tuner adjusts those).
grid::GridConfig apply_scale(const grid::GridConfig& base,
                             const ScalingCase& scase, double k);

/// The optimizer search space for this case's enablers.
opt::Space enabler_space(const ScalingCase& scase);

/// Convert between optimizer points and grid tunings.  `point` layout
/// follows enabler_space()'s variable order.
grid::Tuning tuning_from_point(const ScalingCase& scase,
                               const grid::Tuning& base,
                               const opt::Point& point);
opt::Point point_from_tuning(const ScalingCase& scase,
                             const grid::Tuning& tuning);

}  // namespace scal::core
