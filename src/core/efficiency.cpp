#include "core/efficiency.hpp"

#include <stdexcept>

namespace scal::core {

WorkTerms work_terms(const grid::SimulationResult& result) {
  WorkTerms w;
  w.F = result.F;
  w.G = result.G();
  w.H = result.H();
  return w;
}

NormalizedTerms normalize(const WorkTerms& base, const WorkTerms& scaled) {
  if (!(base.F > 0.0) || !(base.G > 0.0) || !(base.H > 0.0)) {
    throw std::invalid_argument(
        "normalize: base terms must all be positive");
  }
  NormalizedTerms n;
  n.f = scaled.F / base.F;
  n.g = scaled.G / base.G;
  n.h = scaled.H / base.H;
  return n;
}

IsoefficiencyConstants isoefficiency_constants(const WorkTerms& base) {
  const double e0 = base.efficiency();
  if (!(e0 > 0.0) || !(e0 < 1.0)) {
    throw std::invalid_argument(
        "isoefficiency_constants: need 0 < E(k0) < 1");
  }
  IsoefficiencyConstants k;
  k.alpha = 1.0 / e0;
  const double denom = (k.alpha - 1.0) * base.F;
  k.c = base.G / denom;
  k.c_prime = base.H / denom;
  return k;
}

bool growth_condition_holds(const IsoefficiencyConstants& constants,
                            const NormalizedTerms& terms) {
  return terms.f > constants.c * terms.g;
}

}  // namespace scal::core
