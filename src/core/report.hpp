#pragma once
// Rendering of scalability sweeps: the per-RMS G(k)/slope tables and the
// multi-series charts that mirror the paper's figures, plus CSV export.

#include <string>
#include <vector>

#include "core/isoefficiency.hpp"

namespace scal::core {

/// Figure-style chart: one series of raw G(k) per RMS.
std::string render_overhead_chart(const std::vector<CaseResult>& results,
                                  const std::string& title);

/// Same, but for an arbitrary per-point measure (Figures 6 and 7).
std::string render_measure_chart(
    const std::vector<CaseResult>& results, const std::string& title,
    const std::string& y_label,
    double (*measure)(const grid::SimulationResult&));

/// Per-RMS table: k, G, g, slope, E, f, h, condition, verdict.
std::string render_case_table(const CaseResult& result);

/// Cross-RMS summary: overall slope, scalable-through, band feasibility.
std::string render_summary_table(const std::vector<CaseResult>& results);

/// Write the sweep as CSV (one row per (rms, k)).
void write_case_csv(const std::vector<CaseResult>& results,
                    const std::string& path);

}  // namespace scal::core
