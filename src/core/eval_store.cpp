#include "core/eval_store.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/manifest.hpp"

namespace scal::core {

namespace {

constexpr char kMagic[4] = {'S', 'E', 'V', 'C'};
constexpr std::uint32_t kEndianProbe = 0x01020304u;
constexpr std::uint32_t kFormatVersion = 1;
// Bump whenever the serialized SimulationResult field set changes; the
// static_assert below trips on silent struct growth so the bump cannot
// be forgotten.
constexpr std::uint32_t kValueSchema = 1;
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(grid::SimulationResult) == 496,
              "SimulationResult layout changed: extend write_value/"
              "read_value and bump kValueSchema");
#endif

// A single field walk shared by the writer and the reader keeps the two
// in lockstep by construction: each Codec maps f64/u64/b8/u32e onto
// stream writes or stream reads.

struct Writer {
  std::ostream& out;
  void raw64(std::uint64_t bits) {
    char buf[8];
    std::memcpy(buf, &bits, sizeof(buf));
    out.write(buf, sizeof(buf));
  }
  void raw32(std::uint32_t bits) {
    char buf[4];
    std::memcpy(buf, &bits, sizeof(buf));
    out.write(buf, sizeof(buf));
  }
  void f64(const double& v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    raw64(bits);
  }
  void u64(const std::uint64_t& v) { raw64(v); }
  void usize(const std::size_t& v) { raw64(static_cast<std::uint64_t>(v)); }
  void b8(const bool& v) { out.put(v ? '\1' : '\0'); }
  void u32e(const grid::ResultMode& v) {
    raw32(static_cast<std::uint32_t>(v));
  }
  bool ok() const { return static_cast<bool>(out); }
};

struct Reader {
  std::istream& in;
  bool good = true;
  std::uint64_t raw64() {
    char buf[8];
    in.read(buf, sizeof(buf));
    if (!in) {
      good = false;
      return 0;
    }
    std::uint64_t bits = 0;
    std::memcpy(&bits, buf, sizeof(bits));
    return bits;
  }
  std::uint32_t raw32() {
    char buf[4];
    in.read(buf, sizeof(buf));
    if (!in) {
      good = false;
      return 0;
    }
    std::uint32_t bits = 0;
    std::memcpy(&bits, buf, sizeof(bits));
    return bits;
  }
  void f64(double& v) {
    const std::uint64_t bits = raw64();
    std::memcpy(&v, &bits, sizeof(v));
  }
  void u64(std::uint64_t& v) { v = raw64(); }
  void usize(std::size_t& v) { v = static_cast<std::size_t>(raw64()); }
  void b8(bool& v) {
    const int c = in.get();
    if (c == std::istream::traits_type::eof()) {
      good = false;
      v = false;
      return;
    }
    v = c != 0;
  }
  void u32e(grid::ResultMode& v) {
    v = static_cast<grid::ResultMode>(raw32());
  }
  bool ok() const { return good && static_cast<bool>(in); }
};

/// Every SimulationResult field except the non-owning telemetry pointer
/// (meaningless across processes; deserialized values leave it null).
template <typename Codec, typename Result>
void visit_value(Codec& c, Result& r) {
  c.f64(r.F);
  c.f64(r.G_scheduler);
  c.f64(r.G_estimator);
  c.f64(r.G_middleware);
  c.f64(r.G_aggregator);
  c.f64(r.H_control);
  c.f64(r.H_wasted);
  c.f64(r.G_scheduler_max_share);
  c.f64(r.G_scheduler_max);
  c.f64(r.throughput);
  c.f64(r.mean_response);
  c.f64(r.p95_response);
  c.u64(r.jobs_arrived);
  c.u64(r.jobs_local);
  c.u64(r.jobs_remote);
  c.u64(r.jobs_completed);
  c.u64(r.jobs_succeeded);
  c.u64(r.jobs_missed_deadline);
  c.u64(r.jobs_unfinished);
  c.u64(r.polls);
  c.u64(r.transfers);
  c.u64(r.auctions);
  c.u64(r.adverts);
  c.u64(r.updates_received);
  c.u64(r.updates_suppressed);
  c.u64(r.network_messages);
  c.u64(r.messages_dropped);
  c.u64(r.events_dispatched);
  c.f64(r.horizon);
  c.u64(r.ctrl_updates_in);
  c.u64(r.ctrl_updates_coalesced);
  c.u64(r.ctrl_batches);
  c.u64(r.ctrl_tree_depth);
  c.u64(r.resource_crashes);
  c.u64(r.resource_recoveries);
  c.u64(r.jobs_killed);
  c.u64(r.jobs_requeued);
  c.u64(r.jobs_lost);
  c.u64(r.round_retries);
  c.u64(r.status_evictions);
  c.u64(r.blackout_drops);
  c.u64(r.aggregator_blackouts);
  c.u64(r.messages_delayed);
  c.u64(r.messages_duplicated);
  c.f64(r.resource_downtime);
  c.f64(r.availability);
  c.usize(r.workload_stats.jobs);
  c.usize(r.workload_stats.local_jobs);
  c.usize(r.workload_stats.remote_jobs);
  c.f64(r.workload_stats.mean_interarrival);
  c.f64(r.workload_stats.mean_exec_time);
  c.f64(r.workload_stats.max_exec_time);
  c.f64(r.workload_stats.total_demand);
  c.f64(r.workload_stats.span);
  c.b8(r.workload_from_cache);
  c.u32e(r.result_mode);
  c.u64(r.job_log_records);
  c.u64(r.job_log_dropped);
  c.u64(r.arena_high_water);
  c.u64(r.arena_reuses);
  c.u64(r.arrival_cache_evictions);
  c.u64(r.arrival_cache_store_skips);
}

bool key_less(const opt::EvalKey& a, const opt::EvalKey& b) {
  if (a.digest != b.digest) return a.digest < b.digest;
  return a.point < b.point;
}

}  // namespace

std::string eval_cache_code_version() { return obs::git_describe(); }

std::size_t save_eval_cache(const EvalCache& cache, const std::string& path,
                            const std::string& code_version) {
  std::vector<std::pair<opt::EvalKey, grid::SimulationResult>> entries =
      cache.snapshot();
  // Deterministic file bytes: hash-map iteration order never leaks.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return key_less(a.first, b.first); });

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("eval_store: cannot write " + path);
  }
  Writer w{out};
  out.write(kMagic, sizeof(kMagic));
  w.raw32(kEndianProbe);
  w.raw32(kFormatVersion);
  w.raw32(kValueSchema);
  w.raw32(static_cast<std::uint32_t>(code_version.size()));
  out.write(code_version.data(),
            static_cast<std::streamsize>(code_version.size()));
  w.raw64(entries.size());
  for (auto& [key, value] : entries) {
    w.raw64(key.digest[0]);
    w.raw64(key.digest[1]);
    w.raw32(static_cast<std::uint32_t>(key.point.size()));
    for (const double coordinate : key.point) w.f64(coordinate);
    // The pointer field is process-local; the walk below skips it and
    // loaders leave it null.
    visit_value(w, value);
  }
  out.flush();
  if (!w.ok()) {
    throw std::runtime_error("eval_store: short write to " + path);
  }
  return entries.size();
}

std::size_t save_eval_cache(const EvalCache& cache, const std::string& path) {
  return save_eval_cache(cache, path, eval_cache_code_version());
}

EvalStoreStats load_eval_cache(EvalCache& cache, const std::string& path,
                               const std::string& code_version) {
  EvalStoreStats stats;
  std::ifstream in(path, std::ios::binary);
  if (!in) return stats;  // cold: no file yet
  stats.found = true;

  Reader r{in};
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      r.raw32() != kEndianProbe || r.raw32() != kFormatVersion ||
      r.raw32() != kValueSchema) {
    stats.version_mismatch = true;
    return stats;
  }
  const std::uint32_t version_len = r.raw32();
  if (!r.ok() || version_len > 4096) {
    stats.version_mismatch = true;
    return stats;
  }
  std::string file_version(version_len, '\0');
  in.read(file_version.data(), static_cast<std::streamsize>(version_len));
  if (!in || file_version != code_version) {
    stats.version_mismatch = true;
    return stats;
  }
  const std::uint64_t count = r.raw64();
  if (!r.ok()) {
    stats.version_mismatch = true;
    return stats;
  }
  stats.entries_in_file = static_cast<std::size_t>(count);

  // Parse fully before touching the cache: a truncated file is
  // discarded whole rather than half-preloaded.
  std::vector<std::pair<opt::EvalKey, grid::SimulationResult>> parsed;
  parsed.reserve(stats.entries_in_file);
  for (std::uint64_t i = 0; i < count; ++i) {
    opt::EvalKey key;
    key.digest[0] = r.raw64();
    key.digest[1] = r.raw64();
    const std::uint32_t dims = r.raw32();
    if (!r.ok() || dims > 1024) {
      stats.version_mismatch = true;
      return stats;
    }
    key.point.resize(dims);
    for (double& coordinate : key.point) r.f64(coordinate);
    grid::SimulationResult value;
    visit_value(r, value);
    if (!r.ok()) {
      stats.version_mismatch = true;
      return stats;
    }
    parsed.emplace_back(std::move(key), std::move(value));
  }

  for (auto& [key, value] : parsed) {
    cache.preload(key, value);
    ++stats.loaded;
  }
  return stats;
}

EvalStoreStats load_eval_cache(EvalCache& cache, const std::string& path) {
  return load_eval_cache(cache, path, eval_cache_code_version());
}

}  // namespace scal::core
