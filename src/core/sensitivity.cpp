#include "core/sensitivity.hpp"

#include <stdexcept>

#include "exec/thread_pool.hpp"

namespace scal::core {

ReplicationStats replicate(const grid::GridConfig& config,
                           const std::vector<std::uint64_t>& seeds,
                           const SimRunner& runner, exec::ThreadPool* pool) {
  if (seeds.empty()) {
    throw std::invalid_argument("replicate: no seeds");
  }
  if (pool != nullptr && pool->size() > 0 && config.telemetry != nullptr) {
    // A shared telemetry handle cannot record concurrent runs; attach
    // telemetry to single runs, not to parallel replication.
    throw std::invalid_argument("replicate: telemetry with a pool");
  }
  ReplicationStats stats;
  stats.seeds = seeds;

  // Each seed's simulation is independent; results land in their own
  // slots and the accumulators are filled in seed order afterwards, so
  // the spread statistics do not depend on the job count.
  std::vector<grid::SimulationResult> results(seeds.size());
  exec::parallel_for(pool, seeds.size(), [&](std::size_t i) {
    grid::GridConfig c = config;
    c.seed = seeds[i];
    results[i] = runner(c);
  });

  for (const grid::SimulationResult& r : results) {
    stats.G.add(r.G());
    stats.F.add(r.F);
    stats.H.add(r.H());
    stats.efficiency.add(r.efficiency());
    stats.throughput.add(r.throughput);
    stats.mean_response.add(r.mean_response);
  }
  return stats;
}

ReplicationStats replicate(const grid::GridConfig& config,
                           std::size_t replications, std::uint64_t base_seed,
                           const SimRunner& runner, exec::ThreadPool* pool) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    seeds.push_back(base_seed + i);
  }
  return replicate(config, seeds, runner, pool);
}

}  // namespace scal::core
