#include "core/sensitivity.hpp"

#include <stdexcept>

namespace scal::core {

ReplicationStats replicate(const grid::GridConfig& config,
                           const std::vector<std::uint64_t>& seeds,
                           const SimRunner& runner) {
  if (seeds.empty()) {
    throw std::invalid_argument("replicate: no seeds");
  }
  ReplicationStats stats;
  stats.seeds = seeds;
  for (const std::uint64_t seed : seeds) {
    grid::GridConfig c = config;
    c.seed = seed;
    const grid::SimulationResult r = runner(c);
    stats.G.add(r.G());
    stats.F.add(r.F);
    stats.H.add(r.H());
    stats.efficiency.add(r.efficiency());
    stats.throughput.add(r.throughput);
    stats.mean_response.add(r.mean_response);
  }
  return stats;
}

ReplicationStats replicate(const grid::GridConfig& config,
                           std::size_t replications, std::uint64_t base_seed,
                           const SimRunner& runner) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(replications);
  for (std::size_t i = 0; i < replications; ++i) {
    seeds.push_back(base_seed + i);
  }
  return replicate(config, seeds, runner);
}

}  // namespace scal::core
