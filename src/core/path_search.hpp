#pragma once
// Step 2 of the measurement procedure, fully: *determine the best
// scaling path* for the RP.  The paper's flowchart searches the space
// of scaling-variable combinations ("a simulated annealing type of
// search can be used for this search; if a scalable RP cannot be
// found, then the base system is considered unscalable").
//
// The RP has two growth dimensions — network size (Case 1) and service
// rate (Case 2).  A path assigns each scale factor k a split
// r(k) ∈ [0, 1]: the pool grows by k^r in node count and k^(1-r) in
// per-resource speed (total capacity always grows by k, and the
// workload grows by k with it).  For each k the split is optimized so
// the tuned RMS overhead G(k) is minimal while the efficiency band
// holds; the best-path G(k) is the fairest scalability statement for
// an RMS, since it is not pinned to one arbitrary growth direction.

#include <vector>

#include "core/isoefficiency.hpp"
#include "core/tuner.hpp"

namespace scal::core {

struct PathSearchConfig {
  std::vector<double> scale_factors = {1, 2, 3, 4};
  /// Candidate splits r evaluated per scale factor (r = 1 is pure
  /// Case 1 growth, r = 0 pure Case 2).
  std::vector<double> splits = {0.0, 0.5, 1.0};
  TunerConfig tuner;
  /// Enabler bounds used at every point (Case 1's set).
  ScalingCase enabler_case = ScalingCase::case1_network_size();
};

struct PathPoint {
  double k = 1.0;
  double split = 1.0;        ///< chosen r
  TuneOutcome outcome;       ///< tuned result at the chosen split
  bool any_feasible = false; ///< some split reached the efficiency band
};

struct PathResult {
  std::vector<PathPoint> points;
  /// Paper semantics: if no split is band-feasible at some k, a
  /// scalable RP configuration does not exist there and the base
  /// system is unscalable beyond the previous k.
  bool rp_scalable = true;
  double scalable_through = 1.0;

  /// The chosen-path sweep as a CaseResult, reusing the isoefficiency
  /// analyzer and report rendering.
  CaseResult as_case_result(grid::RmsKind rms) const;
};

/// Grow `base` by the mixed split: nodes x k^r, service rate x k^(1-r),
/// workload arrival rate x k.
grid::GridConfig apply_mixed_scale(const grid::GridConfig& base, double k,
                                   double split);

/// Search the best scaling path for `rms` over the configured splits,
/// tuning the enablers at every (k, r) candidate.  The default (empty)
/// runner uses the reusable-session backend with one evaluation cache
/// and session pool across all (k, r) tunes — at k = 1 every split
/// yields the same configuration, so two of the three tunes there are
/// answered entirely from the cache.
PathResult search_scaling_path(const grid::GridConfig& base,
                               grid::RmsKind rms,
                               const PathSearchConfig& config,
                               const SimRunner& runner = {});

}  // namespace scal::core
