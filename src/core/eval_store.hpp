#pragma once
// Persistent EvalCache: a versioned binary serializer for the tuner's
// memoized (EvalKey -> grid::SimulationResult) entries, so a re-run of
// ablation_tuner / ext_path_search over the same configuration space is
// warm from disk.  Values round-trip bit-exactly (doubles are stored as
// raw IEEE-754 bit patterns), so a warm run's objectives are
// byte-identical to the cold run that wrote the file.
//
// Invalidation is two-layered:
//   - whole-file: the header carries a format version, a value-schema
//     stamp, and the writer's code version (git describe).  Any
//     mismatch — including a corrupt or truncated file — discards the
//     file entirely; a simulator change could shift every value.
//   - per-key: entries keep their grid::config_digest, so entries from
//     configurations a run never asks about are inert (preloaded but
//     never hit), never wrong.
// To wipe a stale cache, delete the file; the next run rewrites it.
//
// Files are deterministic: entries are sorted by (digest, point) before
// writing, so saving the same cache contents twice produces identical
// bytes regardless of hash-map iteration order.

#include <cstddef>
#include <string>

#include "core/tuner.hpp"

namespace scal::core {

/// The code-version stamp save/load compare: `git describe` of the
/// binary's source (obs::git_describe()), "unknown" outside a checkout.
std::string eval_cache_code_version();

struct EvalStoreStats {
  std::size_t loaded = 0;           ///< entries preloaded into the cache
  std::size_t entries_in_file = 0;  ///< entries the file declared
  bool found = false;               ///< the file existed and opened
  bool version_mismatch = false;    ///< discarded: version/format/corrupt
};

/// Serialize every ready cache entry to `path` (binary, atomic within
/// one write call; overwrites).  Returns the entry count written.
/// Throws std::runtime_error when the file cannot be written.
std::size_t save_eval_cache(const EvalCache& cache, const std::string& path,
                            const std::string& code_version);
std::size_t save_eval_cache(const EvalCache& cache, const std::string& path);

/// Preload `cache` from `path` if it exists and its header matches
/// (format, value schema, `code_version`).  Missing file: found=false.
/// Any mismatch or parse failure discards the whole file
/// (version_mismatch=true, nothing preloaded).  Never throws on bad
/// input — a stale cache must degrade to a cold run, not an error.
EvalStoreStats load_eval_cache(EvalCache& cache, const std::string& path,
                               const std::string& code_version);
EvalStoreStats load_eval_cache(EvalCache& cache, const std::string& path);

}  // namespace scal::core
