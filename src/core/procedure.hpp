#pragma once
// The scalability measurement procedure of the paper's Figure 1:
//   Step 1  choose a feasible efficiency E0 to hold constant,
//   Step 2  scale the RP or the RMS along the scaling path,
//   Step 3  tune the scaling enablers (simulated annealing) so the
//           efficiency stays at E0 with minimum RMS overhead G(k),
//   Step 4  compute the scalability of the RMS from the slope of G(k).

#include <functional>
#include <vector>

#include "core/isoefficiency.hpp"
#include "core/tuner.hpp"

namespace scal::exec {
class ThreadPool;
}

namespace scal::core {

struct ProcedureConfig {
  ScalingCase scase = ScalingCase::case1_network_size();
  std::vector<double> scale_factors = {1, 2, 3, 4, 5, 6};
  TunerConfig tuner;
  /// Warm-start each scale factor's search from the previous optimum.
  bool chain_warm_start = true;
  /// Evaluation budget for warm-started scale points (0 = same as the
  /// first point's budget).  Warm starts converge much faster, so the
  /// sweep spends most of its budget on the base configuration.
  std::size_t warm_evaluations = 0;
  /// Optional worker pool (non-owning).  measure_all spreads RMS kinds
  /// over it and every tuner search spreads its annealing chains over
  /// it (nested use of one pool is safe); results are bit-identical to
  /// the serial run.  The runner and progress callback must be
  /// thread-safe when set.
  exec::ThreadPool* pool = nullptr;
};

/// Progress callback: (rms, k, outcome) after each tuned scale point.
using ProgressFn = std::function<void(grid::RmsKind, double,
                                      const TuneOutcome&)>;

/// Measure one RMS along one scaling case.  `base` must describe the
/// k = 1 configuration; its rms field is overridden by `rms`.  The
/// default (empty) runner is the reusable-session backend: one
/// evaluation cache and one session pool span the whole k sweep, so
/// repeated anchor probes cost nothing and each evaluation rewinds a
/// warm system instead of rebuilding it.  Results are bit-identical to
/// an explicit default_runner().
CaseResult measure_scalability(const grid::GridConfig& base,
                               grid::RmsKind rms,
                               const ProcedureConfig& procedure,
                               const SimRunner& runner = {},
                               const ProgressFn& progress = {});

/// Measure every requested RMS (paper Figures 2-5 sweep all seven).
/// With a pool on `procedure`, kinds run concurrently; the result
/// vector, the tuner outcomes, and the anneal-log row order are
/// bit-identical to the serial sweep.  Progress callbacks are
/// serialized but may arrive in any kind order.
std::vector<CaseResult> measure_all(
    const grid::GridConfig& base, const std::vector<grid::RmsKind>& kinds,
    const ProcedureConfig& procedure, const SimRunner& runner = {},
    const ProgressFn& progress = {});

}  // namespace scal::core
