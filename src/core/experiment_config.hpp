#pragma once
// INI <-> experiment configuration mapping, so whole experiments can be
// described, versioned, and rerun without recompiling (see
// examples/run_experiment and examples/configs/).

#include <string>

#include "core/procedure.hpp"
#include "util/ini.hpp"

namespace scal::core {

/// Everything one experiment needs: the k = 1 grid and the procedure.
struct ExperimentConfig {
  grid::GridConfig grid;
  ProcedureConfig procedure;
  /// Which RMS models to sweep ("CENTRAL,LOWEST,..." in the file;
  /// empty = the paper's seven).
  std::vector<grid::RmsKind> kinds;
  std::string csv_path;  ///< optional CSV output
};

/// Populate from an INI file; unknown keys throw (catching typos beats
/// silently ignoring them).  Missing keys keep their C++ defaults.
ExperimentConfig experiment_from_ini(const util::IniFile& ini);
ExperimentConfig load_experiment(const std::string& path);

/// Serialize (round-trips through experiment_from_ini).
util::IniFile experiment_to_ini(const ExperimentConfig& config);

}  // namespace scal::core
