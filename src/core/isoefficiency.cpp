#include "core/isoefficiency.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace scal::core {

std::string to_string(SegmentVerdict verdict) {
  return verdict == SegmentVerdict::kScalable ? "scalable" : "unscalable";
}

IsoefficiencyReport analyze(const CaseResult& result) {
  if (result.points.size() < 2) {
    throw std::invalid_argument("analyze: need at least two scale points");
  }
  IsoefficiencyReport report;

  const WorkTerms base = work_terms(result.points.front().sim);
  report.constants = isoefficiency_constants(base);

  for (const ScalePoint& p : result.points) {
    const WorkTerms terms = work_terms(p.sim);
    const NormalizedTerms n = normalize(base, terms);
    report.k.push_back(p.k);
    report.G.push_back(terms.G);
    report.g.push_back(n.g);
    report.f.push_back(n.f);
    report.h.push_back(n.h);
    report.E.push_back(terms.efficiency());
    report.feasible.push_back(p.feasible);
    report.growth_condition.push_back(
        growth_condition_holds(report.constants, n));
  }

  report.g_slopes = util::segment_slopes(report.k, report.g);
  report.h_slopes = util::segment_slopes(report.k, report.h);
  report.overall_slope = util::fit_line(report.k, report.g).slope;
  report.overall_h_slope = util::fit_line(report.k, report.h).slope;

  // Verdicts: the first segment is judged only by the growth condition;
  // later segments additionally require the slope not to be increasing
  // beyond tolerance.
  double mean_abs_slope = 0.0;
  for (const double s : report.g_slopes) mean_abs_slope += std::abs(s);
  mean_abs_slope /= static_cast<double>(report.g_slopes.size());
  const double tol = kSlopeTolerance * std::max(mean_abs_slope, 1e-12);

  bool still_scalable = true;
  for (std::size_t i = 0; i < report.g_slopes.size(); ++i) {
    const bool slope_ok =
        i == 0 || report.g_slopes[i] <= report.g_slopes[i - 1] + tol;
    const bool growth_ok = report.growth_condition[i + 1];
    const SegmentVerdict v = (slope_ok && growth_ok)
                                 ? SegmentVerdict::kScalable
                                 : SegmentVerdict::kUnscalable;
    report.verdicts.push_back(v);
    if (still_scalable && v == SegmentVerdict::kScalable) {
      report.scalable_through = report.k[i + 1];
    } else {
      still_scalable = false;
    }
  }
  return report;
}

}  // namespace scal::core
