#include "core/procedure.hpp"

#include <mutex>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/anneal_log.hpp"
#include "obs/phase_profiler.hpp"
#include "rms/session.hpp"
#include "util/log.hpp"

namespace scal::core {

CaseResult measure_scalability(const grid::GridConfig& base,
                               grid::RmsKind rms,
                               const ProcedureConfig& procedure,
                               const SimRunner& runner,
                               const ProgressFn& progress) {
  if (procedure.scale_factors.empty()) {
    throw std::invalid_argument("measure_scalability: no scale factors");
  }
  CaseResult result;
  result.scase = procedure.scase;
  result.rms = rms;

  grid::GridConfig rms_base = base;
  rms_base.rms = rms;

  // One evaluation cache and one session pool span the whole sweep
  // (unless the caller supplied shared ones): warm-start anchor probes
  // repeat points across adjacent scale factors, and the session slots
  // keep their systems warm between tunes of the same structure.
  EvalCache sweep_cache;
  rms::SessionPool sweep_sessions;

  std::optional<grid::Tuning> warm;
  for (const double k : procedure.scale_factors) {
    // Step 2: scale along the path.
    const grid::GridConfig scaled = apply_scale(rms_base, procedure.scase, k);
    // Step 3: tune the enablers at this scale.
    TunerConfig tuner = procedure.tuner;
    if (tuner.pool == nullptr) tuner.pool = procedure.pool;
    if (tuner.cache == nullptr) tuner.cache = &sweep_cache;
    if (tuner.sessions == nullptr) tuner.sessions = &sweep_sessions;
    if (warm && procedure.warm_evaluations > 0) {
      tuner.evaluations = procedure.warm_evaluations;
    }
    const TuneOutcome outcome =
        tune_enablers(scaled, procedure.scase, tuner, runner, warm);
    if (procedure.chain_warm_start) warm = outcome.tuning;

    ScalePoint point;
    point.k = k;
    point.tuning = outcome.tuning;
    point.sim = outcome.result;
    point.feasible = outcome.feasible;
    point.tuner_evaluations = outcome.evaluations;
    point.tuner_cache_hits = outcome.cache_hits;
    result.points.push_back(point);

    SCAL_INFO("measure " << grid::to_string(rms) << " k=" << k
                         << " G=" << outcome.result.G()
                         << " E=" << outcome.result.efficiency()
                         << (outcome.feasible ? "" : " (band missed)"));
    if (progress) progress(rms, k, outcome);
  }
  return result;
}

std::vector<CaseResult> measure_all(const grid::GridConfig& base,
                                    const std::vector<grid::RmsKind>& kinds,
                                    const ProcedureConfig& procedure,
                                    const SimRunner& runner,
                                    const ProgressFn& progress) {
  const bool parallel =
      procedure.pool != nullptr && procedure.pool->size() > 0 &&
      kinds.size() > 1;

  // Progress callbacks may fire from any worker under a shared lock (so
  // caller-side printing stays line-atomic); their order across kinds is
  // nondeterministic, unlike the results.
  std::mutex progress_mutex;
  ProgressFn guarded_progress;
  if (progress) {
    guarded_progress = [&](grid::RmsKind rms, double k,
                           const TuneOutcome& outcome) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(rms, k, outcome);
    };
  }

  // Each kind gets a private anneal log; the rows land in the shared
  // sink in kind order afterwards — the same order the serial loop
  // produces, at any job count.
  obs::AnnealLog* shared_log = procedure.tuner.anneal_log;
  std::vector<obs::AnnealLog> kind_logs(
      shared_log != nullptr ? kinds.size() : 0);

  // Same scheme for the phase profiler: each kind times into a private
  // one, folded into the shared sink in kind order afterwards.
  obs::PhaseProfiler* shared_profiler = procedure.tuner.profiler;
  std::vector<obs::PhaseProfiler> kind_profilers(
      shared_profiler != nullptr ? kinds.size() : 0,
      obs::PhaseProfiler(/*enabled=*/true));

  std::vector<CaseResult> results(kinds.size());
  exec::parallel_for(
      parallel ? procedure.pool : nullptr, kinds.size(), [&](std::size_t i) {
        ProcedureConfig kind_procedure = procedure;
        // The per-kind sweep is sequential (warm-start chaining), so the
        // pool's spare lanes go to the annealing chains inside it.
        if (shared_log != nullptr) {
          kind_procedure.tuner.anneal_log = &kind_logs[i];
        }
        if (shared_profiler != nullptr) {
          kind_procedure.tuner.profiler = &kind_profilers[i];
        }
        results[i] = measure_scalability(base, kinds[i], kind_procedure,
                                         runner, guarded_progress);
      });

  if (shared_log != nullptr) {
    for (const obs::AnnealLog& log : kind_logs) {
      for (const obs::AnnealRecord& rec : log.records()) {
        shared_log->add(rec);
      }
    }
  }
  if (shared_profiler != nullptr) {
    for (const obs::PhaseProfiler& profiler : kind_profilers) {
      shared_profiler->merge(profiler);
    }
  }
  return results;
}

}  // namespace scal::core
