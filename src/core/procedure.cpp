#include "core/procedure.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace scal::core {

CaseResult measure_scalability(const grid::GridConfig& base,
                               grid::RmsKind rms,
                               const ProcedureConfig& procedure,
                               const SimRunner& runner,
                               const ProgressFn& progress) {
  if (procedure.scale_factors.empty()) {
    throw std::invalid_argument("measure_scalability: no scale factors");
  }
  CaseResult result;
  result.scase = procedure.scase;
  result.rms = rms;

  grid::GridConfig rms_base = base;
  rms_base.rms = rms;

  std::optional<grid::Tuning> warm;
  for (const double k : procedure.scale_factors) {
    // Step 2: scale along the path.
    const grid::GridConfig scaled = apply_scale(rms_base, procedure.scase, k);
    // Step 3: tune the enablers at this scale.
    TunerConfig tuner = procedure.tuner;
    if (warm && procedure.warm_evaluations > 0) {
      tuner.evaluations = procedure.warm_evaluations;
    }
    const TuneOutcome outcome =
        tune_enablers(scaled, procedure.scase, tuner, runner, warm);
    if (procedure.chain_warm_start) warm = outcome.tuning;

    ScalePoint point;
    point.k = k;
    point.tuning = outcome.tuning;
    point.sim = outcome.result;
    point.feasible = outcome.feasible;
    result.points.push_back(point);

    SCAL_INFO("measure " << grid::to_string(rms) << " k=" << k
                         << " G=" << outcome.result.G()
                         << " E=" << outcome.result.efficiency()
                         << (outcome.feasible ? "" : " (band missed)"));
    if (progress) progress(rms, k, outcome);
  }
  return result;
}

std::vector<CaseResult> measure_all(const grid::GridConfig& base,
                                    const std::vector<grid::RmsKind>& kinds,
                                    const ProcedureConfig& procedure,
                                    const SimRunner& runner,
                                    const ProgressFn& progress) {
  std::vector<CaseResult> results;
  results.reserve(kinds.size());
  for (const grid::RmsKind kind : kinds) {
    results.push_back(
        measure_scalability(base, kind, procedure, runner, progress));
  }
  return results;
}

}  // namespace scal::core
