#pragma once
// Step 4 of the measurement procedure: compute the scalability of the
// RMS from G(k).  The metric is the slope of G(k) (equivalently of the
// normalized g(k)) along the scaling path; a decreasing slope means the
// RMS needs relatively less work to sustain the system at the next
// scale, i.e. it is scaling well (paper Section 3.4).

#include <string>
#include <vector>

#include "core/efficiency.hpp"
#include "core/scaling.hpp"
#include "grid/config.hpp"

namespace scal::core {

/// One measured point of a scaling sweep.
struct ScalePoint {
  double k = 1.0;
  grid::Tuning tuning;            ///< tuned enablers at this scale
  grid::SimulationResult sim;
  bool feasible = false;          ///< efficiency band held at the optimum
  /// Tuner cost accounting at this point: logical evaluations requested
  /// by the search, and how many of them memoization answered.
  std::size_t tuner_evaluations = 0;
  std::size_t tuner_cache_hits = 0;
};

/// A full sweep for one RMS along one scaling case.
struct CaseResult {
  ScalingCase scase;
  grid::RmsKind rms = grid::RmsKind::kLowest;
  std::vector<ScalePoint> points;
};

enum class SegmentVerdict { kScalable, kUnscalable };

/// The isoefficiency analysis of one sweep.
struct IsoefficiencyReport {
  std::vector<double> k;
  std::vector<double> G;  ///< raw overhead
  std::vector<double> g;  ///< normalized overhead
  std::vector<double> f;  ///< normalized useful work
  std::vector<double> h;  ///< normalized RP overhead
  std::vector<double> E;  ///< achieved efficiency
  std::vector<bool> feasible;

  IsoefficiencyConstants constants;  ///< alpha, c, c' from the base point
  /// Equation (2) check, f(k) > c*g(k), at every k.
  std::vector<bool> growth_condition;

  /// Segment slopes of g between consecutive scale factors (size n-1).
  std::vector<double> g_slopes;
  /// Segment slopes of h — the RP-overhead counterpart the paper defers
  /// to future work ("use the framework to measure the scalability based
  /// on the RP overhead H(k)").
  std::vector<double> h_slopes;
  /// Per-segment verdict: scalable while the slope is not increasing
  /// (within tolerance) and the growth condition holds at the segment's
  /// right endpoint.
  std::vector<SegmentVerdict> verdicts;

  /// Least-squares slope of g over k — the headline scalability number
  /// (smaller is more scalable).
  double overall_slope = 0.0;
  /// Least-squares slope of h over k (RP-overhead scalability).
  double overall_h_slope = 0.0;

  /// Largest k (prefix) through which every segment is scalable;
  /// 1 if already unscalable at the first step.
  double scalable_through = 1.0;
};

/// Tolerance on slope comparison, relative to the mean |slope|.
inline constexpr double kSlopeTolerance = 0.10;

IsoefficiencyReport analyze(const CaseResult& result);

std::string to_string(SegmentVerdict verdict);

}  // namespace scal::core
