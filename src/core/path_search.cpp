#include "core/path_search.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rms/session.hpp"

namespace scal::core {

grid::GridConfig apply_mixed_scale(const grid::GridConfig& base, double k,
                                   double split) {
  if (!(k >= 1.0) || split < 0.0 || split > 1.0) {
    throw std::invalid_argument("apply_mixed_scale: bad k or split");
  }
  grid::GridConfig scaled = base;
  scaled.topology.nodes = static_cast<std::size_t>(std::llround(
      static_cast<double>(base.topology.nodes) * std::pow(k, split)));
  scaled.service_rate = base.service_rate * std::pow(k, 1.0 - split);
  scaled.workload.mean_interarrival = base.workload.mean_interarrival / k;
  return scaled;
}

CaseResult PathResult::as_case_result(grid::RmsKind rms) const {
  CaseResult result;
  result.scase = ScalingCase::case1_network_size();
  result.scase.name = "Best scaling path (mixed network size / service rate)";
  result.rms = rms;
  for (const PathPoint& p : points) {
    ScalePoint sp;
    sp.k = p.k;
    sp.tuning = p.outcome.tuning;
    sp.sim = p.outcome.result;
    sp.feasible = p.outcome.feasible;
    sp.tuner_evaluations = p.outcome.evaluations;
    sp.tuner_cache_hits = p.outcome.cache_hits;
    result.points.push_back(std::move(sp));
  }
  return result;
}

PathResult search_scaling_path(const grid::GridConfig& base,
                               grid::RmsKind rms,
                               const PathSearchConfig& config,
                               const SimRunner& runner) {
  if (config.scale_factors.empty() || config.splits.empty()) {
    throw std::invalid_argument("search_scaling_path: empty search space");
  }
  grid::GridConfig rms_base = base;
  rms_base.rms = rms;

  // The (k, split) grid revisits configurations aggressively — at k = 1
  // every split collapses to the base config — so one cache and one
  // session pool serve the entire search unless the caller shared theirs.
  EvalCache search_cache;
  rms::SessionPool search_sessions;
  TunerConfig search_tuner = config.tuner;
  if (search_tuner.cache == nullptr) search_tuner.cache = &search_cache;
  if (search_tuner.sessions == nullptr) {
    search_tuner.sessions = &search_sessions;
  }

  PathResult result;
  std::optional<grid::Tuning> warm;
  bool still_scalable = true;

  for (const double k : config.scale_factors) {
    PathPoint point;
    point.k = k;
    double best_objective = std::numeric_limits<double>::infinity();
    bool best_is_feasible = false;

    for (const double split : config.splits) {
      const grid::GridConfig candidate =
          apply_mixed_scale(rms_base, k, split);
      const TuneOutcome outcome = tune_enablers(
          candidate, config.enabler_case, search_tuner, runner, warm);
      // Feasible candidates always beat infeasible ones; within a
      // class, the lower penalized objective wins.
      const bool better =
          (outcome.feasible && !best_is_feasible) ||
          (outcome.feasible == best_is_feasible &&
           outcome.objective < best_objective);
      if (better) {
        best_objective = outcome.objective;
        best_is_feasible = outcome.feasible;
        point.split = split;
        point.outcome = outcome;
      }
      point.any_feasible = point.any_feasible || outcome.feasible;
    }

    warm = point.outcome.tuning;
    if (still_scalable && point.any_feasible) {
      result.scalable_through = k;
    } else if (!point.any_feasible) {
      still_scalable = false;
      result.rp_scalable = false;
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace scal::core
