#pragma once
// Replication and sensitivity utilities: the paper reports single runs;
// a production framework needs to know how much of a G(k) difference is
// signal.  replicate() reruns one configuration across seeds and
// summarizes the spread of every work term.

#include <cstdint>
#include <vector>

#include "core/tuner.hpp"
#include "util/stats.hpp"

namespace scal::exec {
class ThreadPool;
}

namespace scal::core {

struct ReplicationStats {
  util::Accumulator G;
  util::Accumulator F;
  util::Accumulator H;
  util::Accumulator efficiency;
  util::Accumulator throughput;
  util::Accumulator mean_response;
  std::vector<std::uint64_t> seeds;

  /// Coefficient of variation of G — the headline noise figure.
  double g_cv() const noexcept {
    return G.mean() > 0.0 ? G.stddev() / G.mean() : 0.0;
  }
};

/// Run `config` under each seed (config.seed is overridden) and collect
/// the spread.  The runner is injectable for tests.  With a pool the
/// seeds run concurrently (runner must be thread-safe and
/// config.telemetry must be null — enforced); the accumulators are
/// filled in seed order after the join, so the stats are bit-identical
/// to the serial run.
ReplicationStats replicate(const grid::GridConfig& config,
                           const std::vector<std::uint64_t>& seeds,
                           const SimRunner& runner = default_runner(),
                           exec::ThreadPool* pool = nullptr);

/// Convenience: seeds 'base_seed .. base_seed + replications - 1'.
ReplicationStats replicate(const grid::GridConfig& config,
                           std::size_t replications,
                           std::uint64_t base_seed = 1,
                           const SimRunner& runner = default_runner(),
                           exec::ThreadPool* pool = nullptr);

}  // namespace scal::core
