#include "core/scaling.hpp"

#include <cmath>
#include <stdexcept>

namespace scal::core {

std::string to_string(ScalingVariableKind kind) {
  switch (kind) {
    case ScalingVariableKind::kNetworkSize: return "network size";
    case ScalingVariableKind::kServiceRate: return "resource service rate";
    case ScalingVariableKind::kEstimators: return "number of estimators";
    case ScalingVariableKind::kNeighborhood: return "L_p (neighborhood)";
  }
  return "?";
}

ScalingCase ScalingCase::case1_network_size() {
  ScalingCase c;
  c.name = "Case 1: Scaling the RP by network size";
  c.variable = ScalingVariableKind::kNetworkSize;
  return c;
}

ScalingCase ScalingCase::case2_service_rate() {
  ScalingCase c;
  c.name = "Case 2: Scaling the RP by resource service rate";
  c.variable = ScalingVariableKind::kServiceRate;
  return c;
}

ScalingCase ScalingCase::case3_estimators() {
  ScalingCase c;
  c.name = "Case 3: Scaling the RMS by number of status estimators";
  c.variable = ScalingVariableKind::kEstimators;
  return c;
}

ScalingCase ScalingCase::case4_neighborhood() {
  ScalingCase c;
  c.name = "Case 4: Scaling the RMS by L_p";
  c.variable = ScalingVariableKind::kNeighborhood;
  // Table 5: L_p is the scaling variable; the volunteering interval
  // replaces the neighborhood size in the enabler set.
  c.enablers.tune_neighborhood = false;
  c.enablers.tune_volunteer_interval = true;
  return c;
}

ScalingCase ScalingCase::with_aggregation() const {
  ScalingCase c = *this;
  c.enablers.tune_agg_fanout = true;
  c.enablers.tune_agg_batch = true;
  c.enablers.tune_agg_flush = true;
  return c;
}

std::vector<std::string> ScalingCase::scaling_variable_rows() const {
  std::vector<std::string> rows;
  switch (variable) {
    case ScalingVariableKind::kNetworkSize:
      rows.push_back(
          "Network size in terms of number of nodes = sizeof[RMS] + "
          "sizeof[RP]");
      break;
    case ScalingVariableKind::kServiceRate:
      rows.push_back(
          "Resource service rate (number of jobs executed per unit time)");
      break;
    case ScalingVariableKind::kEstimators:
      rows.push_back("Number of Status Estimators");
      break;
    case ScalingVariableKind::kNeighborhood:
      rows.push_back(
          "L_p: Number of neighbor schedulers being contacted for load "
          "balancing");
      break;
  }
  rows.push_back("Workload (number of jobs arriving per unit time)");
  return rows;
}

std::vector<std::string> ScalingCase::enabler_rows() const {
  std::vector<std::string> rows;
  if (enablers.tune_update_interval) rows.push_back("Status update interval");
  if (enablers.tune_neighborhood) rows.push_back("Neighborhood set size");
  if (enablers.tune_volunteer_interval) {
    rows.push_back("Interval for resource volunteering");
  }
  if (enablers.tune_link_delay) rows.push_back("Network link delay");
  if (enablers.tune_agg_fanout) rows.push_back("Aggregation tree fan-out");
  if (enablers.tune_agg_batch) rows.push_back("Aggregation max batch size");
  if (enablers.tune_agg_flush) rows.push_back("Aggregation flush interval");
  return rows;
}

grid::GridConfig apply_scale(const grid::GridConfig& base,
                             const ScalingCase& scase, double k) {
  if (!(k >= 1.0)) {
    throw std::invalid_argument("apply_scale: scale factor must be >= 1");
  }
  grid::GridConfig scaled = base;
  // The workload always scales with the scaling variable.
  scaled.workload.mean_interarrival = base.workload.mean_interarrival / k;

  switch (scase.variable) {
    case ScalingVariableKind::kNetworkSize:
      scaled.topology.nodes = static_cast<std::size_t>(
          std::llround(static_cast<double>(base.topology.nodes) * k));
      break;
    case ScalingVariableKind::kServiceRate:
      scaled.service_rate = base.service_rate * k;
      break;
    case ScalingVariableKind::kEstimators: {
      // The RP must stay unaltered ("only the RMS is scaled"), so the
      // extra estimator slots are added as new RMS nodes rather than
      // carved out of the resource pool.
      const auto extra_per_cluster = static_cast<std::size_t>(
          std::llround(static_cast<double>(base.estimators_per_cluster) * k)) -
          base.estimators_per_cluster;
      scaled.estimators_per_cluster =
          base.estimators_per_cluster + extra_per_cluster;
      scaled.cluster_size = base.cluster_size + extra_per_cluster;
      scaled.topology.nodes =
          base.topology.nodes + base.cluster_count() * extra_per_cluster;
      break;
    }
    case ScalingVariableKind::kNeighborhood:
      scaled.tuning.neighborhood_size = static_cast<std::uint32_t>(
          std::llround(static_cast<double>(base.tuning.neighborhood_size) * k));
      break;
  }
  return scaled;
}

opt::Space enabler_space(const ScalingCase& scase) {
  std::vector<opt::Variable> vars;
  const EnablerBounds& e = scase.enablers;
  if (e.tune_update_interval) {
    vars.push_back(opt::Variable{"update_interval", opt::VarKind::kContinuous,
                                 e.update_interval_lo, e.update_interval_hi,
                                 /*log_scale=*/true});
  }
  if (e.tune_neighborhood) {
    vars.push_back(opt::Variable{"neighborhood_size", opt::VarKind::kInteger,
                                 static_cast<double>(e.neighborhood_lo),
                                 static_cast<double>(e.neighborhood_hi),
                                 /*log_scale=*/false});
  }
  if (e.tune_link_delay) {
    vars.push_back(opt::Variable{"link_delay_scale", opt::VarKind::kContinuous,
                                 e.link_delay_lo, e.link_delay_hi,
                                 /*log_scale=*/false});
  }
  if (e.tune_volunteer_interval) {
    vars.push_back(opt::Variable{"volunteer_interval",
                                 opt::VarKind::kContinuous,
                                 e.volunteer_interval_lo,
                                 e.volunteer_interval_hi,
                                 /*log_scale=*/true});
  }
  // Aggregation knobs go last so switching them on never reorders the
  // paper's enabler dimensions.  Flush stays linear: its lower bound is
  // 0 (forward immediately), which a log scale cannot represent.
  if (e.tune_agg_fanout) {
    vars.push_back(opt::Variable{"agg_fanout", opt::VarKind::kInteger,
                                 static_cast<double>(e.agg_fanout_lo),
                                 static_cast<double>(e.agg_fanout_hi),
                                 /*log_scale=*/false});
  }
  if (e.tune_agg_batch) {
    vars.push_back(opt::Variable{"agg_batch", opt::VarKind::kInteger,
                                 static_cast<double>(e.agg_batch_lo),
                                 static_cast<double>(e.agg_batch_hi),
                                 /*log_scale=*/false});
  }
  if (e.tune_agg_flush) {
    vars.push_back(opt::Variable{"agg_flush", opt::VarKind::kContinuous,
                                 e.agg_flush_lo, e.agg_flush_hi,
                                 /*log_scale=*/false});
  }
  return opt::Space(std::move(vars));
}

grid::Tuning tuning_from_point(const ScalingCase& scase,
                               const grid::Tuning& base,
                               const opt::Point& point) {
  if (point.size() != enabler_space(scase).size()) {
    throw std::invalid_argument("tuning_from_point: dimension mismatch");
  }
  grid::Tuning t = base;
  std::size_t i = 0;
  const EnablerBounds& e = scase.enablers;
  if (e.tune_update_interval) t.update_interval = point.at(i++);
  if (e.tune_neighborhood) {
    t.neighborhood_size = static_cast<std::uint32_t>(point.at(i++));
  }
  if (e.tune_link_delay) t.link_delay_scale = point.at(i++);
  if (e.tune_volunteer_interval) t.volunteer_interval = point.at(i++);
  if (e.tune_agg_fanout) {
    t.agg_fanout = static_cast<std::uint32_t>(point.at(i++));
  }
  if (e.tune_agg_batch) {
    t.agg_batch = static_cast<std::uint32_t>(point.at(i++));
  }
  if (e.tune_agg_flush) t.agg_flush = point.at(i++);
  if (i != point.size()) {
    throw std::invalid_argument("tuning_from_point: dimension mismatch");
  }
  return t;
}

opt::Point point_from_tuning(const ScalingCase& scase,
                             const grid::Tuning& tuning) {
  opt::Point p;
  const EnablerBounds& e = scase.enablers;
  if (e.tune_update_interval) p.push_back(tuning.update_interval);
  if (e.tune_neighborhood) {
    p.push_back(static_cast<double>(tuning.neighborhood_size));
  }
  if (e.tune_link_delay) p.push_back(tuning.link_delay_scale);
  if (e.tune_volunteer_interval) p.push_back(tuning.volunteer_interval);
  if (e.tune_agg_fanout) p.push_back(static_cast<double>(tuning.agg_fanout));
  if (e.tune_agg_batch) p.push_back(static_cast<double>(tuning.agg_batch));
  if (e.tune_agg_flush) p.push_back(tuning.agg_flush);
  return p;
}

}  // namespace scal::core
