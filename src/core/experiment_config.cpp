#include "core/experiment_config.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace scal::core {

namespace {

ScalingCase case_from_name(const std::string& name) {
  if (name == "network_size" || name == "case1") {
    return ScalingCase::case1_network_size();
  }
  if (name == "service_rate" || name == "case2") {
    return ScalingCase::case2_service_rate();
  }
  if (name == "estimators" || name == "case3") {
    return ScalingCase::case3_estimators();
  }
  if (name == "neighborhood" || name == "lp" || name == "case4") {
    return ScalingCase::case4_neighborhood();
  }
  throw std::runtime_error("experiment config: unknown scaling case '" +
                           name + "'");
}

std::string case_name(const ScalingCase& scase) {
  switch (scase.variable) {
    case ScalingVariableKind::kNetworkSize: return "network_size";
    case ScalingVariableKind::kServiceRate: return "service_rate";
    case ScalingVariableKind::kEstimators: return "estimators";
    case ScalingVariableKind::kNeighborhood: return "neighborhood";
  }
  return "?";
}

net::TopologyKind topology_from_name(const std::string& name) {
  for (const auto kind :
       {net::TopologyKind::kPreferentialAttachment,
        net::TopologyKind::kWaxman, net::TopologyKind::kRingLattice,
        net::TopologyKind::kStar, net::TopologyKind::kTransitStub}) {
    if (net::to_string(kind) == name) return kind;
  }
  throw std::runtime_error("experiment config: unknown topology '" + name +
                           "'");
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string cell;
  while (std::getline(in, cell, ',')) {
    // trim
    const auto b = cell.find_first_not_of(" \t");
    const auto e = cell.find_last_not_of(" \t");
    if (b != std::string::npos) out.push_back(cell.substr(b, e - b + 1));
  }
  return out;
}

/// The complete key vocabulary, used to reject typos.
const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "grid.nodes", "grid.topology", "grid.cluster_size",
      "grid.estimators_per_cluster", "grid.service_rate", "grid.rms",
      "grid.seed", "grid.horizon", "grid.update_suppression",
      "grid.trace_path", "grid.heterogeneity",
      "grid.control_loss_probability", "grid.job_log",
      "grid.job_log_capacity", "grid.result_mode",
      "grid.sample_interval",
      "workload.mean_interarrival", "workload.t_cpu",
      "workload.benefit_lo", "workload.benefit_hi",
      "workload.diurnal_amplitude", "workload.diurnal_period",
      "workload.origin_hotspot_weight",
      "tuning.update_interval", "tuning.neighborhood_size",
      "tuning.link_delay_scale", "tuning.volunteer_interval",
      "procedure.case", "procedure.scale_factors",
      "procedure.chain_warm_start", "procedure.warm_evaluations",
      "tuner.e0", "tuner.band", "tuner.evaluations", "tuner.restarts",
      "tuner.penalty_weight", "tuner.seed",
      "experiment.rms_kinds", "experiment.csv_path",
  };
  return keys;
}

}  // namespace

ExperimentConfig experiment_from_ini(const util::IniFile& ini) {
  for (const auto& [key, value] : ini.values()) {
    (void)value;
    if (known_keys().count(key) == 0) {
      throw std::runtime_error("experiment config: unknown key '" + key +
                               "'");
    }
  }

  ExperimentConfig config;
  grid::GridConfig& g = config.grid;
  g.topology.nodes = static_cast<std::size_t>(
      ini.get_int("grid.nodes", static_cast<std::int64_t>(g.topology.nodes)));
  if (const auto topo = ini.get("grid.topology")) {
    g.topology.kind = topology_from_name(*topo);
  }
  g.cluster_size = static_cast<std::size_t>(ini.get_int(
      "grid.cluster_size", static_cast<std::int64_t>(g.cluster_size)));
  g.estimators_per_cluster = static_cast<std::size_t>(
      ini.get_int("grid.estimators_per_cluster",
                  static_cast<std::int64_t>(g.estimators_per_cluster)));
  g.service_rate = ini.get_double("grid.service_rate", g.service_rate);
  if (const auto rms = ini.get("grid.rms")) {
    g.rms = grid::rms_from_string(*rms);
  }
  g.seed = static_cast<std::uint64_t>(
      ini.get_int("grid.seed", static_cast<std::int64_t>(g.seed)));
  g.horizon = ini.get_double("grid.horizon", g.horizon);
  g.update_suppression =
      ini.get_bool("grid.update_suppression", g.update_suppression);
  g.trace_path = ini.get_string("grid.trace_path", g.trace_path);
  g.heterogeneity = ini.get_double("grid.heterogeneity", g.heterogeneity);
  g.control_loss_probability = ini.get_double(
      "grid.control_loss_probability", g.control_loss_probability);
  g.job_log = ini.get_bool("grid.job_log", g.job_log);
  g.job_log_capacity = static_cast<std::size_t>(
      ini.get_int("grid.job_log_capacity",
                  static_cast<std::int64_t>(g.job_log_capacity)));
  if (const auto mode = ini.get("grid.result_mode")) {
    g.result_mode = grid::result_mode_from_string(*mode);
  }
  g.sample_interval =
      ini.get_double("grid.sample_interval", g.sample_interval);

  auto& wl = g.workload;
  wl.mean_interarrival =
      ini.get_double("workload.mean_interarrival", wl.mean_interarrival);
  wl.t_cpu = ini.get_double("workload.t_cpu", wl.t_cpu);
  wl.benefit_lo = ini.get_double("workload.benefit_lo", wl.benefit_lo);
  wl.benefit_hi = ini.get_double("workload.benefit_hi", wl.benefit_hi);
  wl.diurnal_amplitude =
      ini.get_double("workload.diurnal_amplitude", wl.diurnal_amplitude);
  wl.diurnal_period =
      ini.get_double("workload.diurnal_period", wl.diurnal_period);
  wl.origin_hotspot_weight = ini.get_double("workload.origin_hotspot_weight",
                                            wl.origin_hotspot_weight);

  auto& t = g.tuning;
  t.update_interval =
      ini.get_double("tuning.update_interval", t.update_interval);
  t.neighborhood_size = static_cast<std::uint32_t>(
      ini.get_int("tuning.neighborhood_size",
                  static_cast<std::int64_t>(t.neighborhood_size)));
  t.link_delay_scale =
      ini.get_double("tuning.link_delay_scale", t.link_delay_scale);
  t.volunteer_interval =
      ini.get_double("tuning.volunteer_interval", t.volunteer_interval);

  ProcedureConfig& p = config.procedure;
  p.scase = case_from_name(ini.get_string("procedure.case", "case1"));
  if (const auto factors = ini.get("procedure.scale_factors")) {
    p.scale_factors.clear();
    for (const std::string& cell : split_csv(*factors)) {
      p.scale_factors.push_back(std::stod(cell));
    }
    if (p.scale_factors.empty()) {
      throw std::runtime_error(
          "experiment config: empty procedure.scale_factors");
    }
  }
  p.chain_warm_start =
      ini.get_bool("procedure.chain_warm_start", p.chain_warm_start);
  p.warm_evaluations = static_cast<std::size_t>(
      ini.get_int("procedure.warm_evaluations",
                  static_cast<std::int64_t>(p.warm_evaluations)));
  p.tuner.e0 = ini.get_double("tuner.e0", p.tuner.e0);
  p.tuner.band = ini.get_double("tuner.band", p.tuner.band);
  p.tuner.evaluations = static_cast<std::size_t>(ini.get_int(
      "tuner.evaluations", static_cast<std::int64_t>(p.tuner.evaluations)));
  p.tuner.restarts = static_cast<std::size_t>(ini.get_int(
      "tuner.restarts", static_cast<std::int64_t>(p.tuner.restarts)));
  p.tuner.penalty_weight =
      ini.get_double("tuner.penalty_weight", p.tuner.penalty_weight);
  p.tuner.seed = static_cast<std::uint64_t>(ini.get_int(
      "tuner.seed", static_cast<std::int64_t>(p.tuner.seed)));

  if (const auto kinds = ini.get("experiment.rms_kinds")) {
    for (const std::string& name : split_csv(*kinds)) {
      config.kinds.push_back(grid::rms_from_string(name));
    }
  }
  config.csv_path = ini.get_string("experiment.csv_path", "");
  return config;
}

ExperimentConfig load_experiment(const std::string& path) {
  return experiment_from_ini(util::IniFile::load(path));
}

util::IniFile experiment_to_ini(const ExperimentConfig& config) {
  util::IniFile ini;
  const grid::GridConfig& g = config.grid;
  ini.set_int("grid.nodes", static_cast<std::int64_t>(g.topology.nodes));
  ini.set("grid.topology", net::to_string(g.topology.kind));
  ini.set_int("grid.cluster_size",
              static_cast<std::int64_t>(g.cluster_size));
  ini.set_int("grid.estimators_per_cluster",
              static_cast<std::int64_t>(g.estimators_per_cluster));
  ini.set_double("grid.service_rate", g.service_rate);
  ini.set("grid.rms", grid::to_string(g.rms));
  ini.set_int("grid.seed", static_cast<std::int64_t>(g.seed));
  ini.set_double("grid.horizon", g.horizon);
  ini.set_bool("grid.update_suppression", g.update_suppression);
  if (!g.trace_path.empty()) ini.set("grid.trace_path", g.trace_path);
  ini.set_double("grid.heterogeneity", g.heterogeneity);
  ini.set_double("grid.control_loss_probability",
                 g.control_loss_probability);
  ini.set_bool("grid.job_log", g.job_log);
  if (g.job_log_capacity > 0) {
    ini.set_int("grid.job_log_capacity",
                static_cast<std::int64_t>(g.job_log_capacity));
  }
  if (g.result_mode != grid::ResultMode::kFull) {
    ini.set("grid.result_mode", grid::to_string(g.result_mode));
  }
  if (g.sample_interval > 0.0) {
    ini.set_double("grid.sample_interval", g.sample_interval);
  }

  ini.set_double("workload.mean_interarrival",
                 g.workload.mean_interarrival);
  ini.set_double("workload.t_cpu", g.workload.t_cpu);
  ini.set_double("workload.benefit_lo", g.workload.benefit_lo);
  ini.set_double("workload.benefit_hi", g.workload.benefit_hi);
  ini.set_double("workload.diurnal_amplitude",
                 g.workload.diurnal_amplitude);
  ini.set_double("workload.diurnal_period", g.workload.diurnal_period);
  ini.set_double("workload.origin_hotspot_weight",
                 g.workload.origin_hotspot_weight);

  ini.set_double("tuning.update_interval", g.tuning.update_interval);
  ini.set_int("tuning.neighborhood_size",
              static_cast<std::int64_t>(g.tuning.neighborhood_size));
  ini.set_double("tuning.link_delay_scale", g.tuning.link_delay_scale);
  ini.set_double("tuning.volunteer_interval",
                 g.tuning.volunteer_interval);

  const ProcedureConfig& p = config.procedure;
  ini.set("procedure.case", case_name(p.scase));
  std::ostringstream factors;
  for (std::size_t i = 0; i < p.scale_factors.size(); ++i) {
    if (i) factors << ", ";
    factors << p.scale_factors[i];
  }
  ini.set("procedure.scale_factors", factors.str());
  ini.set_bool("procedure.chain_warm_start", p.chain_warm_start);
  ini.set_int("procedure.warm_evaluations",
              static_cast<std::int64_t>(p.warm_evaluations));
  ini.set_double("tuner.e0", p.tuner.e0);
  ini.set_double("tuner.band", p.tuner.band);
  ini.set_int("tuner.evaluations",
              static_cast<std::int64_t>(p.tuner.evaluations));
  ini.set_int("tuner.restarts",
              static_cast<std::int64_t>(p.tuner.restarts));
  ini.set_double("tuner.penalty_weight", p.tuner.penalty_weight);
  ini.set_int("tuner.seed", static_cast<std::int64_t>(p.tuner.seed));

  if (!config.kinds.empty()) {
    std::ostringstream kinds;
    for (std::size_t i = 0; i < config.kinds.size(); ++i) {
      if (i) kinds << ", ";
      kinds << grid::to_string(config.kinds[i]);
    }
    ini.set("experiment.rms_kinds", kinds.str());
  }
  if (!config.csv_path.empty()) {
    ini.set("experiment.csv_path", config.csv_path);
  }
  return ini;
}

}  // namespace scal::core
