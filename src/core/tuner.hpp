#pragma once
// Step 3 of the measurement procedure (paper Figure 1): tune the RMS's
// scaling enablers with a simulated-annealing search so the overall
// efficiency stays at the chosen E0 while the RMS overhead G(k) is
// minimized.

#include <functional>
#include <optional>
#include <string>

#include "core/scaling.hpp"
#include "grid/metrics.hpp"

namespace scal::obs {
class AnnealLog;
}

namespace scal::exec {
class ThreadPool;
}

namespace scal::core {

/// Runs one simulation for a configuration.  Injected so tests can
/// substitute analytic stand-ins; production uses rms::simulate.
using SimRunner =
    std::function<grid::SimulationResult(const grid::GridConfig&)>;

/// The production runner (rms::simulate).
SimRunner default_runner();

struct TunerConfig {
  double e0 = 0.40;          ///< target efficiency (paper: band [0.38, 0.42])
  double band = 0.02;        ///< |E - e0| <= band is feasible
  std::size_t evaluations = 18;  ///< simulation budget for the search
  /// Independent annealing chains (best-of).  Multiple restarts matter:
  /// the efficiency-band penalty carves the G landscape into disjoint
  /// feasible pockets, and a single local walk can cool inside the
  /// wrong one.
  std::size_t restarts = 3;
  /// Multiplier applied to G when efficiency leaves the band; scale-free
  /// quadratic penalty.
  double penalty_weight = 60.0;
  std::uint64_t seed = 1234;  ///< search seed (independent of sim seed)

  /// Optional annealing telemetry sink (non-owning; null = off).  Every
  /// objective evaluation — including the warm-start anchor probes,
  /// which are logged with temperature 0 — lands here as one
  /// obs::AnnealRecord tagged with `anneal_label`.  Purely
  /// observational: the search trajectory is identical with or without
  /// it.
  obs::AnnealLog* anneal_log = nullptr;
  std::string anneal_label;  ///< e.g. "LOWEST k=3"

  /// Optional worker pool (non-owning, like anneal_log): the annealing
  /// restart chains run concurrently on its workers plus the calling
  /// thread.  Null = serial.  The outcome is bit-identical either way;
  /// `runner` must be safe to call from several threads when set.
  exec::ThreadPool* pool = nullptr;
};

struct TuneOutcome {
  grid::Tuning tuning;            ///< best enabler setting found
  grid::SimulationResult result;  ///< simulation at that setting
  double objective = 0.0;
  bool feasible = false;  ///< efficiency within the band at the optimum
  std::size_t evaluations = 0;
};

/// Penalized objective: G * (1 + w * excess^2) where excess is how far
/// (relative to the band width) the efficiency strays outside the band.
double penalized_objective(const grid::SimulationResult& result,
                           const TunerConfig& config);

/// Tune the enablers of `config` (bounds from `scase`) with simulated
/// annealing.  `warm_start` seeds the search (typically the previous
/// scale factor's optimum, which makes the k-sweep cheap and smooth).
TuneOutcome tune_enablers(const grid::GridConfig& config,
                          const ScalingCase& scase, const TunerConfig& tuner,
                          const SimRunner& runner,
                          const std::optional<grid::Tuning>& warm_start = {});

}  // namespace scal::core
