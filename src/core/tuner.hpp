#pragma once
// Step 3 of the measurement procedure (paper Figure 1): tune the RMS's
// scaling enablers with a simulated-annealing search so the overall
// efficiency stays at the chosen E0 while the RMS overhead G(k) is
// minimized.

#include <functional>
#include <optional>
#include <string>

#include "core/scaling.hpp"
#include "grid/metrics.hpp"
#include "opt/eval_cache.hpp"

namespace scal::obs {
class AnnealLog;
class PhaseProfiler;
}

namespace scal::exec {
class ThreadPool;
}

namespace scal::rms {
class SessionPool;
}

namespace scal::core {

/// Runs one simulation for a configuration.  Injected so tests can
/// substitute analytic stand-ins.  An EMPTY runner selects the
/// production reusable-session backend (rms::SimulationSession): each
/// evaluation reuses the previously built grid via GridSystem::reset()
/// whenever the candidate differs only in tuning — the fast path the
/// procedures use by default.
using SimRunner =
    std::function<grid::SimulationResult(const grid::GridConfig&)>;

/// The production runner (rms::simulate), building a fresh system per
/// call.  Kept for callers that need stateless evaluations; the
/// procedures now default to the empty-runner session backend instead.
SimRunner default_runner();

/// The tuner's memoization table: keyed on (config digest, exact search
/// point), valued with the full simulation result so the penalized
/// objective can be recomputed at hit time under any tuner parameters.
using EvalCache = opt::EvalCache<grid::SimulationResult>;

struct TunerConfig {
  double e0 = 0.40;          ///< target efficiency (paper: band [0.38, 0.42])
  double band = 0.02;        ///< |E - e0| <= band is feasible
  std::size_t evaluations = 18;  ///< simulation budget for the search
  /// Independent annealing chains (best-of).  Multiple restarts matter:
  /// the efficiency-band penalty carves the G landscape into disjoint
  /// feasible pockets, and a single local walk can cool inside the
  /// wrong one.
  std::size_t restarts = 3;
  /// Multiplier applied to G when efficiency leaves the band; scale-free
  /// quadratic penalty.
  double penalty_weight = 60.0;
  std::uint64_t seed = 1234;  ///< search seed (independent of sim seed)

  /// Optional annealing telemetry sink (non-owning; null = off).  Every
  /// objective evaluation — including the warm-start anchor probes,
  /// which are logged with temperature 0 — lands here as one
  /// obs::AnnealRecord tagged with `anneal_label`.  Purely
  /// observational: the search trajectory is identical with or without
  /// it.
  obs::AnnealLog* anneal_log = nullptr;
  std::string anneal_label;  ///< e.g. "LOWEST k=3"

  /// Optional worker pool (non-owning, like anneal_log): the annealing
  /// restart chains run concurrently on its workers plus the calling
  /// thread.  Null = serial.  The outcome is bit-identical either way;
  /// `runner` must be safe to call from several threads when set.
  exec::ThreadPool* pool = nullptr;

  /// Optional shared evaluation cache (non-owning).  Null = a private
  /// cache per tune_enablers call (still deduplicates within the tune).
  /// Sharing one cache across tunes — adjacent scale factors along a
  /// scaling path, overlapping path-search splits — lets later tunes
  /// answer repeated evaluations from earlier epochs.  Thread-safe; the
  /// outcome is bit-identical with or without sharing.
  EvalCache* cache = nullptr;

  /// When false, the cache still tracks keys (so hit statistics and the
  /// anneal log's `cached` flags stay byte-identical) but every
  /// evaluation runs the simulation — the cache-off arm of the ablation.
  bool cache_values = true;

  /// Optional shared session pool (non-owning) for the empty-runner
  /// backend: slot s of the pool carries anneal chain s's warm system
  /// across tune_enablers calls.  Null = a private pool per call.
  /// Ignored when `runner` is non-empty.
  rms::SessionPool* sessions = nullptr;

  /// Optional phase profiler (non-owning, like anneal_log): every
  /// logical evaluation — cache hits included, so the call count is a
  /// pure function of the search — runs inside a "tuner.evaluate"
  /// scope.  Concurrent chains time into per-slot profilers merged in
  /// slot order on the calling thread, so the recorded counts are
  /// bit-identical at any --jobs count.  Null = off.
  obs::PhaseProfiler* profiler = nullptr;
};

struct TuneOutcome {
  grid::Tuning tuning;            ///< best enabler setting found
  grid::SimulationResult result;  ///< simulation at that setting
  double objective = 0.0;
  bool feasible = false;  ///< efficiency within the band at the optimum
  std::size_t evaluations = 0;
  /// Evaluations answered by memoization, under serial-replay semantics
  /// (anchors first, then chains in index order): an evaluation counts
  /// as a hit when its key was already evaluated earlier in that order
  /// or by an earlier tune sharing the cache.  Independent of --jobs and
  /// of cache_values, so the cache-on/off and jobs-1/N arms report the
  /// same statistics.
  std::size_t cache_hits = 0;
  /// The subset of cache_hits answered from an earlier tune's epoch.
  std::size_t cache_prior_hits = 0;
};

/// Penalized objective: G * (1 + w * excess^2) where excess is how far
/// (relative to the band width) the efficiency strays outside the band.
double penalized_objective(const grid::SimulationResult& result,
                           const TunerConfig& config);

/// Tune the enablers of `config` (bounds from `scase`) with simulated
/// annealing.  `warm_start` seeds the search (typically the previous
/// scale factor's optimum, which makes the k-sweep cheap and smooth).
TuneOutcome tune_enablers(const grid::GridConfig& config,
                          const ScalingCase& scase, const TunerConfig& tuner,
                          const SimRunner& runner,
                          const std::optional<grid::Tuning>& warm_start = {});

}  // namespace scal::core
