#include "core/tuner.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "obs/anneal_log.hpp"
#include "opt/annealing.hpp"
#include "rms/factory.hpp"

namespace scal::core {

SimRunner default_runner() {
  return [](const grid::GridConfig& config) {
    return rms::simulate(config);
  };
}

double penalized_objective(const grid::SimulationResult& result,
                           const TunerConfig& config) {
  const double e = result.efficiency();
  const double excess =
      std::max(0.0, std::abs(e - config.e0) - config.band) / config.band;
  const double g = result.G();
  return g * (1.0 + config.penalty_weight * excess * excess);
}

namespace {

/// Best-evaluation tracker.  The search runs one of these per annealing
/// chain (plus one for the warm-start anchor probes), so concurrent
/// chains never share mutable state; tune_enablers then reduces them in
/// slot order, which reproduces the historical serial bookkeeping
/// (anchors first, then chain 0, chain 1, ...) bit for bit.
struct EvalTrack {
  double value = std::numeric_limits<double>::infinity();
  grid::Tuning tuning;
  grid::SimulationResult result;
  std::size_t evaluations = 0;
  bool have = false;

  void consider(double candidate_value, const grid::Tuning& candidate_tuning,
                const grid::SimulationResult& candidate_result) {
    ++evaluations;
    if (!have || candidate_value < value) {
      have = true;
      value = candidate_value;
      tuning = candidate_tuning;
      result = candidate_result;
    }
  }
};

}  // namespace

TuneOutcome tune_enablers(const grid::GridConfig& config,
                          const ScalingCase& scase, const TunerConfig& tuner,
                          const SimRunner& runner,
                          const std::optional<grid::Tuning>& warm_start) {
  const opt::Space space = enabler_space(scase);

  // Track the best *simulation* alongside the best objective so the
  // outcome does not need a re-run at the optimum.  Slot 0 collects the
  // warm-start anchors; slot 1 + c belongs to chain c.
  std::vector<EvalTrack> tracks(1 + tuner.restarts);

  auto make_objective = [&](EvalTrack& track) {
    return [&config, &scase, &tuner, &runner, &track](const opt::Point& point) {
      const grid::Tuning tuning =
          tuning_from_point(scase, config.tuning, point);
      grid::GridConfig candidate = config;
      candidate.tuning = tuning;
      // Search evaluations stay silent: only the caller's own instrumented
      // run records traces/probes, never the tuner's probing.
      candidate.telemetry = nullptr;
      const grid::SimulationResult result = runner(candidate);
      const double value = penalized_objective(result, tuner);
      track.consider(value, tuning, result);
      return value;
    };
  };

  opt::AnnealingConfig anneal_config;
  anneal_config.iterations = tuner.evaluations;
  anneal_config.restarts = tuner.restarts;
  // Small budgets want a near-greedy schedule: the G landscape over the
  // enablers is mostly monotone with a band constraint, so wide
  // exploration at T ~ 1 wastes evaluations random-walking.
  anneal_config.initial_temperature = 0.35;
  anneal_config.final_temperature = 0.005;
  anneal_config.pool = tuner.pool;
  anneal_config.chain_objective = [&](std::size_t chain) {
    return make_objective(tracks[1 + chain]);
  };
  if (tuner.anneal_log != nullptr) {
    // The observer runs on the caller's thread in chain-major order
    // after the chains finished, so the log rows stay well-formed and
    // identically ordered at any job count.
    anneal_config.observer = [&tuner](const opt::AnnealStep& step) {
      obs::AnnealRecord rec;
      rec.label = tuner.anneal_label;
      rec.chain = step.chain;
      rec.iteration = step.iteration;
      rec.temperature = step.temperature;
      rec.candidate_value = step.candidate_value;
      rec.current_value = step.current_value;
      rec.best_value = step.best_value;
      rec.accepted = step.accepted;
      rec.improved = step.improved;
      tuner.anneal_log->add(std::move(rec));
    };
  }

  // Warm-start anchor probes run serially before the chains and are
  // telemetry-visible (temperature 0, outside any chain's numbering).
  opt::Objective anchor_objective = make_objective(tracks[0]);
  auto log_anchor = [&](double value) {
    if (tuner.anneal_log == nullptr) return;
    obs::AnnealRecord rec;
    rec.label = tuner.anneal_label;
    rec.candidate_value = value;
    rec.current_value = value;
    rec.best_value = tracks[0].value;
    rec.accepted = true;
    tuner.anneal_log->add(std::move(rec));
  };
  if (warm_start) {
    // A warm-start chain can drift into a region that stops being
    // band-feasible as k grows; anchoring each point on the untouched
    // default tuning as well costs one evaluation and lets the search
    // recover.  Start the chain from the better of the two anchors.
    const opt::Point warm_point =
        space.clamp(point_from_tuning(scase, *warm_start));
    const opt::Point default_point =
        space.clamp(point_from_tuning(scase, config.tuning));
    const double warm_value = anchor_objective(warm_point);
    log_anchor(warm_value);
    double default_value = warm_value;
    if (default_point != warm_point) {
      default_value = anchor_objective(default_point);
      log_anchor(default_value);
    }
    anneal_config.initial_point =
        default_value < warm_value ? default_point : warm_point;
    if (anneal_config.iterations > 2) anneal_config.iterations -= 2;
  }
  util::RandomStream search_rng(tuner.seed, "enabler-tuner");
  opt::anneal(space, opt::Objective{}, anneal_config, search_rng);

  // Deterministic reduction in slot order (anchors, then chains).
  TuneOutcome outcome;
  double best_value = std::numeric_limits<double>::infinity();
  bool have = false;
  for (const EvalTrack& track : tracks) {
    outcome.evaluations += track.evaluations;
    if (track.have && (!have || track.value < best_value)) {
      have = true;
      best_value = track.value;
      outcome.tuning = track.tuning;
      outcome.result = track.result;
      outcome.objective = track.value;
    }
  }

  outcome.feasible =
      std::abs(outcome.result.efficiency() - tuner.e0) <= tuner.band + 1e-12;
  return outcome;
}

}  // namespace scal::core
