#include "core/tuner.hpp"

#include <cmath>
#include <limits>
#include <unordered_set>
#include <vector>

#include "grid/digest.hpp"
#include "obs/anneal_log.hpp"
#include "obs/phase_profiler.hpp"
#include "opt/annealing.hpp"
#include "rms/factory.hpp"
#include "rms/session.hpp"

namespace scal::core {

SimRunner default_runner() {
  return [](const grid::GridConfig& config) {
    return rms::simulate(config);
  };
}

double penalized_objective(const grid::SimulationResult& result,
                           const TunerConfig& config) {
  const double e = result.efficiency();
  const double excess =
      std::max(0.0, std::abs(e - config.e0) - config.band) / config.band;
  const double g = result.G();
  return g * (1.0 + config.penalty_weight * excess * excess);
}

namespace {

/// Best-evaluation tracker.  The search runs one of these per annealing
/// chain (plus one for the warm-start anchor probes), so concurrent
/// chains never share mutable state; tune_enablers then reduces them in
/// slot order, which reproduces the historical serial bookkeeping
/// (anchors first, then chain 0, chain 1, ...) bit for bit.
struct EvalTrack {
  double value = std::numeric_limits<double>::infinity();
  grid::Tuning tuning;
  grid::SimulationResult result;
  std::size_t evaluations = 0;
  bool have = false;

  void consider(double candidate_value, const grid::Tuning& candidate_tuning,
                const grid::SimulationResult& candidate_result) {
    ++evaluations;
    if (!have || candidate_value < value) {
      have = true;
      value = candidate_value;
      tuning = candidate_tuning;
      result = candidate_result;
    }
  }
};

/// One evaluation's identity as recorded by its slot (anchors = slot 0,
/// chain c = slot 1 + c).  The `cached` flags and the hit statistics are
/// derived from these traces by a *serial replay* in slot order, not
/// from which thread physically reached the cache first — so they are
/// identical at any --jobs count and with value memoization disabled.
struct TraceEntry {
  opt::EvalKey key;
  bool prior_epoch = false;  ///< key answered by an earlier tune's epoch
};

}  // namespace

TuneOutcome tune_enablers(const grid::GridConfig& config,
                          const ScalingCase& scase, const TunerConfig& tuner,
                          const SimRunner& runner,
                          const std::optional<grid::Tuning>& warm_start) {
  const opt::Space space = enabler_space(scase);

  // Track the best *simulation* alongside the best objective so the
  // outcome does not need a re-run at the optimum.  Slot 0 collects the
  // warm-start anchors; slot 1 + c belongs to chain c.
  std::vector<EvalTrack> tracks(1 + tuner.restarts);
  std::vector<std::vector<TraceEntry>> traces(1 + tuner.restarts);

  // The memoization table.  A private one still deduplicates repeated
  // points within this tune (annealing revisits clamped boundary points
  // constantly); a shared one additionally answers from earlier tunes.
  EvalCache local_cache;
  EvalCache& cache = tuner.cache != nullptr ? *tuner.cache : local_cache;
  cache.begin_epoch();

  // Reusable-session backend for the empty-runner sentinel.  Serial
  // searches funnel every evaluation through one session so the warm
  // system is never rebuilt; concurrent chains get one session per slot.
  rms::SessionPool local_sessions;
  rms::SessionPool& sessions =
      tuner.sessions != nullptr ? *tuner.sessions : local_sessions;
  const bool serial = tuner.pool == nullptr;

  // One profiler per slot (anchors + chains), same scheme as the
  // EvalTrack slots: concurrent chains never share one, and the
  // slot-order merge afterwards is the deterministic reduction.  Every
  // slot registers the phase first, so id 0 is "tuner.evaluate" in all
  // of them.
  std::vector<obs::PhaseProfiler> slot_profilers;
  obs::PhaseId eval_phase = 0;
  if (tuner.profiler != nullptr) {
    slot_profilers.reserve(1 + tuner.restarts);
    for (std::size_t s = 0; s < 1 + tuner.restarts; ++s) {
      slot_profilers.emplace_back(/*enabled=*/true);
      eval_phase = slot_profilers.back().phase("tuner.evaluate");
    }
  }

  auto make_objective = [&](std::size_t slot) {
    // Sessions are resolved here, on the calling thread: anneal builds
    // every chain objective up front, so SessionPool growth never races.
    rms::SimulationSession* session =
        runner ? nullptr : &sessions.slot(serial ? 0 : slot);
    return [&config, &scase, &tuner, &runner, &cache, &tracks, &traces,
            &slot_profilers, eval_phase, session,
            slot](const opt::Point& point) {
      // The scope covers the whole logical evaluation, cache hit or
      // not, so the recorded call count is a pure function of the
      // search trajectory (only the ns vary with memoization).
      obs::PhaseProfiler::Scope eval_scope(
          slot_profilers.empty() ? nullptr : &slot_profilers[slot],
          eval_phase);
      const grid::Tuning tuning =
          tuning_from_point(scase, config.tuning, point);
      grid::GridConfig candidate = config;
      candidate.tuning = tuning;
      // Search evaluations stay silent: only the caller's own instrumented
      // run records traces/probes, never the tuner's probing.
      candidate.telemetry = nullptr;
      opt::EvalKey key{grid::config_digest(candidate), point};
      grid::SimulationResult result;
      if (tuner.cache_values) {
        // Future-based path: a concurrent chain that reaches the same
        // key while the first evaluator is mid-run blocks on its result
        // instead of recomputing.  The claim carries the epoch stamp the
        // eventual insert would have, so `prior_epoch` — the only fact
        // the trace records — is unchanged by the dedup.
        EvalCache::Acquired acquired = cache.acquire(key);
        traces[slot].push_back(TraceEntry{key, acquired.prior_epoch});
        if (acquired.value) {
          result = *std::move(acquired.value);
        } else {
          try {
            result = runner ? runner(candidate) : session->run(candidate);
          } catch (...) {
            cache.abandon(key);  // let a waiter re-claim
            throw;
          }
          cache.fulfill(key, result);
        }
      } else {
        const EvalCache::Probe probe = cache.lookup(key);
        traces[slot].push_back(TraceEntry{key, probe.prior_epoch});
        result = runner ? runner(candidate) : session->run(candidate);
        // Insert in both cache modes (first-wins): the table's contents
        // — and therefore a later shared-cache tune's prior-epoch flags
        // — do not depend on whether values were served from it.
        cache.insert(key, result);
      }
      // The penalty is recomputed at hit time: a shared cache may span
      // tunes with different e0/band parameters.
      const double value = penalized_objective(result, tuner);
      tracks[slot].consider(value, tuning, result);
      return value;
    };
  };

  // Serial-replay seen-set for the anneal log's `cached` flags.  Anchors
  // feed it as they are logged (they run serially, first); the observer
  // then consumes chain traces in the same chain-major order anneal
  // replays steps in, on the calling thread.
  std::unordered_set<opt::EvalKey, opt::EvalKeyHash> seen;

  opt::AnnealingConfig anneal_config;
  anneal_config.iterations = tuner.evaluations;
  anneal_config.restarts = tuner.restarts;
  // Small budgets want a near-greedy schedule: the G landscape over the
  // enablers is mostly monotone with a band constraint, so wide
  // exploration at T ~ 1 wastes evaluations random-walking.
  anneal_config.initial_temperature = 0.35;
  anneal_config.final_temperature = 0.005;
  anneal_config.pool = tuner.pool;
  anneal_config.chain_objective = [&](std::size_t chain) {
    return make_objective(1 + chain);
  };
  if (tuner.anneal_log != nullptr) {
    // The observer runs on the caller's thread in chain-major order
    // after the chains finished, so the log rows stay well-formed and
    // identically ordered at any job count.
    anneal_config.observer = [&tuner, &traces, &seen](
                                 const opt::AnnealStep& step) {
      obs::AnnealRecord rec;
      rec.label = tuner.anneal_label;
      rec.chain = step.chain;
      rec.iteration = step.iteration;
      rec.temperature = step.temperature;
      rec.candidate_value = step.candidate_value;
      rec.current_value = step.current_value;
      rec.best_value = step.best_value;
      rec.accepted = step.accepted;
      rec.improved = step.improved;
      // Chains make exactly one objective call per iteration, so the
      // trace row for this step is traces[1 + chain][iteration].
      const TraceEntry& trace = traces[1 + step.chain][step.iteration];
      rec.cached = trace.prior_epoch || !seen.insert(trace.key).second;
      tuner.anneal_log->add(std::move(rec));
    };
  }

  // Warm-start anchor probes run serially before the chains and are
  // telemetry-visible (temperature 0, outside any chain's numbering).
  opt::Objective anchor_objective = make_objective(0);
  auto log_anchor = [&](double value) {
    if (tuner.anneal_log == nullptr) return;
    const TraceEntry& trace = traces[0].back();
    obs::AnnealRecord rec;
    rec.label = tuner.anneal_label;
    rec.candidate_value = value;
    rec.current_value = value;
    rec.best_value = tracks[0].value;
    rec.accepted = true;
    rec.cached = trace.prior_epoch || !seen.insert(trace.key).second;
    tuner.anneal_log->add(std::move(rec));
  };
  if (warm_start) {
    // A warm-start chain can drift into a region that stops being
    // band-feasible as k grows; anchoring each point on the untouched
    // default tuning as well costs one evaluation and lets the search
    // recover.  Start the chain from the better of the two anchors.
    const opt::Point warm_point =
        space.clamp(point_from_tuning(scase, *warm_start));
    const opt::Point default_point =
        space.clamp(point_from_tuning(scase, config.tuning));
    const double warm_value = anchor_objective(warm_point);
    log_anchor(warm_value);
    double default_value = warm_value;
    if (default_point != warm_point) {
      default_value = anchor_objective(default_point);
      log_anchor(default_value);
    }
    anneal_config.initial_point =
        default_value < warm_value ? default_point : warm_point;
    if (anneal_config.iterations > 2) anneal_config.iterations -= 2;
  }
  util::RandomStream search_rng(tuner.seed, "enabler-tuner");
  opt::anneal(space, opt::Objective{}, anneal_config, search_rng);

  // Slot-order profiler reduction, mirroring the EvalTrack one below.
  if (tuner.profiler != nullptr) {
    for (const obs::PhaseProfiler& slot_profiler : slot_profilers) {
      tuner.profiler->merge(slot_profiler);
    }
  }

  // Deterministic reduction in slot order (anchors, then chains).
  TuneOutcome outcome;
  double best_value = std::numeric_limits<double>::infinity();
  bool have = false;
  for (const EvalTrack& track : tracks) {
    outcome.evaluations += track.evaluations;
    if (track.have && (!have || track.value < best_value)) {
      have = true;
      best_value = track.value;
      outcome.tuning = track.tuning;
      outcome.result = track.result;
      outcome.objective = track.value;
    }
  }

  // Hit statistics by the same serial replay, from a fresh seen-set so
  // they do not depend on whether an anneal log was attached.
  std::unordered_set<opt::EvalKey, opt::EvalKeyHash> replay;
  for (const std::vector<TraceEntry>& slot_trace : traces) {
    for (const TraceEntry& trace : slot_trace) {
      if (!replay.insert(trace.key).second) {
        ++outcome.cache_hits;
      } else if (trace.prior_epoch) {
        ++outcome.cache_hits;
        ++outcome.cache_prior_hits;
      }
    }
  }

  outcome.feasible =
      std::abs(outcome.result.efficiency() - tuner.e0) <= tuner.band + 1e-12;
  return outcome;
}

}  // namespace scal::core
