#include "core/isoefficiency_function.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace scal::core {

namespace {

grid::GridConfig scaled_config(const grid::GridConfig& base, double k,
                               double multiplier) {
  grid::GridConfig scaled = base;
  scaled.topology.nodes = static_cast<std::size_t>(
      std::llround(static_cast<double>(base.topology.nodes) * k));
  scaled.workload.mean_interarrival =
      base.workload.mean_interarrival / (k * multiplier);
  return scaled;
}

}  // namespace

IsoefficiencyFunction measure_isoefficiency_function(
    const grid::GridConfig& base, const IsoefficiencyFunctionConfig& config,
    const SimRunner& runner) {
  if (config.scale_factors.empty() ||
      !(config.multiplier_lo < config.multiplier_hi) ||
      !(config.e0 > 0.0 && config.e0 < 1.0)) {
    throw std::invalid_argument(
        "measure_isoefficiency_function: bad configuration");
  }

  IsoefficiencyFunction function;
  for (const double k : config.scale_factors) {
    IsoefficiencyPoint point;
    point.k = k;

    // Efficiency falls with load on this substrate: E(lo) should sit
    // above e0 and E(hi) below it for the bisection to make sense.
    double lo = config.multiplier_lo;
    double hi = config.multiplier_hi;
    auto efficiency_at = [&](double multiplier) {
      const grid::SimulationResult r =
          runner(scaled_config(base, k, multiplier));
      point.sim = r;
      return r.efficiency();
    };

    const double e_lo = efficiency_at(lo);
    const double e_hi = efficiency_at(hi);
    if (!(e_lo >= config.e0 && e_hi <= config.e0)) {
      // Bracket does not straddle e0: report the closer endpoint,
      // unconverged.
      point.workload_multiplier =
          std::abs(e_lo - config.e0) < std::abs(e_hi - config.e0) ? lo : hi;
      point.achieved_efficiency = efficiency_at(point.workload_multiplier);
      point.converged =
          std::abs(point.achieved_efficiency - config.e0) <=
          config.tolerance;
      function.points.push_back(point);
      continue;
    }

    double mid = 0.5 * (lo + hi);
    double e_mid = efficiency_at(mid);
    for (std::size_t step = 0;
         step < config.max_bisection_steps &&
         std::abs(e_mid - config.e0) > config.tolerance;
         ++step) {
      if (e_mid > config.e0) {
        lo = mid;  // still too efficient: push more load
      } else {
        hi = mid;
      }
      mid = 0.5 * (lo + hi);
      e_mid = efficiency_at(mid);
    }
    point.workload_multiplier = mid;
    point.achieved_efficiency = e_mid;
    point.converged = std::abs(e_mid - config.e0) <= config.tolerance;
    function.points.push_back(point);
  }

  // Fit log W(k) = a + b log k with W = k x multiplier.
  std::vector<double> log_k, log_w;
  for (const IsoefficiencyPoint& p : function.points) {
    if (p.workload_multiplier > 0.0) {
      log_k.push_back(std::log(p.k));
      log_w.push_back(std::log(p.k * p.workload_multiplier));
    }
  }
  if (log_k.size() >= 2) {
    function.loglog_slope = util::fit_line(log_k, log_w).slope;
  }
  return function;
}

}  // namespace scal::core
