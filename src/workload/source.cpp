#include "workload/source.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "workload/arrival_cache.hpp"
#include "workload/swf.hpp"
#include "workload/trace.hpp"

namespace scal::workload {

std::string to_string(SourceKind kind) {
  switch (kind) {
    case SourceKind::kSynthetic: return "synthetic";
    case SourceKind::kTrace: return "trace";
    case SourceKind::kSwf: return "swf";
  }
  return "?";
}

void SourceSpec::validate() const {
  if (kind != SourceKind::kSynthetic && path.empty()) {
    throw std::invalid_argument("SourceSpec: " + to_string(kind) +
                                " source needs a path");
  }
  if (!(time_scale > 0.0)) {
    throw std::invalid_argument("SourceSpec: time scale must be positive");
  }
  for (const ModulatorSpec& m : modulators) m.validate();
}

std::string SourceSpec::summary() const {
  std::string out = to_string(kind);
  if (!path.empty()) {
    out += ':';
    out += path;
  }
  if (kind == SourceKind::kSwf && time_scale != 1.0) {
    std::ostringstream scale;
    scale << time_scale;
    out += '@';
    out += scale.str();
  }
  for (const ModulatorSpec& m : modulators) {
    const std::string clause = m.to_spec();
    // diurnal:amplitude=... reads better as diurnal(amplitude=...) in a
    // one-line summary.
    const auto colon = clause.find(':');
    out += '+';
    out.append(clause, 0, colon);
    out += '(';
    out.append(clause, colon + 1, std::string::npos);
    out += ')';
  }
  return out;
}

SourceSpec SourceSpec::parse(const std::string& text) {
  SourceSpec spec;
  if (text.empty() || text == "synthetic") return spec;
  const auto colon = text.find(':');
  const std::string kind_name = text.substr(0, colon);
  if (kind_name == "trace") {
    spec.kind = SourceKind::kTrace;
  } else if (kind_name == "swf") {
    spec.kind = SourceKind::kSwf;
  } else {
    throw std::invalid_argument(
        "SourceSpec: expected 'synthetic', 'trace:PATH', or "
        "'swf:PATH[@SCALE]', got '" +
        text + "'");
  }
  if (colon == std::string::npos || colon + 1 >= text.size()) {
    throw std::invalid_argument("SourceSpec: '" + kind_name +
                                "' needs a path");
  }
  spec.path = text.substr(colon + 1);
  if (spec.kind == SourceKind::kSwf) {
    const auto at = spec.path.rfind('@');
    if (at != std::string::npos) {
      const std::string scale_text = spec.path.substr(at + 1);
      char* end = nullptr;
      const double scale = std::strtod(scale_text.c_str(), &end);
      if (end == scale_text.c_str() || *end != '\0' || !(scale > 0.0)) {
        throw std::invalid_argument(
            "SourceSpec: bad time scale '" + scale_text + "'");
      }
      spec.time_scale = scale;
      spec.path = spec.path.substr(0, at);
    }
  }
  spec.validate();
  return spec;
}

std::vector<Job> WorkloadSource::generate_until(sim::Time horizon,
                                                std::size_t max_jobs) {
  std::vector<Job> jobs;
  Job job;
  while (jobs.size() < max_jobs && next(job)) {
    if (job.arrival >= horizon) break;
    jobs.push_back(job);
  }
  return jobs;
}

namespace {
std::ifstream open_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("TraceSource: cannot open " + path);
  return in;
}
}  // namespace

TraceSource::TraceSource(const std::string& path, sim::Time horizon,
                         std::uint32_t clusters)
    : file_(open_trace(path)),
      reader_(file_),
      horizon_(horizon),
      clusters_(clusters) {
  if (clusters == 0) {
    throw std::invalid_argument("TraceSource: need at least one cluster");
  }
}

bool TraceSource::produce(Job& out) {
  // Skip-and-continue on the horizon filter: the legacy path erased
  // every at-or-past-horizon row from the whole (possibly unsorted)
  // file, so a later in-horizon row must still be emitted.
  while (reader_.next(out)) {
    if (out.arrival >= horizon_) continue;
    out.origin_cluster =
        static_cast<std::uint32_t>(out.origin_cluster % clusters_);
    return true;
  }
  return false;
}

std::unique_ptr<WorkloadSource> make_source(const SourceSpec& spec,
                                            const WorkloadConfig& workload,
                                            std::uint64_t seed,
                                            sim::Time horizon) {
  spec.validate();
  std::unique_ptr<WorkloadSource> source;
  switch (spec.kind) {
    case SourceKind::kSynthetic:
      source = std::make_unique<SyntheticSource>(
          workload, util::RandomStream(seed, "workload"));
      break;
    case SourceKind::kTrace:
      source =
          std::make_unique<TraceSource>(spec.path, horizon, workload.clusters);
      break;
    case SourceKind::kSwf: {
      SwfMapping mapping;
      mapping.time_scale = spec.time_scale;
      mapping.t_cpu = workload.t_cpu;
      mapping.benefit_lo = workload.benefit_lo;
      mapping.benefit_hi = workload.benefit_hi;
      mapping.clusters = workload.clusters;
      mapping.seed = seed;
      source = std::make_unique<SwfSource>(spec.path, mapping);
      break;
    }
  }
  const exec::SeedSequence seeds = modulator_seeds(seed);
  for (std::size_t i = 0; i < spec.modulators.size(); ++i) {
    source = std::make_unique<ModulatedSource>(
        std::move(source), spec.modulators[i], seeds.at(i));
  }
  return source;
}

std::unique_ptr<JobStream> make_stream(const SourceSpec& spec,
                                       const WorkloadConfig& workload,
                                       std::uint64_t seed, sim::Time horizon,
                                       std::size_t max_jobs) {
  return std::make_unique<BoundedStream>(
      make_source(spec, workload, seed, horizon), horizon, max_jobs);
}

ArrivalStream cached_arrivals(const std::array<std::uint64_t, 2>& key,
                              const SourceSpec& spec,
                              const WorkloadConfig& workload,
                              std::uint64_t seed, sim::Time horizon) {
  ArrivalCache& cache = ArrivalCache::instance();
  if (auto jobs = cache.lookup(key)) return {std::move(jobs), true};
  auto generated = std::make_shared<const std::vector<Job>>(
      make_source(spec, workload, seed, horizon)->generate_until(horizon));
  return {cache.store(key, std::move(generated)), false};
}

PulledArrivals cached_stream(const std::array<std::uint64_t, 2>& key,
                             const SourceSpec& spec,
                             const WorkloadConfig& workload,
                             std::uint64_t seed, sim::Time horizon,
                             bool reusable) {
  ArrivalCache& cache = ArrivalCache::instance();
  if (auto jobs = cache.lookup(key)) {
    return {std::make_unique<VectorReplayStream>(std::move(jobs)), true};
  }
  if (!reusable) {
    // One-shot run: keep the generator live instead of materializing —
    // the whole point of the streaming tier (the skipped store is
    // visible on the cache for the manifest's workload block).
    cache.count_store_skip();
    return {make_stream(spec, workload, seed, horizon), false};
  }
  auto generated = std::make_shared<const std::vector<Job>>(
      make_source(spec, workload, seed, horizon)->generate_until(horizon));
  return {std::make_unique<VectorReplayStream>(
              cache.store(key, std::move(generated))),
          false};
}

}  // namespace scal::workload
