#include "workload/modulator.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "workload/source.hpp"

namespace scal::workload {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("modulator spec: " + what);
}

double number(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    bad("'" + key + "' expects a number, got '" + text + "'");
  }
  return v;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

/// Trims trailing ".000000" noise from default double formatting.
std::string fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::string to_string(ModulatorKind kind) {
  switch (kind) {
    case ModulatorKind::kDiurnal: return "diurnal";
    case ModulatorKind::kFlash: return "flash";
    case ModulatorKind::kBurst: return "burst";
  }
  return "?";
}

void ModulatorSpec::validate() const {
  switch (kind) {
    case ModulatorKind::kDiurnal:
      // amplitude < 1 keeps the rate profile strictly positive, so the
      // warp stays strictly monotone (invertible).
      if (amplitude < 0.0 || amplitude >= 1.0) {
        bad("diurnal amplitude must be in [0, 1)");
      }
      if (amplitude > 0.0 && !(period > 0.0)) {
        bad("diurnal amplitude > 0 requires period > 0");
      }
      break;
    case ModulatorKind::kFlash:
      if (!(factor >= 1.0)) bad("flash factor must be >= 1");
      if (at < 0.0 || width < 0.0) {
        bad("flash at/width must be non-negative");
      }
      if (factor > 1.0 && !(width > 0.0)) {
        bad("flash factor > 1 requires width > 0");
      }
      break;
    case ModulatorKind::kBurst:
      if (!(every > 0.0) || !(mean_width > 0.0)) {
        bad("burst every/width must be positive");
      }
      if (!(alpha > 0.0)) bad("burst alpha must be positive");
      if (!(max_factor >= 1.0)) bad("burst max must be >= 1");
      break;
  }
}

std::string ModulatorSpec::to_spec() const {
  std::ostringstream out;
  switch (kind) {
    case ModulatorKind::kDiurnal:
      out << "diurnal:amplitude=" << fmt(amplitude)
          << ",period=" << fmt(period);
      break;
    case ModulatorKind::kFlash:
      out << "flash:at=" << fmt(at) << ",width=" << fmt(width)
          << ",factor=" << fmt(factor);
      break;
    case ModulatorKind::kBurst:
      out << "burst:every=" << fmt(every) << ",width=" << fmt(mean_width)
          << ",alpha=" << fmt(alpha) << ",max=" << fmt(max_factor);
      break;
  }
  return out.str();
}

std::vector<ModulatorSpec> parse_modulators(const std::string& spec) {
  std::vector<ModulatorSpec> chain;
  if (spec.empty()) return chain;
  for (const std::string& clause : split(spec, ';')) {
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      bad("clause '" + clause + "' is missing ':'");
    }
    const std::string name = clause.substr(0, colon);
    ModulatorSpec m;
    if (name == "diurnal") {
      m.kind = ModulatorKind::kDiurnal;
    } else if (name == "flash") {
      m.kind = ModulatorKind::kFlash;
    } else if (name == "burst") {
      m.kind = ModulatorKind::kBurst;
    } else {
      bad("unknown modulator '" + name + "'");
    }
    for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        bad("'" + kv + "' in clause '" + name + "' is missing '='");
      }
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      if (m.kind == ModulatorKind::kDiurnal) {
        if (key == "amplitude") {
          m.amplitude = number(key, val);
        } else if (key == "period") {
          m.period = number(key, val);
        } else {
          bad("unknown diurnal key '" + key + "'");
        }
      } else if (m.kind == ModulatorKind::kFlash) {
        if (key == "at") {
          m.at = number(key, val);
        } else if (key == "width") {
          m.width = number(key, val);
        } else if (key == "factor") {
          m.factor = number(key, val);
        } else {
          bad("unknown flash key '" + key + "'");
        }
      } else {
        if (key == "every") {
          m.every = number(key, val);
        } else if (key == "width") {
          m.mean_width = number(key, val);
        } else if (key == "alpha") {
          m.alpha = number(key, val);
        } else if (key == "max") {
          m.max_factor = number(key, val);
        } else {
          bad("unknown burst key '" + key + "'");
        }
      }
    }
    m.validate();
    chain.push_back(m);
  }
  return chain;
}

std::string modulators_to_spec(const std::vector<ModulatorSpec>& chain) {
  std::string out;
  for (const ModulatorSpec& m : chain) {
    if (!out.empty()) out += ';';
    out += m.to_spec();
  }
  return out;
}

TimeWarp::TimeWarp(const ModulatorSpec& spec, util::RandomStream rng)
    : spec_(spec), rng_(rng) {
  spec_.validate();
}

double TimeWarp::warp(double t) {
  if (t < last_input_) {
    throw std::logic_error("TimeWarp: inputs must be nondecreasing");
  }
  last_input_ = t;
  if (t <= 0.0) return t;
  switch (spec_.kind) {
    case ModulatorKind::kDiurnal: return invert_diurnal(t);
    case ModulatorKind::kFlash: return invert_flash(t);
    case ModulatorKind::kBurst: return invert_burst(t);
  }
  return t;
}

double TimeWarp::invert_diurnal(double t) const {
  if (spec_.amplitude <= 0.0) return t;
  // Lambda(s) = s + c * (1 - cos(2*pi*s/period)), c = amplitude*period/2pi,
  // so Lambda(s) - s is in [0, 2c]: the root lies in [t - 2c, t].  A
  // fixed-iteration bisection reaches double resolution deterministically
  // (no tolerance-dependent branching).
  const double two_pi = 2.0 * std::numbers::pi;
  const double c = spec_.amplitude * spec_.period / two_pi;
  double lo = t - 2.0 * c;
  if (lo < 0.0) lo = 0.0;
  double hi = t;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double lam = mid + c * (1.0 - std::cos(two_pi * mid / spec_.period));
    if (lam < t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double TimeWarp::invert_flash(double t) const {
  // Lambda(s) = s + (factor-1) * clamp(s - at, 0, width): exact
  // piecewise-linear inverse, no RNG.
  const double extra = spec_.factor - 1.0;
  if (extra <= 0.0 || t <= spec_.at) return t;
  const double window_end = spec_.at + spec_.factor * spec_.width;
  if (t <= window_end) return spec_.at + (t - spec_.at) / spec_.factor;
  return t - extra * spec_.width;
}

double TimeWarp::invert_burst(double t) {
  extend_burst(t);
  return seg_start_ + (t - seg_lambda_) / seg_rate_;
}

void TimeWarp::extend_burst(double target) {
  // Alternating quiet / burst segments realized lazily: quiet gaps are
  // Exp(every) at rate 1, burst widths Exp(mean_width) at a
  // bounded-Pareto height on [1, max].  Draw order is fixed, so the
  // realized profile is a pure function of (spec, seed) and the prefix
  // consumed — the determinism the 1-vs-N jobs contract needs.
  if (seg_end_ <= seg_start_) {
    seg_end_ = seg_start_ + rng_.exponential(spec_.every);
    seg_rate_ = 1.0;
    in_burst_ = false;
  }
  for (;;) {
    const double seg_span = (seg_end_ - seg_start_) * seg_rate_;
    if (seg_lambda_ + seg_span > target) return;
    seg_lambda_ += seg_span;
    seg_start_ = seg_end_;
    if (in_burst_) {
      seg_end_ = seg_start_ + rng_.exponential(spec_.every);
      seg_rate_ = 1.0;
      in_burst_ = false;
    } else {
      seg_end_ = seg_start_ + rng_.exponential(spec_.mean_width);
      seg_rate_ = spec_.max_factor > 1.0
                      ? rng_.bounded_pareto(spec_.alpha, 1.0, spec_.max_factor)
                      : 1.0;
      in_burst_ = true;
    }
  }
}

ModulatedSource::ModulatedSource(std::unique_ptr<WorkloadSource> base,
                                 const ModulatorSpec& spec,
                                 std::uint64_t warp_seed)
    : base_(std::move(base)),
      warp_(std::make_unique<TimeWarp>(spec, util::RandomStream(warp_seed))) {}

ModulatedSource::~ModulatedSource() = default;

bool ModulatedSource::produce(Job& out) {
  if (!base_->next(out)) return false;
  out.arrival = warp_->warp(out.arrival);
  return true;
}

}  // namespace scal::workload
