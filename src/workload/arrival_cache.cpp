#include "workload/arrival_cache.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace scal::workload {

ArrivalCache& ArrivalCache::instance() {
  static ArrivalCache cache;
  static const bool env_applied = []() {
    const std::int64_t budget = util::env_int("SCAL_ARRIVAL_CACHE_BYTES", 0);
    if (budget > 0) cache.set_max_bytes(static_cast<std::size_t>(budget));
    return true;
  }();
  (void)env_applied;
  return cache;
}

std::shared_ptr<const std::vector<Job>> ArrivalCache::lookup(const Key& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<const std::vector<Job>> ArrivalCache::store(
    const Key& key, std::shared_ptr<const std::vector<Job>> jobs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key, std::move(jobs));
  if (inserted) {
    bytes_ += payload_bytes(*it->second);
    insertion_order_.push_back(key);
    enforce_budget_locked();
    // The canonical pointer outlives a same-call eviction: the caller's
    // shared_ptr keeps the payload alive, it just is not memoized.
    const auto canonical = it->second;
    return canonical;
  }
  return it->second;
}

void ArrivalCache::enforce_budget_locked() {
  while (max_bytes_ != 0 && bytes_ > max_bytes_ && !insertion_order_.empty()) {
    const Key victim = insertion_order_.front();
    insertion_order_.pop_front();
    const auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    bytes_ -= std::min(bytes_, payload_bytes(*it->second));
    entries_.erase(it);
    ++evictions_;
  }
}

void ArrivalCache::set_max_bytes(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_bytes_ = bytes;
  enforce_budget_locked();
}

std::size_t ArrivalCache::max_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_bytes_;
}

std::size_t ArrivalCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t ArrivalCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ArrivalCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ArrivalCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t ArrivalCache::store_skips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_skips_;
}

void ArrivalCache::count_store_skip() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++store_skips_;
}

std::size_t ArrivalCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ArrivalCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  store_skips_ = 0;
}

}  // namespace scal::workload
