#include "workload/arrival_cache.hpp"

namespace scal::workload {

ArrivalCache& ArrivalCache::instance() {
  static ArrivalCache cache;
  return cache;
}

std::shared_ptr<const std::vector<Job>> ArrivalCache::lookup(const Key& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<const std::vector<Job>> ArrivalCache::store(
    const Key& key, std::shared_ptr<const std::vector<Job>> jobs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key, std::move(jobs));
  return it->second;
}

std::uint64_t ArrivalCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ArrivalCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ArrivalCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ArrivalCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace scal::workload
