#include "workload/generator.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace scal::workload {

double expected_exec_time(const WorkloadConfig& config) {
  switch (config.exec_model) {
    case ExecTimeModel::kLognormal:
      return std::exp(config.lognormal_mu +
                      0.5 * config.lognormal_sigma * config.lognormal_sigma);
    case ExecTimeModel::kBoundedPareto: {
      const double a = config.pareto_alpha;
      const double lo = config.pareto_lo;
      const double hi = config.pareto_hi;
      if (a == 1.0) {
        return std::log(hi / lo) / (1.0 / lo - 1.0 / hi);
      }
      const double num = std::pow(lo, a) / (1.0 - std::pow(lo / hi, a));
      return num * (a / (a - 1.0)) *
             (1.0 / std::pow(lo, a - 1.0) - 1.0 / std::pow(hi, a - 1.0));
    }
    case ExecTimeModel::kUniform:
      return 0.5 * (config.uniform_lo + config.uniform_hi);
  }
  throw std::logic_error("expected_exec_time: unknown exec model");
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config,
                                     util::RandomStream rng)
    : config_(config), rng_(rng) {
  if (!(config_.mean_interarrival > 0.0)) {
    throw std::invalid_argument("WorkloadGenerator: bad interarrival mean");
  }
  if (!(config_.t_cpu > 0.0) || config_.clusters == 0 ||
      !(config_.benefit_lo >= 1.0) ||
      !(config_.benefit_hi >= config_.benefit_lo) ||
      !(config_.requested_factor_max >= 1.0)) {
    throw std::invalid_argument("WorkloadGenerator: bad configuration");
  }
  if (config_.diurnal_amplitude < 0.0 || config_.diurnal_amplitude >= 1.0 ||
      (config_.diurnal_amplitude > 0.0 && !(config_.diurnal_period > 0.0))) {
    throw std::invalid_argument("WorkloadGenerator: bad diurnal modulation");
  }
  if (config_.origin_hotspot_weight < 0.0 ||
      config_.origin_hotspot_weight > 1.0) {
    throw std::invalid_argument("WorkloadGenerator: bad hotspot weight");
  }
}

double WorkloadGenerator::draw_exec_time() {
  switch (config_.exec_model) {
    case ExecTimeModel::kLognormal:
      return rng_.lognormal(config_.lognormal_mu, config_.lognormal_sigma);
    case ExecTimeModel::kBoundedPareto:
      return rng_.bounded_pareto(config_.pareto_alpha, config_.pareto_lo,
                                 config_.pareto_hi);
    case ExecTimeModel::kUniform:
      return rng_.uniform(config_.uniform_lo, config_.uniform_hi);
  }
  throw std::logic_error("WorkloadGenerator: unknown exec model");
}

Job WorkloadGenerator::next() {
  Job job;
  job.id = next_id_++;
  if (config_.diurnal_amplitude > 0.0) {
    // Thinning: candidates at the peak rate, accepted with probability
    // lambda(t) / lambda_peak, yields an exact inhomogeneous Poisson
    // process.
    const double peak_interarrival =
        config_.mean_interarrival / (1.0 + config_.diurnal_amplitude);
    for (;;) {
      clock_ += rng_.exponential(peak_interarrival);
      const double relative_rate =
          (1.0 + config_.diurnal_amplitude *
                     std::sin(2.0 * std::numbers::pi * clock_ /
                              config_.diurnal_period)) /
          (1.0 + config_.diurnal_amplitude);
      if (rng_.uniform() < relative_rate) break;
    }
  } else {
    clock_ += rng_.exponential(config_.mean_interarrival);
  }
  job.arrival = clock_;
  job.exec_time = draw_exec_time();
  job.requested_time =
      job.exec_time * rng_.uniform(1.0, config_.requested_factor_max);
  job.partition_size = 1;      // paper Section 3.1
  job.cancellable = false;     // paper Section 3.1
  job.job_class = job.exec_time <= config_.t_cpu ? JobClass::kLocal
                                                 : JobClass::kRemote;
  job.benefit_factor = rng_.uniform(config_.benefit_lo, config_.benefit_hi);
  job.benefit_deadline = job.exec_time * job.benefit_factor;
  if (config_.origin_hotspot_weight > 0.0 &&
      rng_.bernoulli(config_.origin_hotspot_weight)) {
    job.origin_cluster = 0;
  } else {
    job.origin_cluster = static_cast<std::uint32_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(config_.clusters) - 1));
  }
  return job;
}

std::vector<Job> WorkloadGenerator::generate_until(sim::Time horizon,
                                                   std::size_t max_jobs) {
  std::vector<Job> jobs;
  while (jobs.size() < max_jobs) {
    Job job = next();
    if (job.arrival >= horizon) break;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace scal::workload
