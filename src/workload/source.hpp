#pragma once
// Pluggable workload sources (docs/WORKLOADS.md): every arrival stream
// the grid consumes comes from a WorkloadSource — the Cirne-Berman
// synthetic generator, a saved CSV trace, or a Standard Workload Format
// log — optionally wrapped in composable load modulators.  A SourceSpec
// names one such stack declaratively (so configs stay hashable and
// digest-able), and cached_arrivals() memoizes fully generated streams
// process-wide so structural rebuilds and session pools stop
// regenerating identical arrivals.

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.hpp"
#include "workload/job.hpp"
#include "workload/modulator.hpp"
#include "workload/stream.hpp"
#include "workload/trace.hpp"

namespace scal::workload {

enum class SourceKind : std::uint8_t {
  kSynthetic,  ///< WorkloadGenerator (the default; seed-path identical)
  kTrace,      ///< CSV trace saved by save_trace (exact replay)
  kSwf,        ///< Standard Workload Format log (swf.hpp mapping)
};

std::string to_string(SourceKind kind);

/// Declarative description of a workload stack: a base source plus a
/// chain of modulators applied in order.  The default-constructed spec
/// is the legacy synthetic path (is_default() == true), which the grid
/// keeps byte-identical to the seed goldens.
struct SourceSpec {
  SourceKind kind = SourceKind::kSynthetic;
  /// Trace / SWF file path (kTrace, kSwf).
  std::string path;
  /// SWF time scale: simulation time units per trace second (kSwf).
  double time_scale = 1.0;
  std::vector<ModulatorSpec> modulators;

  bool is_default() const noexcept {
    return kind == SourceKind::kSynthetic && modulators.empty();
  }

  /// Throws std::invalid_argument on nonsense (missing paths, bad
  /// modulator parameters, non-positive time scale).
  void validate() const;

  /// Human/manifest-readable one-liner, e.g.
  ///   "swf:tests/data/small.swf@0.1+diurnal(amplitude=0.6,period=500)".
  std::string summary() const;

  /// Parse the CLI form: "synthetic" (or ""), "trace:PATH", or
  /// "swf:PATH[@SCALE]".  Modulators are attached separately (the
  /// --modulate spec).  Throws std::invalid_argument on bad input.
  static SourceSpec parse(const std::string& text);
};

/// An ordered stream of jobs.  Implementations produce arrivals in
/// nondecreasing time order; ids are stream-local and stable.  A source
/// IS a JobStream: consumers pull via next()/peek() (O(1) memory per
/// job); generate_until remains as the materializing shim.
class WorkloadSource : public JobStream {
 public:
  /// Drain the stream up to `horizon` (exclusive); at most `max_jobs`.
  /// Legacy shim over the pull interface — use next() to stay O(1).
  std::vector<Job> generate_until(sim::Time horizon,
                                  std::size_t max_jobs = SIZE_MAX);
};

/// The existing generator behind the source interface.  Constructed the
/// way GridSystem always seeded it — util::RandomStream(seed,
/// "workload") — so the emitted stream is the seed stream, job for job.
class SyntheticSource : public WorkloadSource {
 public:
  SyntheticSource(const WorkloadConfig& config, util::RandomStream rng)
      : gen_(config, rng) {}

 protected:
  bool produce(Job& out) override {
    out = gen_.next();
    return true;  // unbounded: the horizon terminates the stream
  }

 private:
  WorkloadGenerator gen_;
};

/// Replay of a CSV trace written by save_trace, streamed row by row —
/// the file is never materialized.  Emission applies the legacy
/// GridConfig::trace_path semantics exactly: rows with arrivals at or
/// past `horizon` are skipped (not terminal — the legacy path filtered
/// the whole, possibly unsorted, file) and origin clusters are remapped
/// modulo `clusters`; ids, order, and every other field come straight
/// from the file.
class TraceSource : public WorkloadSource {
 public:
  TraceSource(const std::string& path, sim::Time horizon,
              std::uint32_t clusters);

 protected:
  bool produce(Job& out) override;

 private:
  std::ifstream file_;
  TraceReader reader_;
  sim::Time horizon_;
  std::uint32_t clusters_;
};

/// One modulator layered over any source: arrivals are passed through
/// the modulator's TimeWarp (everything else is untouched).  Chains
/// compose by nesting; each layer owns its private RNG substream.
class ModulatedSource : public WorkloadSource {
 public:
  ModulatedSource(std::unique_ptr<WorkloadSource> base,
                  const ModulatorSpec& spec, std::uint64_t warp_seed);
  ~ModulatedSource() override;

 protected:
  bool produce(Job& out) override;

 private:
  std::unique_ptr<WorkloadSource> base_;
  std::unique_ptr<TimeWarp> warp_;
};

/// Build the full source stack for `spec`: the base source (seeded and
/// bounded like the grid expects, with `workload.clusters` already set
/// to the run's cluster count) wrapped by the modulator chain in spec
/// order, position i drawing from modulator_seeds(seed).at(i).
std::unique_ptr<WorkloadSource> make_source(const SourceSpec& spec,
                                            const WorkloadConfig& workload,
                                            std::uint64_t seed,
                                            sim::Time horizon);

/// The full stack bounded at the horizon: make_source wrapped in a
/// BoundedStream, so pulling it yields exactly the jobs generate_until
/// would have materialized — one at a time.
std::unique_ptr<JobStream> make_stream(const SourceSpec& spec,
                                       const WorkloadConfig& workload,
                                       std::uint64_t seed, sim::Time horizon,
                                       std::size_t max_jobs = SIZE_MAX);

/// A memoized arrival stream: the generated jobs (shared, immutable)
/// plus whether the process-wide ArrivalCache already held them.
struct ArrivalStream {
  std::shared_ptr<const std::vector<Job>> jobs;
  bool from_cache = false;
};

/// Generate-or-recall the arrival stream for (spec, workload, seed,
/// horizon).  `key` must fingerprint every input that shapes the stream
/// (grid::workload_digest provides exactly that); equal keys return the
/// same shared vector without regenerating.  Thread-safe.
ArrivalStream cached_arrivals(const std::array<std::uint64_t, 2>& key,
                              const SourceSpec& spec,
                              const WorkloadConfig& workload,
                              std::uint64_t seed, sim::Time horizon);

/// The pull-based face of the arrival memo: a stream handle plus cache
/// provenance.
struct PulledArrivals {
  std::unique_ptr<JobStream> stream;
  bool from_cache = false;
};

/// Stream-or-recall the arrivals for `key`.  A cache hit replays the
/// memoized vector (free, O(1) state).  On a miss, `reusable` decides
/// the trade: true materializes and stores the stream for later runs
/// (the session-pool / tuner path — exactly cached_arrivals), false
/// returns the live generator without storing anything, keeping per-job
/// memory O(1) for one-shot runs (the store skip is counted on the
/// cache).  Thread-safe.
PulledArrivals cached_stream(const std::array<std::uint64_t, 2>& key,
                             const SourceSpec& spec,
                             const WorkloadConfig& workload,
                             std::uint64_t seed, sim::Time horizon,
                             bool reusable);

}  // namespace scal::workload
