#pragma once
// JobStream — the pull-based arrival surface (docs/WORKLOADS.md).
//
// Every consumer of a workload pulls jobs one at a time through this
// interface, so per-job memory stays O(1) no matter how long the stream
// runs: a 100M-job horizon costs the same resident set as a 1k-job one.
// The eager std::vector<Job> surfaces (generate_until, load_trace, the
// ArrivalCache values) are shims over streams now — materializing is a
// choice the caller makes, not a property of the API.
//
// Implementations override produce(); consumers call next()/peek().
// peek() keeps a one-slot lookahead so a consumer can inspect the next
// arrival (e.g. to decide whether it crosses a horizon) without
// consuming it.

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "workload/job.hpp"

namespace scal::workload {

class JobStream {
 public:
  virtual ~JobStream() = default;

  /// Pull the next job; false when the stream is exhausted (and then
  /// forever after).
  bool next(Job& out) {
    if (lookahead_.has_value()) {
      out = *lookahead_;
      lookahead_.reset();
      ++produced_;
      return true;
    }
    if (!produce(out)) return false;
    ++produced_;
    return true;
  }

  /// The next job without consuming it; null when exhausted.  The
  /// pointer stays valid until the next next()/peek() call.
  const Job* peek() {
    if (!lookahead_.has_value()) {
      Job job;
      if (!produce(job)) return nullptr;
      lookahead_ = job;
    }
    return &*lookahead_;
  }

  /// Jobs handed out via next() so far.
  std::uint64_t produced() const noexcept { return produced_; }

 protected:
  /// Produce the next job; false when the stream is exhausted.
  virtual bool produce(Job& out) = 0;

 private:
  std::optional<Job> lookahead_;
  std::uint64_t produced_ = 0;
};

/// Drain a stream into a vector (at most `max_jobs`) — the materializing
/// shim for callers that genuinely need every job resident.
std::vector<Job> collect(JobStream& stream,
                         std::size_t max_jobs =
                             std::numeric_limits<std::size_t>::max());

/// Replay of an already-materialized stream (an ArrivalCache entry, a
/// loaded fixture): shares the immutable vector, holds O(1) state.
class VectorReplayStream final : public JobStream {
 public:
  explicit VectorReplayStream(std::shared_ptr<const std::vector<Job>> jobs)
      : jobs_(std::move(jobs)) {}

 protected:
  bool produce(Job& out) override {
    if (jobs_ == nullptr || pos_ >= jobs_->size()) return false;
    out = (*jobs_)[pos_++];
    return true;
  }

 private:
  std::shared_ptr<const std::vector<Job>> jobs_;
  std::size_t pos_ = 0;
};

/// Terminate a base stream at `horizon` (exclusive) and after at most
/// `max_jobs` emitted jobs — exactly the generate_until contract: the
/// first job at or past the horizon is consumed from the base stream and
/// dropped, and the stream is exhausted from then on.
class BoundedStream final : public JobStream {
 public:
  BoundedStream(std::unique_ptr<JobStream> base, sim::Time horizon,
                std::size_t max_jobs =
                    std::numeric_limits<std::size_t>::max())
      : base_(std::move(base)), horizon_(horizon), max_jobs_(max_jobs) {}

 protected:
  bool produce(Job& out) override {
    if (done_ || emitted_ >= max_jobs_ || !base_->next(out)) {
      done_ = true;
      return false;
    }
    if (out.arrival >= horizon_) {
      done_ = true;
      return false;
    }
    ++emitted_;
    return true;
  }

 private:
  std::unique_ptr<JobStream> base_;
  sim::Time horizon_;
  std::size_t max_jobs_;
  std::size_t emitted_ = 0;
  bool done_ = false;
};

}  // namespace scal::workload
