#include "workload/stream.hpp"

namespace scal::workload {

std::vector<Job> collect(JobStream& stream, std::size_t max_jobs) {
  std::vector<Job> jobs;
  Job job;
  while (jobs.size() < max_jobs && stream.next(job)) {
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace scal::workload
