#pragma once
// JobArena — a slab-backed pool of Job records keyed by in-flight
// lifetime.  The streaming arrival path holds one pending-arrival record
// per chained arrival event; recycling that record through an arena
// means a 100M-job run performs 100M acquire/release cycles against a
// handful of slots instead of 100M allocations.  Slots live in a deque
// so their addresses are stable for as long as they are held.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "workload/job.hpp"

namespace scal::workload {

class JobArena {
 public:
  /// A recycled slot when one is free (LIFO, so the hot slot stays
  /// cache-resident), otherwise a freshly grown one.  The slot's
  /// contents are unspecified; the caller overwrites them.
  Job* acquire();

  /// Return a slot to the free list.  The pointer must have come from
  /// acquire() on this arena and not have been released since; releasing
  /// a foreign or doubly-released slot throws std::invalid_argument.
  void release(Job* slot);

  /// Drop every slot.  All acquisitions must have been released;
  /// throws std::logic_error otherwise (a held pointer would dangle).
  void clear();

  std::size_t slots() const noexcept { return slab_.size(); }
  std::size_t in_use() const noexcept { return slab_.size() - free_.size(); }
  /// Most slots ever simultaneously in use — the run's true in-flight
  /// footprint, independent of total jobs streamed.
  std::size_t high_water() const noexcept { return high_water_; }
  /// Acquisitions served by recycling instead of growth.
  std::uint64_t reuses() const noexcept { return reuses_; }

 private:
  bool owns(const Job* slot) const noexcept;

  std::deque<Job> slab_;     // stable addresses
  std::vector<Job*> free_;   // LIFO free list
  std::size_t high_water_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace scal::workload
