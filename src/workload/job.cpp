#include "workload/job.hpp"

namespace scal::workload {

std::string to_string(JobClass c) {
  return c == JobClass::kLocal ? "LOCAL" : "REMOTE";
}

}  // namespace scal::workload
