#pragma once
// Synthetic workload generation standing in for the Cirne-Berman moldable
// supercomputer model [22, 23].  Their trace-fit distributions are keyed
// to specific machines; we keep the model's structure — Poisson-ish
// arrivals, heavy-tailed execution times, requested time as an
// over-estimate factor on execution time — with seedable parameters, and
// we expose the LOCAL/REMOTE split fraction so experiments can verify the
// T_CPU classification behaves like the paper's.

#include <vector>

#include "util/rng.hpp"
#include "workload/job.hpp"

namespace scal::workload {

enum class ExecTimeModel {
  kLognormal,      ///< default: heavy-tailed, most mass below T_CPU
  kBoundedPareto,  ///< heavier tail variant for sensitivity tests
  kUniform,        ///< flat, for deterministic-ish tests
};

struct WorkloadConfig {
  /// Mean inter-arrival time of the whole stream (time units).  The
  /// paper scales workload with the scaling variable; scaling multiplies
  /// the arrival *rate*, i.e. divides this mean.
  double mean_interarrival = 10.0;

  ExecTimeModel exec_model = ExecTimeModel::kLognormal;
  /// Lognormal parameters of execution time (defaults give a median of
  /// ~400 time units with a tail well past T_CPU = 700).
  double lognormal_mu = 6.0;
  double lognormal_sigma = 0.9;
  /// Bounded-Pareto parameters.
  double pareto_alpha = 1.3;
  double pareto_lo = 50.0;
  double pareto_hi = 20000.0;
  /// Uniform model range.
  double uniform_lo = 100.0;
  double uniform_hi = 2000.0;

  /// Requested time = exec_time * Uniform[1, requested_factor_max].
  double requested_factor_max = 3.0;

  /// LOCAL/REMOTE threshold (paper Table 1: T_CPU = 700 time units).
  double t_cpu = 700.0;

  /// Benefit deadline U_b = u * exec_time, u ~ Uniform[benefit_lo, benefit_hi]
  /// (paper Table 1: u in [2, 5]).
  double benefit_lo = 2.0;
  double benefit_hi = 5.0;

  /// Number of clusters jobs are submitted to (origin chosen uniformly
  /// unless origin_hotspot_weight skews it).
  std::uint32_t clusters = 1;

  /// Diurnal arrival modulation: instantaneous rate
  ///   lambda(t) = lambda0 * (1 + amplitude * sin(2 pi t / period)).
  /// amplitude = 0 disables (homogeneous Poisson).  Implemented by
  /// thinning, so the process stays exact.
  double diurnal_amplitude = 0.0;  ///< in [0, 1)
  double diurnal_period = 0.0;     ///< time units; > 0 when enabled

  /// Submission-site skew: with this probability a job originates at
  /// cluster 0 (the hot spot); otherwise the origin is uniform.
  double origin_hotspot_weight = 0.0;
};

/// Analytic mean of the configured execution-time distribution; the
/// schedulers use it to turn load counts into waiting-time estimates.
double expected_exec_time(const WorkloadConfig& config);

class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& config, util::RandomStream rng);

  /// Next job in arrival order.  Arrival times are strictly increasing.
  Job next();

  /// Generate jobs until `horizon` (exclusive); at most `max_jobs`.
  std::vector<Job> generate_until(sim::Time horizon,
                                  std::size_t max_jobs = SIZE_MAX);

  const WorkloadConfig& config() const noexcept { return config_; }
  JobId jobs_emitted() const noexcept { return next_id_; }

 private:
  double draw_exec_time();

  WorkloadConfig config_;
  util::RandomStream rng_;
  sim::Time clock_ = 0.0;
  JobId next_id_ = 0;
};

}  // namespace scal::workload
