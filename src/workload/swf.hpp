#pragma once
// Standard Workload Format (SWF) reader: the archive format of the
// Parallel Workloads Archive (Feitelson et al.), used by virtually every
// published supercomputer log.  A log is ';'-comment headers followed by
// one whitespace-separated record per job with 18 standard fields;
// missing values are the sentinel -1.  load_swf maps the fields the
// simulator consumes (submit, run, requested time, user) onto
// workload::Job under a configurable time scale and fills the
// paper-model fields the format lacks (benefit factors) from a dedicated
// seed substream — so a given (log, mapping) pair always yields the same
// stream.  Field mapping table in docs/WORKLOADS.md.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"
#include "workload/source.hpp"

namespace scal::workload {

/// How SWF records translate into simulator jobs.
struct SwfMapping {
  /// Simulation time units per trace second.  Real logs span days to
  /// months; scale them into the configured horizon.
  double time_scale = 1.0;
  /// LOCAL/REMOTE threshold applied to the scaled run time (paper
  /// Table 1), matching WorkloadConfig::t_cpu.
  double t_cpu = 700.0;
  /// Benefit factor u ~ Uniform[lo, hi] (the SWF has no deadline
  /// notion), drawn per job in arrival order from the "swf-benefit"
  /// substream of `seed`.
  double benefit_lo = 2.0;
  double benefit_hi = 5.0;
  /// Cluster count for origin mapping: origin = uid mod clusters (uid
  /// missing: round-robin by arrival rank).
  std::uint32_t clusters = 1;
  std::uint64_t seed = 42;
};

/// Parse an SWF stream under `mapping`.  Comment/header lines (';' or
/// '#') and blank lines are skipped; records need at least the first
/// four fields (job, submit, wait, run) — shorter records throw
/// std::runtime_error, while absent trailing fields default to -1.
/// Jobs with no positive runtime (run and requested time both missing
/// or zero) or no submit time are dropped.  The result is sorted by
/// submit time (stable), rebased so the first arrival is 0, and
/// re-numbered with sequential ids.
std::vector<Job> load_swf(std::istream& in, const SwfMapping& mapping);
std::vector<Job> load_swf_file(const std::string& path,
                               const SwfMapping& mapping);

/// An SWF log behind the source interface: the file is parsed once at
/// construction (load_swf_file) and streamed in arrival order.  SWF
/// stays materialized internally — the stable sort by submit time and
/// the first-arrival rebase need the whole log — but consumers still
/// pull it through the JobStream interface like every other source.
class SwfSource : public WorkloadSource {
 public:
  SwfSource(const std::string& path, const SwfMapping& mapping)
      : jobs_(load_swf_file(path, mapping)) {}
  explicit SwfSource(std::vector<Job> jobs) : jobs_(std::move(jobs)) {}

 protected:
  bool produce(Job& out) override {
    if (pos_ >= jobs_.size()) return false;
    out = jobs_[pos_++];
    return true;
  }

 private:
  std::vector<Job> jobs_;
  std::size_t pos_ = 0;
};

}  // namespace scal::workload
