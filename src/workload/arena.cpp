#include "workload/arena.hpp"

#include <algorithm>
#include <stdexcept>

namespace scal::workload {

Job* JobArena::acquire() {
  Job* slot = nullptr;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    ++reuses_;
  } else {
    slab_.emplace_back();
    slot = &slab_.back();
  }
  high_water_ = std::max(high_water_, in_use());
  return slot;
}

void JobArena::release(Job* slot) {
  if (!owns(slot)) {
    throw std::invalid_argument("JobArena::release: foreign slot");
  }
  if (std::find(free_.begin(), free_.end(), slot) != free_.end()) {
    throw std::invalid_argument("JobArena::release: slot already free");
  }
  free_.push_back(slot);
}

void JobArena::clear() {
  if (in_use() != 0) {
    throw std::logic_error("JobArena::clear: slots still in use");
  }
  free_.clear();
  slab_.clear();
  high_water_ = 0;
  reuses_ = 0;
}

bool JobArena::owns(const Job* slot) const noexcept {
  for (const Job& j : slab_) {
    if (&j == slot) return true;
  }
  return false;
}

}  // namespace scal::workload
