#pragma once
// Composable load modulators: deterministic time warps layered over any
// workload source (docs/WORKLOADS.md).  A modulator with rate profile
// r(s) >= r_min > 0 maps each base arrival t onto s = Lambda^{-1}(t)
// where Lambda(s) = integral_0^s r(u) du.  The warp is monotone, so it
// preserves arrival order and job count while reshaping the local
// arrival rate by exactly r(s) — diurnal waves, flash crowds, and
// heavy-tailed burst trains compose by chaining warps.  Stochastic
// modulators (burst trains) draw from their own SeedSequence substream,
// so adding or reordering one never perturbs the base stream or its
// siblings and runs stay bit-identical at any --jobs.

#include <cstdint>
#include <string>
#include <vector>

#include "exec/seed_sequence.hpp"
#include "util/rng.hpp"

namespace scal::workload {

enum class ModulatorKind : std::uint8_t {
  kDiurnal,  ///< sinusoidal rate wave: r(s) = 1 + amplitude*sin(2*pi*s/period)
  kFlash,    ///< flash crowd: r(s) = factor on [at, at+width), 1 elsewhere
  kBurst,    ///< random burst train: Exp-spaced bursts with Pareto heights
};

std::string to_string(ModulatorKind kind);

/// One modulator clause.  Only the fields of its kind are meaningful;
/// the spec-string grammar (docs/WORKLOADS.md) round-trips via
/// to_spec() / parse_modulators():
///   diurnal:amplitude=0.6,period=500
///   flash:at=600,width=60,factor=8
///   burst:every=300,width=25,alpha=1.4,max=12
struct ModulatorSpec {
  ModulatorKind kind = ModulatorKind::kDiurnal;

  // kDiurnal: relative amplitude in [0, 1) and wave period (> 0).
  double amplitude = 0.0;
  double period = 0.0;

  // kFlash: onset time, window width, and rate multiplier (>= 1).
  double at = 0.0;
  double width = 0.0;
  double factor = 1.0;

  // kBurst: mean gap between bursts, mean burst width, and the
  // bounded-Pareto shape/upper bound of the per-burst rate multiplier
  // (heights drawn on [1, max_factor]).
  double every = 0.0;
  double mean_width = 0.0;
  double alpha = 1.5;
  double max_factor = 8.0;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
  std::string to_spec() const;
};

/// Parse a ';'-separated chain of modulator clauses (empty string =
/// no modulators).  Throws std::invalid_argument on grammar errors.
std::vector<ModulatorSpec> parse_modulators(const std::string& spec);

/// Inverse of parse_modulators: clauses joined with ';' in chain order.
std::string modulators_to_spec(const std::vector<ModulatorSpec>& chain);

/// Substream tree for the modulator chain: position i in the chain
/// derives its RNG from modulator_seeds(seed).at(i), mirroring the
/// fault subsystem's seed discipline — independent of the base source's
/// "workload" stream and of every other chain position.
inline exec::SeedSequence modulator_seeds(std::uint64_t seed) {
  return exec::SeedSequence(
      util::RandomStream(seed, "workload-modulators").bits());
}

/// The Lambda^{-1} evaluator for one modulator.  warp() must be called
/// with nondecreasing inputs (arrival streams are sorted); stochastic
/// profiles are realized lazily from `rng` as the input advances, so a
/// warp's output prefix depends only on the spec, the seed, and the
/// inputs seen so far.
class TimeWarp {
 public:
  TimeWarp(const ModulatorSpec& spec, util::RandomStream rng);

  /// Map base arrival `t` to the modulated arrival Lambda^{-1}(t).
  /// Monotone nondecreasing; always <= t (modulators add load, never
  /// stretch the stream past its base span).
  double warp(double t);

 private:
  double invert_diurnal(double t) const;
  double invert_flash(double t) const;
  double invert_burst(double t);
  /// Extend the lazily realized burst profile until Lambda covers
  /// `target` (cumulative base time).
  void extend_burst(double target);

  ModulatorSpec spec_;
  util::RandomStream rng_;
  double last_input_ = 0.0;

  // Burst-train state: the current piecewise-constant-rate segment
  // [seg_start_, seg_end_) with Lambda(seg_start_) = seg_lambda_.
  double seg_start_ = 0.0;
  double seg_end_ = 0.0;
  double seg_lambda_ = 0.0;
  double seg_rate_ = 1.0;
  bool in_burst_ = false;
};

}  // namespace scal::workload
