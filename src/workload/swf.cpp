#include "workload/swf.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace scal::workload {

namespace {

// The 18 standard SWF fields, by position.
enum SwfField : std::size_t {
  kJobNumber = 0,
  kSubmitTime = 1,
  kWaitTime = 2,
  kRunTime = 3,
  kUsedProcs = 4,
  kAvgCpu = 5,
  kUsedMemory = 6,
  kRequestedProcs = 7,
  kRequestedTime = 8,
  kRequestedMemory = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueue = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkTime = 17,
  kFieldCount = 18,
};

double parse_field(const std::string& text, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::runtime_error("swf: line " + std::to_string(line_no) +
                             ": bad field '" + text + "'");
  }
  return v;
}

}  // namespace

std::vector<Job> load_swf(std::istream& in, const SwfMapping& mapping) {
  if (!(mapping.time_scale > 0.0)) {
    throw std::invalid_argument("swf: time scale must be positive");
  }
  if (mapping.clusters == 0) {
    throw std::invalid_argument("swf: need at least one cluster");
  }

  struct Record {
    double submit = 0.0;
    double exec = 0.0;
    double requested = 0.0;
    double uid = -1.0;
  };
  std::vector<Record> records;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;               // blank
    if (line[start] == ';' || line[start] == '#') continue;  // header

    double fields[kFieldCount];
    std::fill(std::begin(fields), std::end(fields), -1.0);
    std::istringstream row(line);
    std::string cell;
    std::size_t count = 0;
    while (row >> cell) {
      if (count < kFieldCount) fields[count] = parse_field(cell, line_no);
      ++count;
    }
    if (count < kRunTime + 1) {
      throw std::runtime_error("swf: line " + std::to_string(line_no) +
                               ": record has " + std::to_string(count) +
                               " fields, need at least 4");
    }

    Record rec;
    rec.submit = fields[kSubmitTime];
    if (rec.submit < 0.0) continue;  // unplaceable: submit time missing

    // Actual run time, falling back to the user's requested time when
    // the log lacks it; neither positive means the job never ran
    // (cancelled before start) — skip it.
    double run = fields[kRunTime];
    if (run < 0.0) run = fields[kRequestedTime];
    if (!(run > 0.0)) continue;
    rec.exec = run * mapping.time_scale;

    const double requested = fields[kRequestedTime];
    rec.requested = requested > 0.0
                        ? std::max(rec.exec, requested * mapping.time_scale)
                        : rec.exec;
    rec.uid = fields[kUserId];
    records.push_back(rec);
  }

  // Some archive logs have out-of-order submit stamps; the simulator
  // schedules in time order, so sort (stably) before id assignment.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.submit < b.submit;
                   });

  std::vector<Job> jobs;
  jobs.reserve(records.size());
  const double base = records.empty() ? 0.0 : records.front().submit;
  util::RandomStream benefit_rng(mapping.seed, "swf-benefit");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& rec = records[i];
    Job j;
    j.id = i;
    j.arrival = (rec.submit - base) * mapping.time_scale;
    j.exec_time = rec.exec;
    j.requested_time = rec.requested;
    j.partition_size = 1;   // paper Section 3.1
    j.cancellable = false;  // paper Section 3.1
    j.job_class = j.exec_time <= mapping.t_cpu ? JobClass::kLocal
                                               : JobClass::kRemote;
    j.benefit_factor =
        benefit_rng.uniform(mapping.benefit_lo, mapping.benefit_hi);
    j.benefit_deadline = j.exec_time * j.benefit_factor;
    j.origin_cluster = static_cast<std::uint32_t>(
        rec.uid >= 0.0 ? static_cast<std::uint64_t>(rec.uid) % mapping.clusters
                       : i % mapping.clusters);
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<Job> load_swf_file(const std::string& path,
                               const SwfMapping& mapping) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_swf_file: cannot open " + path);
  return load_swf(in, mapping);
}

}  // namespace scal::workload
