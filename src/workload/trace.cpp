#include "workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace scal::workload {

void TraceStatsAccumulator::add(const Job& job) {
  if (jobs_ == 0) {
    first_arrival_ = job.arrival;
    prev_arrival_ = job.arrival;
  }
  ++jobs_;
  if (job.job_class == JobClass::kLocal) ++local_;
  else ++remote_;
  exec_sum_ += job.exec_time;
  max_exec_ = std::max(max_exec_, job.exec_time);
  demand_sum_ += job.exec_time;
  interarrival_sum_ += job.arrival - prev_arrival_;
  prev_arrival_ = job.arrival;
}

TraceStats TraceStatsAccumulator::stats() const {
  TraceStats s;
  s.jobs = jobs_;
  if (jobs_ == 0) return s;
  s.local_jobs = local_;
  s.remote_jobs = remote_;
  s.mean_exec_time = exec_sum_ / static_cast<double>(jobs_);
  s.max_exec_time = max_exec_;
  s.total_demand = demand_sum_;
  if (jobs_ > 1) {
    s.mean_interarrival =
        interarrival_sum_ / static_cast<double>(jobs_ - 1);
  }
  s.span = prev_arrival_ - first_arrival_;
  return s;
}

TraceStats summarize(const std::vector<Job>& jobs) {
  TraceStatsAccumulator acc;
  for (const Job& j : jobs) acc.add(j);
  return acc.stats();
}

namespace {
constexpr const char* kHeader =
    "id,arrival,exec_time,requested_time,partition_size,cancellable,"
    "job_class,benefit_factor,benefit_deadline,origin_cluster";
}

void save_trace(const std::vector<Job>& jobs, std::ostream& out) {
  out << kHeader << '\n';
  out << std::setprecision(17);
  for (const Job& j : jobs) {
    out << j.id << ',' << j.arrival << ',' << j.exec_time << ','
        << j.requested_time << ',' << j.partition_size << ','
        << (j.cancellable ? 1 : 0) << ','
        << (j.job_class == JobClass::kLocal ? "LOCAL" : "REMOTE") << ','
        << j.benefit_factor << ',' << j.benefit_deadline << ','
        << j.origin_cluster << '\n';
  }
}

void save_trace_file(const std::vector<Job>& jobs, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(jobs, out);
}

TraceReader::TraceReader(std::istream& in) : in_(&in) {
  std::string line;
  if (!std::getline(*in_, line)) {
    in_ = nullptr;  // empty input: a valid, already-exhausted trace
    return;
  }
  if (line != kHeader) {
    throw std::runtime_error("load_trace: unexpected header: " + line);
  }
}

bool TraceReader::next(Job& out) {
  if (in_ == nullptr) return false;
  std::string line;
  while (std::getline(*in_, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    Job j;
    auto next_cell = [&]() {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error("load_trace: truncated row: " + line);
      }
      return cell;
    };
    j.id = std::stoull(next_cell());
    j.arrival = std::stod(next_cell());
    j.exec_time = std::stod(next_cell());
    j.requested_time = std::stod(next_cell());
    j.partition_size = static_cast<std::uint32_t>(std::stoul(next_cell()));
    j.cancellable = next_cell() == "1";
    const std::string cls = next_cell();
    if (cls != "LOCAL" && cls != "REMOTE") {
      throw std::runtime_error("load_trace: bad job class: " + cls);
    }
    j.job_class = cls == "LOCAL" ? JobClass::kLocal : JobClass::kRemote;
    j.benefit_factor = std::stod(next_cell());
    j.benefit_deadline = std::stod(next_cell());
    j.origin_cluster = static_cast<std::uint32_t>(std::stoul(next_cell()));
    out = j;
    return true;
  }
  return false;
}

std::vector<Job> load_trace(std::istream& in) {
  std::vector<Job> jobs;
  TraceReader reader(in);
  Job job;
  while (reader.next(job)) jobs.push_back(job);
  return jobs;
}

std::vector<Job> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(in);
}

}  // namespace scal::workload
