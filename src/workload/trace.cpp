#include "workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace scal::workload {

TraceStats summarize(const std::vector<Job>& jobs) {
  TraceStats s;
  s.jobs = jobs.size();
  if (jobs.empty()) return s;
  double prev_arrival = jobs.front().arrival;
  double interarrival_sum = 0.0;
  for (const Job& j : jobs) {
    if (j.job_class == JobClass::kLocal) ++s.local_jobs;
    else ++s.remote_jobs;
    s.mean_exec_time += j.exec_time;
    s.max_exec_time = std::max(s.max_exec_time, j.exec_time);
    s.total_demand += j.exec_time;
    interarrival_sum += j.arrival - prev_arrival;
    prev_arrival = j.arrival;
  }
  s.mean_exec_time /= static_cast<double>(jobs.size());
  if (jobs.size() > 1) {
    s.mean_interarrival =
        interarrival_sum / static_cast<double>(jobs.size() - 1);
  }
  s.span = jobs.back().arrival - jobs.front().arrival;
  return s;
}

namespace {
constexpr const char* kHeader =
    "id,arrival,exec_time,requested_time,partition_size,cancellable,"
    "job_class,benefit_factor,benefit_deadline,origin_cluster";
}

void save_trace(const std::vector<Job>& jobs, std::ostream& out) {
  out << kHeader << '\n';
  out << std::setprecision(17);
  for (const Job& j : jobs) {
    out << j.id << ',' << j.arrival << ',' << j.exec_time << ','
        << j.requested_time << ',' << j.partition_size << ','
        << (j.cancellable ? 1 : 0) << ','
        << (j.job_class == JobClass::kLocal ? "LOCAL" : "REMOTE") << ','
        << j.benefit_factor << ',' << j.benefit_deadline << ','
        << j.origin_cluster << '\n';
  }
}

void save_trace_file(const std::vector<Job>& jobs, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(jobs, out);
}

std::vector<Job> load_trace(std::istream& in) {
  std::vector<Job> jobs;
  std::string line;
  if (!std::getline(in, line)) return jobs;
  if (line != kHeader) {
    throw std::runtime_error("load_trace: unexpected header: " + line);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    Job j;
    auto next_cell = [&]() {
      if (!std::getline(row, cell, ',')) {
        throw std::runtime_error("load_trace: truncated row: " + line);
      }
      return cell;
    };
    j.id = std::stoull(next_cell());
    j.arrival = std::stod(next_cell());
    j.exec_time = std::stod(next_cell());
    j.requested_time = std::stod(next_cell());
    j.partition_size = static_cast<std::uint32_t>(std::stoul(next_cell()));
    j.cancellable = next_cell() == "1";
    const std::string cls = next_cell();
    if (cls != "LOCAL" && cls != "REMOTE") {
      throw std::runtime_error("load_trace: bad job class: " + cls);
    }
    j.job_class = cls == "LOCAL" ? JobClass::kLocal : JobClass::kRemote;
    j.benefit_factor = std::stod(next_cell());
    j.benefit_deadline = std::stod(next_cell());
    j.origin_cluster = static_cast<std::uint32_t>(std::stoul(next_cell()));
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<Job> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(in);
}

}  // namespace scal::workload
