#pragma once
// Job model from the paper (Section 3.1): jobs follow the moldable
// supercomputer workload characterization [22, 23] restricted to
// partition size 1 and zero cancellation probability.  A job is LOCAL if
// its execution time is at most T_CPU, REMOTE otherwise, and succeeds if
// it completes within the user-benefit deadline
//     U_b = u * execution_time,   u ~ Uniform[2, 5].

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace scal::workload {

using JobId = std::uint64_t;

enum class JobClass : std::uint8_t { kLocal, kRemote };

std::string to_string(JobClass c);

struct Job {
  JobId id = 0;
  sim::Time arrival = 0.0;         ///< submission instant
  sim::Time exec_time = 0.0;       ///< service demand at unit service rate
  sim::Time requested_time = 0.0;  ///< user's upper bound on exec_time
  std::uint32_t partition_size = 1;
  bool cancellable = false;
  JobClass job_class = JobClass::kLocal;
  /// The user-benefit factor u ~ Uniform[2, 5]: the job succeeds if its
  /// response time is within u times its actual run time on the resource
  /// (exec_time / service_rate).
  double benefit_factor = 3.0;
  sim::Time benefit_deadline = 0.0;  ///< u * exec_time, in demand units
  std::uint32_t origin_cluster = 0;  ///< cluster of the submitting node
  /// Crash-requeue attempts consumed so far (fault subsystem; runtime
  /// state, not part of the workload characterization or trace format).
  std::uint32_t attempts = 0;

  /// Latest acceptable completion when the job runs at `service_rate`.
  sim::Time deadline_instant(double service_rate) const noexcept {
    return arrival + benefit_factor * exec_time / service_rate;
  }
};

}  // namespace scal::workload
