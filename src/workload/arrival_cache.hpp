#pragma once
// Process-wide memo of generated arrival streams, keyed on a 128-bit
// workload digest (grid::workload_digest covers every stream-shaping
// input: workload config, source spec, seed, horizon, cluster count).
// Structural rebuilds, session pools, and parallel tuner lanes all
// replay the same streams; memoizing them takes workload synthesis off
// the rebuild critical path (the PR 5 profiling carry-over).  Entries
// are immutable shared vectors, so concurrent consumers alias one
// allocation safely; insertion is first-insert-wins like opt::EvalCache
// (racing generators produce bit-identical vectors, the first one
// becomes canonical).

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "workload/job.hpp"

namespace scal::workload {

class ArrivalCache {
 public:
  using Key = std::array<std::uint64_t, 2>;

  /// The process-wide instance every GridSystem consults.
  static ArrivalCache& instance();

  /// The cached stream for `key`, or null.  Counts a hit or a miss.
  std::shared_ptr<const std::vector<Job>> lookup(const Key& key);

  /// Insert `jobs` for `key` unless already present; returns the
  /// canonical entry (the prior one on a race).
  std::shared_ptr<const std::vector<Job>> store(
      const Key& key, std::shared_ptr<const std::vector<Job>> jobs);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

  /// Drop every entry and zero the counters (tests and benches; the
  /// simulation never needs it — entries are pure functions of their
  /// keys).
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // The key is already a high-quality 128-bit digest; fold the lanes.
      return static_cast<std::size_t>(k[0] ^ (k[1] * 0x9E3779B97F4A7C15ull));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const std::vector<Job>>, KeyHash>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace scal::workload
