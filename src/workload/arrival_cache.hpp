#pragma once
// Process-wide memo of generated arrival streams, keyed on a 128-bit
// workload digest (grid::workload_digest covers every stream-shaping
// input: workload config, source spec, seed, horizon, cluster count).
// Structural rebuilds, session pools, and parallel tuner lanes all
// replay the same streams; memoizing them takes workload synthesis off
// the rebuild critical path (the PR 5 profiling carry-over).  Entries
// are immutable shared vectors, so concurrent consumers alias one
// allocation safely; insertion is first-insert-wins like opt::EvalCache
// (racing generators produce bit-identical vectors, the first one
// becomes canonical).
//
// The memo is byte-budgeted: set_max_bytes (or SCAL_ARRIVAL_CACHE_BYTES
// at first use) caps the resident payload, evicting oldest-first when a
// store would exceed it.  One-shot streaming runs bypass the store
// entirely (cached_stream with reusable=false) and only count the skip.

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "workload/job.hpp"

namespace scal::workload {

class ArrivalCache {
 public:
  using Key = std::array<std::uint64_t, 2>;

  /// The process-wide instance every GridSystem consults.  The first
  /// call reads SCAL_ARRIVAL_CACHE_BYTES (bytes; unset or 0 keeps the
  /// cache unbounded) into the byte budget.
  static ArrivalCache& instance();

  /// The cached stream for `key`, or null.  Counts a hit or a miss.
  std::shared_ptr<const std::vector<Job>> lookup(const Key& key);

  /// Insert `jobs` for `key` unless already present; returns the
  /// canonical entry (the prior one on a race).  When a byte budget is
  /// set, oldest entries are evicted until the payload fits — possibly
  /// including the new entry itself if it alone exceeds the budget (the
  /// returned pointer stays valid either way; the stream just is not
  /// memoized).
  std::shared_ptr<const std::vector<Job>> store(
      const Key& key, std::shared_ptr<const std::vector<Job>> jobs);

  /// Byte budget for cached payloads; 0 = unbounded (the default).
  void set_max_bytes(std::size_t bytes);
  std::size_t max_bytes() const;
  /// Total payload bytes currently resident.
  std::size_t bytes() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Entries dropped to honor the byte budget.
  std::uint64_t evictions() const;
  /// Stores skipped by one-shot streaming runs (cached_stream with
  /// reusable=false).
  std::uint64_t store_skips() const;
  void count_store_skip();
  std::size_t size() const;

  /// Drop every entry and zero the counters (tests and benches; the
  /// simulation never needs it — entries are pure functions of their
  /// keys).  The byte budget is kept.
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // The key is already a high-quality 128-bit digest; fold the lanes.
      return static_cast<std::size_t>(k[0] ^ (k[1] * 0x9E3779B97F4A7C15ull));
    }
  };

  static std::size_t payload_bytes(const std::vector<Job>& jobs) noexcept {
    return jobs.size() * sizeof(Job);
  }
  /// Evict oldest-first until the payload fits the budget (lock held).
  void enforce_budget_locked();

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const std::vector<Job>>, KeyHash>
      entries_;
  std::deque<Key> insertion_order_;  // FIFO eviction order
  std::size_t bytes_ = 0;
  std::size_t max_bytes_ = 0;  // 0 = unbounded
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t store_skips_ = 0;
};

}  // namespace scal::workload
