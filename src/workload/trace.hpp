#pragma once
// Job-trace persistence and summary statistics, so experiments can pin a
// workload to disk and replay it exactly (and so workload properties can
// be inspected outside the simulator).

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace scal::workload {

struct TraceStats {
  std::size_t jobs = 0;
  std::size_t local_jobs = 0;
  std::size_t remote_jobs = 0;
  double mean_interarrival = 0.0;
  double mean_exec_time = 0.0;
  double max_exec_time = 0.0;
  double total_demand = 0.0;  ///< sum of exec times
  double span = 0.0;          ///< last arrival - first arrival
};

TraceStats summarize(const std::vector<Job>& jobs);

/// CSV round-trip: header + one row per job, exact field preservation
/// (times serialized with max precision).
void save_trace(const std::vector<Job>& jobs, std::ostream& out);
void save_trace_file(const std::vector<Job>& jobs, const std::string& path);
std::vector<Job> load_trace(std::istream& in);
std::vector<Job> load_trace_file(const std::string& path);

}  // namespace scal::workload
