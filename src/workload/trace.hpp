#pragma once
// Job-trace persistence and summary statistics, so experiments can pin a
// workload to disk and replay it exactly (and so workload properties can
// be inspected outside the simulator).

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace scal::workload {

struct TraceStats {
  std::size_t jobs = 0;
  std::size_t local_jobs = 0;
  std::size_t remote_jobs = 0;
  double mean_interarrival = 0.0;
  double mean_exec_time = 0.0;
  double max_exec_time = 0.0;
  double total_demand = 0.0;  ///< sum of exec times
  double span = 0.0;          ///< last arrival - first arrival
};

TraceStats summarize(const std::vector<Job>& jobs);

/// Online fold of TraceStats, one job at a time in stream order.  The
/// fold performs the exact operation sequence of summarize(), so
/// accumulating a stream and summarizing the materialized vector yield
/// bitwise-identical stats — the streaming result path depends on that.
class TraceStatsAccumulator {
 public:
  void add(const Job& job);
  /// The finalized stats (means divided out); callable any time.
  TraceStats stats() const;

 private:
  std::size_t jobs_ = 0, local_ = 0, remote_ = 0;
  double exec_sum_ = 0.0;
  double demand_sum_ = 0.0;
  double max_exec_ = 0.0;
  double interarrival_sum_ = 0.0;
  double first_arrival_ = 0.0;
  double prev_arrival_ = 0.0;
};

/// Streaming CSV reader over the save_trace format: validates the header
/// on construction, then parses one row per next() call, holding O(1)
/// state.  load_trace is a drain over this.
class TraceReader {
 public:
  /// Reads and checks the header line; throws std::runtime_error on a
  /// header mismatch.  The stream must outlive the reader.
  explicit TraceReader(std::istream& in);

  /// Parse the next row into `out`; false at end of input.  Blank lines
  /// are skipped; malformed rows throw std::runtime_error.
  bool next(Job& out);

 private:
  std::istream* in_;
};

/// CSV round-trip: header + one row per job, exact field preservation
/// (times serialized with max precision).
void save_trace(const std::vector<Job>& jobs, std::ostream& out);
void save_trace_file(const std::vector<Job>& jobs, const std::string& path);
std::vector<Job> load_trace(std::istream& in);
std::vector<Job> load_trace_file(const std::string& path);

}  // namespace scal::workload
