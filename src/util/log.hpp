#pragma once
// Leveled logging.  Off by default in library code; benches and examples
// raise the level.
//
// Thread safety: emitted lines are serialized by a sink mutex, so
// concurrent emitters never interleave within a line.  The level is a
// relaxed atomic — change it before spawning parallel work, not on the
// hot path.  The sim-time source is thread-local: every worker thread's
// simulation installs (and clears) its own clock.

#include <functional>
#include <sstream>
#include <string>

namespace scal::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off".  Unknown input
/// falls back to kWarn (never a silent kOff) and emits a one-time
/// warning naming the bad value.
LogLevel parse_log_level(const std::string& name) noexcept;

/// Clock for log timestamps.  When set (the grid system installs its
/// simulator clock for the duration of a run), every line emitted by
/// the calling thread carries the simulated time; null clears it.  The
/// source is thread-local, so concurrent simulations stamp their own
/// clocks.
using LogTimeSource = std::function<double()>;
void set_log_time_source(LogTimeSource source);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

#define SCAL_LOG(level, expr)                                          \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::scal::util::log_level())) {                 \
      std::ostringstream scal_log_os_;                                 \
      scal_log_os_ << expr;                                            \
      ::scal::util::detail::emit(level, scal_log_os_.str());           \
    }                                                                  \
  } while (false)

#define SCAL_TRACE(expr) SCAL_LOG(::scal::util::LogLevel::kTrace, expr)
#define SCAL_DEBUG(expr) SCAL_LOG(::scal::util::LogLevel::kDebug, expr)
#define SCAL_INFO(expr) SCAL_LOG(::scal::util::LogLevel::kInfo, expr)
#define SCAL_WARN(expr) SCAL_LOG(::scal::util::LogLevel::kWarn, expr)
#define SCAL_ERROR(expr) SCAL_LOG(::scal::util::LogLevel::kError, expr)

}  // namespace scal::util
