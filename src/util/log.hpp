#pragma once
// Leveled logging.  Off by default in library code; benches and examples
// raise the level.  Controlled globally (the simulator is single-threaded).

#include <sstream>
#include <string>

namespace scal::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; unknown -> kOff.
LogLevel parse_log_level(const std::string& name) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

#define SCAL_LOG(level, expr)                                          \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::scal::util::log_level())) {                 \
      std::ostringstream scal_log_os_;                                 \
      scal_log_os_ << expr;                                            \
      ::scal::util::detail::emit(level, scal_log_os_.str());           \
    }                                                                  \
  } while (false)

#define SCAL_TRACE(expr) SCAL_LOG(::scal::util::LogLevel::kTrace, expr)
#define SCAL_DEBUG(expr) SCAL_LOG(::scal::util::LogLevel::kDebug, expr)
#define SCAL_INFO(expr) SCAL_LOG(::scal::util::LogLevel::kInfo, expr)
#define SCAL_WARN(expr) SCAL_LOG(::scal::util::LogLevel::kWarn, expr)
#define SCAL_ERROR(expr) SCAL_LOG(::scal::util::LogLevel::kError, expr)

}  // namespace scal::util
