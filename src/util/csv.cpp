#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace scal::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  add_row(header);
  rows_ = 0;  // header does not count
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    text.push_back(os.str());
  }
  add_row(text);
}

}  // namespace scal::util
