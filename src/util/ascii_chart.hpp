#pragma once
// Terminal line chart used by the figure benches: one glyph per series,
// shared axes, so the paper's figures can be eyeballed directly in the
// bench output.

#include <string>
#include <vector>

namespace scal::util {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label,
             int width = 72, int height = 20);

  /// Each series gets a glyph from "ox*+#@%&" in order of addition.
  void add_series(Series s);

  std::string render() const;

 private:
  std::string title_, x_label_, y_label_;
  int width_, height_;
  std::vector<Series> series_;
};

}  // namespace scal::util
