#pragma once
// Streaming and exact statistics used across the simulator and the
// scalability analyzer.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace scal::util {

/// Welford streaming accumulator: count/mean/variance/min/max in O(1) space.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  bool empty() const noexcept { return n_ == 0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact sample store with percentile queries.  Used where the sample
/// count is bounded (per-run response times etc.).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }
  std::size_t count() const noexcept { return xs_.size(); }
  double mean() const noexcept;
  /// Percentile in [0, 100] via linear interpolation; 0 if empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double min() const;
  double max() const;
  const std::vector<double>& values() const noexcept { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.  Used by workload-model tests and the ASCII charts.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Fraction of samples in [lo, x).
  double cdf(double x) const noexcept;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Least-squares line fit y = a + b*x over paired samples; used to report
/// the scalability slope of G(k) across a window of scale factors.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Per-segment finite-difference slopes of y over x (size n-1).
std::vector<double> segment_slopes(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace scal::util
