#pragma once
// Environment-variable helpers for bench/example knobs (e.g. SCAL_BENCH_FAST).

#include <cstdint>
#include <string>

namespace scal::util {

/// Returns the variable's value or `fallback` if unset/empty.
std::string env_or(const std::string& name, const std::string& fallback);

/// Truthy if set to anything other than "", "0", "false", "off".
bool env_flag(const std::string& name);

/// Integer value, or `fallback` if unset or unparseable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

}  // namespace scal::util
