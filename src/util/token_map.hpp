#pragma once
// TokenMap: a flat sorted-vector map for the RMS policies' small
// correlation tables (pending poll rounds, negotiations, auction state,
// peer adverts).
//
// These tables hold a handful of entries keyed by monotonically
// increasing tokens or small dense ids, so a contiguous sorted vector
// with binary search beats a node-based hash map on every operation the
// policies perform — and, unlike unordered_map, its iteration order is
// the key order, which makes any scan over the table deterministic by
// construction rather than by accident of hashing.
//
// The interface mirrors the subset of std::unordered_map the policies
// use (find/emplace/erase/operator[]/count/size plus range-for), so call
// sites read identically.

#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

namespace scal::util {

template <typename Key, typename T>
class TokenMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() noexcept { return data_.begin(); }
  iterator end() noexcept { return data_.end(); }
  const_iterator begin() const noexcept { return data_.begin(); }
  const_iterator end() const noexcept { return data_.end(); }

  bool empty() const noexcept { return data_.empty(); }
  std::size_t size() const noexcept { return data_.size(); }
  void clear() noexcept { data_.clear(); }

  iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return (it != data_.end() && it->first == key) ? it : data_.end();
  }
  const_iterator find(const Key& key) const {
    return const_cast<TokenMap*>(this)->find(key);
  }
  std::size_t count(const Key& key) const {
    return find(key) != end() ? 1 : 0;
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const Key& key, Args&&... args) {
    // Fast path: tokens are handed out monotonically, so most inserts
    // append.
    if (data_.empty() || data_.back().first < key) {
      data_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(key),
                         std::forward_as_tuple(std::forward<Args>(args)...));
      return {data_.end() - 1, true};
    }
    const iterator it = lower_bound(key);
    if (it != data_.end() && it->first == key) return {it, false};
    return {data_.emplace(it, std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...)),
            true};
  }

  T& operator[](const Key& key) { return emplace(key).first->second; }

  iterator erase(iterator it) { return data_.erase(it); }
  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

 private:
  iterator lower_bound(const Key& key) {
    // Hand-rolled binary search keeps this header free of <algorithm>.
    std::size_t lo = 0;
    std::size_t hi = data_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (data_[mid].first < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return data_.begin() + static_cast<std::ptrdiff_t>(lo);
  }

  std::vector<value_type> data_;  // sorted by key
};

}  // namespace scal::util
