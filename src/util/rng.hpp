#pragma once
// Deterministic random number generation for the simulator.
//
// Every stochastic component of the system draws from its own named
// substream derived from one master seed, so a whole experiment is a pure
// function of (configuration, seed).  Substream derivation uses splitmix64
// over (master_seed, fnv1a(name)); the stream generator is xoshiro256**.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace scal::util {

/// splitmix64 step: the canonical 64-bit mixer, used for seeding.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a hash of a string, used to derive substream ids from names.
std::uint64_t fnv1a(std::string_view s) noexcept;

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Advance 2^128 steps; used to carve independent sequences.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// A named, seedable stream of random variates.
///
/// Distribution methods are implemented directly (not via <random>
/// distributions) so that results are identical across standard libraries.
class RandomStream {
 public:
  /// Derive a stream from a master seed and a stream name.
  RandomStream(std::uint64_t master_seed, std::string_view name) noexcept;

  /// Direct construction from a raw seed (used in tests).
  explicit RandomStream(std::uint64_t raw_seed) noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Exponential with the given mean (not rate).
  double exponential(double mean) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  double normal(double mean, double stddev) noexcept;
  /// Lognormal parameterized by the underlying normal's mu and sigma.
  double lognormal(double mu, double sigma) noexcept;
  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi) noexcept;

  /// Sample k distinct values from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Raw 64-bit draw (exposed for hashing-style uses in tests).
  std::uint64_t bits() noexcept { return gen_(); }

 private:
  Xoshiro256 gen_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace scal::util
