#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace scal::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t col, Align align) {
  aligns_.at(col) = align;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::fixed(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << "  ";
      const auto pad = widths[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << cells[c];
      if (aligns_[c] == Align::kLeft && c + 1 < cells.size()) {
        os << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace scal::util
