#include "util/env.hpp"

#include <cstdlib>

namespace scal::util {

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* v = std::getenv(name.c_str());
  return (v && *v) ? std::string(v) : fallback;
}

bool env_flag(const std::string& name) {
  const std::string v = env_or(name, "");
  return !(v.empty() || v == "0" || v == "false" || v == "off");
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const std::string v = env_or(name, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

}  // namespace scal::util
