#pragma once
// Fixed-width text table printer used by the bench harnesses to emit the
// paper's tables and figure series in a readable form.

#include <iosfwd>
#include <string>
#include <vector>

namespace scal::util {

enum class Align { kLeft, kRight };

class Table {
 public:
  /// Column headers define the table width; rows must match.
  explicit Table(std::vector<std::string> headers);

  /// Set alignment for one column (default: left for col 0, right otherwise).
  void set_align(std::size_t col, Align align);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Fixed-point without trailing zeros beyond precision.
  static std::string fixed(double v, int precision = 2);

  /// Render with a header rule and column separators.
  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scal::util
