#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace scal::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Seed the full state through splitmix64, per the generator author's advice.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> t{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) t[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = t;
}

RandomStream::RandomStream(std::uint64_t master_seed,
                           std::string_view name) noexcept
    : gen_(master_seed ^ (fnv1a(name) * 0x9E3779B97F4A7C15ULL)) {}

RandomStream::RandomStream(std::uint64_t raw_seed) noexcept : gen_(raw_seed) {}

double RandomStream::uniform() noexcept {
  // 53-bit mantissa trick: uniform double in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t RandomStream::uniform_int(std::int64_t lo,
                                       std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t draw = gen_();
  while (draw >= limit) draw = gen_();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool RandomStream::bernoulli(double p) noexcept { return uniform() < p; }

double RandomStream::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // -mean * ln(1 - U); 1-U avoids log(0).
  return -mean * std::log1p(-uniform());
}

double RandomStream::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller.
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double RandomStream::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double RandomStream::bounded_pareto(double alpha, double lo,
                                    double hi) noexcept {
  assert(alpha > 0.0 && 0.0 < lo && lo < hi);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::vector<std::size_t> RandomStream::sample_without_replacement(
    std::size_t n, std::size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

}  // namespace scal::util
