#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace scal::util {

namespace {
// The level is read on every SCAL_LOG site, possibly from worker
// threads; a relaxed atomic keeps that data-race-free.  Level *changes*
// are not synchronized with in-flight emits (documented: set the level
// before spawning parallel work, not on the hot path).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Thread-local: each worker thread runs its own simulation, so each
// carries its own sim clock; a parallel sweep's lines then stamp the
// time of the simulation that emitted them.
thread_local LogTimeSource t_time_source;

// One mutex serializes sink writes so concurrent emitters never
// interleave characters within a line.
std::mutex& sink_mutex() {
  static std::mutex mutex;
  return mutex;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_time_source(LogTimeSource source) {
  t_time_source = std::move(source);
}

LogLevel parse_log_level(const std::string& name) noexcept {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::clog << "[WARN] unknown log level \"" << name
              << "\"; falling back to warn\n";
  }
  return LogLevel::kWarn;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // Format the whole line first, then write it under the sink mutex in
  // one piece: concurrent emitters may order lines either way, but a
  // line is never interleaved with another.
  std::ostringstream line;
  line << '[' << level_name(level);
  if (t_time_source) {
    line << " t=" << t_time_source();
  }
  line << "] " << message << '\n';
  const std::string text = line.str();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::clog << text;
}
}  // namespace detail

}  // namespace scal::util
