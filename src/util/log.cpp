#include "util/log.hpp"

#include <iostream>
#include <utility>

namespace scal::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogTimeSource g_time_source;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void set_log_time_source(LogTimeSource source) {
  g_time_source = std::move(source);
}

LogLevel parse_log_level(const std::string& name) noexcept {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::clog << "[WARN] unknown log level \"" << name
              << "\"; falling back to warn\n";
  }
  return LogLevel::kWarn;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::clog << '[' << level_name(level);
  if (g_time_source) {
    std::clog << " t=" << g_time_source();
  }
  std::clog << "] " << message << '\n';
}
}  // namespace detail

}  // namespace scal::util
