#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace scal::util {

namespace {
constexpr char kGlyphs[] = "ox*+#@%&";
}

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label, int width, int height)
    : title_(std::move(title)), x_label_(std::move(x_label)),
      y_label_(std::move(y_label)), width_(width), height_(height) {
  if (width_ < 16 || height_ < 4) {
    throw std::invalid_argument("AsciiChart: canvas too small");
  }
}

void AsciiChart::add_series(Series s) {
  if (s.x.size() != s.y.size()) {
    throw std::invalid_argument("AsciiChart: x/y size mismatch");
  }
  series_.push_back(std::move(s));
}

std::string AsciiChart::render() const {
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  std::ostringstream os;
  os << title_ << '\n';
  if (!any) {
    os << "(no data)\n";
    return os.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;
  // A little vertical headroom so extreme points don't sit on the frame.
  const double ypad = 0.04 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  std::vector<std::string> canvas(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& s = series_[si];
    // Plot line segments with dense interpolation so trends read as lines.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const int steps = width_;
      for (int t = 0; t <= steps; ++t) {
        const double frac = static_cast<double>(t) / steps;
        const double x = s.x[i] + frac * (s.x[i + 1] - s.x[i]);
        const double y = s.y[i] + frac * (s.y[i + 1] - s.y[i]);
        const int cx = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) *
                                                    (width_ - 1)));
        const int cy = static_cast<int>(std::lround((ymax - y) / (ymax - ymin) *
                                                    (height_ - 1)));
        if (cx >= 0 && cx < width_ && cy >= 0 && cy < height_) {
          char& cell = canvas[static_cast<std::size_t>(cy)]
                             [static_cast<std::size_t>(cx)];
          // Don't let interpolation dots of a later series wipe markers.
          if (cell == ' ' || t % steps == 0) cell = glyph;
        }
      }
    }
    if (s.x.size() == 1) {
      const int cx = static_cast<int>(std::lround((s.x[0] - xmin) /
                                                  (xmax - xmin) * (width_ - 1)));
      const int cy = static_cast<int>(std::lround((ymax - s.y[0]) /
                                                  (ymax - ymin) * (height_ - 1)));
      canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = glyph;
    }
  }

  std::ostringstream ylo, yhi;
  ylo.precision(4);
  yhi.precision(4);
  ylo << ymin;
  yhi << ymax;
  const std::size_t margin = std::max(ylo.str().size(), yhi.str().size()) + 1;

  for (int r = 0; r < height_; ++r) {
    std::string label;
    if (r == 0) label = yhi.str();
    else if (r == height_ - 1) label = ylo.str();
    os << std::string(margin - label.size(), ' ') << label << '|'
       << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin, ' ') << '+'
     << std::string(static_cast<std::size_t>(width_), '-') << '\n';
  std::ostringstream xlo, xhi;
  xlo.precision(4);
  xhi.precision(4);
  xlo << xmin;
  xhi << xmax;
  os << std::string(margin + 1, ' ') << xlo.str()
     << std::string(static_cast<std::size_t>(width_) - xlo.str().size() -
                        xhi.str().size(),
                    ' ')
     << xhi.str() << "  [" << x_label_ << "]\n";
  os << "y: " << y_label_ << "   legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << ' ' << kGlyphs[si % (sizeof(kGlyphs) - 1)] << '=' << series_[si].name;
  }
  os << '\n';
  return os.str();
}

}  // namespace scal::util
