#pragma once
// Minimal INI-style configuration format:
//   # comment
//   [section]
//   key = value
// Keys are addressed as "section.key" (or bare "key" before any
// section header).  Values keep their literal text; typed getters parse
// on demand and throw with the offending key on bad input.

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace scal::util {

class IniFile {
 public:
  IniFile() = default;

  /// Parse from text; throws std::runtime_error with a line number on
  /// malformed input.
  static IniFile parse(const std::string& text);
  static IniFile load(const std::string& path);

  /// Serialize (sections sorted, keys sorted within a section).
  std::string to_string() const;
  void save(const std::string& path) const;

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults; throw std::runtime_error naming the
  /// key when the value does not parse.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value);
  void set_double(const std::string& key, double value);
  void set_int(const std::string& key, std::int64_t value);
  void set_bool(const std::string& key, bool value);

  std::size_t size() const noexcept { return values_.size(); }
  const std::map<std::string, std::string>& values() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace scal::util
