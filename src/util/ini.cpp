#include "util/ini.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace scal::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

IniFile IniFile::parse(const std::string& text) {
  IniFile ini;
  std::istringstream in(text);
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';') continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        throw std::runtime_error("IniFile: bad section header at line " +
                                 std::to_string(line_no));
      }
      section = trim(trimmed.substr(1, trimmed.size() - 2));
      if (section.empty()) {
        throw std::runtime_error("IniFile: empty section name at line " +
                                 std::to_string(line_no));
      }
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("IniFile: expected key = value at line " +
                               std::to_string(line_no));
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("IniFile: empty key at line " +
                               std::to_string(line_no));
    }
    ini.values_[section.empty() ? key : section + "." + key] = value;
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("IniFile: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string IniFile::to_string() const {
  std::ostringstream out;
  std::string current_section;
  bool first = true;
  for (const auto& [key, value] : values_) {
    const auto dot = key.find('.');
    const std::string section =
        dot == std::string::npos ? "" : key.substr(0, dot);
    const std::string bare =
        dot == std::string::npos ? key : key.substr(dot + 1);
    if (section != current_section || first) {
      if (!first) out << '\n';
      if (!section.empty()) out << '[' << section << "]\n";
      current_section = section;
      first = false;
    }
    out << bare << " = " << value << '\n';
  }
  return out.str();
}

void IniFile::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("IniFile: cannot write " + path);
  out << to_string();
}

bool IniFile::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> IniFile::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string IniFile::get_string(const std::string& key,
                                const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double IniFile::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("IniFile: '" + key + "' is not a number: " +
                             *v);
  }
}

std::int64_t IniFile::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("IniFile: '" + key + "' is not an integer: " +
                             *v);
  }
}

bool IniFile::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::runtime_error("IniFile: '" + key + "' is not a boolean: " + *v);
}

void IniFile::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void IniFile::set_double(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  values_[key] = os.str();
}

void IniFile::set_int(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}

void IniFile::set_bool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

}  // namespace scal::util
