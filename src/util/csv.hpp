#pragma once
// Minimal CSV writer so experiment series can be dumped for external
// plotting alongside the printed tables.

#include <fstream>
#include <string>
#include <vector>

namespace scal::util {

class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& cells);

  bool ok() const { return static_cast<bool>(out_); }
  std::size_t rows_written() const noexcept { return rows_; }

  /// Quote a cell if it contains separators/quotes/newlines.
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace scal::util
