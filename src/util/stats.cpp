#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace scal::util {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n + m;
  mean_ += delta * m / total;
  m2_ += other.m2_ + delta * delta * n * m / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const noexcept {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Samples::min() const {
  if (xs_.empty()) return 0.0;
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  if (xs_.empty()) return 0.0;
  return *std::max_element(xs_.begin(), xs_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_hi(b) <= x) {
      below += counts_[b];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 paired samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LineFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::vector<double> segment_slopes(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("segment_slopes: need >= 2 paired samples");
  }
  std::vector<double> s;
  s.reserve(x.size() - 1);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double dx = x[i] - x[i - 1];
    s.push_back(dx != 0.0 ? (y[i] - y[i - 1]) / dx : 0.0);
  }
  return s;
}

}  // namespace scal::util
