#pragma once
// InlineFn<Capacity>: a small-buffer `void()` callable for the
// simulation hot path.
//
// std::function's inline buffer (16 bytes on libstdc++) is too small for
// the kernel's event closures — a captured RmsMessage or Job pushes every
// schedule/submit/send onto the heap, and those allocations dominate the
// per-event cost of the discrete-event loop.  InlineFn stores callables
// up to Capacity bytes directly in the object (no allocation, one
// indirect call to invoke) and falls back to the heap only for oversized
// or throwing-move captures.  Copyable, like std::function, because the
// network fault layer duplicates in-flight deliveries.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace scal::util {

template <std::size_t Capacity>
class InlineFn {
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static constexpr bool is_callable =
      std::is_invocable_r_v<void, F&> &&
      !std::is_same_v<std::remove_cvref_t<F>, InlineFn>;

 public:
  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename = std::enable_if_t<is_callable<F>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  InlineFn(const InlineFn& other) : vt_(other.vt_) {
    if (vt_ != nullptr) vt_->copy(buf_, other.buf_);
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn& operator=(const InlineFn& other) {
    if (this != &other) {
      InlineFn copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Invoke; precondition: non-null.
  void operator()() { vt_->invoke(buf_); }

  static constexpr std::size_t inline_capacity() noexcept { return Capacity; }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct dst from src and destroy src's payload.
    void (*relocate)(void* dst, void* src);
    void (*copy)(void* dst, const void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static const VTable vtable_inline;
  template <typename Fn>
  static const VTable vtable_heap;

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

template <std::size_t Capacity>
template <typename Fn>
const typename InlineFn<Capacity>::VTable
    InlineFn<Capacity>::vtable_inline = {
        /*invoke=*/[](void* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
        /*relocate=*/
        [](void* dst, void* src) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        /*copy=*/
        [](void* dst, const void* src) {
          ::new (dst) Fn(*std::launder(reinterpret_cast<const Fn*>(src)));
        },
        /*destroy=*/
        [](void* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
};

template <std::size_t Capacity>
template <typename Fn>
const typename InlineFn<Capacity>::VTable InlineFn<Capacity>::vtable_heap = {
    /*invoke=*/
    [](void* b) { (**std::launder(reinterpret_cast<Fn**>(b)))(); },
    /*relocate=*/
    [](void* dst, void* src) {
      ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
    },
    /*copy=*/
    [](void* dst, const void* src) {
      ::new (dst)
          Fn*(new Fn(**std::launder(reinterpret_cast<Fn* const*>(src))));
    },
    /*destroy=*/
    [](void* b) { delete *std::launder(reinterpret_cast<Fn**>(b)); },
};

}  // namespace scal::util
