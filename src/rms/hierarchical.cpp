#include "rms/hierarchical.hpp"

#include <limits>

namespace scal::rms {

void HierarchicalScheduler::on_start() {
  if (is_root()) {
    // Seed the root's view so early arrivals have a target.
    for (grid::ClusterId c = 0;
         c < static_cast<grid::ClusterId>(system().cluster_count()); ++c) {
      digests_.emplace(c, Digest{0.0, 0.0, 0.0});
    }
  }
}

void HierarchicalScheduler::after_batch(const grid::StatusBatch& /*batch*/) {
  if (is_root()) {
    // The root keeps its own cluster's digest fresh locally.
    digests_[cluster()] =
        Digest{busy_fraction(cluster()), least_load(cluster()), now()};
    return;
  }
  // Leaves digest upward at the update-interval cadence.
  if (now() - last_digest_ < tuning().update_interval) return;
  last_digest_ = now();
  send_digest();
}

void HierarchicalScheduler::send_digest() {
  system().metrics().count_advert();
  grid::RmsMessage digest;
  digest.kind = grid::MsgKind::kVolunteer;  // reused as "cluster digest"
  digest.a = busy_fraction(cluster());
  digest.b = least_load(cluster());
  send_message(0, std::move(digest), costs().sched_advert);
}

void HierarchicalScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kLocal) {
    schedule_local(std::move(job));
    return;
  }
  if (is_root()) {
    root_place(std::move(job));
    return;
  }
  // Leaves forward REMOTE work to the root coordinator.
  transfer_job(0, std::move(job));
}

void HierarchicalScheduler::root_place(workload::Job job) {
  // Scan cluster digests — O(#clusters), not O(#resources).
  grid::ClusterId best = cluster();
  double best_load = std::numeric_limits<double>::infinity();
  std::uint64_t evicted = 0;
  for (const auto& [c, digest] : digests_) {
    // Under the robustness mixin, skip digests from leaves that stopped
    // reporting (crashed or blacked out); the root's own digest is
    // refreshed locally every batch so local fallback always remains.
    if (robust() && c != cluster() &&
        now() - digest.stamp > staleness_window()) {
      ++evicted;
      continue;
    }
    // Order by reported least-loaded resource; busy fraction breaks ties.
    const double key = digest.least_load + 0.1 * digest.busy_fraction;
    if (key < best_load) {
      best_load = key;
      best = c;
    }
  }
  if (evicted > 0) system().metrics().count_status_evictions(evicted);
  if (best == cluster()) {
    schedule_local(std::move(job));
  } else {
    // Optimistic bump on the digest so bursts fan out across clusters.
    digests_[best].least_load += 1.0;
    transfer_job(best, std::move(job));
  }
}

void HierarchicalScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kVolunteer:  // cluster digest
      if (is_root()) {
        digests_[msg.from] = Digest{msg.a, msg.b, msg.stamp};
      }
      return;
    case grid::MsgKind::kJobTransfer: {
      if (!msg.job) return;
      if (is_root() && msg.job->job_class == workload::JobClass::kRemote &&
          msg.from != cluster()) {
        // A leaf's forwarded job: the root routes it.  Jobs the root
        // itself sent out arrive at leaves with from == 0, which the
        // next branch handles.
        root_place(*msg.job);
        return;
      }
      schedule_local(*msg.job);
      return;
    }
    default:
      DistributedSchedulerBase::handle_message(msg);
  }
}

}  // namespace scal::rms
