#pragma once
// CENTRAL: one scheduler makes the decisions for every resource in the
// system; all resources report to it (through their cluster estimators)
// every update interval, with change-suppression (paper Section 3.3).

#include "grid/scheduler.hpp"
#include "grid/system.hpp"

namespace scal::rms {

class CentralScheduler : public grid::SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

 protected:
  void handle_job(workload::Job job) override;
};

}  // namespace scal::rms
