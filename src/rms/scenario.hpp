#pragma once
// scal::Scenario — the one-stop run facade.
//
// A Scenario bundles everything one simulation run needs — the
// grid::GridConfig, the telemetry handle, the fault plan, the policy
// factory, and the worker pool a sweep may spread over — behind a
// chainable builder, so callers stop hand-wiring the plumbing:
//
//   auto result = Scenario(bench::case1_base())
//                     .rms(grid::RmsKind::kLowest)
//                     .seed(7)
//                     .faults("churn:mtbf=400,mttr=40")
//                     .telemetry(&telemetry)
//                     .run();
//
// Every setter returns *this; anything without a dedicated setter is
// reachable through config().  build() hands back the wired GridSystem
// for callers that need mid-run access (samplers, job logs); run() is
// build()->run() for everyone else.

#include <memory>
#include <string>
#include <vector>

#include "grid/system.hpp"

namespace scal::exec {
class ThreadPool;
}

namespace scal {

class Scenario {
 public:
  Scenario() = default;
  explicit Scenario(grid::GridConfig config) : config_(std::move(config)) {}

  // -- Chainable setters for the common knobs.
  Scenario& rms(grid::RmsKind kind) {
    config_.rms = kind;
    return *this;
  }
  Scenario& nodes(std::size_t n) {
    config_.topology.nodes = n;
    return *this;
  }
  Scenario& seed(std::uint64_t value) {
    config_.seed = value;
    return *this;
  }
  Scenario& horizon(double time_units) {
    config_.horizon = time_units;
    return *this;
  }
  /// Non-owning telemetry handle; null turns instrumentation off.
  Scenario& telemetry(obs::Telemetry* handle) {
    config_.telemetry = handle;
    return *this;
  }
  Scenario& faults(fault::FaultPlan plan) {
    config_.faults = std::move(plan);
    return *this;
  }
  /// Fault plan from its spec grammar (docs/FAULTS.md), e.g.
  /// "churn:mtbf=400,mttr=40;net:drop=0.02".  Throws on a bad spec.
  Scenario& faults(const std::string& spec);
  /// Workload source (docs/WORKLOADS.md); default = the synthetic
  /// generator the paper's figures run on.
  Scenario& workload(workload::SourceSpec spec) {
    config_.workload_source = std::move(spec);
    return *this;
  }
  /// Workload source from its spec grammar, e.g. "swf:trace.swf@0.01"
  /// or "synthetic".  Throws on a bad spec.
  Scenario& workload(const std::string& spec);
  /// Replay a Standard Workload Format log, with arrival and run times
  /// multiplied by `time_scale` (SWF logs are in seconds; scale them
  /// into sim time units).
  Scenario& swf_trace(const std::string& path, double time_scale = 1.0);
  /// Append one load-modulator stage to the source's chain, e.g.
  /// "diurnal:amplitude=0.6,period=500" (docs/WORKLOADS.md grammar).
  /// Chainable: each call appends; stages apply in call order.  Throws
  /// on a bad spec.
  Scenario& modulate(const std::string& spec);
  /// Select the memory tier (docs/PERFORMANCE.md): kFull keeps exact
  /// per-job samples, kStreaming folds results online in O(1) memory —
  /// the million-job path.
  Scenario& result_mode(grid::ResultMode mode) {
    config_.result_mode = mode;
    return *this;
  }
  /// Memory tier from its name ("full" | "streaming").  Throws on a
  /// bad name.
  Scenario& result_mode(const std::string& name) {
    config_.result_mode = grid::result_mode_from_string(name);
    return *this;
  }
  /// Record per-job lifecycle events, optionally bounded at `capacity`
  /// records (0 = unbounded; overflow is counted, not stored).
  Scenario& job_log(bool enabled, std::size_t capacity = 0) {
    config_.job_log = enabled;
    config_.job_log_capacity = capacity;
    return *this;
  }
  /// Custom policy factory (see examples/custom_rms.cpp); when unset,
  /// build() uses rms::scheduler_factory(config().rms).
  Scenario& scheduler(grid::SchedulerFactory factory) {
    factory_ = std::move(factory);
    return *this;
  }
  /// Non-owning worker pool for sweeps over this scenario (a single
  /// run() is always serial — determinism comes first; sweep drivers
  /// read the pool back via pool()).
  Scenario& pool(exec::ThreadPool* workers) {
    pool_ = workers;
    return *this;
  }

  // -- Full-config escape hatch.
  grid::GridConfig& config() noexcept { return config_; }
  const grid::GridConfig& config() const noexcept { return config_; }
  exec::ThreadPool* pool() const noexcept { return pool_; }

  /// Validate the config and wire the full system.  The Scenario can be
  /// reused: every call builds a fresh, independent system.
  std::unique_ptr<grid::GridSystem> build() const;

  /// build()->run(): one simulation to the horizon.
  grid::SimulationResult run() const;

  /// Run one scenario per RMS kind (the paper's Section 3.3 lineup),
  /// returned in `kinds` order.  Deterministic and bit-identical
  /// whether `workers` is null (serial) or a pool.
  static std::vector<grid::SimulationResult> run_kinds(
      const Scenario& base, const std::vector<grid::RmsKind>& kinds,
      exec::ThreadPool* workers = nullptr);

 private:
  grid::GridConfig config_{};
  grid::SchedulerFactory factory_;  // empty = by config_.rms
  exec::ThreadPool* pool_ = nullptr;
};

}  // namespace scal
