#include "rms/sender_initiated.hpp"

#include <cmath>

namespace scal::rms {

void SenderInitiatedScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kLocal) {
    schedule_local(std::move(job));
    return;
  }
  start_att_poll(std::move(job));
}

void SenderInitiatedScheduler::start_att_poll(workload::Job job,
                                              std::uint32_t attempt) {
  const auto peers = random_peers(tuning().neighborhood_size);
  if (peers.empty()) {
    schedule_local(std::move(job));
    return;
  }
  const std::uint64_t token = next_token();
  AttRound round;
  round.job = std::move(job);
  round.awaiting = peers.size();
  round.attempt = attempt;
  auto [it, inserted] = pending_.emplace(token, std::move(round));
  (void)inserted;
  for (const grid::ClusterId peer : peers) {
    system().metrics().count_poll();
    grid::RmsMessage poll;
    poll.kind = grid::MsgKind::kPollRequest;
    poll.token = token;
    poll.a = it->second.job.exec_time;  // demand, for the ERT estimate
    send_message(peer, std::move(poll), costs().sched_poll);
  }
  // Watchdog: lost replies (failure injection) must never strand a job.
  system().simulator().schedule_in(
      protocol().reply_timeout, [this, token]() {
        const auto round_it = pending_.find(token);
        if (round_it == pending_.end()) return;
        AttRound late = std::move(round_it->second);
        pending_.erase(round_it);
        // Robustness mixin: zero replies retries with backoff (see
        // LowestScheduler for the rationale; charged to G identically).
        if (!late.any_reply && should_retry(late.attempt)) {
          system().metrics().count_round_retry();
          const std::uint32_t next = late.attempt + 1;
          system().simulator().schedule_in(
              retry_backoff(late.attempt),
              [this, job = std::move(late.job), next]() mutable {
                start_att_poll(std::move(job), next);
              });
          return;
        }
        conclude_att_round(std::move(late));
      });
}

void SenderInitiatedScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kPollRequest: {
      grid::RmsMessage reply;
      reply.kind = grid::MsgKind::kPollReply;
      reply.token = msg.token;
      reply.a = estimate_awt(cluster()) + estimate_ert(msg.a);  // ATT
      reply.b = busy_fraction(cluster());                       // RUS
      send_message(msg.from, std::move(reply), costs().sched_poll);
      return;
    }
    case grid::MsgKind::kPollReply: {
      const auto it = pending_.find(msg.token);
      if (it == pending_.end()) return;
      AttRound& round = it->second;
      const double att = msg.a + predict_transfer_delay(msg.from);
      const bool better =
          !round.any_reply || att < round.best_att - protocol().psi ||
          (std::abs(att - round.best_att) <= protocol().psi &&
           msg.b < round.best_rus);
      if (better) {
        round.any_reply = true;
        round.best_cluster = msg.from;
        round.best_att = att;
        round.best_rus = msg.b;
      }
      if (--round.awaiting == 0) {
        AttRound done = std::move(round);
        pending_.erase(it);
        conclude_att_round(std::move(done));
      }
      return;
    }
    default:
      DistributedSchedulerBase::handle_message(msg);
  }
}

void SenderInitiatedScheduler::conclude_att_round(AttRound round) {
  const double local_att =
      estimate_awt(cluster()) + estimate_ert(round.job.exec_time);
  // Ties within psi stay local (the local site's RUS is free to use).
  if (round.any_reply && round.best_att < local_att - protocol().psi) {
    transfer_job(round.best_cluster, std::move(round.job));
  } else {
    schedule_local(std::move(round.job));
  }
}

}  // namespace scal::rms
