#pragma once
// RESERVE [Zhou'88 via the paper]: when a scheduler's cluster load drops
// below T_l it registers reservations at L_p remote schedulers.  A
// scheduler whose cluster is above T_l sends a REMOTE arrival toward the
// most recent reservation after probing that the reserver is still below
// threshold; a failed probe cancels the reservation.

#include "util/token_map.hpp"
#include <vector>

#include "rms/base.hpp"

namespace scal::rms {

class ReserveScheduler : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

  std::size_t parked_jobs() const override { return probing_.size(); }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;
  void after_batch(const grid::StatusBatch& batch) override;

  void on_reset() override {
    reservations_.clear();
    probing_.clear();
    last_advert_ = -1e300;
  }

 private:
  struct Reservation {
    grid::ClusterId from = 0;
    sim::Time stamp = 0.0;
  };
  struct Probe {
    workload::Job job;
    std::uint32_t attempt = 0;  ///< robustness retries of this probe
  };

  void maybe_advertise();
  /// Probe the freshest reservation for `job`, or place it locally when
  /// no reservation exists or the cluster is below threshold.
  void probe_reservation(workload::Job job, std::uint32_t attempt);
  /// Most recent reservation, or nullptr.
  Reservation* freshest_reservation();

  std::vector<Reservation> reservations_;
  util::TokenMap<std::uint64_t, Probe> probing_;
  sim::Time last_advert_ = -1e300;
};

}  // namespace scal::rms
