#include "rms/base.hpp"

namespace scal::rms {

void DistributedSchedulerBase::schedule_local(workload::Job job) {
  const grid::ResourceIndex r = least_loaded(cluster());
  dispatch(cluster(), r, std::move(job));
}

void DistributedSchedulerBase::transfer_job(grid::ClusterId dst,
                                            workload::Job job) {
  system().metrics().count_transfer();
  grid::RmsMessage msg;
  msg.kind = grid::MsgKind::kJobTransfer;
  msg.token = job.id;
  msg.job = std::move(job);
  send_message(dst, std::move(msg), costs().sched_transfer);
}

void DistributedSchedulerBase::handle_message(const grid::RmsMessage& msg) {
  if (msg.kind == grid::MsgKind::kJobTransfer && msg.job) {
    schedule_local(*msg.job);
    return;
  }
  SchedulerBase::handle_message(msg);
}

void DistributedSchedulerBase::reply_demand(const grid::RmsMessage& msg) {
  grid::RmsMessage reply;
  reply.kind = grid::MsgKind::kDemandReply;
  reply.token = msg.token;
  reply.a = estimate_awt(cluster()) + estimate_ert(msg.a);
  reply.b = busy_fraction(cluster());
  send_message(msg.from, std::move(reply), costs().sched_poll);
}

void DistributedSchedulerBase::arm_negotiation_watchdog(
    util::TokenMap<std::uint64_t, workload::Job>& negotiating,
    std::uint64_t token) {
  system().simulator().schedule_in(
      protocol().reply_timeout, [this, &negotiating, token]() {
        const auto it = negotiating.find(token);
        if (it == negotiating.end()) return;
        workload::Job stranded = std::move(it->second);
        negotiating.erase(it);
        schedule_local(std::move(stranded));
      });
}

bool DistributedSchedulerBase::decide_demand_reply(
    const grid::RmsMessage& msg,
    util::TokenMap<std::uint64_t, workload::Job>& negotiating) {
  const auto it = negotiating.find(msg.token);
  if (it == negotiating.end()) return false;
  workload::Job job = std::move(it->second);
  negotiating.erase(it);
  const double local_att =
      estimate_awt(cluster()) + estimate_ert(job.exec_time);
  const double remote_att = msg.a + predict_transfer_delay(msg.from);
  if (remote_att < local_att) {
    transfer_job(msg.from, std::move(job));
  } else {
    schedule_local(std::move(job));
  }
  return true;
}

}  // namespace scal::rms
