#pragma once
// AUCTION [Leland-Ott via the paper]: initial scheduling as in LOWEST.
// When the status stream shows a local resource going idle (or below
// T_l), the scheduler invites L_p neighbors to bid; neighbors holding a
// backlogged resource bid with its load; after a short accumulation
// window the auctioneer awards to the highest-load bidder, which hands
// over a queued job.  This is the PUSH+PULL hybrid whose overhead the
// paper shows degrading when status estimators are scaled (Case 3).

#include "util/token_map.hpp"
#include <vector>

#include "rms/lowest.hpp"

namespace scal::rms {

class AuctionScheduler : public LowestScheduler {
 public:
  using LowestScheduler::LowestScheduler;

  bool wants_idle_events() const override { return true; }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;
  void handle_idle_resource(grid::ResourceIndex resource,
                            std::uint32_t estimator) override;

  void on_reset() override {
    LowestScheduler::on_reset();
    active_.clear();
    last_auction_.clear();
  }

 private:
  struct Bid {
    grid::ClusterId from = 0;
    double load = 0.0;
  };
  struct Auction {
    std::vector<Bid> bids;
  };

  void close_auction(std::uint64_t token);

  /// Auctions in flight, keyed by token.  Triggers are paced per
  /// estimator (see StatusBatch::estimator), so concurrent auctions from
  /// different estimators can coexist.
  util::TokenMap<std::uint64_t, Auction> active_;
  util::TokenMap<std::uint32_t, sim::Time> last_auction_;
};

}  // namespace scal::rms
