#pragma once
// Public entry point for building a managed grid with one of the seven
// RMS policies from the paper.
//
// New code should prefer the scal::Scenario facade (rms/scenario.hpp),
// which bundles config, telemetry, faults, and pool behind one builder;
// the free functions below remain as thin shims over it for one release.

#include <memory>

#include "grid/system.hpp"

namespace scal::rms {

/// Factory creating policy schedulers of the given kind.
grid::SchedulerFactory scheduler_factory(grid::RmsKind kind);

/// Convenience: build a GridSystem for config.rms.
/// Deprecated shim: use Scenario(config).build().
std::unique_ptr<grid::GridSystem> make_grid(grid::GridConfig config);

/// Convenience: build and run in one call.
/// Deprecated shim: use Scenario(config).run().
grid::SimulationResult simulate(grid::GridConfig config);

}  // namespace scal::rms
