#pragma once
// Public entry point for building a managed grid with one of the seven
// RMS policies from the paper.

#include <memory>

#include "grid/system.hpp"

namespace scal::rms {

/// Factory creating policy schedulers of the given kind.
grid::SchedulerFactory scheduler_factory(grid::RmsKind kind);

/// Convenience: build a GridSystem for config.rms.
std::unique_ptr<grid::GridSystem> make_grid(grid::GridConfig config);

/// Convenience: build and run in one call.
grid::SimulationResult simulate(grid::GridConfig config);

}  // namespace scal::rms
