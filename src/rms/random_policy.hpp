#pragma once
// RANDOM: the no-information baseline from Zhou's load-balancing study
// [17] that LOWEST was originally measured against.  LOCAL jobs land on
// a uniformly random local resource; REMOTE jobs are transferred to a
// uniformly random remote cluster (no polls, no status use beyond
// table sizes).  Not part of the paper's seven — included as the
// baseline that shows what the status-estimation machinery buys.

#include "rms/base.hpp"

namespace scal::rms {

class RandomScheduler : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;

 private:
  void place_randomly(workload::Job job);
};

}  // namespace scal::rms
