#include "rms/receiver_initiated.hpp"

#include <algorithm>

namespace scal::rms {

void ReceiverInitiatedScheduler::on_start() {
  // Desynchronize the volunteering rounds across schedulers.
  const double offset = rng().uniform(0.0, tuning().volunteer_interval);
  system().simulator().schedule_in(offset, [this]() { volunteer_tick(); });
}

void ReceiverInitiatedScheduler::volunteer_tick() {
  // "Periodically, a scheduler checks RUS for the resources in its
  // cluster" — an idle resource (RUS below delta) triggers volunteering.
  const auto& t = table(cluster());
  // Under the robustness mixin only fresh views count: a crashed
  // resource's frozen "idle" entry must not keep attracting work.
  const auto idle = [this](const grid::ResourceView& v) {
    return view_usable(v) && v.load < protocol().delta;
  };
  const bool has_idle = std::any_of(t.begin(), t.end(), idle);
  if (has_idle) {
    for (const grid::ClusterId peer :
         random_peers(tuning().neighborhood_size)) {
      system().metrics().count_advert();
      grid::RmsMessage msg;
      msg.kind = grid::MsgKind::kVolunteer;
      send_message(peer, std::move(msg), costs().sched_advert);
    }
  }
  system().simulator().schedule_in(tuning().volunteer_interval,
                                   [this]() { volunteer_tick(); });
}

void ReceiverInitiatedScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kLocal ||
      busy_fraction(cluster()) <= protocol().t_l) {
    schedule_local(std::move(job));
    return;
  }
  park_job(std::move(job));
}

void ReceiverInitiatedScheduler::park_job(workload::Job job) {
  const workload::JobId id = job.id;
  wait_queue_.push_back(std::move(job));
  // Fallback: never hold a job hostage to a volunteer that may not come.
  system().simulator().schedule_in(
      protocol().wait_queue_timeout, [this, id]() {
        const auto it =
            std::find_if(wait_queue_.begin(), wait_queue_.end(),
                         [id](const workload::Job& j) { return j.id == id; });
        if (it != wait_queue_.end()) {
          workload::Job job = std::move(*it);
          wait_queue_.erase(it);
          schedule_local(std::move(job));
        }
      });
}

void ReceiverInitiatedScheduler::after_batch(
    const grid::StatusBatch& /*batch*/) {
  if (busy_fraction(cluster()) <= protocol().t_l) drain_wait_queue_locally();
}

void ReceiverInitiatedScheduler::drain_wait_queue_locally() {
  while (!wait_queue_.empty() &&
         busy_fraction(cluster()) <= protocol().t_l) {
    workload::Job job = std::move(wait_queue_.front());
    wait_queue_.pop_front();
    schedule_local(std::move(job));
  }
}

void ReceiverInitiatedScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kVolunteer: {
      if (wait_queue_.empty()) return;  // nothing to offer the volunteer
      workload::Job job = std::move(wait_queue_.front());
      wait_queue_.pop_front();
      const std::uint64_t token = next_token();
      grid::RmsMessage demand;
      demand.kind = grid::MsgKind::kDemandRequest;
      demand.token = token;
      demand.a = job.exec_time;  // the head job's resource demands
      negotiating_.emplace(token, std::move(job));
      arm_negotiation_watchdog(negotiating_, token);
      system().metrics().count_poll();
      send_message(msg.from, std::move(demand), costs().sched_poll);
      return;
    }
    case grid::MsgKind::kDemandRequest:
      reply_demand(msg);
      return;
    case grid::MsgKind::kDemandReply:
      decide_demand_reply(msg, negotiating_);
      return;
    default:
      DistributedSchedulerBase::handle_message(msg);
  }
}

}  // namespace scal::rms
