#pragma once
// Shared plumbing for the distributed policies: local least-loaded
// placement, the default job-transfer handler, and the R-I-style
// demand/reply handshake used by both R-I and Sy-I.

#include "grid/scheduler.hpp"
#include "grid/system.hpp"
#include "util/token_map.hpp"

namespace scal::rms {

class DistributedSchedulerBase : public grid::SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

 protected:
  /// Place `job` on this cluster's least-loaded resource.
  void schedule_local(workload::Job job);

  /// Transfer `job` to `dst`'s scheduler (kJobTransfer + accounting).
  void transfer_job(grid::ClusterId dst, workload::Job job);

  /// Default handling for an incoming kJobTransfer: schedule locally.
  void handle_message(const grid::RmsMessage& msg) override;

  /// Answer a kDemandRequest (R-I handshake): reply with our ATT
  /// estimate for the demand in msg.a and our busy fraction.
  void reply_demand(const grid::RmsMessage& msg);

  /// Decide a kDemandReply: transfer the correlated job to the
  /// volunteer if its quoted ATT plus the transfer delay beats the local
  /// estimate.  Returns true if the message was consumed.
  bool decide_demand_reply(const grid::RmsMessage& msg,
                           util::TokenMap<std::uint64_t, workload::Job>&
                               negotiating);

  /// Watchdog for a demand negotiation: if `token` is still in
  /// `negotiating` after the reply timeout (lost control message), the
  /// job falls back to local placement.  `negotiating` must outlive the
  /// scheduler's event horizon (it is a member of the caller).
  void arm_negotiation_watchdog(
      util::TokenMap<std::uint64_t, workload::Job>& negotiating,
      std::uint64_t token);

  const grid::CostModel& costs() const {
    return system().config().costs;
  }
  const grid::ProtocolParams& protocol() const {
    return system().config().protocol;
  }
  const grid::Tuning& tuning() const { return system().config().tuning; }
};

}  // namespace scal::rms
