#include "rms/factory.hpp"

#include "rms/scenario.hpp"

#include "rms/auction.hpp"
#include "rms/central.hpp"
#include "rms/hierarchical.hpp"
#include "rms/random_policy.hpp"
#include "rms/lowest.hpp"
#include "rms/receiver_initiated.hpp"
#include "rms/reserve.hpp"
#include "rms/sender_initiated.hpp"
#include "rms/symmetric.hpp"

namespace scal::rms {

grid::SchedulerFactory scheduler_factory(grid::RmsKind kind) {
  return [kind](grid::GridSystem& system, sim::EntityId id,
                grid::ClusterId cluster, net::NodeId node)
             -> std::unique_ptr<grid::SchedulerBase> {
    switch (kind) {
      case grid::RmsKind::kCentral:
        return std::make_unique<CentralScheduler>(system, id, cluster, node);
      case grid::RmsKind::kLowest:
        return std::make_unique<LowestScheduler>(system, id, cluster, node);
      case grid::RmsKind::kReserve:
        return std::make_unique<ReserveScheduler>(system, id, cluster, node);
      case grid::RmsKind::kAuction:
        return std::make_unique<AuctionScheduler>(system, id, cluster, node);
      case grid::RmsKind::kSenderInitiated:
        return std::make_unique<SenderInitiatedScheduler>(system, id, cluster,
                                                          node);
      case grid::RmsKind::kReceiverInitiated:
        return std::make_unique<ReceiverInitiatedScheduler>(system, id,
                                                            cluster, node);
      case grid::RmsKind::kSymmetric:
        return std::make_unique<SymmetricScheduler>(system, id, cluster,
                                                    node);
      case grid::RmsKind::kHierarchical:
        return std::make_unique<HierarchicalScheduler>(system, id, cluster,
                                                       node);
      case grid::RmsKind::kRandom:
        return std::make_unique<RandomScheduler>(system, id, cluster, node);
    }
    throw std::invalid_argument("scheduler_factory: unknown RMS kind");
  };
}

std::unique_ptr<grid::GridSystem> make_grid(grid::GridConfig config) {
  return Scenario(std::move(config)).build();
}

grid::SimulationResult simulate(grid::GridConfig config) {
  return Scenario(std::move(config)).run();
}

}  // namespace scal::rms
