#pragma once
// S-I [Shan-Oliker-Biswas via the paper]: sender-initiated
// superscheduling over a grid middleware.  On a REMOTE arrival the
// scheduler polls L_p remote schedulers, which answer with approximate
// waiting time (AWT), expected run time (ERT), and resource utilization
// status (RUS).  The approximate turnaround time ATT = AWT + ERT (plus
// the transfer delay for remote sites) picks the target; ties within
// tolerance psi break toward the smallest RUS.

#include "util/token_map.hpp"

#include "rms/base.hpp"

namespace scal::rms {

class SenderInitiatedScheduler : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

  bool uses_middleware() const override { return true; }
  std::size_t parked_jobs() const override { return pending_.size(); }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;

  /// The S-I poll round; Sy-I falls back to this when it has no fresh
  /// advertisement.  `attempt` counts robustness retries.
  void start_att_poll(workload::Job job, std::uint32_t attempt = 0);

  void on_reset() override { pending_.clear(); }

 private:
  struct AttRound {
    workload::Job job;
    std::size_t awaiting = 0;
    grid::ClusterId best_cluster = 0;
    double best_att = 0.0;
    double best_rus = 0.0;
    bool any_reply = false;
    std::uint32_t attempt = 0;
  };

  void conclude_att_round(AttRound round);

  util::TokenMap<std::uint64_t, AttRound> pending_;
};

}  // namespace scal::rms
