#pragma once
// LOWEST [Zhou'88 via the paper]: per-cluster schedulers with periodic
// updates.  LOCAL jobs go to the least-loaded local resource.  REMOTE
// jobs trigger a poll of L_p random remote schedulers; the job is
// transferred to the scheduler reporting the least-loaded resources
// (kept locally when the local cluster is at least as good).

#include "util/token_map.hpp"

#include "rms/base.hpp"

namespace scal::rms {

class LowestScheduler : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

  std::size_t parked_jobs() const override { return pending_.size(); }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;

  /// REMOTE-arrival poll round (also AUCTION's initial scheduling).
  /// `attempt` counts robustness retries of the same job's round.
  void start_poll_round(workload::Job job, std::uint32_t attempt = 0);

  void on_reset() override { pending_.clear(); }

 private:
  struct PollRound {
    workload::Job job;
    std::size_t awaiting = 0;
    grid::ClusterId best_cluster = 0;
    double best_load = 0.0;
    double best_rus = 0.0;
    bool any_reply = false;
    std::uint32_t attempt = 0;
  };

  void conclude_round(PollRound round);

  util::TokenMap<std::uint64_t, PollRound> pending_;
};

}  // namespace scal::rms
