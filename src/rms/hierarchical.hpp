#pragma once
// HIER: a two-level RMS — the paper's future-work item "(a) developing
// strategies to apply this framework to complex RMS architectures".
//
// Cluster 0's scheduler doubles as the root coordinator.  Leaf
// schedulers place LOCAL jobs on their least-loaded local resource and
// forward REMOTE jobs to the root; each leaf also sends the root a
// periodic cluster digest (busy fraction + least load).  The root
// places forwarded jobs on the cluster with the lowest digest load and
// hands them to that leaf for final local placement.  Decision cost at
// the root scales with the number of *clusters*, not resources — the
// aggregation that makes hierarchy cheaper than CENTRAL at scale.

#include "util/token_map.hpp"

#include "rms/base.hpp"

namespace scal::rms {

class HierarchicalScheduler : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

  void on_start() override;
  bool is_root() const { return cluster() == 0; }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;
  void after_batch(const grid::StatusBatch& batch) override;

  void on_reset() override {
    digests_.clear();
    last_digest_ = -1e300;
  }

 private:
  struct Digest {
    double busy_fraction = 0.0;
    double least_load = 0.0;
    sim::Time stamp = -1e300;
  };

  void send_digest();
  void root_place(workload::Job job);

  /// Root-side view of every cluster (including its own, self-updated).
  util::TokenMap<grid::ClusterId, Digest> digests_;
  sim::Time last_digest_ = -1e300;
};

}  // namespace scal::rms
