#include "rms/scenario.hpp"

#include "exec/thread_pool.hpp"
#include "rms/factory.hpp"

namespace scal {

Scenario& Scenario::faults(const std::string& spec) {
  config_.faults = fault::FaultPlan::parse(spec);
  return *this;
}

Scenario& Scenario::workload(const std::string& spec) {
  config_.workload_source = workload::SourceSpec::parse(spec);
  return *this;
}

Scenario& Scenario::swf_trace(const std::string& path, double time_scale) {
  config_.workload_source.kind = workload::SourceKind::kSwf;
  config_.workload_source.path = path;
  config_.workload_source.time_scale = time_scale;
  config_.workload_source.validate();
  return *this;
}

Scenario& Scenario::modulate(const std::string& spec) {
  for (workload::ModulatorSpec& stage : workload::parse_modulators(spec)) {
    config_.workload_source.modulators.push_back(std::move(stage));
  }
  return *this;
}

std::unique_ptr<grid::GridSystem> Scenario::build() const {
  grid::SchedulerFactory factory =
      factory_ ? factory_ : rms::scheduler_factory(config_.rms);
  return std::make_unique<grid::GridSystem>(config_, std::move(factory));
}

grid::SimulationResult Scenario::run() const { return build()->run(); }

std::vector<grid::SimulationResult> Scenario::run_kinds(
    const Scenario& base, const std::vector<grid::RmsKind>& kinds,
    exec::ThreadPool* workers) {
  std::vector<grid::SimulationResult> results(kinds.size());
  exec::parallel_for(workers, kinds.size(), [&](std::size_t i) {
    Scenario s = base;
    results[i] = s.rms(kinds[i]).run();
  });
  return results;
}

}  // namespace scal
