#pragma once
// R-I [Shan-Oliker-Biswas via the paper]: receiver-initiated
// superscheduling over the grid middleware.  Each scheduler periodically
// checks its cluster's RUS; when a resource sits below delta it
// volunteers to at most L_p remote schedulers.  A scheduler holding a
// waiting REMOTE job answers a volunteer with the job's demands; the
// volunteer quotes ATT and RUS, and the holder transfers the job if the
// remote turnaround cost beats the local one.  REMOTE jobs arriving into
// a loaded cluster park in a wait queue until a volunteer shows up, the
// local cluster drains below T_l, or a timeout fires.

#include <deque>
#include "util/token_map.hpp"

#include "rms/base.hpp"

namespace scal::rms {

class ReceiverInitiatedScheduler : public DistributedSchedulerBase {
 public:
  using DistributedSchedulerBase::DistributedSchedulerBase;

  bool uses_middleware() const override { return true; }
  void on_start() override;
  std::size_t parked_jobs() const override {
    return wait_queue_.size() + negotiating_.size();
  }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;
  void after_batch(const grid::StatusBatch& batch) override;

  /// Periodic volunteering round (also reused by tests).
  void volunteer_tick();

  void on_reset() override {
    wait_queue_.clear();
    negotiating_.clear();
  }

 private:
  void park_job(workload::Job job);
  void drain_wait_queue_locally();

  std::deque<workload::Job> wait_queue_;
  util::TokenMap<std::uint64_t, workload::Job> negotiating_;
};

}  // namespace scal::rms
