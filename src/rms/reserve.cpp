#include "rms/reserve.hpp"

#include <algorithm>

namespace scal::rms {

void ReserveScheduler::after_batch(const grid::StatusBatch& /*batch*/) {
  maybe_advertise();
}

void ReserveScheduler::maybe_advertise() {
  if (busy_fraction(cluster()) >= protocol().t_l) return;
  // Pace advertisements by the volunteering interval so a lightly loaded
  // cluster does not spam reservations on every status batch.
  if (now() - last_advert_ < tuning().volunteer_interval) return;
  last_advert_ = now();
  for (const grid::ClusterId peer : random_peers(tuning().neighborhood_size)) {
    system().metrics().count_advert();
    grid::RmsMessage msg;
    msg.kind = grid::MsgKind::kReservation;
    send_message(peer, std::move(msg), costs().sched_advert);
  }
}

ReserveScheduler::Reservation* ReserveScheduler::freshest_reservation() {
  if (reservations_.empty()) return nullptr;
  auto it = std::max_element(reservations_.begin(), reservations_.end(),
                             [](const Reservation& a, const Reservation& b) {
                               return a.stamp < b.stamp;
                             });
  return &*it;
}

void ReserveScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kLocal) {
    schedule_local(std::move(job));
    return;
  }
  probe_reservation(std::move(job), 0);
}

void ReserveScheduler::probe_reservation(workload::Job job,
                                         std::uint32_t attempt) {
  Reservation* res = freshest_reservation();
  if (busy_fraction(cluster()) > protocol().t_l && res != nullptr) {
    const std::uint64_t token = next_token();
    probing_.emplace(token, Probe{std::move(job), attempt});
    system().metrics().count_poll();
    grid::RmsMessage probe;
    probe.kind = grid::MsgKind::kReserveProbe;
    probe.token = token;
    send_message(res->from, std::move(probe), costs().sched_poll);
    // Watchdog: a lost probe or reply falls back to local placement;
    // under the robustness mixin it first re-probes (the freshest
    // reservation is re-picked, so a dead reserver is routed around).
    system().simulator().schedule_in(
        protocol().reply_timeout, [this, token]() {
          const auto it = probing_.find(token);
          if (it == probing_.end()) return;
          Probe stranded = std::move(it->second);
          probing_.erase(it);
          if (should_retry(stranded.attempt)) {
            system().metrics().count_round_retry();
            const std::uint32_t next = stranded.attempt + 1;
            system().simulator().schedule_in(
                retry_backoff(stranded.attempt),
                [this, job = std::move(stranded.job), next]() mutable {
                  probe_reservation(std::move(job), next);
                });
            return;
          }
          schedule_local(std::move(stranded.job));
        });
    return;
  }
  schedule_local(std::move(job));
}

void ReserveScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kReservation: {
      // Refresh an existing reservation from this peer or add a new one.
      for (Reservation& r : reservations_) {
        if (r.from == msg.from) {
          r.stamp = msg.stamp;
          return;
        }
      }
      reservations_.push_back(Reservation{msg.from, msg.stamp});
      return;
    }
    case grid::MsgKind::kReserveProbe: {
      grid::RmsMessage reply;
      reply.kind = grid::MsgKind::kReserveReply;
      reply.token = msg.token;
      reply.a = busy_fraction(cluster()) < protocol().t_l ? 1.0 : 0.0;
      send_message(msg.from, std::move(reply), costs().sched_poll);
      return;
    }
    case grid::MsgKind::kReserveReply: {
      const auto it = probing_.find(msg.token);
      if (it == probing_.end()) return;
      workload::Job job = std::move(it->second.job);
      probing_.erase(it);
      if (msg.a > 0.5) {
        transfer_job(msg.from, std::move(job));
      } else {
        // The reserver filled up: cancel its reservation, run locally.
        std::erase_if(reservations_, [&](const Reservation& r) {
          return r.from == msg.from;
        });
        schedule_local(std::move(job));
      }
      return;
    }
    default:
      DistributedSchedulerBase::handle_message(msg);
  }
}

}  // namespace scal::rms
