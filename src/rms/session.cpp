#include "rms/session.hpp"

#include "rms/factory.hpp"

namespace scal::rms {

grid::SimulationResult SimulationSession::run(const grid::GridConfig& config) {
  if (system_ != nullptr && system_->reset_compatible(config)) {
    system_->reset(config);
  } else {
    system_ = std::make_unique<grid::GridSystem>(
        config, scheduler_factory(config.rms));
    ++rebuilds_;
  }
  return system_->run();
}

}  // namespace scal::rms
