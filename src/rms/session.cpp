#include "rms/session.hpp"

#include "rms/factory.hpp"

namespace scal::rms {

grid::SimulationResult SimulationSession::run(const grid::GridConfig& config) {
  if (system_ != nullptr && system_->reset_compatible(config)) {
    system_->reset(config);
  } else {
    grid::GridConfig effective = config;
    // Instrumented runs keep sharing off: adopted trees skip settle work
    // the phase profiler would otherwise count (routes are unaffected).
    effective.share_router_trees =
        tree_sharing_ && config.telemetry == nullptr;
    system_ = std::make_unique<grid::GridSystem>(
        effective, scheduler_factory(effective.rms));
    ++rebuilds_;
  }
  return system_->run();
}

}  // namespace scal::rms
