#pragma once
// SimulationSession / SessionPool: the reusable-simulation-state backend
// of the enabler tuner.  A session keeps the last GridSystem it built
// alive between runs; when the next config differs only in the tuning
// enablers (GridSystem::reset_compatible), the system is rewound with
// GridSystem::reset() instead of reconstructed — reusing the topology,
// the router's warm shortest-path trees (the dominant cold-start cost on
// large graphs), the entity arena, and the generated workload.  Results
// are bit-identical either way; the session is purely a wall-clock
// optimization.
//
// Sessions also opt their systems into the process-wide shared
// source-tree cache (net::SharedTreeCache): sibling slots route over
// identical graphs, so the first slot to settle a source publishes it
// and the rest adopt instead of re-running Dijkstra.  Routes are
// bit-identical shared or not; instrumented configs (telemetry
// attached) keep sharing off so profiler scope counts stay exact.
//
// A session is single-threaded.  Concurrent annealing chains each use
// their own slot of a SessionPool (the tuner's slot discipline maps one
// chain to one slot), so no locking is needed anywhere on this path.

#include <deque>
#include <memory>

#include "grid/system.hpp"

namespace scal::rms {

class SimulationSession {
 public:
  /// Run one simulation of `config`, reusing the previously built system
  /// when structurally compatible.  Configs with telemetry attached are
  /// never reset-compatible, so instrumented runs always build fresh.
  grid::SimulationResult run(const grid::GridConfig& config);

  /// Times run() had to construct a system (diagnostics).
  std::size_t rebuilds() const noexcept { return rebuilds_; }

  /// Router source-tree sharing for systems this session builds
  /// (default on; see header comment).  Honored at the next rebuild.
  void set_tree_sharing(bool on) noexcept { tree_sharing_ = on; }
  bool tree_sharing() const noexcept { return tree_sharing_; }

 private:
  std::unique_ptr<grid::GridSystem> system_;
  std::size_t rebuilds_ = 0;
  bool tree_sharing_ = true;
};

/// Lazily grown set of sessions with stable references.  Thread-compatible
/// by the slot discipline above: slot(i) must only be used by one thread
/// at a time, and growth happens on the tuner's calling thread before the
/// chains start.
class SessionPool {
 public:
  SimulationSession& slot(std::size_t index) {
    while (sessions_.size() <= index) sessions_.emplace_back();
    return sessions_[index];
  }

  std::size_t size() const noexcept { return sessions_.size(); }

 private:
  std::deque<SimulationSession> sessions_;
};

}  // namespace scal::rms
