#include "rms/lowest.hpp"

namespace scal::rms {

void LowestScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kLocal) {
    schedule_local(std::move(job));
    return;
  }
  start_poll_round(std::move(job));
}

void LowestScheduler::start_poll_round(workload::Job job,
                                       std::uint32_t attempt) {
  const auto peers = random_peers(tuning().neighborhood_size);
  if (peers.empty()) {
    schedule_local(std::move(job));
    return;
  }
  const std::uint64_t token = next_token();
  PollRound round;
  round.job = std::move(job);
  round.awaiting = peers.size();
  round.attempt = attempt;
  auto [it, inserted] = pending_.emplace(token, std::move(round));
  (void)inserted;
  for (const grid::ClusterId peer : peers) {
    system().metrics().count_poll();
    grid::RmsMessage poll;
    poll.kind = grid::MsgKind::kPollRequest;
    poll.token = token;
    poll.a = it->second.job.exec_time;  // S-I reuses this field; harmless here
    send_message(peer, std::move(poll), costs().sched_poll);
  }
  // Watchdog: lost replies (failure injection) must never strand a job.
  system().simulator().schedule_in(
      protocol().reply_timeout, [this, token]() {
        const auto round_it = pending_.find(token);
        if (round_it == pending_.end()) return;
        PollRound late = std::move(round_it->second);
        pending_.erase(round_it);
        // Robustness mixin: a round with zero replies (dead or
        // blacked-out peers) retries with exponential backoff; the
        // repeat polls are charged to G like the first round's.
        if (!late.any_reply && should_retry(late.attempt)) {
          system().metrics().count_round_retry();
          const std::uint32_t next = late.attempt + 1;
          system().simulator().schedule_in(
              retry_backoff(late.attempt),
              [this, job = std::move(late.job), next]() mutable {
                start_poll_round(std::move(job), next);
              });
          return;
        }
        conclude_round(std::move(late));
      });
}

void LowestScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kPollRequest: {
      grid::RmsMessage reply;
      reply.kind = grid::MsgKind::kPollReply;
      reply.token = msg.token;
      reply.a = least_load(cluster());
      reply.b = busy_fraction(cluster());
      send_message(msg.from, std::move(reply), costs().sched_poll);
      return;
    }
    case grid::MsgKind::kPollReply: {
      const auto it = pending_.find(msg.token);
      if (it == pending_.end()) return;
      PollRound& round = it->second;
      if (!round.any_reply || msg.a < round.best_load ||
          (msg.a == round.best_load && msg.b < round.best_rus)) {
        round.any_reply = true;
        round.best_cluster = msg.from;
        round.best_load = msg.a;
        round.best_rus = msg.b;
      }
      if (--round.awaiting == 0) {
        PollRound done = std::move(round);
        pending_.erase(it);
        conclude_round(std::move(done));
      }
      return;
    }
    default:
      DistributedSchedulerBase::handle_message(msg);
  }
}

void LowestScheduler::conclude_round(PollRound round) {
  // Transfer only when a remote cluster reports a strictly less-loaded
  // resource than ours (Zhou's LOWEST keeps the job otherwise).
  if (round.any_reply && round.best_load < least_load(cluster())) {
    transfer_job(round.best_cluster, std::move(round.job));
  } else {
    schedule_local(std::move(round.job));
  }
}

}  // namespace scal::rms
