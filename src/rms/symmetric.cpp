#include "rms/symmetric.hpp"

#include <algorithm>

namespace scal::rms {

void SymmetricScheduler::on_start() {
  const double offset = rng().uniform(0.0, tuning().volunteer_interval);
  system().simulator().schedule_in(offset, [this]() { volunteer_tick(); });
}

void SymmetricScheduler::volunteer_tick() {
  const auto& t = table(cluster());
  // Fresh views only under robustness (see ReceiverInitiatedScheduler).
  const bool has_idle = std::any_of(
      t.begin(), t.end(), [this](const grid::ResourceView& v) {
        return view_usable(v) && v.load < protocol().delta;
      });
  if (has_idle) broadcast_volunteer();
  system().simulator().schedule_in(tuning().volunteer_interval,
                                   [this]() { volunteer_tick(); });
}

void SymmetricScheduler::handle_idle_resource(grid::ResourceIndex /*resource*/,
                                              std::uint32_t estimator) {
  // The event-driven half of Sy-I's PUSH side: an idle transition in the
  // status stream triggers an advertisement.  Pacing is per estimator
  // trigger stream, so a finer-grained estimator layer (Case 3) produces
  // proportionally more advertisement traffic.
  const auto last = last_event_broadcast_.find(estimator);
  if (last != last_event_broadcast_.end() &&
      now() - last->second < 0.10 * tuning().volunteer_interval) {
    return;
  }
  last_event_broadcast_[estimator] = now();
  broadcast_volunteer();
}

void SymmetricScheduler::broadcast_volunteer() {
  for (const grid::ClusterId peer : random_peers(tuning().neighborhood_size)) {
    system().metrics().count_advert();
    grid::RmsMessage msg;
    msg.kind = grid::MsgKind::kVolunteer;
    send_message(peer, std::move(msg), costs().sched_advert);
  }
}

const grid::ClusterId* SymmetricScheduler::freshest_advert() {
  const double ttl =
      protocol().advert_ttl_factor * tuning().volunteer_interval;
  const grid::ClusterId* best = nullptr;
  sim::Time best_stamp = -1e300;
  for (auto& [peer, stamp] : adverts_) {
    if (now() - stamp <= ttl && stamp > best_stamp) {
      best_stamp = stamp;
      freshest_cache_ = peer;
      best = &freshest_cache_;
    }
  }
  return best;
}

void SymmetricScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kLocal) {
    schedule_local(std::move(job));
    return;
  }
  if (const grid::ClusterId* advertiser = freshest_advert()) {
    // R-I style handshake with the advertiser.
    const grid::ClusterId dst = *advertiser;
    adverts_.erase(dst);  // consume the advertisement
    const std::uint64_t token = next_token();
    grid::RmsMessage demand;
    demand.kind = grid::MsgKind::kDemandRequest;
    demand.token = token;
    demand.a = job.exec_time;
    negotiating_.emplace(token, std::move(job));
    arm_negotiation_watchdog(negotiating_, token);
    system().metrics().count_poll();
    send_message(dst, std::move(demand), costs().sched_poll);
    return;
  }
  // No usable advertisement: sender-initiated fallback.
  start_att_poll(std::move(job));
}

void SymmetricScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kVolunteer:
      adverts_[msg.from] = msg.stamp;
      return;
    case grid::MsgKind::kDemandRequest:
      reply_demand(msg);
      return;
    case grid::MsgKind::kDemandReply:
      decide_demand_reply(msg, negotiating_);
      return;
    default:
      SenderInitiatedScheduler::handle_message(msg);
  }
}

}  // namespace scal::rms
