#pragma once
// Sy-I [Shan-Oliker-Biswas via the paper]: symmetric superscheduling —
// combines S-I and R-I.  Schedulers advertise underutilized resources
// (driven both by the periodic round and by idle events surfaced by the
// status-estimator stream; the double status-estimation path is what
// Case 3 stresses).  A scheduler holding a new REMOTE job uses the
// freshest advertisement if one is live, otherwise falls back to the
// S-I poll.

#include "util/token_map.hpp"

#include "rms/sender_initiated.hpp"

namespace scal::rms {

class SymmetricScheduler : public SenderInitiatedScheduler {
 public:
  using SenderInitiatedScheduler::SenderInitiatedScheduler;

  bool wants_idle_events() const override { return true; }
  void on_start() override;
  std::size_t parked_jobs() const override {
    return SenderInitiatedScheduler::parked_jobs() + negotiating_.size();
  }

 protected:
  void handle_job(workload::Job job) override;
  void handle_message(const grid::RmsMessage& msg) override;
  void handle_idle_resource(grid::ResourceIndex resource,
                            std::uint32_t estimator) override;

  void on_reset() override {
    SenderInitiatedScheduler::on_reset();
    adverts_.clear();
    negotiating_.clear();
    last_event_broadcast_.clear();
    freshest_cache_ = 0;
  }

 private:
  void volunteer_tick();
  void broadcast_volunteer();
  /// Freshest live advertisement within the TTL, or nullptr.
  const grid::ClusterId* freshest_advert();

  util::TokenMap<grid::ClusterId, sim::Time> adverts_;
  util::TokenMap<std::uint64_t, workload::Job> negotiating_;
  /// Event-driven broadcasts are paced per estimator trigger stream.
  util::TokenMap<std::uint32_t, sim::Time> last_event_broadcast_;
  grid::ClusterId freshest_cache_ = 0;
};

}  // namespace scal::rms
