#include "rms/central.hpp"

namespace scal::rms {

void CentralScheduler::handle_job(workload::Job job) {
  // Global least-loaded placement over every cluster's table.  Under
  // the robustness mixin, entries that stopped updating (crashed
  // resource or blacked-out estimator) are skipped; if that empties the
  // whole view, fall back to the raw scan rather than strand the job.
  grid::ClusterId best_cluster = 0;
  grid::ResourceIndex best_res = 0;
  double best_load = std::numeric_limits<double>::infinity();
  bool found = false;
  std::uint64_t evicted = 0;
  const std::size_t clusters = system().cluster_count();
  for (int pass = 0; pass < 2 && !found; ++pass) {
    const bool fresh_only = robust() && pass == 0;
    for (std::size_t c = 0; c < clusters; ++c) {
      const auto cid = static_cast<grid::ClusterId>(c);
      const auto& t = table(cid);
      for (grid::ResourceIndex r = 0; r < t.size(); ++r) {
        if (fresh_only && !view_usable(t[r])) {
          ++evicted;
          continue;
        }
        if (t[r].load < best_load) {
          best_load = t[r].load;
          best_cluster = cid;
          best_res = r;
          found = true;
        }
      }
    }
    if (!robust()) break;
  }
  if (evicted > 0) system().metrics().count_status_evictions(evicted);
  dispatch(best_cluster, best_res, std::move(job));
}

}  // namespace scal::rms
