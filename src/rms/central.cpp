#include "rms/central.hpp"

namespace scal::rms {

void CentralScheduler::handle_job(workload::Job job) {
  // Global least-loaded placement over every cluster's table.
  grid::ClusterId best_cluster = 0;
  grid::ResourceIndex best_res = 0;
  double best_load = std::numeric_limits<double>::infinity();
  const std::size_t clusters = system().cluster_count();
  for (std::size_t c = 0; c < clusters; ++c) {
    const auto cid = static_cast<grid::ClusterId>(c);
    const auto& t = table(cid);
    for (grid::ResourceIndex r = 0; r < t.size(); ++r) {
      if (t[r].load < best_load) {
        best_load = t[r].load;
        best_cluster = cid;
        best_res = r;
      }
    }
  }
  dispatch(best_cluster, best_res, std::move(job));
}

}  // namespace scal::rms
