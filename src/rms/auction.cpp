#include "rms/auction.hpp"

#include <algorithm>

namespace scal::rms {

void AuctionScheduler::handle_job(workload::Job job) {
  // "A scheduler follows the same process as in LOWEST for initial
  // scheduling."
  LowestScheduler::handle_job(std::move(job));
}

void AuctionScheduler::handle_idle_resource(grid::ResourceIndex /*resource*/,
                                            std::uint32_t estimator) {
  // Pace per estimator: at most one auction per accumulation window per
  // trigger stream (independent estimators do not coordinate, which is
  // why the PUSH+PULL overhead grows when estimators are scaled).
  const auto last = last_auction_.find(estimator);
  if (last != last_auction_.end() &&
      now() - last->second < protocol().auction_window) {
    return;
  }
  const auto peers = random_peers(tuning().neighborhood_size);
  if (peers.empty()) return;
  last_auction_[estimator] = now();
  const std::uint64_t token = next_token();
  active_.emplace(token, Auction{});
  system().metrics().count_auction();
  for (const grid::ClusterId peer : peers) {
    grid::RmsMessage invite;
    invite.kind = grid::MsgKind::kAuctionInvite;
    invite.token = token;
    send_message(peer, std::move(invite), costs().sched_advert);
  }
  system().simulator().schedule_in(protocol().auction_window,
                                   [this, token]() {
                                     // Closing the auction is work too.
                                     submit(costs().sched_decision_base,
                                            [this, token]() {
                                              close_auction(token);
                                            });
                                   });
}

void AuctionScheduler::close_auction(std::uint64_t token) {
  const auto it = active_.find(token);
  if (it == active_.end()) return;
  Auction auction = std::move(it->second);
  active_.erase(it);
  if (auction.bids.empty()) return;
  const auto winner = std::max_element(
      auction.bids.begin(), auction.bids.end(),
      [](const Bid& a, const Bid& b) { return a.load < b.load; });
  grid::RmsMessage award;
  award.kind = grid::MsgKind::kAuctionAward;
  award.token = token;
  send_message(winner->from, std::move(award), costs().sched_poll);
}

void AuctionScheduler::handle_message(const grid::RmsMessage& msg) {
  switch (msg.kind) {
    case grid::MsgKind::kAuctionInvite: {
      const grid::ResourceIndex r = most_backlogged(cluster());
      if (r == kNoResource) return;  // nothing above threshold: no bid
      grid::RmsMessage bid;
      bid.kind = grid::MsgKind::kAuctionBid;
      bid.token = msg.token;
      bid.a = table(cluster())[r].load;
      send_message(msg.from, std::move(bid), costs().sched_bid);
      return;
    }
    case grid::MsgKind::kAuctionBid: {
      const auto it = active_.find(msg.token);
      if (it != active_.end()) {
        it->second.bids.push_back(Bid{msg.from, msg.a});
      }
      return;
    }
    case grid::MsgKind::kAuctionAward: {
      // Hand over a queued job from the most backlogged resource.
      const grid::ResourceIndex r = most_backlogged(cluster());
      if (r != kNoResource) {
        if (auto job = system().resource(cluster(), r).steal_queued_job()) {
          transfer_job(msg.from, std::move(*job));
          return;
        }
      }
      grid::RmsMessage decline;
      decline.kind = grid::MsgKind::kNoJob;
      decline.token = msg.token;
      send_message(msg.from, std::move(decline), costs().sched_poll);
      return;
    }
    case grid::MsgKind::kNoJob:
      return;  // auction fizzled; the idle resource stays idle
    default:
      LowestScheduler::handle_message(msg);
  }
}

}  // namespace scal::rms
