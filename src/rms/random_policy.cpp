#include "rms/random_policy.hpp"

namespace scal::rms {

void RandomScheduler::place_randomly(workload::Job job) {
  const auto& t = table(cluster());
  const auto r = static_cast<grid::ResourceIndex>(
      rng().uniform_int(0, static_cast<std::int64_t>(t.size()) - 1));
  dispatch(cluster(), r, std::move(job));
}

void RandomScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kRemote &&
      system().cluster_count() > 1) {
    const auto peers = random_peers(1);
    if (!peers.empty()) {
      transfer_job(peers.front(), std::move(job));
      return;
    }
  }
  place_randomly(std::move(job));
}

void RandomScheduler::handle_message(const grid::RmsMessage& msg) {
  if (msg.kind == grid::MsgKind::kJobTransfer && msg.job) {
    place_randomly(*msg.job);
    return;
  }
  DistributedSchedulerBase::handle_message(msg);
}

}  // namespace scal::rms
