#include "rms/random_policy.hpp"

namespace scal::rms {

void RandomScheduler::place_randomly(workload::Job job) {
  const auto& t = table(cluster());
  if (robust()) {
    // Sample only among resources with fresh status; a crashed resource
    // keeps its last table entry forever and must not soak up a 1/N
    // share of placements.  All-stale falls through to the raw draw.
    std::vector<grid::ResourceIndex> usable;
    usable.reserve(t.size());
    for (grid::ResourceIndex r = 0; r < t.size(); ++r) {
      if (view_usable(t[r])) usable.push_back(r);
    }
    if (!usable.empty() && usable.size() < t.size()) {
      system().metrics().count_status_evictions(t.size() - usable.size());
      const auto pick = rng().uniform_int(
          0, static_cast<std::int64_t>(usable.size()) - 1);
      dispatch(cluster(), usable[static_cast<std::size_t>(pick)],
               std::move(job));
      return;
    }
  }
  const auto r = static_cast<grid::ResourceIndex>(
      rng().uniform_int(0, static_cast<std::int64_t>(t.size()) - 1));
  dispatch(cluster(), r, std::move(job));
}

void RandomScheduler::handle_job(workload::Job job) {
  if (job.job_class == workload::JobClass::kRemote &&
      system().cluster_count() > 1) {
    const auto peers = random_peers(1);
    if (!peers.empty()) {
      transfer_job(peers.front(), std::move(job));
      return;
    }
  }
  place_randomly(std::move(job));
}

void RandomScheduler::handle_message(const grid::RmsMessage& msg) {
  if (msg.kind == grid::MsgKind::kJobTransfer && msg.job) {
    place_randomly(*msg.job);
    return;
  }
  DistributedSchedulerBase::handle_message(msg);
}

}  // namespace scal::rms
