#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace scal::obs {

std::string json_string(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // %.17g round-trips every double; trim to something readable when the
  // value is exactly representable shorter.
  std::snprintf(buf, sizeof buf, "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, value);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

std::string json_number(std::uint64_t value) { return std::to_string(value); }
std::string json_number(std::int64_t value) { return std::to_string(value); }

JsonObject& JsonObject::raw(const std::string& key,
                            const std::string& value_json) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += json_string(key);
  out_ += ':';
  out_ += value_json;
  return *this;
}

}  // namespace scal::obs
