#pragma once
// TraceRecorder: in-memory recorder of simulation-time trace events that
// exports Chrome trace_event JSON, viewable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
//
// The mapping onto the trace model:
//   - the simulation is one "process" (pid 0),
//   - every instrumented entity (scheduler, estimator, middleware, the
//     event kernel) is a "thread" (a track, registered by name),
//   - server busy periods are duration spans (ph B/E),
//   - protocol messages and annealing iterations are instant events,
//   - queue depths / dispatch rates are counter events,
//   - job lifecycles are async spans (ph b/e keyed by job id), which may
//     overlap freely.
//
// Simulated time (abstract "time units") maps to trace microseconds by a
// configurable scale; the default of 1000 displays one time unit as 1 ms.
//
// Cost model: recording is a no-op returning immediately when the
// recorder is disabled, and instrumented components hold a null pointer
// when telemetry is off entirely, so the disabled cost in hot paths is
// one pointer test.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace scal::obs {

using TraceTid = std::uint32_t;

struct TraceEvent {
  char phase = 'i';  ///< B/E (span), X (complete), i, C, b/e (async), M
  TraceTid tid = 0;
  double ts = 0.0;   ///< trace microseconds (sim time x scale)
  double dur = 0.0;  ///< span length in trace microseconds (ph X only)
  std::uint64_t async_id = 0;  ///< correlates b/e pairs
  std::string name;
  std::string cat;
  /// Numeric args rendered into the event's "args" object.
  std::vector<std::pair<std::string, double>> args;
  /// String args (metadata events, labels).
  std::vector<std::pair<std::string, std::string>> str_args;
};

class TraceRecorder {
 public:
  /// `us_per_time_unit` scales sim time to trace timestamps.
  explicit TraceRecorder(double us_per_time_unit = 1000.0)
      : scale_(us_per_time_unit) {}

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  double time_scale() const noexcept { return scale_; }

  /// Register a named track ("thread"); emits the thread_name metadata
  /// event.  Tracks appear in registration order.
  TraceTid register_track(const std::string& name);

  // -- Recording (all no-ops while disabled).
  void begin(TraceTid tid, const char* name, const char* cat, double at);
  void begin(TraceTid tid, const char* name, const char* cat, double at,
             std::vector<std::pair<std::string, double>> args);
  void end(TraceTid tid, double at);
  void instant(TraceTid tid, const char* name, const char* cat, double at);
  void instant(TraceTid tid, const char* name, const char* cat, double at,
               std::vector<std::pair<std::string, double>> args);
  void counter(TraceTid tid, const char* name, double at, double value);
  /// Complete span (ph X).  Unlike the other recorders, `ts_us` and
  /// `dur_us` are already trace microseconds — no sim-time scaling —
  /// because the profiler track carries wall-clock spans.
  void complete(TraceTid tid, const char* name, const char* cat, double ts_us,
                double dur_us);
  void async_begin(TraceTid tid, std::uint64_t id, const char* name,
                   const char* cat, double at);
  void async_instant(TraceTid tid, std::uint64_t id, const char* name,
                     const char* cat, double at);
  void async_end(TraceTid tid, std::uint64_t id, const char* cat, double at);

  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  const std::vector<std::string>& tracks() const noexcept { return tracks_; }
  void clear();

  /// Chrome trace_event JSON ({"traceEvents": [...], ...}).
  void write_json(std::ostream& os) const;
  /// Returns false (and logs) when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  TraceEvent& push(char phase, TraceTid tid, double at);

  bool enabled_ = false;
  double scale_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
};

}  // namespace scal::obs
