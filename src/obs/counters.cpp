#include "obs/counters.hpp"

#include "obs/json.hpp"

namespace scal::obs {

CounterRegistry::Counter* CounterRegistry::find(
    const std::string& name) noexcept {
  for (Counter& c : counters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const CounterRegistry::Counter* CounterRegistry::find(
    const std::string& name) const noexcept {
  for (const Counter& c : counters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void CounterRegistry::set(const std::string& name, std::uint64_t value) {
  if (Counter* c = find(name)) {
    c->value = static_cast<double>(value);
    c->integral = true;
    return;
  }
  counters_.push_back({name, static_cast<double>(value), true});
}

void CounterRegistry::set_real(const std::string& name, double value) {
  if (Counter* c = find(name)) {
    c->value = value;
    c->integral = false;
    return;
  }
  counters_.push_back({name, value, false});
}

void CounterRegistry::increment(const std::string& name, std::uint64_t by) {
  if (Counter* c = find(name)) {
    c->value += static_cast<double>(by);
    return;
  }
  counters_.push_back({name, static_cast<double>(by), true});
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const Counter& c : other.counters_) {
    if (Counter* mine = find(c.name)) {
      mine->value += c.value;
      mine->integral = mine->integral && c.integral;
    } else {
      counters_.push_back(c);
    }
  }
}

double CounterRegistry::value(const std::string& name) const noexcept {
  const Counter* c = find(name);
  return c ? c->value : 0.0;
}

bool CounterRegistry::contains(const std::string& name) const noexcept {
  return find(name) != nullptr;
}

std::string CounterRegistry::to_json() const {
  JsonObject obj;
  for (const Counter& c : counters_) {
    if (c.integral) {
      obj.field(c.name, static_cast<std::uint64_t>(c.value));
    } else {
      obj.field(c.name, c.value);
    }
  }
  return obj.str();
}

}  // namespace scal::obs
