#pragma once
// RunManifest: one structured record per simulation run — configuration,
// seed, code version, wall-clock timings, result scalars, the full
// protocol counter snapshot, and an annealing-search summary — appended
// as one JSON line to a .jsonl file.  A directory of manifests is a
// queryable lab notebook (jq-friendly) tying every result CSV/trace back
// to exactly what produced it.

#include <cstdint>
#include <string>

#include "obs/counters.hpp"

namespace scal::obs {

/// `git describe --always --dirty` at configure time ("unknown" outside
/// a git checkout).
std::string git_describe();

/// Current wall-clock time as UTC ISO-8601 ("2026-08-05T12:34:56Z").
std::string utc_timestamp();

struct RunManifest {
  // Identity.
  std::string label;          ///< caller-chosen run label
  std::string started_at;     ///< wall-clock UTC ISO-8601
  std::string git_version;    ///< git describe of the binary's source
  double wall_seconds = 0.0;  ///< wall-clock duration of the run
  std::uint64_t jobs = 1;     ///< worker lanes the campaign ran with

  // Configuration snapshot.
  std::string rms;
  std::uint64_t seed = 0;
  double horizon = 0.0;
  std::uint64_t nodes = 0;
  std::uint64_t clusters = 0;
  std::uint64_t estimators_per_cluster = 0;
  double service_rate = 0.0;
  double heterogeneity = 0.0;
  double control_loss_probability = 0.0;
  double update_interval = 0.0;
  std::uint64_t neighborhood_size = 0;
  double link_delay_scale = 0.0;
  double volunteer_interval = 0.0;
  double mean_interarrival = 0.0;

  // Result scalars.
  double F = 0.0;
  double G = 0.0;
  double H = 0.0;
  double efficiency = 0.0;
  double throughput = 0.0;
  double mean_response = 0.0;
  double p95_response = 0.0;
  double G_scheduler_max_share = 0.0;

  // Fault-injection summary (emitted only when fault_spec is non-empty).
  std::string fault_spec;        ///< FaultPlan::to_spec() of the run
  double availability = 1.0;     ///< 1 - downtime / (resources * horizon)
  double efficiency_avail = 0.0; ///< E divided by availability

  // Workload-source summary (emitted only when workload_source is
  // non-empty, i.e. the run declared a non-default source or modulator
  // chain, so default-synthetic manifests keep their exact byte
  // layout).  Cache fields are provenance: they depend on what else the
  // process ran before this record (volatile in tools/compare_runs.py).
  std::string workload_source;      ///< SourceSpec::summary() of the run
  std::uint64_t workload_jobs = 0;  ///< jobs in the arrival stream
  double workload_span = 0.0;       ///< last arrival - first arrival
  double workload_mean_interarrival = 0.0;
  double workload_mean_exec = 0.0;
  bool workload_from_cache = false;          ///< stream recalled, not built
  std::uint64_t arrival_cache_hits = 0;      ///< process-wide cache hits
  /// Byte-budget evictions + one-shot store skips (process-wide, so
  /// volatile like the hit counter); each emitted inside the workload
  /// block only when > 0, keeping pre-budget manifests byte-identical.
  std::uint64_t arrival_cache_evictions = 0;
  std::uint64_t arrival_cache_store_skips = 0;

  // Memory-tier summary (emitted as a "memory" block only when
  // result_mode is non-empty — i.e. the run used the streaming tier —
  // so full-mode manifests keep their exact byte layout).
  std::string result_mode;             ///< "streaming" when emitted
  std::uint64_t job_log_records = 0;   ///< lifecycle records kept
  std::uint64_t job_log_dropped = 0;   ///< records past the capacity bound
  std::uint64_t arena_high_water = 0;  ///< peak in-flight arrival slots
  std::uint64_t arena_reuses = 0;      ///< arrival slot recycles

  // Control-plane summary (emitted — and the agg_* tuning fields with
  // it — only when control_plane is set, so legacy manifests keep their
  // exact byte layout).
  bool control_plane = false;
  std::uint64_t agg_fanout = 1;
  std::uint64_t agg_batch = 1;
  double agg_flush = 0.0;
  double G_aggregator = 0.0;
  std::uint64_t ctrl_updates_in = 0;
  std::uint64_t ctrl_updates_coalesced = 0;
  std::uint64_t ctrl_batches = 0;
  std::uint64_t ctrl_tree_depth = 0;
  double ctrl_coalescing_ratio = 0.0;

  // Protocol / bookkeeping counters.
  CounterRegistry counters;

  // Annealing-search summary (zero when no tuning ran).
  std::uint64_t anneal_iterations = 0;
  std::uint64_t anneal_accepted = 0;
  std::uint64_t anneal_improving = 0;
  double anneal_best_objective = 0.0;

  // Tuner cost accounting (zero when no tuning ran): logical evaluations
  // the enabler searches requested and how many the evaluation cache
  // answered.  Emitted as a "tuner" block when evaluations > 0.
  std::uint64_t tuner_evaluations = 0;
  std::uint64_t tuner_cache_hits = 0;

  // Evaluation-reuse summary (emitted as a "reuse" block only when
  // reuse_enabled is set by the bench, so every pre-reuse manifest
  // keeps its exact byte layout).  All counts are process-wide and
  // scheduling-dependent — provenance, not results — and therefore
  // volatile in tools/compare_runs.py.
  bool reuse_enabled = false;
  std::uint64_t reuse_tree_shares = 0;     ///< router trees adopted
  std::uint64_t reuse_tree_publishes = 0;  ///< snapshots published
  std::uint64_t reuse_inflight_waits = 0;  ///< evals answered by a wait
  std::uint64_t reuse_disk_hits = 0;       ///< evals answered from disk
  std::uint64_t reuse_disk_entries = 0;    ///< entries preloaded from disk

  // Distribution metrics + phase profile, pre-rendered by Telemetry
  // (histograms/profiler JSON).  Emitted as a "metrics" block only when
  // non-empty, so manifests from metrics-off runs are byte-identical to
  // earlier formats.
  std::string metrics_json;

  // Peak resident set size of the process, stamped by benches just
  // before export (0 = not measured; emitted only when > 0).
  std::uint64_t peak_rss_bytes = 0;

  std::string to_json() const;

  /// Append this record as one line to `path` (creates the file).
  /// Returns false (and logs) on I/O failure.
  bool append_jsonl(const std::string& path) const;
};

}  // namespace scal::obs
