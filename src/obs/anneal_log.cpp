#include "obs/anneal_log.hpp"

#include <fstream>
#include <limits>
#include <ostream>

#include "obs/json.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace scal::obs {

std::uint64_t AnnealLog::accepted_count() const noexcept {
  std::uint64_t n = 0;
  for (const AnnealRecord& r : records_) n += r.accepted ? 1 : 0;
  return n;
}

std::uint64_t AnnealLog::improving_count() const noexcept {
  std::uint64_t n = 0;
  for (const AnnealRecord& r : records_) n += r.improved ? 1 : 0;
  return n;
}

double AnnealLog::best_value() const noexcept {
  if (records_.empty()) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const AnnealRecord& r : records_) {
    if (r.candidate_value < best) best = r.candidate_value;
  }
  return best;
}

void AnnealLog::write_csv(std::ostream& os) const {
  os << "label,chain,iteration,temperature,candidate,current,best,"
        "accepted,improved,cached\n";
  for (const AnnealRecord& r : records_) {
    os << util::CsvWriter::escape(r.label) << ',' << r.chain << ','
       << r.iteration << ',' << json_number(r.temperature) << ','
       << json_number(r.candidate_value) << ','
       << json_number(r.current_value) << ',' << json_number(r.best_value)
       << ',' << (r.accepted ? 1 : 0) << ',' << (r.improved ? 1 : 0) << ','
       << (r.cached ? 1 : 0) << '\n';
  }
}

bool AnnealLog::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    SCAL_WARN("anneal log: cannot open " << path);
    return false;
  }
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace scal::obs
