#pragma once
// Minimal JSON emission helpers for the observability exporters (Chrome
// trace files, run manifests).  Writing only — the telemetry formats are
// consumed by external tools (Perfetto, jq), not parsed back by us.

#include <cstdint>
#include <string>

namespace scal::obs {

/// Escape and double-quote a string for JSON.
std::string json_string(const std::string& value);

/// Render a finite double as a JSON number; non-finite values (which
/// JSON cannot represent) become null.
std::string json_number(double value);

std::string json_number(std::uint64_t value);
std::string json_number(std::int64_t value);

/// Incremental writer for one JSON object: field() calls add
/// comma-separated "key": value pairs, str() closes the brace.
class JsonObject {
 public:
  JsonObject() : out_("{") {}

  JsonObject& field(const std::string& key, const std::string& string_value) {
    return raw(key, json_string(string_value));
  }
  JsonObject& field(const std::string& key, const char* string_value) {
    return raw(key, json_string(string_value));
  }
  JsonObject& field(const std::string& key, double value) {
    return raw(key, json_number(value));
  }
  JsonObject& field(const std::string& key, std::uint64_t value) {
    return raw(key, json_number(value));
  }
  JsonObject& field(const std::string& key, std::int64_t value) {
    return raw(key, json_number(value));
  }
  JsonObject& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  /// `value_json` must already be valid JSON (nested object/array).
  JsonObject& raw(const std::string& key, const std::string& value_json);

  /// Close the object and return it.  The writer is spent afterwards.
  std::string str() {
    out_ += '}';
    return std::move(out_);
  }

 private:
  std::string out_;
  bool first_ = true;
};

}  // namespace scal::obs
