#pragma once
// PhaseProfiler: scoped RAII wall-clock timers over named phases of the
// run — event dispatch, routing, scheduling decisions, estimator
// updates, tuner evaluations, workload generation.  Each phase
// accumulates call count, cumulative nanoseconds (time inside the
// scope, children included), and self nanoseconds (cumulative minus
// time spent in nested scopes), so nested instrumentation attributes
// every nanosecond to exactly one phase.
//
// Determinism contract: the wall-clock nanoseconds are honest
// measurements and therefore differ between runs; the *call counts*
// are pure functions of the simulated execution, so counts_json() is
// bit-identical across runs and at any --jobs count when per-worker
// profilers are merged in slot order (merge() accumulates by name, the
// same reduction CounterRegistry uses).
//
// Threading: one PhaseProfiler serves one thread.  Parallel stages run
// one profiler per worker slot and merge on the coordinating thread
// afterwards (see core::tune_enablers).
//
// Cost model: a disabled profiler's Scope is inert — the constructor
// does one flag test and stores null; instrumented call sites hold a
// null pointer when telemetry metrics are off entirely.  An enabled
// scope reads the CPU cycle counter (rdtsc-class, a few ns) rather
// than the system clock; ticks are converted to nanoseconds with a
// once-per-process calibrated scale, keeping the per-scope cost low
// enough for per-message instrumentation (the perf_smoke
// case1_LOWEST_profiled sample gates the total).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace scal::obs {

using PhaseId = std::uint32_t;

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  explicit PhaseProfiler(bool enabled) { set_enabled(enabled); }

  bool enabled() const noexcept { return enabled_; }
  /// Enabling triggers the once-per-process tick calibration, so the
  /// first enable pays a short spin (outside any timed region in the
  /// benches — Telemetry construction precedes the runs).
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (enabled && scale_ == 0.0) scale_ = ns_per_tick();
  }

  /// Register (or look up) a phase by name; ids are dense and stable in
  /// registration order.
  PhaseId phase(const std::string& name);

  struct PhaseStats {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;  ///< time inside the scope, children included
    std::uint64_t self_ns = 0;   ///< total_ns minus nested scopes
  };

  const std::vector<PhaseStats>& phases() const noexcept { return phases_; }
  const PhaseStats& stats(PhaseId id) const { return phases_.at(id); }

  /// RAII timing scope.  Constructing against a null or disabled
  /// profiler is an inert no-op.  Scopes nest: a scope's elapsed time
  /// is subtracted from its parent's self time.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, PhaseId id)
        : profiler_(profiler != nullptr && profiler->enabled_ ? profiler
                                                              : nullptr) {
      if (profiler_ != nullptr) profiler_->enter(id);
    }
    ~Scope() {
      if (profiler_ != nullptr) profiler_->exit();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* profiler_;
  };

  /// Fold `other`'s stats into this profiler by phase name: matching
  /// names accumulate, new names append in `other`'s registration
  /// order.  Merging per-slot profilers in slot order is the
  /// deterministic reduction for parallel stages.
  void merge(const PhaseProfiler& other);

  /// Drop every phase (names included) and any open scopes.
  void clear();

  /// Optionally mirror completed scopes into a Chrome trace as 'X'
  /// complete events on `tid`.  Timestamps are wall-clock microseconds
  /// since the first recorded scope (NOT scaled sim time — the track
  /// shows where real time went, next to the sim-time tracks).
  void attach_trace(TraceRecorder* trace, TraceTid tid) noexcept {
    trace_ = trace;
    trace_tid_ = tid;
  }

  /// Full JSON: {"name":{"calls":...,"total_ns":...,"self_ns":...},...}
  /// in registration order.  The ns fields are wall-clock measurements
  /// and differ between runs.
  std::string to_json() const;

  /// Deterministic JSON: {"name":calls,...} in registration order —
  /// the bit-identity surface for the --jobs 1 vs N tests.
  std::string counts_json() const;

 private:
  struct Frame {
    PhaseId id;
    std::uint64_t start_ticks;
    std::uint64_t child_ns = 0;
  };

  /// Raw monotonic cycle counter: one unserialized read, no syscall.
  static std::uint64_t read_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    std::uint64_t t;
    asm volatile("mrs %0, cntvct_el0" : "=r"(t));
    return t;
#else
    return fallback_now_ns();  // ticks ARE nanoseconds on this arch
#endif
  }

  /// Nanoseconds per tick, calibrated once per process against the
  /// steady clock (a short spin on first use; exactly 1.0 on the
  /// fallback arch).
  static double ns_per_tick();
  static std::uint64_t fallback_now_ns() noexcept;

  void enter(PhaseId id) {
    const std::uint64_t start = read_ticks();
    if (trace_ != nullptr && trace_epoch_ticks_ == 0) {
      trace_epoch_ticks_ = start;
    }
    stack_.push_back(Frame{id, start, 0});
  }

  void exit() {
    if (stack_.empty()) return;
    const Frame frame = stack_.back();
    stack_.pop_back();
    const std::uint64_t end = read_ticks();
    const std::uint64_t ticks =
        end > frame.start_ticks ? end - frame.start_ticks : 0;
    const auto elapsed =
        static_cast<std::uint64_t>(static_cast<double>(ticks) * scale_);
    PhaseStats& stats = phases_[frame.id];
    ++stats.calls;
    stats.total_ns += elapsed;
    stats.self_ns += elapsed > frame.child_ns ? elapsed - frame.child_ns : 0;
    if (!stack_.empty()) stack_.back().child_ns += elapsed;
    if (trace_ != nullptr) mirror_to_trace(frame, elapsed);
  }

  void mirror_to_trace(const Frame& frame, std::uint64_t elapsed_ns);

  bool enabled_ = false;
  double scale_ = 0.0;  ///< ns per tick; set when the profiler is enabled
  std::vector<PhaseStats> phases_;
  std::vector<Frame> stack_;
  TraceRecorder* trace_ = nullptr;
  TraceTid trace_tid_ = 0;
  std::uint64_t trace_epoch_ticks_ = 0;  ///< first scope start (0 = unset)
};

}  // namespace scal::obs
