#pragma once
// TimeSeriesProbe: periodic samples of run state on a fixed sim-time
// cadence, exported as CSV.  The probe itself is a passive store — the
// grid layer drives it from a periodic simulator event (so sampling is
// deterministic in sim time), fills the raw fields, and appends one
// final row at the horizon whose cumulative F/G/H equal the run's
// SimulationResult scalars exactly.
//
// Windowed efficiency E(t) is derived here from consecutive cumulative
// rows: dF / (dF + dG + dH) over the last interval.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace scal::obs {

struct ProbeSample {
  double at = 0.0;

  // Cumulative work terms (the paper's F, G, H at time t).
  double F = 0.0;
  double G = 0.0;
  double H = 0.0;
  /// Cumulative efficiency F / (F + G + H); 0 before any work.
  double efficiency = 0.0;
  /// Efficiency over the last sampling window only.
  double efficiency_windowed = 0.0;

  // Instantaneous state.
  double pool_busy_fraction = 0.0;
  double mean_resource_load = 0.0;
  std::uint64_t scheduler_backlog = 0;  ///< queued work items, all schedulers
  std::uint64_t middleware_backlog = 0;

  // Per-server-class utilization over the last window (busy-time delta /
  // capacity of the window).
  double scheduler_util = 0.0;
  double estimator_util = 0.0;
  double middleware_util = 0.0;

  // Progress counters.
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t events_dispatched = 0;
};

class TimeSeriesProbe {
 public:
  explicit TimeSeriesProbe(double interval);

  double interval() const noexcept { return interval_; }

  /// Append a sample; the efficiency fields are computed here from the
  /// cumulative F/G/H (the caller fills everything else).
  void add(ProbeSample sample);

  const std::vector<ProbeSample>& samples() const noexcept {
    return samples_;
  }
  bool empty() const noexcept { return samples_.empty(); }
  void clear() { samples_.clear(); }

  static std::vector<std::string> csv_header();
  void write_csv(std::ostream& os) const;
  /// Returns false (and logs) when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  double interval_;
  std::vector<ProbeSample> samples_;
};

}  // namespace scal::obs
