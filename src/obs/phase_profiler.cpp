#include "obs/phase_profiler.hpp"

#include <chrono>

#include "obs/json.hpp"

namespace scal::obs {

std::uint64_t PhaseProfiler::fallback_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PhaseProfiler::ns_per_tick() {
#if defined(__x86_64__) || defined(__i386__) || defined(__aarch64__)
  // Calibrate the cycle counter against the steady clock once per
  // process: a ~50us spin bounds the scale error well below the
  // bucket-level noise of any profiled phase.
  static const double scale = [] {
    const std::uint64_t ns0 = fallback_now_ns();
    const std::uint64_t t0 = read_ticks();
    std::uint64_t ns1 = ns0;
    while (ns1 - ns0 < 50'000) ns1 = fallback_now_ns();
    const std::uint64_t t1 = read_ticks();
    return t1 > t0 ? static_cast<double>(ns1 - ns0) /
                         static_cast<double>(t1 - t0)
                   : 1.0;
  }();
  return scale;
#else
  return 1.0;  // read_ticks falls back to nanoseconds directly
#endif
}

void PhaseProfiler::mirror_to_trace(const Frame& frame,
                                    std::uint64_t elapsed_ns) {
  const std::uint64_t since_epoch_ticks =
      frame.start_ticks > trace_epoch_ticks_
          ? frame.start_ticks - trace_epoch_ticks_
          : 0;
  trace_->complete(
      trace_tid_, phases_[frame.id].name.c_str(), "profiler",
      static_cast<double>(since_epoch_ticks) * scale_ / 1000.0,
      static_cast<double>(elapsed_ns) / 1000.0);
}

PhaseId PhaseProfiler::phase(const std::string& name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) return static_cast<PhaseId>(i);
  }
  phases_.push_back(PhaseStats{name, 0, 0, 0});
  return static_cast<PhaseId>(phases_.size() - 1);
}

void PhaseProfiler::merge(const PhaseProfiler& other) {
  for (const PhaseStats& theirs : other.phases_) {
    PhaseStats& mine = phases_[phase(theirs.name)];
    mine.calls += theirs.calls;
    mine.total_ns += theirs.total_ns;
    mine.self_ns += theirs.self_ns;
  }
}

void PhaseProfiler::clear() {
  phases_.clear();
  stack_.clear();
  trace_epoch_ticks_ = 0;
}

std::string PhaseProfiler::to_json() const {
  JsonObject obj;
  for (const PhaseStats& stats : phases_) {
    JsonObject entry;
    entry.field("calls", stats.calls)
        .field("total_ns", stats.total_ns)
        .field("self_ns", stats.self_ns);
    obj.raw(stats.name, entry.str());
  }
  return obj.str();
}

std::string PhaseProfiler::counts_json() const {
  JsonObject obj;
  for (const PhaseStats& stats : phases_) {
    obj.field(stats.name, stats.calls);
  }
  return obj.str();
}

}  // namespace scal::obs
