#pragma once
// AnnealLog: per-iteration telemetry of the simulated-annealing enabler
// search — objective values, temperature, accept/reject — exported as
// CSV.  Shows what the tuner actually explored: which moves were taken,
// where the chains cooled, and how the feasible pockets of the
// efficiency-band-penalized G landscape were entered.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace scal::obs {

struct AnnealRecord {
  /// Caller context (e.g. "LOWEST k=3"); empty for standalone searches.
  std::string label;
  std::uint64_t chain = 0;
  std::uint64_t iteration = 0;  ///< within the chain
  double temperature = 0.0;
  double candidate_value = 0.0;
  double current_value = 0.0;  ///< after the accept/reject decision
  double best_value = 0.0;
  bool accepted = false;
  bool improved = false;  ///< accepted with a strictly better value
  /// This evaluation was answered by the tuner's memoization cache
  /// (serial-replay semantics: same at any --jobs count and independent
  /// of whether value memoization was actually enabled).
  bool cached = false;
};

class AnnealLog {
 public:
  void add(AnnealRecord record) { records_.push_back(std::move(record)); }

  const std::vector<AnnealRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  void clear() { records_.clear(); }

  std::uint64_t accepted_count() const noexcept;
  std::uint64_t improving_count() const noexcept;
  /// Smallest candidate value seen (0 when empty).
  double best_value() const noexcept;

  void write_csv(std::ostream& os) const;
  /// Returns false (and logs) when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  std::vector<AnnealRecord> records_;
};

}  // namespace scal::obs
