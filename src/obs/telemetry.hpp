#pragma once
// Telemetry: the per-run observability handle.  One Telemetry object is
// created by the caller (bench, example, test), attached to a
// GridConfig, and threaded by the grid layer through the simulator, the
// servers, and the metrics assembly.  After the run, export_all() writes
// every configured artifact:
//
//   trace_path     Chrome trace_event JSON (Perfetto-loadable)
//   probe_path     time-series CSV on probe_interval cadence
//   manifest_path  one JSONL record (config + counters + results)
//   anneal_path    per-iteration tuner telemetry CSV
//
// A Telemetry instance describes ONE instrumented run; reuse across runs
// without reset_run() concatenates their events.  The handle is
// non-owning from the config's point of view (GridConfig carries a raw
// pointer, null by default), so the zero-telemetry path costs a null
// check and nothing else.

#include <string>

#include "obs/anneal_log.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/manifest.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"

namespace scal::obs {

struct TelemetryConfig {
  /// Chrome trace JSON output; empty disables tracing.
  std::string trace_path;
  /// Trace microseconds per sim time unit (1000 displays 1 unit as 1ms).
  double trace_time_scale = 1000.0;
  /// Emit an events-dispatched counter sample every N kernel events;
  /// 0 disables the kernel dispatch track.  Sampling (not per-event
  /// tracing) keeps instrumentation from distorting G(k) measurements.
  std::uint64_t dispatch_sample_every = 256;
  bool trace_spans = true;     ///< scheduler/estimator/middleware busy spans
  bool trace_messages = true;  ///< per-protocol message instants
  bool trace_jobs = true;      ///< job lifecycle async spans (needs job log)

  /// Time-series CSV output; interval <= 0 disables the probe.
  std::string probe_path;
  double probe_interval = 0.0;

  /// JSONL manifest output (appended); empty disables.
  std::string manifest_path;

  /// Annealing telemetry CSV; empty disables.
  std::string anneal_path;

  /// Label recorded in the manifest and anneal rows.
  std::string label;

  /// Distribution metrics + phase profiler: streaming histograms of job
  /// wait/response/slowdown, scheduler queue depth at decision points,
  /// estimator staleness, and scoped phase timers.  Off by default so
  /// existing golden artifacts stay byte-identical.
  bool metrics = false;

  bool trace_enabled() const noexcept { return !trace_path.empty(); }
  bool probe_enabled() const noexcept {
    return probe_interval > 0.0 && !probe_path.empty();
  }
  bool manifest_enabled() const noexcept { return !manifest_path.empty(); }
  bool anneal_enabled() const noexcept { return !anneal_path.empty(); }
  bool metrics_enabled() const noexcept { return metrics; }
  bool any_enabled() const noexcept {
    return trace_enabled() || probe_enabled() || manifest_enabled() ||
           anneal_enabled() || metrics_enabled();
  }
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);

  const TelemetryConfig& config() const noexcept { return config_; }

  TraceRecorder& trace() noexcept { return trace_; }
  const TraceRecorder& trace() const noexcept { return trace_; }
  /// Null when the probe is not configured.
  TimeSeriesProbe* probe() noexcept { return probe_enabled_ ? &probe_ : nullptr; }
  const TimeSeriesProbe* probe() const noexcept {
    return probe_enabled_ ? &probe_ : nullptr;
  }
  CounterRegistry& counters() noexcept { return manifest_.counters; }
  RunManifest& manifest() noexcept { return manifest_; }
  const RunManifest& manifest() const noexcept { return manifest_; }
  AnnealLog& anneal() noexcept { return anneal_; }
  const AnnealLog& anneal() const noexcept { return anneal_; }
  /// Distribution metrics (populated only when config().metrics).
  HistogramRegistry& histograms() noexcept { return histograms_; }
  const HistogramRegistry& histograms() const noexcept { return histograms_; }
  /// Phase profiler (enabled iff config().metrics).
  PhaseProfiler& profiler() noexcept { return profiler_; }
  const PhaseProfiler& profiler() const noexcept { return profiler_; }

  /// Stamp the run start (wall clock); called by GridSystem::run().
  void mark_run_start();
  /// Stamp the run end; fills manifest wall_seconds.
  void mark_run_end();

  /// Drop all recorded data so the handle can instrument another run.
  void reset_run();

  /// Write every configured artifact.  Returns true when all writes
  /// succeeded; failures are logged and do not abort the others.
  bool export_all() const;

 private:
  TelemetryConfig config_;
  TraceRecorder trace_;
  TimeSeriesProbe probe_;
  bool probe_enabled_ = false;
  RunManifest manifest_;
  AnnealLog anneal_;
  HistogramRegistry histograms_;
  PhaseProfiler profiler_;
  double run_started_wall_ = 0.0;  ///< monotonic seconds
};

}  // namespace scal::obs
