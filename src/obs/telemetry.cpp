#include "obs/telemetry.hpp"

#include <chrono>

#include "obs/json.hpp"

namespace scal::obs {

namespace {
double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)),
      trace_(config_.trace_time_scale),
      probe_(config_.probe_interval > 0.0 ? config_.probe_interval : 1.0),
      probe_enabled_(config_.probe_enabled()) {
  trace_.set_enabled(config_.trace_enabled());
  profiler_.set_enabled(config_.metrics_enabled());
  manifest_.label = config_.label;
  manifest_.git_version = git_describe();
}

void Telemetry::mark_run_start() {
  manifest_.started_at = utc_timestamp();
  run_started_wall_ = monotonic_seconds();
}

void Telemetry::mark_run_end() {
  if (run_started_wall_ > 0.0) {
    manifest_.wall_seconds = monotonic_seconds() - run_started_wall_;
  }
}

void Telemetry::reset_run() {
  trace_.clear();
  probe_.clear();
  anneal_.clear();
  histograms_.clear();
  profiler_.clear();
  const std::string label = manifest_.label;
  const std::string git = manifest_.git_version;
  const std::uint64_t jobs = manifest_.jobs;
  manifest_ = RunManifest{};
  manifest_.label = label;
  manifest_.git_version = git;
  manifest_.jobs = jobs;
  run_started_wall_ = 0.0;
}

bool Telemetry::export_all() const {
  bool ok = true;
  if (config_.trace_enabled()) {
    ok = trace_.write_file(config_.trace_path) && ok;
  }
  if (config_.probe_enabled()) {
    ok = probe_.write_file(config_.probe_path) && ok;
  }
  if (config_.manifest_enabled()) {
    RunManifest m = manifest_;
    if (config_.metrics_enabled() &&
        (!histograms_.all_empty() || !profiler_.phases().empty())) {
      JsonObject metrics;
      metrics.raw("histograms", histograms_.to_json());
      metrics.raw("phases", profiler_.to_json());
      m.metrics_json = metrics.str();
    }
    m.anneal_iterations = anneal_.size();
    m.anneal_accepted = anneal_.accepted_count();
    m.anneal_improving = anneal_.improving_count();
    m.anneal_best_objective = anneal_.best_value();
    ok = m.append_jsonl(config_.manifest_path) && ok;
  }
  if (config_.anneal_enabled()) {
    ok = anneal_.write_file(config_.anneal_path) && ok;
  }
  return ok;
}

}  // namespace scal::obs
