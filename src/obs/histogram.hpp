#pragma once
// Streaming log-bucketed histogram (HDR-style) for distribution-level
// run metrics: job wait/response/slowdown, scheduler queue depth at
// decision points, estimator staleness.
//
// Values land in log-linear buckets — 8 linear sub-buckets per power of
// two — so memory stays fixed (a few hundred counters at most, grown
// lazily) while relative quantile error is bounded by one sub-bucket
// width (12.5%).  count, sum, min, and max are tracked exactly, so
// mean and the extreme readouts carry no bucketing error at all.
//
// Determinism contract: recording is pure integer bookkeeping on the
// value sequence — two runs that observe the same values in the same
// order produce bit-identical histograms, and merge() is the serial
// concatenation (bucket-wise addition), so merging per-task histograms
// in task order equals recording serially.  This is the reduction the
// --jobs N bit-identity tests lean on.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace scal::obs {

class Histogram {
 public:
  void record(double value) {
    const std::size_t index = bucket_index(value);
    if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
    ++buckets_[index];
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
  }

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate for p in [0, 100]: the lower bound of the bucket
  /// holding the ceil(p/100 * count)-th value, clamped into [min, max].
  /// p >= 100 returns the exact max; an empty histogram returns 0.
  double percentile(double p) const;

  /// Fold `other` into this histogram (bucket-wise addition).  Merging
  /// per-task histograms in task order equals serial accumulation.
  void merge(const Histogram& other);

  void clear();

  /// Compact JSON summary for the run manifest:
  /// {"count":...,"sum":...,"min":...,"max":...,"mean":...,
  ///  "p50":...,"p95":...,"p99":...}.  Deterministic in the recorded
  /// value multiset (and, for sum, its order).
  std::string to_json() const;

 private:
  // 8 linear sub-buckets per octave over exponents [-32, 63]; bucket 0
  // catches non-positive/tiny values, the last bucket catches overflow.
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 64;  // values >= 2^64 overflow
  static constexpr std::size_t kOverflowIndex =
      1 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

  /// Log-linear bucketing straight off the IEEE-754 bits: the biased
  /// exponent selects the octave and the top three mantissa bits the
  /// linear sub-bucket (exactly floor((mantissa - 1) * 8) for normal
  /// values).  Denormals fall below kMinExp into bucket 0; infinity
  /// carries a saturated exponent into the overflow bucket.
  static std::size_t bucket_index(double value) noexcept {
    if (!(value > 0.0)) return 0;  // non-positive and NaN
    const auto bits = std::bit_cast<std::uint64_t>(value);
    const int exp = static_cast<int>((bits >> 52) & 0x7FF) - 1023;
    if (exp < kMinExp) return 0;
    if (exp >= kMaxExp) return kOverflowIndex;
    const auto sub = static_cast<std::size_t>((bits >> 49) & 0x7);
    return 1 + static_cast<std::size_t>(exp - kMinExp) * kSubBuckets + sub;
  }

  static double bucket_lower(std::size_t index);

  std::vector<std::uint64_t> buckets_;  ///< lazily grown to the max index
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named histograms in registration order, addressed by name with
/// stable addresses (instrumentation sites cache the pointer once).
class HistogramRegistry {
 public:
  struct Entry {
    std::string name;
    Histogram histogram;
  };

  /// Find-or-create; the returned reference stays valid for the
  /// registry's lifetime (entries are never removed, only cleared).
  Histogram& histogram(const std::string& name);

  bool empty() const noexcept { return entries_.empty(); }
  /// True when no histogram has recorded a value.
  bool all_empty() const noexcept;
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<std::unique_ptr<Entry>>& entries() const noexcept {
    return entries_;
  }

  /// Fold `other` into this registry by name: matching names merge,
  /// new names append in `other`'s registration order.
  void merge(const HistogramRegistry& other);

  /// Drop every entry (names included).
  void clear() { entries_.clear(); }

  /// {"name": {histogram json}, ...} in registration order.
  std::string to_json() const;

 private:
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace scal::obs
