#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace scal::obs {

double Histogram::bucket_lower(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kOverflowIndex) return std::ldexp(1.0, kMaxExp);
  const std::size_t offset = index - 1;
  const int exp = kMinExp + static_cast<int>(offset / kSubBuckets);
  const auto sub = static_cast<double>(offset % kSubBuckets);
  return std::ldexp(1.0 + sub / static_cast<double>(kSubBuckets), exp);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p >= 100.0) return max_;
  // Rank of the requested order statistic (1-based, at least the first).
  const double want = std::ceil(p / 100.0 * static_cast<double>(count_));
  const auto rank = static_cast<std::uint64_t>(std::max(want, 1.0));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return std::clamp(bucket_lower(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::string Histogram::to_json() const {
  JsonObject obj;
  obj.field("count", count_)
      .field("sum", sum_)
      .field("min", min())
      .field("max", max())
      .field("mean", mean())
      .field("p50", percentile(50.0))
      .field("p95", percentile(95.0))
      .field("p99", percentile(99.0));
  return obj.str();
}

Histogram& HistogramRegistry::histogram(const std::string& name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry->histogram;
  }
  entries_.push_back(std::make_unique<Entry>(Entry{name, {}}));
  return entries_.back()->histogram;
}

bool HistogramRegistry::all_empty() const noexcept {
  for (const auto& entry : entries_) {
    if (!entry->histogram.empty()) return false;
  }
  return true;
}

void HistogramRegistry::merge(const HistogramRegistry& other) {
  for (const auto& entry : other.entries_) {
    histogram(entry->name).merge(entry->histogram);
  }
}

std::string HistogramRegistry::to_json() const {
  JsonObject obj;
  for (const auto& entry : entries_) {
    obj.raw(entry->name, entry->histogram.to_json());
  }
  return obj.str();
}

}  // namespace scal::obs
