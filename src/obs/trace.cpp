#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "util/log.hpp"

namespace scal::obs {

TraceTid TraceRecorder::register_track(const std::string& name) {
  const auto tid = static_cast<TraceTid>(tracks_.size());
  tracks_.push_back(name);
  return tid;
}

TraceEvent& TraceRecorder::push(char phase, TraceTid tid, double at) {
  TraceEvent& ev = events_.emplace_back();
  ev.phase = phase;
  ev.tid = tid;
  ev.ts = at * scale_;
  return ev;
}

void TraceRecorder::begin(TraceTid tid, const char* name, const char* cat,
                          double at) {
  begin(tid, name, cat, at, {});
}

void TraceRecorder::begin(TraceTid tid, const char* name, const char* cat,
                          double at,
                          std::vector<std::pair<std::string, double>> args) {
  if (!enabled_) return;
  TraceEvent& ev = push('B', tid, at);
  ev.name = name;
  ev.cat = cat;
  ev.args = std::move(args);
}

void TraceRecorder::end(TraceTid tid, double at) {
  if (!enabled_) return;
  push('E', tid, at);
}

void TraceRecorder::instant(TraceTid tid, const char* name, const char* cat,
                            double at) {
  instant(tid, name, cat, at, {});
}

void TraceRecorder::instant(TraceTid tid, const char* name, const char* cat,
                            double at,
                            std::vector<std::pair<std::string, double>> args) {
  if (!enabled_) return;
  TraceEvent& ev = push('i', tid, at);
  ev.name = name;
  ev.cat = cat;
  ev.args = std::move(args);
}

void TraceRecorder::counter(TraceTid tid, const char* name, double at,
                            double value) {
  if (!enabled_) return;
  TraceEvent& ev = push('C', tid, at);
  ev.name = name;
  ev.args.emplace_back("value", value);
}

void TraceRecorder::complete(TraceTid tid, const char* name, const char* cat,
                             double ts_us, double dur_us) {
  if (!enabled_) return;
  TraceEvent& ev = events_.emplace_back();
  ev.phase = 'X';
  ev.tid = tid;
  ev.ts = ts_us;  // already trace microseconds; bypass the sim-time scale
  ev.dur = dur_us;
  ev.name = name;
  ev.cat = cat;
}

void TraceRecorder::async_begin(TraceTid tid, std::uint64_t id,
                                const char* name, const char* cat,
                                double at) {
  if (!enabled_) return;
  TraceEvent& ev = push('b', tid, at);
  ev.async_id = id;
  ev.name = name;
  ev.cat = cat;
}

void TraceRecorder::async_instant(TraceTid tid, std::uint64_t id,
                                  const char* name, const char* cat,
                                  double at) {
  if (!enabled_) return;
  TraceEvent& ev = push('n', tid, at);
  ev.async_id = id;
  ev.name = name;
  ev.cat = cat;
}

void TraceRecorder::async_end(TraceTid tid, std::uint64_t id, const char* cat,
                              double at) {
  if (!enabled_) return;
  TraceEvent& ev = push('e', tid, at);
  ev.async_id = id;
  ev.cat = cat;
}

void TraceRecorder::clear() { events_.clear(); }

namespace {

void write_event(std::ostream& os, const TraceEvent& ev) {
  JsonObject obj;
  const char phase[2] = {ev.phase, '\0'};
  obj.field("ph", phase);
  obj.field("pid", std::uint64_t{0});
  obj.field("tid", std::uint64_t{ev.tid});
  obj.field("ts", ev.ts);
  if (ev.phase == 'X') obj.field("dur", ev.dur);
  if (!ev.name.empty()) obj.field("name", ev.name);
  if (!ev.cat.empty()) obj.field("cat", ev.cat);
  if (ev.phase == 'b' || ev.phase == 'n' || ev.phase == 'e') {
    obj.field("id", std::uint64_t{ev.async_id});
  }
  if (ev.phase == 'i') obj.field("s", "t");  // instant scope: thread
  if (!ev.args.empty() || !ev.str_args.empty()) {
    JsonObject args;
    for (const auto& [key, value] : ev.args) args.field(key, value);
    for (const auto& [key, value] : ev.str_args) args.field(key, value);
    obj.raw("args", args.str());
  }
  os << obj.str();
}

}  // namespace

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Process + track name metadata first.
  {
    JsonObject process;
    process.field("ph", "M").field("pid", std::uint64_t{0})
        .field("name", "process_name")
        .raw("args", JsonObject().field("name", "scal simulation").str());
    os << process.str();
    first = false;
  }
  for (TraceTid tid = 0; tid < tracks_.size(); ++tid) {
    JsonObject track;
    track.field("ph", "M").field("pid", std::uint64_t{0})
        .field("tid", std::uint64_t{tid})
        .field("name", "thread_name")
        .raw("args", JsonObject().field("name", tracks_[tid]).str());
    os << ",";
    os << track.str();
  }
  for (const TraceEvent& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    write_event(os, ev);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    SCAL_WARN("trace: cannot open " << path);
    return false;
  }
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace scal::obs
